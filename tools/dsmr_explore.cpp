// dsmr_explore — schedule exploration: differential conformance grids and
// exhaustive model checking.
//
// Grid mode (default): runs a (seed × perturbation) grid for one or more
// workload scenarios on a thread pool, cross-checking the epoch fast-path
// detector, the full-vector-clock oracle, the lockset baseline, and offline
// ground truth on every schedule (analysis/conformance.hpp). Any verdict
// disagreement fails the process with the reproducing (seed, perturbation)
// pair, and — with --trace-dir — an exported JSONL + Chrome trace of the
// exact schedule.
//
//   dsmr_explore --list
//   dsmr_explore [--scenario name[,name...]|all] [--ranks N]
//                [--seeds N|LO..HI] [--first-seed N] [--threads N]
//                [--perturbations K] [--perturb-min NS] [--perturb-max NS]
//                [--faults PLAN[;PLAN...]]
//                [--json FILE] [--trace-dir DIR] [--verbose]
//
// Exhaustive mode (--exhaustive): generates a slice of small fuzzed
// programs and explores EVERY inequivalent interleaving of each with
// DPOR + sleep sets over the threaded op model (explore/dpor.hpp),
// upgrading the sampled grid's rates to proofs — every kSometimes planted
// bug must be FOUND somewhere in the space, every clean-by-construction
// program must CERTIFY clean over the full reduced space.
//
//   dsmr_explore --exhaustive [--seeds N|LO..HI] [--first-seed N]
//                [--ranks N<=3] [--max-ops N] [--max-interleavings N]
//                [--bug-kinds K1,K2|all|none] [--planted-fraction F]
//                [--witness-dir DIR] [--max-witnesses N]
//                [--compare-naive] [--single-pass] [--skip-sample]
//                [--json FILE] [--verbose]
//
// Every racy interleaving is exported (--witness-dir) as a record/ log that
// replays offline (`dsmr_replay --log`) and back onto real OS threads
// (ReplayGate). --compare-naive also runs naive full enumeration per
// program and cross-checks the signature sets (DPOR must find the same
// set with fewer interleavings). By default every program is explored
// twice and the counters must be bit-identical (--single-pass skips the
// second run), and the sampled (seed, perturbation) grid runs alongside so
// the report can show sampled manifestation rates next to the exhaustive
// found-rate.
//
// --seeds uses the shared seed-range grammar (util::parse_seed_range, also
// dsmr_fuzz's): a count ("64", starting at --first-seed) or an inclusive
// range ("100..163"). Malformed ranges are loud errors, never truncations.
//
// --faults (grid mode) adds a third grid axis: every (seed, perturbation)
// point reruns under each fault plan (preset name or [grammar] —
// net/fault.hpp), and the conformance layer checks fault transparency and
// clean failure.
//
// Exit status (both modes share dsmr_replay's discipline):
//   0  everything conforms / certifies;
//   1  divergence: a conformance disagreement, a missed planted bug, a
//      racy interleaving of a clean program, a DPOR-vs-naive signature
//      mismatch, or nondeterministic exploration counts;
//   2  invalid input or tripped limits: bad flags, unwritable --json /
//      --witness-dir, ineligible program sizes, or a --max-interleavings /
//      --max-ops budget that left an exploration incomplete (an incomplete
//      exploration certifies nothing, which is an input problem, not a
//      detector verdict).
//
// CI runs both modes as smoke stages; a reported (seed, perturbation)
// or witness log replays deterministically on any machine (docs/testing.md
// walks through both loops).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/conformance.hpp"
#include "explore/dpor.hpp"
#include "fuzz/generate.hpp"
#include "fuzz/harness.hpp"
#include "net/fault.hpp"
#include "record/log.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

using namespace dsmr;

namespace {

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> names;
  std::stringstream stream(csv);
  std::string name;
  while (std::getline(stream, name, ',')) {
    if (!name.empty()) names.push_back(name);
  }
  return names;
}

/// Parses --bug-kinds ("all", "none", or a comma list); exits 2 on unknown
/// names. "none" yields an all-clean slice — the only option below 3 ranks,
/// where no bug kind is plantable.
std::vector<fuzz::BugKind> parse_bug_kinds_or_die(const std::string& text) {
  if (text == "all") return fuzz::all_bug_kinds();
  if (text == "none") return {};
  std::vector<fuzz::BugKind> kinds;
  for (const auto& name : split_names(text)) {
    const auto kind = fuzz::parse_bug_kind(name);
    if (!kind.has_value()) {
      std::fprintf(stderr, "unknown --bug-kinds entry '%s' (known: all", name.c_str());
      for (const auto known : fuzz::all_bug_kinds()) {
        std::fprintf(stderr, ", %s", fuzz::to_string(known));
      }
      std::fprintf(stderr, ")\n");
      std::exit(2);
    }
    kinds.push_back(*kind);
  }
  if (kinds.empty()) {
    std::fprintf(stderr, "--bug-kinds needs 'all' or a comma list of kinds\n");
    std::exit(2);
  }
  return kinds;
}

struct ExhaustiveParams {
  int ranks = 3;
  util::SeedRange seeds{1, 64};
  std::vector<fuzz::BugKind> kinds;
  double planted_fraction = 0.5;
  std::uint64_t max_interleavings = 1u << 20;
  int max_ops = 8;
  std::size_t max_witnesses = 4;
  std::string witness_dir;
  bool compare_naive = false;
  bool single_pass = false;
  bool skip_sample = false;
  std::string json_path;
  bool verbose = false;
};

/// One program's exploration outcome, for the table / JSON.
struct ProgramOutcome {
  std::uint64_t seed = 0;
  std::string arm;  ///< "clean" or the planted kind name.
  fuzz::Expectation expect = fuzz::Expectation::kClean;
  bool skipped = false;
  std::string skip_reason;
  explore::ExploreReport report;
  std::vector<std::string> failures;       ///< non-limit divergences.
  std::vector<std::string> limit_failures; ///< tripped budgets (exit 2).
  std::vector<std::string> witness_paths;
  std::uint64_t naive_interleavings = 0;   ///< 0 when naive off/capped.
  std::uint64_t sampled_manifested = 0;
  std::uint64_t sampled_completed = 0;
};

bool same_counters(const explore::ExploreReport& a, const explore::ExploreReport& b) {
  return a.complete == b.complete && a.interleavings == b.interleavings &&
         a.deadlocks == b.deadlocks && a.sleep_blocked == b.sleep_blocked &&
         a.transitions == b.transitions &&
         a.pruned_branches == b.pruned_branches &&
         a.racy_interleavings == b.racy_interleavings &&
         a.planted_flagged == b.planted_flagged && a.signatures == b.signatures;
}

int run_exhaustive(const ExhaustiveParams& params) {
  // Pre-validate everything (exit 2 before any work, the dsmr_replay
  // discipline): ranks within the certification contract, kinds plantable
  // in the generator slice, output paths writable.
  if (params.ranks < 2 || params.ranks > 3) {
    std::fprintf(stderr,
                 "--exhaustive needs --ranks 2 or 3 (the certification "
                 "contract caps programs at 3 ranks)\n");
    return 2;
  }
  if (params.max_ops < 1 || params.max_ops > 8) {
    std::fprintf(stderr, "--max-ops must be in 1..8 (the certification cap)\n");
    return 2;
  }

  // The generator slice: small programs by construction. Two phases (one
  // boundary) keeps partial-barrier plantable, areas = nprocs + 1 keeps
  // ack-window plantable, and one filler op per rank per phase keeps even
  // the largest planted prologue (ack-window's producer: up to 6 ops)
  // inside the --max-ops 8 eligibility gate, so nothing in the slice is
  // silently under-certified.
  fuzz::GenConfig base;
  base.nprocs = params.ranks;
  base.areas = params.ranks + 1;
  base.area_bytes = 8;
  base.phases = 2;
  base.max_ops_per_rank = 1;
  base.max_sync_edges = 1;
  base.collective_fraction = 0.0;
  for (const fuzz::BugKind kind : params.kinds) {
    if (!fuzz::bug_kind_eligible(base, kind)) {
      std::fprintf(stderr,
                   "bug kind %s is not plantable in the exhaustive slice "
                   "(ranks=%d areas=%d phases=%d)\n",
                   fuzz::to_string(kind), base.nprocs, base.areas,
                   static_cast<int>(base.phases));
      return 2;
    }
  }

  std::ofstream json;
  if (!params.json_path.empty()) {
    json.open(params.json_path);
    if (!json) {
      std::fprintf(stderr, "cannot write --json %s\n", params.json_path.c_str());
      return 2;
    }
  }
  if (!params.witness_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(params.witness_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create --witness-dir %s: %s\n",
                   params.witness_dir.c_str(), ec.message().c_str());
      return 2;
    }
  }

  std::printf("--- dsmr_explore --exhaustive: %llu program(s), ranks=%d, "
              "max-ops=%d, max-interleavings=%llu ---\n",
              static_cast<unsigned long long>(params.seeds.count), params.ranks,
              params.max_ops,
              static_cast<unsigned long long>(params.max_interleavings));

  explore::ExploreOptions reduced;
  reduced.max_interleavings = params.max_interleavings;
  reduced.max_witnesses = params.max_witnesses;
  explore::ExploreOptions naive = reduced;
  naive.dpor = false;
  naive.sleep_sets = false;
  naive.max_witnesses = 0;

  std::vector<ProgramOutcome> outcomes;
  std::uint64_t clean_programs = 0, sometimes_programs = 0, racy_programs = 0;
  std::uint64_t skipped = 0, found = 0, certified = 0, racy_pass = 0;
  std::uint64_t total_interleavings = 0, total_pruned = 0, total_sleep_blocked = 0;
  std::uint64_t naive_total = 0, naive_dpor_total = 0, naive_capped = 0,
                naive_programs = 0;
  std::uint64_t sampled_manifested = 0, sampled_completed = 0;
  bool deterministic = true;

  for (std::uint64_t i = 0; i < params.seeds.count; ++i) {
    const std::uint64_t seed = params.seeds.first + i;
    fuzz::GenConfig config = base;
    config.seed = seed;
    const bool plant = fuzz::plant_for_seed(seed, params.planted_fraction) &&
                       !params.kinds.empty();
    if (plant) {
      config.plant_bug = true;
      config.bug_kind = fuzz::kind_for_seed(seed, params.kinds);
    }
    const fuzz::Program program = fuzz::generate_program(config);

    ProgramOutcome outcome;
    outcome.seed = seed;
    outcome.arm = plant ? fuzz::to_string(config.bug_kind) : "clean";
    outcome.expect = program.expect;

    const auto eligibility =
        explore::exhaustive_eligible(program, params.ranks, params.max_ops);
    if (!eligibility.eligible) {
      outcome.skipped = true;
      outcome.skip_reason = eligibility.reason;
      ++skipped;
      outcomes.push_back(std::move(outcome));
      continue;
    }

    switch (program.expect) {
      case fuzz::Expectation::kClean: ++clean_programs; break;
      case fuzz::Expectation::kRacy: ++racy_programs; break;
      case fuzz::Expectation::kSometimes: ++sometimes_programs; break;
    }

    outcome.report = explore::explore_program(program, reduced);
    const explore::ExploreReport& report = outcome.report;
    total_interleavings += report.interleavings;
    total_pruned += report.pruned_branches;
    total_sleep_blocked += report.sleep_blocked;

    if (!params.single_pass) {
      const auto second = explore::explore_program(program, reduced);
      if (!same_counters(report, second)) {
        deterministic = false;
        outcome.failures.push_back(
            "explore-nondeterministic: two passes over seed " +
            std::to_string(seed) + " disagree on counters");
      }
    }

    for (const std::string& failure : explore::check_exhaustive(program, report)) {
      if (failure.rfind("explore-limit", 0) == 0) {
        outcome.limit_failures.push_back(failure);
      } else {
        outcome.failures.push_back(failure);
      }
    }
    if (outcome.failures.empty() && outcome.limit_failures.empty()) {
      if (program.expect == fuzz::Expectation::kSometimes) ++found;
      if (program.expect == fuzz::Expectation::kClean &&
          report.certified_clean()) {
        ++certified;
      }
      if (program.expect == fuzz::Expectation::kRacy) ++racy_pass;
    }

    if (!params.witness_dir.empty()) {
      for (std::size_t w = 0; w < report.witnesses.size(); ++w) {
        const std::string path = params.witness_dir + "/explore-s" +
                                 std::to_string(seed) + "-w" +
                                 std::to_string(w) + ".dsmrlog";
        record::write_file(path, report.witnesses[w].serialize());
        outcome.witness_paths.push_back(path);
      }
    }

    if (params.compare_naive) {
      const auto full = explore::explore_program(program, naive);
      if (!full.limit.empty()) {
        ++naive_capped;
      } else {
        ++naive_programs;
        naive_total += full.interleavings;
        naive_dpor_total += report.interleavings;
        outcome.naive_interleavings = full.interleavings;
        if (full.signatures != report.signatures) {
          outcome.failures.push_back(
              "exhaustive-crosscheck: DPOR signature set differs from naive "
              "enumeration on seed " +
              std::to_string(seed));
        }
        if (report.complete && report.interleavings > full.interleavings) {
          outcome.failures.push_back(
              "exhaustive-crosscheck: DPOR executed more interleavings (" +
              std::to_string(report.interleavings) + ") than naive (" +
              std::to_string(full.interleavings) + ") on seed " +
              std::to_string(seed));
        }
      }
    }

    if (!params.skip_sample) {
      fuzz::FuzzCheckOptions sampled;
      sampled.schedule_seeds = 3;
      sampled.perturbations = sim::perturb_variants(0, 4'000, 2);
      const auto verdict = fuzz::check_program(program, sampled);
      outcome.sampled_manifested = verdict.manifested_runs;
      outcome.sampled_completed = verdict.completed_runs;
      if (program.expect == fuzz::Expectation::kSometimes) {
        sampled_manifested += verdict.manifested_runs;
        sampled_completed += verdict.completed_runs;
      }
      for (const auto& divergence : verdict.failures) {
        outcome.failures.push_back("sampled-grid " + divergence.check + ": " +
                                   divergence.detail);
      }
    }

    outcomes.push_back(std::move(outcome));
  }

  // Report.
  util::Table table({"seed", "arm", "expect", "interleavings", "pruned",
                     "sleep-blocked", "racy", "sigs", "naive", "status"});
  std::vector<std::string> failures, limit_failures;
  std::vector<std::string> witness_paths;
  for (const auto& outcome : outcomes) {
    std::string status = "ok";
    if (outcome.skipped) {
      status = "skipped";
    } else if (!outcome.failures.empty()) {
      status = "FAIL";
    } else if (!outcome.limit_failures.empty()) {
      status = "capped";
    }
    if (params.verbose || status == "FAIL" || status == "capped") {
      table.add_row({std::to_string(outcome.seed), outcome.arm,
                     fuzz::to_string(outcome.expect),
                     util::Table::fmt_int(outcome.report.interleavings),
                     util::Table::fmt_int(outcome.report.pruned_branches),
                     util::Table::fmt_int(outcome.report.sleep_blocked),
                     util::Table::fmt_int(outcome.report.racy_interleavings),
                     util::Table::fmt_int(outcome.report.signatures.size()),
                     outcome.naive_interleavings == 0
                         ? "-"
                         : util::Table::fmt_int(outcome.naive_interleavings),
                     status});
    }
    for (const auto& failure : outcome.failures) {
      failures.push_back("seed " + std::to_string(outcome.seed) + ": " + failure);
    }
    for (const auto& failure : outcome.limit_failures) {
      limit_failures.push_back("seed " + std::to_string(outcome.seed) + ": " +
                               failure);
    }
    witness_paths.insert(witness_paths.end(), outcome.witness_paths.begin(),
                         outcome.witness_paths.end());
  }
  std::printf("%s", table.render().c_str());

  const std::uint64_t explored =
      clean_programs + sometimes_programs + racy_programs;
  const double found_rate =
      sometimes_programs == 0
          ? 1.0
          : static_cast<double>(found) / static_cast<double>(sometimes_programs);
  const double sampled_rate =
      sampled_completed == 0 ? 0.0
                             : static_cast<double>(sampled_manifested) /
                                   static_cast<double>(sampled_completed);
  const double pruning_ratio =
      naive_dpor_total == 0 ? 0.0
                            : static_cast<double>(naive_total) /
                                  static_cast<double>(naive_dpor_total);

  std::printf("explored %llu program(s): %llu clean, %llu sometimes, %llu racy"
              " (%llu skipped); %llu interleavings, %llu pruned branches\n",
              static_cast<unsigned long long>(explored),
              static_cast<unsigned long long>(clean_programs),
              static_cast<unsigned long long>(sometimes_programs),
              static_cast<unsigned long long>(racy_programs),
              static_cast<unsigned long long>(skipped),
              static_cast<unsigned long long>(total_interleavings),
              static_cast<unsigned long long>(total_pruned));
  std::printf("kSometimes found-rate: %.3f (%llu/%llu)",
              found_rate, static_cast<unsigned long long>(found),
              static_cast<unsigned long long>(sometimes_programs));
  if (!params.skip_sample) {
    std::printf("; sampled grid manifestation rate: %.3f (%llu/%llu runs)",
                sampled_rate,
                static_cast<unsigned long long>(sampled_manifested),
                static_cast<unsigned long long>(sampled_completed));
  }
  std::printf("\nclean certified: %llu/%llu\n",
              static_cast<unsigned long long>(certified),
              static_cast<unsigned long long>(clean_programs));
  if (params.compare_naive) {
    std::printf("naive cross-check: %llu vs %llu DPOR interleavings over %llu "
                "program(s) — %.2fx pruning (%llu naive-capped)\n",
                static_cast<unsigned long long>(naive_total),
                static_cast<unsigned long long>(naive_dpor_total),
                static_cast<unsigned long long>(naive_programs), pruning_ratio,
                static_cast<unsigned long long>(naive_capped));
  }
  if (!witness_paths.empty()) {
    std::printf("%zu witness log(s) in %s (replay: dsmr_replay --log FILE)\n",
                witness_paths.size(), params.witness_dir.c_str());
  }
  for (const auto& failure : failures) std::printf("FAIL %s\n", failure.c_str());
  for (const auto& failure : limit_failures) {
    std::printf("LIMIT %s\n", failure.c_str());
  }

  if (json.is_open()) {
    json << "{\"tool\":\"dsmr_explore\",\"mode\":\"exhaustive\""
         << ",\"ranks\":" << params.ranks
         << ",\"first_seed\":" << params.seeds.first
         << ",\"seeds\":" << params.seeds.count
         << ",\"max_ops\":" << params.max_ops
         << ",\"max_interleavings\":" << params.max_interleavings
         << ",\"programs\":" << explored
         << ",\"clean_programs\":" << clean_programs
         << ",\"sometimes_programs\":" << sometimes_programs
         << ",\"racy_programs\":" << racy_programs
         << ",\"skipped_ineligible\":" << skipped
         << ",\"interleavings\":" << total_interleavings
         << ",\"pruned_branches\":" << total_pruned
         << ",\"sleep_blocked\":" << total_sleep_blocked
         << ",\"found\":" << found << ",\"found_rate\":" << found_rate
         << ",\"certified_clean\":" << certified
         << ",\"racy_passed\":" << racy_pass
         << ",\"deterministic\":" << (deterministic ? "true" : "false");
    if (!params.skip_sample) {
      json << ",\"sampled\":{\"manifested\":" << sampled_manifested
           << ",\"completed\":" << sampled_completed
           << ",\"rate\":" << sampled_rate << "}";
    }
    if (params.compare_naive) {
      json << ",\"naive\":{\"programs\":" << naive_programs
           << ",\"naive_interleavings\":" << naive_total
           << ",\"dpor_interleavings\":" << naive_dpor_total
           << ",\"pruning_ratio\":" << pruning_ratio
           << ",\"capped\":" << naive_capped << "}";
    }
    json << ",\"witnesses\":[";
    for (std::size_t i = 0; i < witness_paths.size(); ++i) {
      if (i > 0) json << ",";
      json << "\"" << witness_paths[i] << "\"";
    }
    json << "],\"failures\":[";
    for (std::size_t i = 0; i < failures.size(); ++i) {
      if (i > 0) json << ",";
      std::string escaped = failures[i];
      for (std::size_t pos = 0; (pos = escaped.find('"', pos)) != std::string::npos;
           pos += 2) {
        escaped.replace(pos, 1, "\\\"");
      }
      json << "\"" << escaped << "\"";
    }
    json << "],\"limit_failures\":" << limit_failures.size() << "}\n";
    std::printf("wrote %s\n", params.json_path.c_str());
  }

  if (!failures.empty() || !deterministic) {
    std::printf("EXHAUSTIVE FAILURE: a planted bug was missed, a clean program "
                "raced, or exploration diverged — replay the witness logs\n");
    return 1;
  }
  if (!limit_failures.empty() || skipped != 0) {
    std::printf("EXHAUSTIVE INCOMPLETE: %zu exploration(s) tripped a budget, "
                "%llu program(s) over the size gate — nothing was certified "
                "for them; raise --max-interleavings / --max-ops or shrink "
                "the slice\n",
                limit_failures.size(), static_cast<unsigned long long>(skipped));
    return 2;
  }
  std::printf("every planted bug found, every clean program certified\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv,
                "[--list] [--exhaustive] [--scenario name[,name...]|all] "
                "[--ranks N] [--seeds N|LO..HI] [--first-seed N] [--threads N] "
                "[--perturbations K] [--perturb-min NS] [--perturb-max NS] "
                "[--faults PLAN[;PLAN...]] [--max-ops N] "
                "[--max-interleavings N] [--bug-kinds K1,K2|all|none] "
                "[--planted-fraction F] [--witness-dir DIR] [--max-witnesses N] "
                "[--compare-naive] [--single-pass] [--skip-sample] "
                "[--json FILE] [--trace-dir DIR] [--verbose]");
  const bool list = cli.get_flag("list");
  const bool exhaustive = cli.get_flag("exhaustive");
  const std::string scenario_csv = cli.get_string("scenario", "all");
  const auto ranks = static_cast<int>(cli.get_int("ranks", exhaustive ? 3 : 4));
  const auto default_first = cli.get_uint("first-seed", 1);
  const auto seed_range = cli.get_seed_range(
      "seeds", util::SeedRange{default_first, exhaustive ? 64u : 32u});
  const std::uint64_t seeds = seed_range.count;
  const std::uint64_t first_seed = seed_range.first;
  const auto threads =
      static_cast<int>(cli.get_int("threads", util::ThreadPool::hardware_threads()));
  const auto perturbations = cli.get_uint("perturbations", 2);
  const std::int64_t perturb_min_raw = cli.get_int("perturb-min", 0);
  const std::int64_t perturb_max_raw = cli.get_int("perturb-max", 4'000);
  const std::string faults_text = cli.get_string("faults", "");
  const std::string json_path = cli.get_string("json", "");
  const std::string trace_dir = cli.get_string("trace-dir", "");
  const bool verbose = cli.get_flag("verbose");

  ExhaustiveParams params;
  params.ranks = ranks;
  params.seeds = seed_range;
  params.planted_fraction = cli.get_double("planted-fraction", 0.5);
  params.max_interleavings =
      cli.get_uint("max-interleavings", params.max_interleavings);
  params.max_ops = static_cast<int>(cli.get_int("max-ops", params.max_ops));
  params.max_witnesses =
      static_cast<std::size_t>(cli.get_uint("max-witnesses", 4));
  params.witness_dir = cli.get_string("witness-dir", "");
  params.compare_naive = cli.get_flag("compare-naive");
  params.single_pass = cli.get_flag("single-pass");
  params.skip_sample = cli.get_flag("skip-sample");
  params.json_path = json_path;
  params.verbose = verbose;
  const std::string bug_kinds_text =
      cli.get_string("bug-kinds", "partial-barrier,ack-window");
  cli.finish();

  if (exhaustive) {
    if (params.planted_fraction < 0.0 || params.planted_fraction > 1.0) {
      std::fprintf(stderr, "--planted-fraction must be in [0, 1]\n");
      return 2;
    }
    params.kinds = parse_bug_kinds_or_die(bug_kinds_text);
    return run_exhaustive(params);
  }

  if (perturb_min_raw < 0 || perturb_max_raw < 0 || perturb_min_raw > perturb_max_raw) {
    std::fprintf(stderr, "--perturb-min/--perturb-max must satisfy 0 <= min <= max\n");
    return 2;
  }
  const auto perturb_min = static_cast<sim::Time>(perturb_min_raw);
  const auto perturb_max = static_cast<sim::Time>(perturb_max_raw);

  std::vector<net::FaultPlan> fault_plans;
  if (!faults_text.empty()) {
    std::string fault_error;
    const auto parsed = net::parse_fault_plan_list(faults_text, &fault_error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "bad --faults: %s\n", fault_error.c_str());
      return 2;
    }
    fault_plans = *parsed;
  }

  if (list) {
    util::Table table({"scenario", "expect", "description"});
    for (const auto& scenario : analysis::builtin_scenarios()) {
      table.add_row({scenario.name, analysis::to_string(scenario.expect),
                     scenario.description});
    }
    std::printf("%s", table.render().c_str());
    return 0;
  }

  std::vector<const analysis::Scenario*> selected;
  if (scenario_csv == "all") {
    for (const auto& scenario : analysis::builtin_scenarios()) selected.push_back(&scenario);
  } else {
    for (const auto& name : split_names(scenario_csv)) {
      const auto* scenario = analysis::find_scenario(name);
      if (scenario == nullptr) {
        std::fprintf(stderr, "unknown --scenario %s (try --list)\n", name.c_str());
        return 2;
      }
      selected.push_back(scenario);
    }
  }

  analysis::ConformanceOptions options;
  options.base.nprocs = ranks;
  options.first_seed = first_seed;
  options.seeds = seeds;
  options.threads = threads;
  options.trace_dir = trace_dir;
  options.perturbations = sim::perturb_variants(perturb_min, perturb_max, perturbations);
  for (const auto& plan : fault_plans) {
    if (plan.wire_enabled()) options.fault_plans.push_back(plan);
  }

  // Open --json up front: an unwritable path is a usage error (exit 2) and
  // should fail before the grid burns minutes, not after.
  std::ofstream json_out;
  if (!json_path.empty()) {
    json_out.open(json_path);
    if (!json_out) {
      std::fprintf(stderr, "cannot write --json %s\n", json_path.c_str());
      return 2;
    }
  }

  std::printf("--- dsmr_explore: %zu scenario(s) × %llu seeds × %zu schedule "
              "variants on %d thread(s) ---\n",
              selected.size(), static_cast<unsigned long long>(seeds),
              options.perturbations.size(), threads);
  for (const auto& plan : options.fault_plans) {
    std::printf("fault plan: %s (%s)\n", plan.to_string().c_str(),
                plan.recoverable() ? "recoverable" : "unrecoverable");
  }

  std::vector<analysis::ConformanceReport> reports;
  bool all_passed = true;
  util::Table table({"scenario", "expect", "schedules", "manifested", "truth",
                     "deadlocks", "lockset-div", "fault-runs", "transparent",
                     "watchdog", "disagree"});
  for (const auto* scenario : selected) {
    auto report = analysis::run_conformance(*scenario, options);
    all_passed = all_passed && report.passed();
    table.add_row({report.scenario, analysis::to_string(report.expect),
                   util::Table::fmt_int(report.base_schedules),
                   util::Table::fmt_int(report.runs_with_reports),
                   util::Table::fmt_int(report.runs_with_truth),
                   util::Table::fmt_int(report.incomplete_runs),
                   util::Table::fmt_int(report.lockset_divergences),
                   util::Table::fmt_int(report.fault_runs),
                   util::Table::fmt_int(report.fault_transparent_runs),
                   util::Table::fmt_int(report.watchdog_runs),
                   util::Table::fmt_int(report.disagreements.size())});
    if (verbose || !report.passed()) std::printf("%s\n", report.render().c_str());
    if (!report.passed()) {
      // Surface the watchdog's stuck-task dump for every non-quiescent run
      // behind a failure: the stuck rank and its pending op are the repro.
      for (const auto& run : report.runs) {
        if (run.completed || run.diagnostic.empty()) continue;
        std::printf("[%s seed=%llu fault=\"%s\"]\n%s\n", report.scenario.c_str(),
                    static_cast<unsigned long long>(run.seed),
                    run.fault.to_string().c_str(), run.diagnostic.c_str());
      }
    }
    reports.push_back(std::move(report));
  }
  std::printf("%s", table.render().c_str());

  if (json_out.is_open()) {
    json_out << "{\"tool\":\"dsmr_explore\",\"ranks\":" << ranks << ",\"seeds\":" << seeds
             << ",\"first_seed\":" << first_seed << ",\"threads\":" << threads
             << ",\"variants\":" << options.perturbations.size() << ",\"faults\":[";
    for (std::size_t i = 0; i < options.fault_plans.size(); ++i) {
      if (i > 0) json_out << ",";
      json_out << "\"" << options.fault_plans[i].to_string() << "\"";
    }
    json_out << "],\"reports\":[";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (i > 0) json_out << ",";
      reports[i].write_json(json_out);
    }
    json_out << "]}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!all_passed) {
    std::printf("CONFORMANCE FAILURE: replay any disagreement with its (seed, "
                "perturbation, fault-plan) coordinate — see docs/testing.md\n");
    return 1;
  }
  std::printf("all scenarios conformant\n");
  return 0;
}
