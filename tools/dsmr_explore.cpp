// dsmr_explore — schedule exploration at scale with differential conformance.
//
// Runs a (seed × perturbation) grid for one or more workload scenarios on a
// thread pool, cross-checking the epoch fast-path detector, the full-vector-
// clock oracle, the lockset baseline, and offline ground truth on every
// schedule (analysis/conformance.hpp). Any verdict disagreement fails the
// process with the reproducing (seed, perturbation) pair, and — with
// --trace-dir — an exported JSONL + Chrome trace of the exact schedule.
//
//   dsmr_explore --list
//   dsmr_explore [--scenario name[,name...]|all] [--ranks N]
//                [--seeds N|LO..HI] [--first-seed N] [--threads N]
//                [--perturbations K] [--perturb-min NS] [--perturb-max NS]
//                [--faults PLAN[;PLAN...]]
//                [--json FILE] [--trace-dir DIR] [--verbose]
//
// --seeds uses the shared seed-range grammar (util::parse_seed_range, also
// dsmr_fuzz's): a count ("64", starting at --first-seed) or an inclusive
// range ("100..163"). Malformed ranges are loud errors, never truncations.
//
// --faults adds a third grid axis: every (seed, perturbation) point reruns
// under each fault plan (preset name or [grammar] — net/fault.hpp), and the
// conformance layer checks fault transparency (recoverable plans must not
// change verdicts) and clean failure (unrecoverable plans must end in the
// quiescence watchdog's diagnostic, never a hang or a wrong verdict).
//
// Exit status: 0 when every scenario conforms, 1 on any disagreement. A
// non-quiescent run prints the watchdog's stuck-task dump before exiting
// nonzero — the stuck rank, its pending operation, and the oldest unacked
// message are in the dump, not buried in a trace file.
//
// CI runs this as a smoke stage; a reported (seed, perturbation) replays
// deterministically on any machine (docs/testing.md walks through the loop).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/conformance.hpp"
#include "net/fault.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

using namespace dsmr;

namespace {

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> names;
  std::stringstream stream(csv);
  std::string name;
  while (std::getline(stream, name, ',')) {
    if (!name.empty()) names.push_back(name);
  }
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv,
                "[--list] [--scenario name[,name...]|all] [--ranks N] "
                "[--seeds N|LO..HI] [--first-seed N] [--threads N] "
                "[--perturbations K] [--perturb-min NS] [--perturb-max NS] "
                "[--faults PLAN[;PLAN...]] "
                "[--json FILE] [--trace-dir DIR] [--verbose]");
  const bool list = cli.get_flag("list");
  const std::string scenario_csv = cli.get_string("scenario", "all");
  const auto ranks = static_cast<int>(cli.get_int("ranks", 4));
  const auto default_first = cli.get_uint("first-seed", 1);
  const auto seed_range =
      cli.get_seed_range("seeds", util::SeedRange{default_first, 32});
  const std::uint64_t seeds = seed_range.count;
  const std::uint64_t first_seed = seed_range.first;
  const auto threads =
      static_cast<int>(cli.get_int("threads", util::ThreadPool::hardware_threads()));
  const auto perturbations = cli.get_uint("perturbations", 2);
  const std::int64_t perturb_min_raw = cli.get_int("perturb-min", 0);
  const std::int64_t perturb_max_raw = cli.get_int("perturb-max", 4'000);
  if (perturb_min_raw < 0 || perturb_max_raw < 0 || perturb_min_raw > perturb_max_raw) {
    std::fprintf(stderr, "--perturb-min/--perturb-max must satisfy 0 <= min <= max\n");
    return 2;
  }
  const auto perturb_min = static_cast<sim::Time>(perturb_min_raw);
  const auto perturb_max = static_cast<sim::Time>(perturb_max_raw);
  const std::string faults_text = cli.get_string("faults", "");
  const std::string json_path = cli.get_string("json", "");
  const std::string trace_dir = cli.get_string("trace-dir", "");
  const bool verbose = cli.get_flag("verbose");
  cli.finish();

  std::vector<net::FaultPlan> fault_plans;
  if (!faults_text.empty()) {
    std::string fault_error;
    const auto parsed = net::parse_fault_plan_list(faults_text, &fault_error);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "bad --faults: %s\n", fault_error.c_str());
      return 2;
    }
    fault_plans = *parsed;
  }

  if (list) {
    util::Table table({"scenario", "expect", "description"});
    for (const auto& scenario : analysis::builtin_scenarios()) {
      table.add_row({scenario.name, analysis::to_string(scenario.expect),
                     scenario.description});
    }
    std::printf("%s", table.render().c_str());
    return 0;
  }

  std::vector<const analysis::Scenario*> selected;
  if (scenario_csv == "all") {
    for (const auto& scenario : analysis::builtin_scenarios()) selected.push_back(&scenario);
  } else {
    for (const auto& name : split_names(scenario_csv)) {
      const auto* scenario = analysis::find_scenario(name);
      if (scenario == nullptr) {
        std::fprintf(stderr, "unknown --scenario %s (try --list)\n", name.c_str());
        return 2;
      }
      selected.push_back(scenario);
    }
  }

  analysis::ConformanceOptions options;
  options.base.nprocs = ranks;
  options.first_seed = first_seed;
  options.seeds = seeds;
  options.threads = threads;
  options.trace_dir = trace_dir;
  options.perturbations = sim::perturb_variants(perturb_min, perturb_max, perturbations);
  for (const auto& plan : fault_plans) {
    if (plan.wire_enabled()) options.fault_plans.push_back(plan);
  }

  std::printf("--- dsmr_explore: %zu scenario(s) × %llu seeds × %zu schedule "
              "variants on %d thread(s) ---\n",
              selected.size(), static_cast<unsigned long long>(seeds),
              options.perturbations.size(), threads);
  for (const auto& plan : options.fault_plans) {
    std::printf("fault plan: %s (%s)\n", plan.to_string().c_str(),
                plan.recoverable() ? "recoverable" : "unrecoverable");
  }

  std::vector<analysis::ConformanceReport> reports;
  bool all_passed = true;
  util::Table table({"scenario", "expect", "schedules", "manifested", "truth",
                     "deadlocks", "lockset-div", "fault-runs", "transparent",
                     "watchdog", "disagree"});
  for (const auto* scenario : selected) {
    auto report = analysis::run_conformance(*scenario, options);
    all_passed = all_passed && report.passed();
    table.add_row({report.scenario, analysis::to_string(report.expect),
                   util::Table::fmt_int(report.base_schedules),
                   util::Table::fmt_int(report.runs_with_reports),
                   util::Table::fmt_int(report.runs_with_truth),
                   util::Table::fmt_int(report.incomplete_runs),
                   util::Table::fmt_int(report.lockset_divergences),
                   util::Table::fmt_int(report.fault_runs),
                   util::Table::fmt_int(report.fault_transparent_runs),
                   util::Table::fmt_int(report.watchdog_runs),
                   util::Table::fmt_int(report.disagreements.size())});
    if (verbose || !report.passed()) std::printf("%s\n", report.render().c_str());
    if (!report.passed()) {
      // Surface the watchdog's stuck-task dump for every non-quiescent run
      // behind a failure: the stuck rank and its pending op are the repro.
      for (const auto& run : report.runs) {
        if (run.completed || run.diagnostic.empty()) continue;
        std::printf("[%s seed=%llu fault=\"%s\"]\n%s\n", report.scenario.c_str(),
                    static_cast<unsigned long long>(run.seed),
                    run.fault.to_string().c_str(), run.diagnostic.c_str());
      }
    }
    reports.push_back(std::move(report));
  }
  std::printf("%s", table.render().c_str());

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write --json %s\n", json_path.c_str());
      return 2;
    }
    out << "{\"tool\":\"dsmr_explore\",\"ranks\":" << ranks << ",\"seeds\":" << seeds
        << ",\"first_seed\":" << first_seed << ",\"threads\":" << threads
        << ",\"variants\":" << options.perturbations.size() << ",\"faults\":[";
    for (std::size_t i = 0; i < options.fault_plans.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << options.fault_plans[i].to_string() << "\"";
    }
    out << "],\"reports\":[";
    for (std::size_t i = 0; i < reports.size(); ++i) {
      if (i > 0) out << ",";
      reports[i].write_json(out);
    }
    out << "]}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!all_passed) {
    std::printf("CONFORMANCE FAILURE: replay any disagreement with its (seed, "
                "perturbation, fault-plan) coordinate — see docs/testing.md\n");
    return 1;
  }
  std::printf("all scenarios conformant\n");
  return 0;
}
