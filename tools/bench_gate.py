#!/usr/bin/env python3
"""Bench regression gate: compare fresh BENCH_*.json output against the
checked-in bench/baseline.json.

Three classes of metric, treated differently:

* wall-clock (``detector_check_ordered``) — the epoch fast-path kernel
  cost, the headline perf claim. Absolute ns/op depends on the machine, so
  the gate scores the *speedup* of the epoch path over the full-VC oracle
  measured in the same run (machine speed cancels) and fails when the mean
  speedup across clock widths drops more than the threshold (default 25%)
  below the baseline's.
* recording overhead (``record_op_wall``) — same machine-cancelling trick:
  the gated quantity is the ratio of the recorded config's ns/op to the
  matching unrecorded config's ns/op from the same run. Fails when the
  fresh record/off ratio exceeds the baseline ratio by more than
  --record-threshold (default 50% — threaded wall clock is noisy).
* virtual-time / wire metrics (entries named ``*_virtual`` and every
  ``bytes_per_op``) — pure simulator outputs, deterministic per seed, so
  ANY drift is a semantic change (protocol message count, clock wire
  format, event-log encoding) and fails exactly. Refresh the baseline when
  the change is intentional.

Both commands accept several JSON files (one per bench binary); their
entries are merged before comparing or refreshing.

Usage:
  tools/bench_gate.py compare build/BENCH_overhead.json build/BENCH_record_overhead.json
                              [--baseline bench/baseline.json] [--threshold 0.25]
                              [--record-threshold 0.5]
  tools/bench_gate.py refresh build/BENCH_overhead.json build/BENCH_record_overhead.json
                              [--baseline bench/baseline.json]

Exit status: 0 pass, 1 regression, 2 usage/IO error.
"""

import argparse
import json
import sys


def entry_key(entry):
    return (entry["name"], tuple(sorted(entry["params"].items())))


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if "entries" not in data or not data["entries"]:
        print(f"bench_gate: {path} has no bench entries", file=sys.stderr)
        sys.exit(2)
    return {entry_key(e): e for e in data["entries"]}


def load_merged(paths):
    merged = {}
    for path in paths:
        for key, entry in load(path).items():
            if key in merged:
                print(f"bench_gate: duplicate entry {key[0]} {dict(key[1])} "
                      f"in {path}", file=sys.stderr)
                sys.exit(2)
            merged[key] = entry
    return merged


def is_deterministic_virtual(key):
    name, _ = key
    return name.endswith("_virtual")


def epoch_speedups(entries):
    """Per clock width n: oracle ns/op ÷ epoch ns/op from the same run."""
    by_path = {}
    for (name, params), entry in entries.items():
        if name != "detector_check_ordered":
            continue
        p = dict(params)
        by_path.setdefault(p["n"], {})[p["path"]] = entry["ns_per_op"]
    return {n: paths["oracle"] / paths["epoch"]
            for n, paths in by_path.items()
            if "oracle" in paths and "epoch" in paths and paths["epoch"] > 0}


def record_ratios(entries):
    """Recorded ns/op ÷ unrecorded ns/op, per base config, from the same run."""
    by_config = {}
    for (name, params), entry in entries.items():
        if name != "record_op_wall":
            continue
        by_config[dict(params)["config"]] = entry["ns_per_op"]
    return {base: by_config[f"{base}+record"] / by_config[base]
            for base in ("off", "dual-clock")
            if by_config.get(base, 0) > 0 and f"{base}+record" in by_config}


def compare(args):
    fresh = load_merged(args.json)
    baseline = load(args.baseline)
    failures = []

    missing = [k for k in baseline if k not in fresh]
    if missing:
        for k in missing:
            failures.append(f"baseline entry disappeared: {k[0]} {dict(k[1])}")

    for key, base in baseline.items():
        if key not in fresh:
            continue
        now = fresh[key]
        name, params = key
        if is_deterministic_virtual(key):
            if now["ns_per_op"] != base["ns_per_op"]:
                failures.append(
                    f"{name} {dict(params)}: virtual ns drifted "
                    f"{base['ns_per_op']} -> {now['ns_per_op']} (deterministic metric; "
                    f"refresh the baseline if intentional)")
        if now.get("bytes_per_op", 0) != base.get("bytes_per_op", 0):
            failures.append(
                f"{name} {dict(params)}: bytes/op drifted "
                f"{base.get('bytes_per_op')} -> {now.get('bytes_per_op')} "
                f"(wire-format metric; refresh the baseline if intentional)")

    base_speedups = epoch_speedups(baseline)
    fresh_speedups = epoch_speedups(fresh)
    shared = sorted(set(base_speedups) & set(fresh_speedups), key=int)
    if not shared:
        failures.append("no epoch-vs-oracle entry pairs found to gate on")
    else:
        for n in shared:
            print(f"epoch speedup at n={n}: baseline x{base_speedups[n]:.1f}, "
                  f"now x{fresh_speedups[n]:.1f}")
        base_mean = sum(base_speedups[n] for n in shared) / len(shared)
        fresh_mean = sum(fresh_speedups[n] for n in shared) / len(shared)
        floor = base_mean * (1.0 - args.threshold)
        print(f"epoch fast path mean speedup: baseline x{base_mean:.1f}, "
              f"now x{fresh_mean:.1f} (floor x{floor:.1f})")
        if fresh_mean < floor:
            failures.append(
                f"epoch fast path regressed: mean speedup x{fresh_mean:.1f} "
                f"fell below x{floor:.1f} (-{args.threshold:.0%} of baseline)")

    base_ratios = record_ratios(baseline)
    fresh_ratios = record_ratios(fresh)
    if base_ratios:
        shared = sorted(set(base_ratios) & set(fresh_ratios))
        if not shared:
            failures.append("baseline has record_op_wall entries but no "
                            "record/plain ratio pairs found in fresh output")
        for config in shared:
            ceiling = base_ratios[config] * (1.0 + args.record_threshold)
            print(f"recording overhead on {config}: baseline "
                  f"x{base_ratios[config]:.2f}, now x{fresh_ratios[config]:.2f} "
                  f"(ceiling x{ceiling:.2f})")
            if fresh_ratios[config] > ceiling:
                failures.append(
                    f"recording overhead regressed on {config}: "
                    f"x{fresh_ratios[config]:.2f} exceeds x{ceiling:.2f} "
                    f"(+{args.record_threshold:.0%} of baseline)")

    for failure in failures:
        print(f"BENCH GATE FAILURE: {failure}", file=sys.stderr)
    if failures:
        print("(refresh with: tools/bench_gate.py refresh <json>)", file=sys.stderr)
        return 1
    print("bench gate: OK")
    return 0


def refresh(args):
    merged = load_merged(args.json)  # validate before overwriting the baseline.
    data = {"bench": "baseline",
            "entries": [merged[key] for key in sorted(merged)]}
    try:
        with open(args.baseline, "w") as f:
            json.dump(data, f, indent=1)
            f.write("\n")
    except OSError as err:
        print(f"bench_gate: cannot write {args.baseline}: {err}", file=sys.stderr)
        sys.exit(2)
    print(f"bench_gate: baseline refreshed from {' '.join(args.json)} "
          f"-> {args.baseline}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("command", choices=["compare", "refresh"])
    parser.add_argument("json", nargs="+",
                        help="fresh BENCH_*.json file(s) to evaluate, merged")
    parser.add_argument("--baseline", default="bench/baseline.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional regression of the epoch fast path")
    parser.add_argument("--record-threshold", type=float, default=0.5,
                        help="allowed fractional growth of the record/plain "
                             "wall-clock ratio")
    args = parser.parse_args()
    sys.exit(compare(args) if args.command == "compare" else refresh(args))


if __name__ == "__main__":
    main()
