#!/usr/bin/env python3
"""Bench regression gate: compare fresh BENCH_*.json output against the
checked-in bench/baseline.json.

Three classes of metric, treated differently:

* wall-clock (``detector_check_ordered``) — the epoch fast-path kernel
  cost, the headline perf claim. Absolute ns/op depends on the machine, so
  the gate scores the *speedup* of the epoch path over the full-VC oracle
  measured in the same run (machine speed cancels) and fails when the mean
  speedup across clock widths drops more than the threshold (default 25%)
  below the baseline's.
* recording overhead (``record_op_wall``) — same machine-cancelling trick:
  the gated quantity is the ratio of the recorded config's ns/op to the
  matching unrecorded config's ns/op from the same run. Fails when the
  fresh record/off ratio exceeds the baseline ratio by more than
  --record-threshold (default 50% — threaded wall clock is noisy).
* virtual-time / wire metrics (entries named ``*_virtual`` and every
  ``bytes_per_op``) — pure simulator outputs, deterministic per seed, so
  ANY drift is a semantic change (protocol message count, clock wire
  format, event-log encoding) and fails exactly. Refresh the baseline when
  the change is intentional. ``piggyback_clock_bytes`` falls in this
  class: the delta-compressed dual-clock wire cost is a function of the
  codec alone, so its bytes/op must match the baseline exactly.
* detect batched-check speedup (``detect_check_scale``) — batched
  ``check_range`` over the sharded detector vs the legacy per-area
  ``check_access`` pattern, same run, same 10^6-area detector. Two gates:
  an ABSOLUTE floor (default 4.0x, the acceptance criterion of the
  sharded-detector redesign) applied to ``pattern=cold`` axes only (the
  production-scale claim; ``pattern=blocks64`` is reported but not floored
  — warm runs are shorter so the batch win is structurally smaller), and
  the usual relative-to-baseline mean-speedup floor shared with the epoch
  gate (machine speed cancels in both).
* shard scaling (``detect_shard_scaling``) — 8-thread contended ns/op at
  1, 2 and 8 shards from the same run. Fails when 8 shards is slower than
  2 shards by more than the slack allows (default: 8-shard throughput
  must stay >= 85% of 2-shard). Absolute within-run gate, no baseline
  needed; on few-core CI boxes more shards cannot help much, but they
  must not hurt.
* registration scaling (``detect_registration``) — amortized ns/area for
  the full registration path (PublicSegment index insert + detector
  register_area) at 16k vs 10^6 areas, same run. Fails when the large/small
  ratio exceeds the ceiling (default 10.0): a return to the O(n) sorted-
  vector insert shows up as a ratio in the hundreds, while cache effects
  on a healthy amortized path stay single-digit.

Both commands accept several JSON files (one per bench binary); their
entries are merged before comparing or refreshing.

Usage:
  tools/bench_gate.py compare build/BENCH_overhead.json build/BENCH_record_overhead.json
                              build/BENCH_detect_scale.json
                              [--baseline bench/baseline.json] [--threshold 0.25]
                              [--record-threshold 0.5] [--detect-floor 4.0]
                              [--shard-slack 0.85] [--registration-ceiling 10.0]
  tools/bench_gate.py refresh build/BENCH_overhead.json build/BENCH_record_overhead.json
                              build/BENCH_detect_scale.json
                              [--baseline bench/baseline.json]

Exit status: 0 pass, 1 regression, 2 usage/IO error.
"""

import argparse
import json
import sys


def entry_key(entry):
    return (entry["name"], tuple(sorted(entry["params"].items())))


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_gate: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    if "entries" not in data or not data["entries"]:
        print(f"bench_gate: {path} has no bench entries", file=sys.stderr)
        sys.exit(2)
    return {entry_key(e): e for e in data["entries"]}


def load_merged(paths):
    merged = {}
    for path in paths:
        for key, entry in load(path).items():
            if key in merged:
                print(f"bench_gate: duplicate entry {key[0]} {dict(key[1])} "
                      f"in {path}", file=sys.stderr)
                sys.exit(2)
            merged[key] = entry
    return merged


def is_deterministic_virtual(key):
    name, _ = key
    return name.endswith("_virtual")


def epoch_speedups(entries):
    """Per clock width n: oracle ns/op ÷ epoch ns/op from the same run."""
    by_path = {}
    for (name, params), entry in entries.items():
        if name != "detector_check_ordered":
            continue
        p = dict(params)
        by_path.setdefault(p["n"], {})[p["path"]] = entry["ns_per_op"]
    return {n: paths["oracle"] / paths["epoch"]
            for n, paths in by_path.items()
            if "oracle" in paths and "epoch" in paths and paths["epoch"] > 0}


def detect_speedups(entries):
    """Per (n, pattern): scalar ns/check ÷ batched ns/check from the same run."""
    by_axis = {}
    for (name, params), entry in entries.items():
        if name != "detect_check_scale":
            continue
        p = dict(params)
        by_axis.setdefault((p["n"], p["pattern"]), {})[p["path"]] = entry["ns_per_op"]
    return {axis: paths["scalar"] / paths["batch"]
            for axis, paths in by_axis.items()
            if paths.get("batch", 0) > 0 and "scalar" in paths}


def shard_scaling_ns(entries):
    """Contended ns/op keyed by shard count (int), from detect_shard_scaling."""
    return {int(dict(params)["shards"]): entry["ns_per_op"]
            for (name, params), entry in entries.items()
            if name == "detect_shard_scaling"}


def registration_ns(entries):
    """Registration ns/area keyed by area count (int), from detect_registration."""
    return {int(dict(params)["areas"]): entry["ns_per_op"]
            for (name, params), entry in entries.items()
            if name == "detect_registration"}


def record_ratios(entries):
    """Recorded ns/op ÷ unrecorded ns/op, per base config, from the same run."""
    by_config = {}
    for (name, params), entry in entries.items():
        if name != "record_op_wall":
            continue
        by_config[dict(params)["config"]] = entry["ns_per_op"]
    return {base: by_config[f"{base}+record"] / by_config[base]
            for base in ("off", "dual-clock")
            if by_config.get(base, 0) > 0 and f"{base}+record" in by_config}


def compare(args):
    fresh = load_merged(args.json)
    baseline = load(args.baseline)
    failures = []

    missing = [k for k in baseline if k not in fresh]
    if missing:
        for k in missing:
            failures.append(f"baseline entry disappeared: {k[0]} {dict(k[1])}")

    for key, base in baseline.items():
        if key not in fresh:
            continue
        now = fresh[key]
        name, params = key
        if is_deterministic_virtual(key):
            if now["ns_per_op"] != base["ns_per_op"]:
                failures.append(
                    f"{name} {dict(params)}: virtual ns drifted "
                    f"{base['ns_per_op']} -> {now['ns_per_op']} (deterministic metric; "
                    f"refresh the baseline if intentional)")
        if now.get("bytes_per_op", 0) != base.get("bytes_per_op", 0):
            failures.append(
                f"{name} {dict(params)}: bytes/op drifted "
                f"{base.get('bytes_per_op')} -> {now.get('bytes_per_op')} "
                f"(wire-format metric; refresh the baseline if intentional)")

    base_speedups = epoch_speedups(baseline)
    fresh_speedups = epoch_speedups(fresh)
    shared = sorted(set(base_speedups) & set(fresh_speedups), key=int)
    if not shared:
        failures.append("no epoch-vs-oracle entry pairs found to gate on")
    else:
        for n in shared:
            print(f"epoch speedup at n={n}: baseline x{base_speedups[n]:.1f}, "
                  f"now x{fresh_speedups[n]:.1f}")
        base_mean = sum(base_speedups[n] for n in shared) / len(shared)
        fresh_mean = sum(fresh_speedups[n] for n in shared) / len(shared)
        floor = base_mean * (1.0 - args.threshold)
        print(f"epoch fast path mean speedup: baseline x{base_mean:.1f}, "
              f"now x{fresh_mean:.1f} (floor x{floor:.1f})")
        if fresh_mean < floor:
            failures.append(
                f"epoch fast path regressed: mean speedup x{fresh_mean:.1f} "
                f"fell below x{floor:.1f} (-{args.threshold:.0%} of baseline)")

    base_ratios = record_ratios(baseline)
    fresh_ratios = record_ratios(fresh)
    if base_ratios:
        shared = sorted(set(base_ratios) & set(fresh_ratios))
        if not shared:
            failures.append("baseline has record_op_wall entries but no "
                            "record/plain ratio pairs found in fresh output")
        for config in shared:
            ceiling = base_ratios[config] * (1.0 + args.record_threshold)
            print(f"recording overhead on {config}: baseline "
                  f"x{base_ratios[config]:.2f}, now x{fresh_ratios[config]:.2f} "
                  f"(ceiling x{ceiling:.2f})")
            if fresh_ratios[config] > ceiling:
                failures.append(
                    f"recording overhead regressed on {config}: "
                    f"x{fresh_ratios[config]:.2f} exceeds x{ceiling:.2f} "
                    f"(+{args.record_threshold:.0%} of baseline)")

    base_detect = detect_speedups(baseline)
    fresh_detect = detect_speedups(fresh)
    if fresh_detect or base_detect:
        for axis in sorted(fresh_detect, key=lambda a: (int(a[0]), a[1])):
            n, pattern = axis
            line = (f"detect batch speedup at n={n} pattern={pattern}: "
                    f"x{fresh_detect[axis]:.1f}")
            if axis in base_detect:
                line += f" (baseline x{base_detect[axis]:.1f})"
            print(line)
        cold = {a: s for a, s in fresh_detect.items() if a[1] == "cold"}
        if not cold:
            failures.append("no detect_check_scale pattern=cold batch/scalar "
                            "pair found to gate on")
        for axis, speedup in sorted(cold.items(), key=lambda kv: int(kv[0][0])):
            if speedup < args.detect_floor:
                failures.append(
                    f"detect batched check at n={axis[0]} pattern=cold: "
                    f"x{speedup:.1f} below the x{args.detect_floor:.1f} "
                    f"absolute acceptance floor")
        shared = sorted(set(base_detect) & set(fresh_detect))
        if shared:
            base_mean = sum(base_detect[a] for a in shared) / len(shared)
            fresh_mean = sum(fresh_detect[a] for a in shared) / len(shared)
            floor = base_mean * (1.0 - args.threshold)
            print(f"detect batch mean speedup: baseline x{base_mean:.1f}, "
                  f"now x{fresh_mean:.1f} (floor x{floor:.1f})")
            if fresh_mean < floor:
                failures.append(
                    f"detect batched check regressed: mean speedup "
                    f"x{fresh_mean:.1f} fell below x{floor:.1f} "
                    f"(-{args.threshold:.0%} of baseline)")

    shards = shard_scaling_ns(fresh)
    if shards:
        if shards.get(2, 0) > 0 and 8 in shards:
            ceiling = shards[2] / args.shard_slack
            print(f"shard scaling, 8 threads contended: 2 shards "
                  f"{shards[2]:.1f} ns/op, 8 shards {shards[8]:.1f} ns/op "
                  f"(ceiling {ceiling:.1f})")
            if shards[8] > ceiling:
                failures.append(
                    f"8-shard contended throughput fell below "
                    f"{args.shard_slack:.0%} of 2-shard: {shards[8]:.1f} ns/op "
                    f"exceeds {ceiling:.1f} ns/op")
        else:
            failures.append("detect_shard_scaling entries present but the "
                            "2- and 8-shard pair needed to gate is missing")

    reg = registration_ns(fresh)
    if reg:
        small, large = min(reg), max(reg)
        if small != large and reg[small] > 0:
            ratio = reg[large] / reg[small]
            print(f"registration amortization: {small} areas "
                  f"{reg[small]:.1f} ns/area, {large} areas {reg[large]:.1f} "
                  f"ns/area (ratio x{ratio:.1f}, ceiling "
                  f"x{args.registration_ceiling:.1f})")
            if ratio > args.registration_ceiling:
                failures.append(
                    f"registration stopped amortizing: {large}-area cost is "
                    f"x{ratio:.1f} the {small}-area cost (ceiling "
                    f"x{args.registration_ceiling:.1f})")
        else:
            failures.append("detect_registration needs two distinct area "
                            "counts to gate on")

    for failure in failures:
        print(f"BENCH GATE FAILURE: {failure}", file=sys.stderr)
    if failures:
        print("(refresh with: tools/bench_gate.py refresh <json>)", file=sys.stderr)
        return 1
    print("bench gate: OK")
    return 0


def refresh(args):
    merged = load_merged(args.json)  # validate before overwriting the baseline.
    data = {"bench": "baseline",
            "entries": [merged[key] for key in sorted(merged)]}
    try:
        with open(args.baseline, "w") as f:
            json.dump(data, f, indent=1)
            f.write("\n")
    except OSError as err:
        print(f"bench_gate: cannot write {args.baseline}: {err}", file=sys.stderr)
        sys.exit(2)
    print(f"bench_gate: baseline refreshed from {' '.join(args.json)} "
          f"-> {args.baseline}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("command", choices=["compare", "refresh"])
    parser.add_argument("json", nargs="+",
                        help="fresh BENCH_*.json file(s) to evaluate, merged")
    parser.add_argument("--baseline", default="bench/baseline.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional regression of the epoch fast path")
    parser.add_argument("--record-threshold", type=float, default=0.5,
                        help="allowed fractional growth of the record/plain "
                             "wall-clock ratio")
    parser.add_argument("--detect-floor", type=float, default=4.0,
                        help="absolute minimum batched/scalar check speedup "
                             "on detect_check_scale pattern=cold axes")
    parser.add_argument("--shard-slack", type=float, default=0.85,
                        help="minimum fraction of 2-shard contended "
                             "throughput that 8 shards must retain")
    parser.add_argument("--registration-ceiling", type=float, default=10.0,
                        help="maximum large/small ns-per-area ratio for "
                             "detect_registration")
    args = parser.parse_args()
    sys.exit(compare(args) if args.command == "compare" else refresh(args))


if __name__ == "__main__":
    main()
