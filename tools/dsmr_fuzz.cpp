// dsmr_fuzz — program-space fuzzing with computable ground truth.
//
// Where dsmr_explore sweeps schedules of hand-written scenarios, dsmr_fuzz
// generates the *programs* too: each program seed yields a random
// phase-structured PGAS workload (puts/gets, signal/wait edges, collective
// phase boundaries) whose race status is decided by construction
// (src/fuzz/generate.hpp) — clean programs must stay silent on every
// schedule; always-racy planted bugs (dropped-edge, wrong-lock) must be
// flagged by both detector modes on every schedule; schedule-dependent
// planted bugs (partial-barrier, ack-window) must be flagged on at least
// one schedule, never produce clean-schedule noise, and report a measured
// manifestation rate. Every generated program runs through the full
// differential conformance grid (epoch fast path vs full-VC oracle vs live
// reports vs offline ground truth).
//
// Seed scheduling (`--schedule`): `uniform` sweeps the seed range with one
// op-mix profile; `coverage` lets a novelty bandit pick (profile, bug-kind)
// arms that keep producing unseen coverage signatures, optionally persisted
// across runs with `--corpus-dir`.
//
// Any violated invariant is minimized by the delta-debugging shrinker and
// written as a self-contained repro file that `--replay` re-runs
// bit-identically.
//
//   dsmr_fuzz [--seeds N|LO..HI] [--ranks N] [--areas N] [--phases N]
//             [--ops N] [--area-bytes N] [--profile NAME]
//             [--planted-fraction F] [--bug-kinds all|K1,K2,...]
//             [--schedule uniform|coverage] [--corpus-dir DIR]
//             [--schedule-seeds K] [--perturbations K] [--perturb-min NS]
//             [--perturb-max NS] [--threads N] [--budget-ms MS]
//             [--json FILE] [--repro-dir DIR] [--record-dir DIR]
//             [--no-shrink] [--fault PLAN]
//             [--faults PLAN;PLAN;...] [--verbose]
//   dsmr_fuzz --replay FILE [--threads N]
//   dsmr_fuzz --backend threaded|both [--thread-reps N] [--sim-seeds N]
//             [--stripes N] [--thread-timeout-ms MS] [generation flags]
//
// `--backend` selects the execution backend (default `sim`, the full
// conformance grid above). `threaded` runs each generated program on the
// real-threads backend (runtime::ThreadWorld: one OS thread per rank, the
// detector inline on the put/get path) and self-checks verdict signatures
// against the program's construction contract; `both` additionally runs
// the sim backend as the oracle and counts any clean/always-racy signature
// disagreement as a divergence (exit 1). Real schedules are not
// seeded-replayable, so kSometimes manifestation is reported
// informationally only — see docs/testing.md, "Backends". The summary
// reports inline-detector throughput (checks/sec) over the threaded runs.
//
// Exit status: 0 when every program conforms (or a --replay reproduces its
// recorded check), 1 on any disagreement (or a failed replay), 2 on usage
// errors. `--fault`/`--faults` take fault plans (net/fault.hpp: presets
// like `loss1`, `dupdelay`, `crash-restart`, `blackhole`, or the full
// `drop=PPM,...` grammar): wire-enabled plans run next to every fault-free
// schedule and are held to fault-transparency (recoverable) or
// clean-failure (unrecoverable); the `drop-live-reports` plan is the
// test-only harness hook that exercises the failure → shrink → repro loop;
// see docs/testing.md. Non-quiescent runs print the quiescence watchdog's
// stuck-task dump and exit 1 unless expected (unrecoverable plans).
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/generate.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/shrink.hpp"
#include "fuzz/thread_harness.hpp"
#include "net/fault.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

using namespace dsmr;

namespace {

int run_replay(const std::string& path, int threads) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read --replay %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  const auto repro = fuzz::parse_repro(buffer.str(), &error);
  if (!repro) {
    std::fprintf(stderr, "malformed repro %s: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  // Bit-identical round trip: the repro must re-serialize to exactly the
  // bytes on disk, so what replays is provably what was found.
  if (fuzz::serialize_repro(*repro) != buffer.str()) {
    std::fprintf(stderr, "repro %s does not round-trip byte-identically\n", path.c_str());
    return 1;
  }
  // v4: a companion ordering log must re-record byte-identically from the
  // repro's coordinate — cross-process, cross-machine.
  if (!repro->record_log.empty()) {
    const auto log_path =
        std::filesystem::path(path).parent_path() / repro->record_log;
    std::ifstream log_in(log_path, std::ios::binary);
    if (!log_in) {
      std::fprintf(stderr, "cannot read companion log %s\n", log_path.c_str());
      return 2;
    }
    std::ostringstream log_buffer;
    log_buffer << log_in.rdbuf();
    const std::string raw = log_buffer.str();
    const auto* data = reinterpret_cast<const std::byte*>(raw.data());
    const std::string mismatch = fuzz::check_repro_log(
        *repro, std::span<const std::byte>(data, raw.size()));
    if (!mismatch.empty()) {
      std::printf("companion log %s: %s\nLOG DIVERGED\n", log_path.c_str(),
                  mismatch.c_str());
      return 1;
    }
    std::printf("companion log %s: %zu bytes, re-recorded byte-identically\n",
                log_path.c_str(), raw.size());
  }
  const auto fired = fuzz::replay_repro(*repro, threads);
  std::printf("replay of %s: program_seed=%llu schedule_seed=%llu perturb=%s fault=%s "
              "manifestation=%llu/%llu\n",
              path.c_str(), static_cast<unsigned long long>(repro->program_seed),
              static_cast<unsigned long long>(repro->schedule_seed),
              repro->perturb.to_string().c_str(), repro->fault.to_string().c_str(),
              static_cast<unsigned long long>(repro->manifested),
              static_cast<unsigned long long>(repro->schedules));
  std::printf("recorded check: %s\nfired checks:  ", repro->check.c_str());
  if (fired.empty()) std::printf("(none)");
  for (const auto& name : fired) std::printf(" %s", name.c_str());
  std::printf("\n");
  const bool ok =
      std::find(fired.begin(), fired.end(), repro->check) != fired.end();
  std::printf(ok ? "REPRODUCED\n" : "NOT REPRODUCED\n");
  return ok ? 0 : 1;
}

struct FailureRecord {
  std::uint64_t program_seed = 0;
  std::string arm;
  std::string check;
  std::string detail;
  std::uint64_t schedule_seed = 0;
  sim::PerturbConfig perturb{};
  net::FaultPlan fault{};
  std::uint64_t manifested = 0;
  std::uint64_t schedules = 0;
  std::string repro_path;
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
};

/// Parses `--bug-kinds` ("all" or a comma list); exits 2 on unknown names.
std::vector<fuzz::BugKind> parse_bug_kinds_or_die(const std::string& text) {
  if (text == "all") return fuzz::all_bug_kinds();
  std::vector<fuzz::BugKind> kinds;
  std::istringstream in(text);
  std::string name;
  while (std::getline(in, name, ',')) {
    const auto kind = fuzz::parse_bug_kind(name);
    if (!kind) {
      std::fprintf(stderr, "unknown --bug-kinds entry '%s' (known: all", name.c_str());
      for (const auto known : fuzz::all_bug_kinds()) {
        std::fprintf(stderr, ",%s", fuzz::to_string(known));
      }
      std::fprintf(stderr, ")\n");
      std::exit(2);
    }
    if (std::find(kinds.begin(), kinds.end(), *kind) == kinds.end()) {
      kinds.push_back(*kind);
    }
  }
  if (kinds.empty()) {
    std::fprintf(stderr, "--bug-kinds needs 'all' or a comma list of kinds\n");
    std::exit(2);
  }
  return kinds;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv,
                "[--seeds N|LO..HI] [--ranks N] [--areas N] [--phases N] [--ops N] "
                "[--area-bytes N] [--profile mixed|write-heavy|read-heavy|lock-heavy|"
                "sync-sparse|sync-rich] [--planted-fraction F] "
                "[--bug-kinds all|dropped-edge,wrong-lock,partial-barrier,ack-window] "
                "[--schedule uniform|coverage] [--corpus-dir DIR] [--schedule-seeds K] "
                "[--perturbations K] [--perturb-min NS] [--perturb-max NS] "
                "[--threads N] [--budget-ms MS] [--json FILE] [--repro-dir DIR] "
                "[--record-dir DIR] [--no-shrink] [--exhaustive] "
                "[--explore-max-interleavings N] [--fault PLAN] "
                "[--faults PLAN;PLAN;...] "
                "[--backend sim|threaded|both] [--thread-reps N] [--sim-seeds N] "
                "[--stripes N] [--thread-timeout-ms MS] [--verbose] | "
                "--replay FILE");
  const std::string replay_path = cli.get_string("replay", "");
  const auto threads =
      static_cast<int>(cli.get_int("threads", util::ThreadPool::hardware_threads()));
  if (!replay_path.empty()) {
    cli.finish();
    return run_replay(replay_path, threads);
  }

  const auto seeds = cli.get_seed_range("seeds", util::SeedRange{1, 64});
  fuzz::GenConfig gen;
  // Profile first, explicit flags second: --phases/--ops passed alongside
  // --profile must override the profile's shape, not be overwritten by it.
  const std::string profile = cli.get_string("profile", "mixed");
  if (!fuzz::apply_profile(profile, gen)) {
    std::fprintf(stderr, "unknown --profile %s (known:", profile.c_str());
    for (const auto& name : fuzz::profile_names()) std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, ")\n");
    return 2;
  }
  gen.nprocs = static_cast<int>(cli.get_int("ranks", gen.nprocs));
  gen.areas = static_cast<int>(cli.get_int("areas", gen.areas));
  gen.phases = static_cast<int>(cli.get_int("phases", gen.phases));
  gen.max_ops_per_rank = static_cast<int>(cli.get_int("ops", gen.max_ops_per_rank));
  gen.area_bytes =
      static_cast<std::uint32_t>(cli.get_int("area-bytes", gen.area_bytes));
  double planted_fraction = cli.get_double("planted-fraction", 0.5);
  const std::string schedule_text = cli.get_string("schedule", "uniform");
  const auto schedule = fuzz::parse_schedule_mode(schedule_text);
  if (!schedule) {
    std::fprintf(stderr, "unknown --schedule %s (uniform|coverage)\n",
                 schedule_text.c_str());
    return 2;
  }
  const std::string corpus_dir = cli.get_string("corpus-dir", "");
  auto requested_kinds = parse_bug_kinds_or_die(cli.get_string("bug-kinds", "all"));
  // Drop the kinds this program shape cannot host (loudly). An explicit
  // request that leaves nothing plantable is a usage error.
  std::vector<fuzz::BugKind> bug_kinds;
  for (const auto kind : requested_kinds) {
    if (fuzz::bug_kind_eligible(gen, kind)) {
      bug_kinds.push_back(kind);
    } else {
      std::fprintf(stderr,
                   "note: bug kind %s is infeasible at %d ranks / %d areas / %d "
                   "phases; skipping it\n",
                   fuzz::to_string(kind), gen.nprocs, gen.areas, gen.phases);
    }
  }
  if (bug_kinds.empty() && planted_fraction > 0.0) {
    std::fprintf(stderr, "note: no feasible bug kinds; generating clean programs only\n");
    planted_fraction = 0.0;
  }
  const auto schedule_seeds = cli.get_uint("schedule-seeds", 3);
  const auto perturbations = cli.get_uint("perturbations", 1);
  const std::int64_t perturb_min = cli.get_int("perturb-min", 0);
  const std::int64_t perturb_max = cli.get_int("perturb-max", 4'000);
  if (perturb_min < 0 || perturb_max < 0 || perturb_min > perturb_max) {
    std::fprintf(stderr, "--perturb-min/--perturb-max must satisfy 0 <= min <= max\n");
    return 2;
  }
  const auto budget_ms = cli.get_int("budget-ms", 0);
  const std::string json_path = cli.get_string("json", "");
  const std::string repro_dir = cli.get_string("repro-dir", "");
  const std::string record_dir = cli.get_string("record-dir", "");
  const bool no_shrink = cli.get_flag("no-shrink");
  // Arm the exhaustive-exploration invariant per program (explore/dpor.hpp):
  // programs inside the size gate (<= 3 ranks, <= 8 non-tick ops/rank) get
  // their full reduced interleaving space checked on top of the sampled
  // grid. Note dsmr_fuzz's default --ranks 4 leaves everything over the
  // gate — pass --ranks 3 (or 2) for the invariant to bite.
  const bool exhaustive = cli.get_flag("exhaustive");
  const auto explore_cap = cli.get_uint("explore-max-interleavings", 1u << 20);
  // --fault takes one plan (back-compatible with the old none|drop-live-
  // reports modes via the plan parser's aliases); --faults a ';'-list.
  // Both feed the same fault axis and may be combined.
  std::vector<net::FaultPlan> fault_plans;
  std::string fault_error;
  const std::string fault_text = cli.get_string("fault", "none");
  const auto single_plan = net::parse_fault_plan(fault_text, &fault_error);
  if (!single_plan) {
    std::fprintf(stderr, "bad --fault '%s': %s\n", fault_text.c_str(),
                 fault_error.c_str());
    return 2;
  }
  if (!(*single_plan == net::FaultPlan{})) fault_plans.push_back(*single_plan);
  const std::string faults_text = cli.get_string("faults", "");
  if (!faults_text.empty()) {
    const auto list = net::parse_fault_plan_list(faults_text, &fault_error);
    if (!list) {
      std::fprintf(stderr, "bad --faults '%s': %s\n", faults_text.c_str(),
                   fault_error.c_str());
      return 2;
    }
    fault_plans.insert(fault_plans.end(), list->begin(), list->end());
  }
  const bool drop_live_armed =
      std::any_of(fault_plans.begin(), fault_plans.end(),
                  [](const net::FaultPlan& p) { return p.drop_live_reports; });
  const std::string backend = cli.get_string("backend", "sim");
  const auto thread_reps = static_cast<int>(cli.get_int("thread-reps", 3));
  const auto sim_seeds = cli.get_uint("sim-seeds", 2);
  const auto stripes = static_cast<int>(cli.get_int("stripes", 8));
  const auto thread_timeout_ms = cli.get_int("thread-timeout-ms", 10'000);
  if (backend != "sim" && backend != "threaded" && backend != "both") {
    std::fprintf(stderr, "unknown --backend %s (sim|threaded|both)\n", backend.c_str());
    return 2;
  }
  if (thread_reps <= 0 || stripes <= 0 || thread_timeout_ms <= 0) {
    std::fprintf(stderr,
                 "--thread-reps, --stripes and --thread-timeout-ms must be positive\n");
    return 2;
  }
  const bool verbose = cli.get_flag("verbose");
  cli.finish();

  if (backend != "sim") {
    fuzz::ThreadSweepConfig tsweep;
    tsweep.base = gen;
    tsweep.seeds = seeds;
    tsweep.planted_fraction = planted_fraction;
    tsweep.bug_kinds = bug_kinds;
    tsweep.verbose = verbose;
    tsweep.diff.thread_reps = thread_reps;
    tsweep.diff.sim_schedule_seeds = sim_seeds;
    tsweep.diff.compare_sim = backend == "both";
    tsweep.diff.thread.stripes = stripes;
    tsweep.diff.thread.timeout = std::chrono::milliseconds(thread_timeout_ms);

    const auto start = std::chrono::steady_clock::now();
    std::printf("--- dsmr_fuzz --backend %s: seeds [%llu..%llu], profile %s, %d "
                "threaded rep(s) × %d rank-thread(s)%s ---\n",
                backend.c_str(), static_cast<unsigned long long>(seeds.first),
                static_cast<unsigned long long>(seeds.first + seeds.count - 1),
                profile.c_str(), thread_reps, gen.nprocs,
                backend == "both"
                    ? (", sim oracle with " + std::to_string(sim_seeds) + " seed(s)")
                          .c_str()
                    : "");
    const auto result = fuzz::run_thread_sweep(tsweep);
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();

    for (const auto& divergence : result.divergences) {
      std::printf("DIVERGENCE s%llu [%s]: %s\n",
                  static_cast<unsigned long long>(divergence.program_seed),
                  divergence.arm.c_str(), divergence.failure.c_str());
    }
    util::Table table({"programs", "clean", "racy", "sometimes", "thread-runs",
                       "manifested", "sim-runs", "divergences", "checks",
                       "checks/sec", "ms"});
    table.add_row({util::Table::fmt_int(result.programs),
                   util::Table::fmt_int(result.clean_programs),
                   util::Table::fmt_int(result.racy_programs),
                   util::Table::fmt_int(result.sometimes_programs),
                   util::Table::fmt_int(result.thread_runs),
                   util::Table::fmt_int(result.thread_manifested),
                   util::Table::fmt_int(result.sim_runs),
                   util::Table::fmt_int(result.divergences.size()),
                   util::Table::fmt_int(result.checks),
                   util::Table::fmt(result.checks_per_sec(), 0),
                   util::Table::fmt_int(static_cast<std::uint64_t>(ms))});
    std::printf("%s", table.render().c_str());
    std::printf("inline detector: %llu checks over %d rank-thread(s), %.0f checks/sec\n",
                static_cast<unsigned long long>(result.checks), gen.nprocs,
                result.checks_per_sec());

    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "cannot write --json %s\n", json_path.c_str());
        return 2;
      }
      out << "{\"tool\":\"dsmr_fuzz\",\"backend\":\"" << trace::json_escape(backend)
          << "\",\"first_seed\":" << seeds.first << ",\"seed_count\":" << seeds.count
          << ",\"ranks\":" << gen.nprocs << ",\"thread_reps\":" << thread_reps
          << ",\"programs\":" << result.programs << ",\"clean\":" << result.clean_programs
          << ",\"racy\":" << result.racy_programs
          << ",\"sometimes\":" << result.sometimes_programs
          << ",\"thread_runs\":" << result.thread_runs
          << ",\"thread_manifested\":" << result.thread_manifested
          << ",\"sim_runs\":" << result.sim_runs
          << ",\"sim_manifested\":" << result.sim_manifested
          << ",\"checks\":" << result.checks
          << ",\"checks_per_sec\":" << result.checks_per_sec()
          << ",\"elapsed_ms\":" << ms
          << ",\"divergences\":" << result.divergences.size()
          << ",\"passed\":" << (result.divergences.empty() ? "true" : "false") << "}\n";
      std::printf("wrote %s\n", json_path.c_str());
    }

    if (!result.divergences.empty()) {
      std::printf("BACKEND DIVERGENCE: %zu signature disagreement(s) between the "
                  "threaded backend and its contract/oracle (docs/testing.md)\n",
                  result.divergences.size());
      return 1;
    }
    std::printf("all %llu generated program(s) agree across backends\n",
                static_cast<unsigned long long>(result.programs));
    return 0;
  }

  fuzz::FuzzSweepConfig sweep;
  sweep.base = gen;
  sweep.profile = profile;
  sweep.mode = *schedule;
  sweep.seeds = seeds;
  sweep.planted_fraction = planted_fraction;
  sweep.bug_kinds = bug_kinds;
  sweep.threads = threads;
  sweep.verbose = verbose;
  sweep.corpus_dir = corpus_dir;
  sweep.record_dir = record_dir;
  sweep.check.schedule_seeds = schedule_seeds;
  sweep.check.exhaustive = exhaustive;
  sweep.check.exhaustive_max_interleavings = explore_cap;
  // Parallelism lives on the *program* axis (the independent one); each
  // program's own grid runs serially on its worker.
  sweep.check.threads = 1;
  sweep.check.fault_plans = fault_plans;
  // Same semantics as dsmr_explore: K extra salted variants on top of the
  // always-present base schedule.
  sweep.check.perturbations =
      sim::perturb_variants(static_cast<sim::Time>(perturb_min),
                            static_cast<sim::Time>(perturb_max), perturbations);

  const auto start = std::chrono::steady_clock::now();
  auto elapsed_ms = [&start]() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  if (budget_ms > 0) {
    sweep.out_of_budget = [&elapsed_ms, budget_ms]() { return elapsed_ms() >= budget_ms; };
  }

  std::printf("--- dsmr_fuzz: seeds [%llu..%llu], profile %s, schedule %s, %llu "
              "schedule seed(s) × %zu variant(s), %d thread(s)%s ---\n",
              static_cast<unsigned long long>(seeds.first),
              static_cast<unsigned long long>(seeds.first + seeds.count - 1),
              profile.c_str(), fuzz::to_string(*schedule),
              static_cast<unsigned long long>(schedule_seeds),
              sweep.check.perturbations.size(), threads,
              fault_plans.empty() ? "" : " [FAULT INJECTION ON]");
  for (const auto& plan : fault_plans) {
    std::printf("fault plan: %s (%s)\n", plan.to_string().c_str(),
                plan.wire_enabled()
                    ? (plan.recoverable() ? "recoverable" : "unrecoverable")
                    : "harness hook");
  }

  const auto result = fuzz::run_fuzz_sweep(sweep);

  std::vector<FailureRecord> failures;
  for (const auto& outcome : result.outcomes) {
    if (!outcome.ran) continue;  // past the budget cut.
    if (verbose) {
      std::printf("s%llu [%s] %s\n",
                  static_cast<unsigned long long>(outcome.program_seed),
                  outcome.arm.c_str(), outcome.rendered.c_str());
    }
    if (outcome.failures.empty()) continue;

    // Re-parse the failing program from its canonical text (the sweep keeps
    // it: under coverage scheduling the arm, not just the seed, determined
    // the generation), then minimize the first failure and write its repro.
    std::string parse_error;
    const auto program = fuzz::parse_program(outcome.program_text, &parse_error);
    if (!program) {
      std::fprintf(stderr, "internal: failing program does not re-parse: %s\n",
                   parse_error.c_str());
      return 2;
    }
    const auto& first = outcome.failures.front();
    FailureRecord record;
    record.program_seed = outcome.program_seed;
    record.arm = outcome.arm;
    record.check = fuzz::check_name(first.check);
    record.detail = first.detail.empty() ? first.check : first.detail;
    record.schedule_seed = first.seed;
    record.perturb = first.perturb;
    // The *failing run's* plan, so the repro carries the full (seed,
    // perturbation, fault-plan) coordinate. The detector-silence hook is
    // grid-global, so it must ride along even when the failing run itself
    // was fault-free.
    record.fault = first.fault;
    if (drop_live_armed) record.fault.drop_live_reports = true;
    record.manifested = outcome.manifested;
    record.schedules = outcome.completed;
    record.ops_before = program->op_count();

    fuzz::Repro repro;
    repro.check = record.check;
    repro.fault = record.fault;
    repro.program_seed = outcome.program_seed;
    repro.schedule_seed = first.seed;
    repro.perturb = first.perturb;
    repro.manifested = outcome.manifested;
    repro.schedules = outcome.completed;
    repro.program = *program;

    // Grid-level generator indictments (see fuzz/harness.cpp) degenerate
    // under single-coordinate minimization: keep those programs intact.
    const bool shrinkable = record.check != "planted-race-vanished" &&
                            record.check != "sometimes-bug-never-manifested";
    if (!no_shrink && shrinkable) {
      fuzz::FuzzCheckOptions one = sweep.check;
      one.first_schedule_seed = first.seed;
      one.schedule_seeds = 1;
      one.perturbations = {first.perturb};
      // Minimize under exactly the repro's coordinate — only the failing
      // run's plan (plus the global hook folded into it above), not the
      // whole sweep's plan list.
      one.fault_plans.clear();
      if (!(record.fault == net::FaultPlan{})) one.fault_plans.push_back(record.fault);
      const auto still_fails = [&one, &record](const fuzz::Program& candidate) {
        const auto v = fuzz::check_program(candidate, one);
        for (const auto& failure : v.failures) {
          if (fuzz::check_name(failure.check) == record.check) return true;
        }
        return false;
      };
      const auto shrunk = fuzz::shrink_program(*program, still_fails);
      repro.program = shrunk.program;
      repro.shrunk = shrunk.changed;
    }
    record.ops_after = repro.program.op_count();

    if (!repro_dir.empty()) {
      std::filesystem::create_directories(repro_dir);
      const std::string stem =
          "fuzz-s" + std::to_string(outcome.program_seed) + "-" + record.check;
      // With --record-dir on, pair the repro with the ordering log of its
      // exact (shrunk program, seed, perturbation, fault) coordinate; the
      // pair replays byte-identically cross-process (`--replay` verifies).
      if (!record_dir.empty()) {
        const auto bytes =
            fuzz::record_coordinate(repro.program, repro.program_seed,
                                    repro.schedule_seed, repro.perturb, repro.fault);
        repro.record_log = stem + ".dsmrlog";
        const std::string log_path = repro_dir + "/" + repro.record_log;
        std::ofstream log_out(log_path, std::ios::binary);
        log_out.write(reinterpret_cast<const char*>(bytes.data()),
                      static_cast<std::streamsize>(bytes.size()));
        if (!log_out.good()) {
          std::fprintf(stderr, "cannot write recorded log %s\n", log_path.c_str());
          return 2;
        }
      }
      record.repro_path = repro_dir + "/" + stem + ".repro";
      std::ofstream out(record.repro_path);
      out << fuzz::serialize_repro(repro);
      if (!out.good()) {
        std::fprintf(stderr, "cannot write repro %s\n", record.repro_path.c_str());
        return 2;
      }
    }
    std::printf("FAILURE s%llu [%s]: %s (seed=%llu perturb=%s fault=%s, %zu -> %zu "
                "ops%s%s)\n",
                static_cast<unsigned long long>(outcome.program_seed),
                outcome.arm.c_str(), record.check.c_str(),
                static_cast<unsigned long long>(record.schedule_seed),
                record.perturb.to_string().c_str(), record.fault.to_string().c_str(),
                record.ops_before, record.ops_after,
                record.repro_path.empty() ? "" : ", repro: ",
                record.repro_path.c_str());
    // Surface the quiescence watchdog's stuck-task dump right next to the
    // failure it explains (unexpected-deadlock, fault-not-recovered, ...).
    if (record.detail.rfind("watchdog:", 0) == 0) {
      std::printf("%s\n", record.detail.c_str());
    }
    failures.push_back(std::move(record));
  }

  if (!record_dir.empty()) {
    std::printf("recorded %llu ordering log(s) under %s\n",
                static_cast<unsigned long long>(result.recorded_logs),
                record_dir.c_str());
  }
  util::Table table({"programs", "planted", "clean", "schedules", "fault-runs",
                     "watchdog", "signatures", "failures", "ms"});
  table.add_row({util::Table::fmt_int(result.programs),
                 util::Table::fmt_int(result.planted), util::Table::fmt_int(result.clean),
                 util::Table::fmt_int(result.schedules),
                 util::Table::fmt_int(result.fault_runs),
                 util::Table::fmt_int(result.watchdog_runs),
                 util::Table::fmt_int(result.distinct_signatures),
                 util::Table::fmt_int(failures.size()),
                 util::Table::fmt_int(static_cast<std::uint64_t>(elapsed_ms()))});
  std::printf("%s", table.render().c_str());

  // The taxonomy table: bug kind → programs, manifestation, failures.
  util::Table kinds_table(
      {"kind", "programs", "manifested", "mean-rate", "failures"});
  for (const auto& [kind, stats] : result.kinds) {
    kinds_table.add_row({kind, util::Table::fmt_int(stats.programs),
                         util::Table::fmt_int(stats.manifested_programs),
                         util::Table::fmt(stats.mean_manifestation(), 3),
                         util::Table::fmt_int(stats.failures)});
  }
  std::printf("%s", kinds_table.render().c_str());
  if (!corpus_dir.empty()) {
    std::printf("corpus: %llu new signature(s) appended to %s/signatures.tsv\n",
                static_cast<unsigned long long>(result.corpus_new), corpus_dir.c_str());
  }
  if (result.budget_hit) {
    std::printf("stopped at --budget-ms %lld after %llu program(s)\n",
                static_cast<long long>(budget_ms),
                static_cast<unsigned long long>(result.programs));
  }
  if (exhaustive) {
    std::printf("exhaustive: %llu program(s) explored (%llu interleavings), "
                "%llu over the size gate\n",
                static_cast<unsigned long long>(result.explored_programs),
                static_cast<unsigned long long>(result.explored_interleavings),
                static_cast<unsigned long long>(result.explore_skipped_programs));
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write --json %s\n", json_path.c_str());
      return 2;
    }
    out << "{\"tool\":\"dsmr_fuzz\",\"first_seed\":" << seeds.first
        << ",\"seed_count\":" << seeds.count << ",\"profile\":\""
        << trace::json_escape(profile) << "\",\"schedule\":\""
        << fuzz::to_string(*schedule) << "\",\"ranks\":" << gen.nprocs
        << ",\"schedule_seeds\":" << schedule_seeds
        << ",\"variants\":" << sweep.check.perturbations.size() << ",\"faults\":\"";
    for (std::size_t i = 0; i < fault_plans.size(); ++i) {
      out << (i > 0 ? "; " : "") << trace::json_escape(fault_plans[i].to_string());
    }
    out << "\",\"programs\":" << result.programs << ",\"planted\":" << result.planted
        << ",\"clean\":" << result.clean << ",\"schedules\":" << result.schedules
        << ",\"fault_runs\":" << result.fault_runs
        << ",\"watchdog_runs\":" << result.watchdog_runs
        << ",\"explored_programs\":" << result.explored_programs
        << ",\"explore_skipped\":" << result.explore_skipped_programs
        << ",\"explored_interleavings\":" << result.explored_interleavings
        << ",\"signatures\":" << result.distinct_signatures
        << ",\"corpus_new\":" << result.corpus_new << ",\"elapsed_ms\":" << elapsed_ms()
        << ",\"budget_hit\":" << (result.budget_hit ? "true" : "false")
        << ",\"passed\":" << (failures.empty() ? "true" : "false") << ",\"kinds\":[";
    bool first_kind = true;
    for (const auto& [kind, stats] : result.kinds) {
      if (!first_kind) out << ",";
      first_kind = false;
      out << "{\"kind\":\"" << trace::json_escape(kind)
          << "\",\"programs\":" << stats.programs
          << ",\"manifested_programs\":" << stats.manifested_programs
          << ",\"manifested_runs\":" << stats.manifested_runs
          << ",\"completed_runs\":" << stats.completed_runs
          << ",\"mean_manifestation\":" << stats.mean_manifestation()
          << ",\"failures\":" << stats.failures << "}";
    }
    out << "],\"failures\":[";
    for (std::size_t i = 0; i < failures.size(); ++i) {
      const auto& f = failures[i];
      if (i > 0) out << ",";
      out << "{\"program_seed\":" << f.program_seed << ",\"arm\":\""
          << trace::json_escape(f.arm) << "\",\"check\":\""
          << trace::json_escape(f.check) << "\",\"detail\":\""
          << trace::json_escape(f.detail) << "\",\"schedule_seed\":" << f.schedule_seed
          << ",\"perturb\":\"" << trace::json_escape(f.perturb.to_string())
          << "\",\"fault\":\"" << trace::json_escape(f.fault.to_string())
          << "\",\"manifested\":" << f.manifested << ",\"schedules\":" << f.schedules
          << ",\"ops_before\":" << f.ops_before << ",\"ops_after\":" << f.ops_after
          << ",\"repro\":\"" << trace::json_escape(f.repro_path) << "\"}";
    }
    out << "]}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!failures.empty()) {
    std::printf("FUZZ FAILURE: %zu program(s) violated an invariant — replay any "
                "repro with --replay (docs/testing.md)\n",
                failures.size());
    return 1;
  }
  std::printf("all %llu generated program(s) conformant\n",
              static_cast<unsigned long long>(result.programs));
  return 0;
}
