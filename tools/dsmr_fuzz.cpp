// dsmr_fuzz — program-space fuzzing with computable ground truth.
//
// Where dsmr_explore sweeps schedules of hand-written scenarios, dsmr_fuzz
// generates the *programs* too: each program seed yields a random barrier-
// phased PGAS workload whose race status is decided by construction
// (src/fuzz/generate.hpp) — clean programs must stay silent on every
// schedule, planted-bug programs must be flagged by both detector modes on
// every schedule. Every generated program runs through the full
// differential conformance grid (epoch fast path vs full-VC oracle vs live
// reports vs offline ground truth).
//
// Any violated invariant is minimized by the delta-debugging shrinker and
// written as a self-contained repro file that `--replay` re-runs
// bit-identically.
//
//   dsmr_fuzz [--seeds N|LO..HI] [--ranks N] [--areas N] [--phases N]
//             [--ops N] [--area-bytes N] [--profile NAME]
//             [--planted-fraction F] [--schedule-seeds K]
//             [--perturbations K] [--perturb-min NS] [--perturb-max NS]
//             [--threads N] [--budget-ms MS] [--json FILE]
//             [--repro-dir DIR] [--no-shrink] [--fault MODE] [--verbose]
//   dsmr_fuzz --replay FILE [--threads N]
//
// Exit status: 0 when every program conforms (or a --replay reproduces its
// recorded check), 1 on any disagreement (or a failed replay), 2 on usage
// errors. `--fault` (test-only) injects a deliberate harness fault to
// exercise the failure → shrink → repro loop; see docs/testing.md.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/generate.hpp"
#include "fuzz/harness.hpp"
#include "fuzz/shrink.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

using namespace dsmr;

namespace {

/// Deterministic planted/clean decision per program seed: a seed hash
/// compared against the planted fraction, independent of generation order.
bool plant_for_seed(std::uint64_t program_seed, double planted_fraction) {
  const auto hash = util::SplitMix64(program_seed ^ 0x5eedf00dULL).next();
  return static_cast<double>(hash >> 11) * 0x1.0p-53 < planted_fraction;
}

int run_replay(const std::string& path, int threads) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read --replay %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  const auto repro = fuzz::parse_repro(buffer.str(), &error);
  if (!repro) {
    std::fprintf(stderr, "malformed repro %s: %s\n", path.c_str(), error.c_str());
    return 2;
  }
  // Bit-identical round trip: the repro must re-serialize to exactly the
  // bytes on disk, so what replays is provably what was found.
  if (fuzz::serialize_repro(*repro) != buffer.str()) {
    std::fprintf(stderr, "repro %s does not round-trip byte-identically\n", path.c_str());
    return 1;
  }
  const auto fired = fuzz::replay_repro(*repro, threads);
  std::printf("replay of %s: program_seed=%llu schedule_seed=%llu perturb=%s fault=%s\n",
              path.c_str(), static_cast<unsigned long long>(repro->program_seed),
              static_cast<unsigned long long>(repro->schedule_seed),
              repro->perturb.to_string().c_str(), fuzz::to_string(repro->fault));
  std::printf("recorded check: %s\nfired checks:  ", repro->check.c_str());
  if (fired.empty()) std::printf("(none)");
  for (const auto& name : fired) std::printf(" %s", name.c_str());
  std::printf("\n");
  const bool ok =
      std::find(fired.begin(), fired.end(), repro->check) != fired.end();
  std::printf(ok ? "REPRODUCED\n" : "NOT REPRODUCED\n");
  return ok ? 0 : 1;
}

struct FailureRecord {
  std::uint64_t program_seed = 0;
  std::string check;
  std::string detail;
  std::uint64_t schedule_seed = 0;
  sim::PerturbConfig perturb{};
  std::string repro_path;
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv,
                "[--seeds N|LO..HI] [--ranks N] [--areas N] [--phases N] [--ops N] "
                "[--area-bytes N] [--profile mixed|write-heavy|read-heavy|lock-heavy|"
                "sync-sparse] [--planted-fraction F] [--schedule-seeds K] "
                "[--perturbations K] [--perturb-min NS] [--perturb-max NS] "
                "[--threads N] [--budget-ms MS] [--json FILE] [--repro-dir DIR] "
                "[--no-shrink] [--fault none|drop-live-reports] [--verbose] | "
                "--replay FILE");
  const std::string replay_path = cli.get_string("replay", "");
  const auto threads =
      static_cast<int>(cli.get_int("threads", util::ThreadPool::hardware_threads()));
  if (!replay_path.empty()) {
    cli.finish();
    return run_replay(replay_path, threads);
  }

  const auto seeds = cli.get_seed_range("seeds", util::SeedRange{1, 64});
  fuzz::GenConfig gen;
  // Profile first, explicit flags second: --phases/--ops passed alongside
  // --profile must override the profile's shape, not be overwritten by it.
  const std::string profile = cli.get_string("profile", "mixed");
  if (!fuzz::apply_profile(profile, gen)) {
    std::fprintf(stderr, "unknown --profile %s (known:", profile.c_str());
    for (const auto& name : fuzz::profile_names()) std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, ")\n");
    return 2;
  }
  gen.nprocs = static_cast<int>(cli.get_int("ranks", gen.nprocs));
  gen.areas = static_cast<int>(cli.get_int("areas", gen.areas));
  gen.phases = static_cast<int>(cli.get_int("phases", gen.phases));
  gen.max_ops_per_rank = static_cast<int>(cli.get_int("ops", gen.max_ops_per_rank));
  gen.area_bytes =
      static_cast<std::uint32_t>(cli.get_int("area-bytes", gen.area_bytes));
  double planted_fraction = cli.get_double("planted-fraction", 0.5);
  if (gen.nprocs < 3 && planted_fraction > 0.0) {
    // A planted pair needs an uninvolved home rank (fuzz/generate.hpp).
    std::fprintf(stderr,
                 "note: --ranks %d < 3 cannot host planted bugs; generating "
                 "clean programs only\n",
                 gen.nprocs);
    planted_fraction = 0.0;
  }
  const auto schedule_seeds = cli.get_uint("schedule-seeds", 3);
  const auto perturbations = cli.get_uint("perturbations", 1);
  const std::int64_t perturb_min = cli.get_int("perturb-min", 0);
  const std::int64_t perturb_max = cli.get_int("perturb-max", 4'000);
  if (perturb_min < 0 || perturb_max < 0 || perturb_min > perturb_max) {
    std::fprintf(stderr, "--perturb-min/--perturb-max must satisfy 0 <= min <= max\n");
    return 2;
  }
  const auto budget_ms = cli.get_int("budget-ms", 0);
  const std::string json_path = cli.get_string("json", "");
  const std::string repro_dir = cli.get_string("repro-dir", "");
  const bool no_shrink = cli.get_flag("no-shrink");
  const std::string fault_text = cli.get_string("fault", "none");
  const auto fault = fuzz::parse_fault(fault_text);
  if (!fault) {
    std::fprintf(stderr, "unknown --fault %s (none|drop-live-reports)\n",
                 fault_text.c_str());
    return 2;
  }
  const bool verbose = cli.get_flag("verbose");
  cli.finish();

  fuzz::FuzzCheckOptions check;
  check.schedule_seeds = schedule_seeds;
  // Parallelism lives on the *program* axis below (the independent one);
  // each program's own grid runs serially on its worker.
  check.threads = 1;
  check.fault = *fault;
  // Same semantics as dsmr_explore: K extra salted variants on top of the
  // always-present base schedule.
  check.perturbations =
      sim::perturb_variants(static_cast<sim::Time>(perturb_min),
                            static_cast<sim::Time>(perturb_max), perturbations);

  std::printf("--- dsmr_fuzz: seeds [%llu..%llu], profile %s, %llu schedule seed(s) × "
              "%zu variant(s), %d thread(s)%s ---\n",
              static_cast<unsigned long long>(seeds.first),
              static_cast<unsigned long long>(seeds.first + seeds.count - 1),
              profile.c_str(), static_cast<unsigned long long>(schedule_seeds),
              check.perturbations.size(), threads,
              *fault == fuzz::Fault::kNone ? "" : " [FAULT INJECTION ON]");

  const auto start = std::chrono::steady_clock::now();
  auto elapsed_ms = [&start]() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  std::uint64_t programs = 0, planted = 0, clean = 0, schedules = 0;
  bool budget_hit = false;
  std::vector<FailureRecord> failures;

  // Fan out over the program axis — programs are fully independent — on one
  // pool for the whole run, in chunks so the wall-clock budget stays
  // responsive. Each job writes its pre-assigned slot; everything below the
  // sweep folds in seed order, so output and repros are deterministic.
  struct ProgramOutcome {
    bool ran = false;
    bool planted = false;
    std::uint64_t schedules = 0;
    std::size_t ops = 0;
    std::string rendered;  ///< report text (verbose only).
    std::vector<analysis::Divergence> failures;
  };
  std::vector<ProgramOutcome> outcomes(seeds.count);
  {
    util::ThreadPool pool(threads);
    const std::uint64_t chunk =
        std::max<std::uint64_t>(static_cast<std::uint64_t>(threads) * 4, 1);
    for (std::uint64_t next = 0; next < seeds.count; next += chunk) {
      if (budget_ms > 0 && elapsed_ms() >= budget_ms) {
        budget_hit = true;
        break;
      }
      const std::uint64_t end = std::min(seeds.count, next + chunk);
      for (std::uint64_t offset = next; offset < end; ++offset) {
        pool.submit([offset, &outcomes, &seeds, &gen, &check, planted_fraction,
                     verbose] {
          const std::uint64_t program_seed = seeds.first + offset;
          fuzz::GenConfig job_gen = gen;
          job_gen.seed = program_seed;
          job_gen.plant_bug = plant_for_seed(program_seed, planted_fraction);
          const auto program = fuzz::generate_program(job_gen);
          fuzz::FuzzCheckOptions job_check = check;
          job_check.scenario_name = "fuzz-s" + std::to_string(program_seed);
          const auto verdict = fuzz::check_program(program, job_check);

          auto& out = outcomes[offset];
          out.ran = true;
          out.planted = job_gen.plant_bug;
          out.schedules = verdict.report.runs.size();
          out.ops = program.op_count();
          if (verbose) {
            out.rendered = std::string(fuzz::to_string(program.expect)) + ": " +
                           verdict.report.render();
          }
          out.failures = verdict.failures;
        });
      }
      pool.wait_idle();
    }
  }

  for (std::uint64_t offset = 0; offset < seeds.count; ++offset) {
    const auto& outcome = outcomes[offset];
    if (!outcome.ran) continue;  // past the budget cut.
    const std::uint64_t program_seed = seeds.first + offset;
    ++programs;
    (outcome.planted ? planted : clean) += 1;
    schedules += outcome.schedules;
    if (verbose) {
      std::printf("s%llu %s\n", static_cast<unsigned long long>(program_seed),
                  outcome.rendered.c_str());
    }
    if (outcome.failures.empty()) continue;

    // Regenerate the failing program (generation is deterministic and
    // cheap), then minimize the first failure and write its repro.
    gen.seed = program_seed;
    gen.plant_bug = plant_for_seed(program_seed, planted_fraction);
    const auto program = fuzz::generate_program(gen);
    const auto& first = outcome.failures.front();
    FailureRecord record;
    record.program_seed = program_seed;
    record.check = fuzz::check_name(first.check);
    record.detail = first.detail.empty() ? first.check : first.detail;
    record.schedule_seed = first.seed;
    record.perturb = first.perturb;
    record.ops_before = program.op_count();

    fuzz::Repro repro;
    repro.check = record.check;
    repro.fault = *fault;
    repro.program_seed = program_seed;
    repro.schedule_seed = first.seed;
    repro.perturb = first.perturb;
    repro.program = program;

    // planted-race-vanished indicts the generated program as a whole (see
    // fuzz/harness.cpp): minimizing it would degenerate, so keep it intact.
    const bool shrinkable = record.check != "planted-race-vanished";
    if (!no_shrink && shrinkable) {
      fuzz::FuzzCheckOptions one = check;
      one.first_schedule_seed = first.seed;
      one.schedule_seeds = 1;
      one.perturbations = {first.perturb};
      const auto still_fails = [&one, &record](const fuzz::Program& candidate) {
        const auto v = fuzz::check_program(candidate, one);
        for (const auto& failure : v.failures) {
          if (fuzz::check_name(failure.check) == record.check) return true;
        }
        return false;
      };
      const auto shrunk = fuzz::shrink_program(program, still_fails);
      repro.program = shrunk.program;
      repro.shrunk = shrunk.changed;
    }
    record.ops_after = repro.program.op_count();

    if (!repro_dir.empty()) {
      std::filesystem::create_directories(repro_dir);
      record.repro_path = repro_dir + "/fuzz-s" + std::to_string(program_seed) + "-" +
                          record.check + ".repro";
      std::ofstream out(record.repro_path);
      out << fuzz::serialize_repro(repro);
      if (!out.good()) {
        std::fprintf(stderr, "cannot write repro %s\n", record.repro_path.c_str());
        return 2;
      }
    }
    std::printf("FAILURE s%llu: %s (seed=%llu perturb=%s, %zu -> %zu ops%s%s)\n",
                static_cast<unsigned long long>(program_seed), record.check.c_str(),
                static_cast<unsigned long long>(record.schedule_seed),
                record.perturb.to_string().c_str(), record.ops_before, record.ops_after,
                record.repro_path.empty() ? "" : ", repro: ",
                record.repro_path.c_str());
    failures.push_back(std::move(record));
  }

  util::Table table({"programs", "planted", "clean", "schedules", "failures", "ms"});
  table.add_row({util::Table::fmt_int(programs), util::Table::fmt_int(planted),
                 util::Table::fmt_int(clean), util::Table::fmt_int(schedules),
                 util::Table::fmt_int(failures.size()),
                 util::Table::fmt_int(static_cast<std::uint64_t>(elapsed_ms()))});
  std::printf("%s", table.render().c_str());
  if (budget_hit) {
    std::printf("stopped at --budget-ms %lld after %llu program(s)\n",
                static_cast<long long>(budget_ms),
                static_cast<unsigned long long>(programs));
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write --json %s\n", json_path.c_str());
      return 2;
    }
    out << "{\"tool\":\"dsmr_fuzz\",\"first_seed\":" << seeds.first
        << ",\"seed_count\":" << seeds.count << ",\"profile\":\""
        << trace::json_escape(profile) << "\",\"ranks\":" << gen.nprocs
        << ",\"schedule_seeds\":" << schedule_seeds
        << ",\"variants\":" << check.perturbations.size()
        << ",\"fault\":\"" << fuzz::to_string(*fault) << "\",\"programs\":" << programs
        << ",\"planted\":" << planted << ",\"clean\":" << clean
        << ",\"schedules\":" << schedules << ",\"elapsed_ms\":" << elapsed_ms()
        << ",\"budget_hit\":" << (budget_hit ? "true" : "false")
        << ",\"passed\":" << (failures.empty() ? "true" : "false") << ",\"failures\":[";
    for (std::size_t i = 0; i < failures.size(); ++i) {
      const auto& f = failures[i];
      if (i > 0) out << ",";
      out << "{\"program_seed\":" << f.program_seed << ",\"check\":\""
          << trace::json_escape(f.check) << "\",\"detail\":\""
          << trace::json_escape(f.detail) << "\",\"schedule_seed\":" << f.schedule_seed
          << ",\"perturb\":\"" << trace::json_escape(f.perturb.to_string())
          << "\",\"ops_before\":" << f.ops_before << ",\"ops_after\":" << f.ops_after
          << ",\"repro\":\"" << trace::json_escape(f.repro_path) << "\"}";
    }
    out << "]}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!failures.empty()) {
    std::printf("FUZZ FAILURE: %zu program(s) violated an invariant — replay any "
                "repro with --replay (docs/testing.md)\n",
                failures.size());
    return 1;
  }
  std::printf("all %llu generated program(s) conformant\n",
              static_cast<unsigned long long>(programs));
  return 0;
}
