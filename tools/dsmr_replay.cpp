// dsmr_replay: the offline half of record/replay (ROADMAP item 3).
//
// Takes a recorded ordering log (record/log.hpp) and, entirely offline:
//
//  * verifies integrity and prints the structured diagnostic on corrupt,
//    truncated or version-mismatched input (exit 2 — the log is disk input,
//    never trusted);
//  * folds the event stream through the full detector (`replay_fold`) and
//    prints the re-derived verdicts — by default at the recorded mode, or at
//    a stronger one via --mode (the production story: record at `off`, fold
//    at `dual`);
//  * checks the fold against the embedded live-verdict footer
//    (`check_record_replay`) and exits 1 on divergence;
//  * renders a traffic ledger (events and payload bytes per event kind) and,
//    on request, a JSONL event dump and a chrome://tracing view of the
//    recorded total order.
//
//   dsmr_replay --log FILE [--mode header|off|single|dual] [--json FILE]
//               [--trace-jsonl FILE] [--trace-chrome FILE] [--quiet]
//
// Exit status: 0 verdicts reproduced, 1 fold diverges from the footer,
// 2 unreadable/corrupt log or usage error.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "record/log.hpp"
#include "record/replay.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

using namespace dsmr;

namespace {

/// Payload bytes an event carries (the `c` field of data-moving kinds).
std::uint64_t payload_bytes(const record::Event& event) {
  switch (event.kind) {
    case record::EventKind::kPutApply:
    case record::EventKind::kGetApply:
    case record::EventKind::kThreadPut:
    case record::EventKind::kThreadGet:
      return event.c;
    default:
      return 0;
  }
}

void write_trace_jsonl(std::ofstream& out, const record::Log& log) {
  std::size_t index = 0;
  for (const auto& event : log.events) {
    out << "{\"i\":" << index++ << ",\"kind\":\""
        << record::to_string(event.kind) << "\",\"a\":" << event.a
        << ",\"b\":" << event.b << ",\"c\":" << event.c << ",\"d\":" << event.d
        << "}\n";
  }
}

/// One instant event per log entry, one chrome://tracing track per rank, in
/// recorded total order (timestamps are the event index — the log carries
/// ordering, not wall time).
void write_trace_chrome(std::ofstream& out, const record::Log& log) {
  out << "[";
  std::size_t index = 0;
  for (const auto& event : log.events) {
    if (index > 0) out << ",\n ";
    std::string name = record::to_string(event.kind);
    if (event.b < log.areas.size() &&
        event.kind != record::EventKind::kSignal &&
        event.kind != record::EventKind::kWaitMatch &&
        event.kind != record::EventKind::kTick) {
      name += " " + log.areas[event.b].name;
    }
    out << "{\"name\":\"" << trace::json_escape(name)
        << "\",\"ph\":\"X\",\"ts\":" << index << ",\"dur\":1,\"pid\":0,\"tid\":"
        << event.a << ",\"args\":{\"b\":" << event.b << ",\"c\":" << event.c
        << ",\"d\":" << event.d << "}}";
    ++index;
  }
  out << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv,
                "--log FILE [--mode header|off|single|dual] [--json FILE] "
                "[--trace-jsonl FILE] [--trace-chrome FILE] [--quiet]");
  const std::string path = cli.get_string("log", "");
  const std::string mode_text = cli.get_string("mode", "header");
  const std::string json_path = cli.get_string("json", "");
  const std::string jsonl_path = cli.get_string("trace-jsonl", "");
  const std::string chrome_path = cli.get_string("trace-chrome", "");
  const bool quiet = cli.get_flag("quiet");
  cli.finish();
  if (path.empty()) {
    std::fprintf(stderr, "dsmr_replay needs --log FILE\n");
    return 2;
  }

  std::string error;
  const auto bytes = record::read_file(path, &error);
  if (!bytes) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  const auto log = record::Log::parse(*bytes, &error);
  if (!log) {
    // The structured diagnostic ([truncated], [bad-magic], [bad-version],
    // [checksum-mismatch], ...) is the contract for corrupt input.
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return 2;
  }

  core::DetectorMode fold_mode = log->header.mode;
  if (mode_text == "off") {
    fold_mode = core::DetectorMode::kOff;
  } else if (mode_text == "single") {
    fold_mode = core::DetectorMode::kSingleClock;
  } else if (mode_text == "dual") {
    fold_mode = core::DetectorMode::kDualClock;
  } else if (mode_text != "header") {
    std::fprintf(stderr, "unknown --mode %s (header|off|single|dual)\n",
                 mode_text.c_str());
    return 2;
  }

  std::printf("--- dsmr_replay: %s ---\n", path.c_str());
  std::printf("recorded: backend=%s nprocs=%u mode=%s handoff=%d ack=%d, "
              "%zu area(s), %zu event(s)\n",
              record::to_string(log->header.backend).c_str(),
              log->header.nprocs, core::to_string(log->header.mode),
              log->header.lock_clock_handoff ? 1 : 0,
              log->header.acked_puts ? 1 : 0, log->areas.size(),
              log->events.size());
  for (const auto& [key, value] : log->metadata) {
    if (quiet) break;
    // Multi-line values (program text) indent under their key.
    if (value.find('\n') == std::string::npos) {
      std::printf("meta %s: %s\n", key.c_str(), value.c_str());
    } else {
      std::printf("meta %s: (%zu bytes)\n", key.c_str(), value.size());
    }
  }

  // Traffic ledger: the wire-equivalent cost of the recorded run, straight
  // from the ordering stream.
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> ledger;
  std::uint64_t total_bytes = 0;
  for (const auto& event : log->events) {
    auto& [count, event_bytes] = ledger[record::to_string(event.kind)];
    ++count;
    event_bytes += payload_bytes(event);
    total_bytes += payload_bytes(event);
  }
  util::Table table({"kind", "events", "payload-bytes"});
  for (const auto& [kind, stats] : ledger) {
    table.add_row({kind, util::Table::fmt_int(stats.first),
                   util::Table::fmt_int(stats.second)});
  }
  table.add_row({"total", util::Table::fmt_int(log->events.size()),
                 util::Table::fmt_int(total_bytes)});
  std::printf("%s", table.render().c_str());

  // The fold: re-derive verdicts offline at the selected detector mode.
  const record::ReplayResult folded = record::replay_fold(*log, fold_mode);
  if (!folded.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), folded.error.c_str());
    return 2;
  }
  std::printf("fold at mode=%s: %llu event(s), %llu check(s), %zu race "
              "report(s)\n",
              core::to_string(fold_mode),
              static_cast<unsigned long long>(folded.events),
              static_cast<unsigned long long>(folded.checks),
              folded.reports.size());
  if (!quiet) {
    for (const auto& race : folded.signature.races) {
      std::printf("race: area %s rank=%d %s x%llu\n",
                  race.area < log->areas.size()
                      ? log->areas[race.area].name.c_str()
                      : std::to_string(race.area).c_str(),
                  race.accessor, core::to_string(race.kind),
                  static_cast<unsigned long long>(race.count));
    }
  }
  std::printf("verdict: %s\n", folded.signature.to_string().c_str());
  std::printf("footer:  %s\n", log->live.to_string().c_str());

  if (!jsonl_path.empty()) {
    std::ofstream out(jsonl_path);
    if (!out) {
      std::fprintf(stderr, "cannot write --trace-jsonl %s\n", jsonl_path.c_str());
      return 2;
    }
    write_trace_jsonl(out, *log);
    std::printf("wrote %s\n", jsonl_path.c_str());
  }
  if (!chrome_path.empty()) {
    std::ofstream out(chrome_path);
    if (!out) {
      std::fprintf(stderr, "cannot write --trace-chrome %s\n", chrome_path.c_str());
      return 2;
    }
    write_trace_chrome(out, *log);
    std::printf("wrote %s\n", chrome_path.c_str());
  }

  // The divergence gate: fold at the RECORDED mode must reproduce the
  // embedded live footer bit-for-bit, whatever --mode was used for display.
  const std::string divergence = record::check_record_replay(*log);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write --json %s\n", json_path.c_str());
      return 2;
    }
    out << "{\"tool\":\"dsmr_replay\",\"log\":\"" << trace::json_escape(path)
        << "\",\"backend\":\"" << record::to_string(log->header.backend)
        << "\",\"nprocs\":" << log->header.nprocs << ",\"recorded_mode\":\""
        << core::to_string(log->header.mode) << "\",\"fold_mode\":\""
        << core::to_string(fold_mode) << "\",\"events\":" << log->events.size()
        << ",\"checks\":" << folded.checks
        << ",\"payload_bytes\":" << total_bytes
        << ",\"races\":" << folded.signature.races.size()
        << ",\"completed\":" << (log->live.completed ? "true" : "false")
        << ",\"diverged\":" << (divergence.empty() ? "false" : "true") << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!divergence.empty()) {
    std::printf("DIVERGENCE: %s\n", divergence.c_str());
    return 1;
  }
  std::printf("replay reproduces the recorded verdicts\n");
  return 0;
}
