// EXPERIMENTS: CLAIM-V.B — "a process can perform a reduction ... without
// any participation for the other processes, by fetching the data remotely."
//
// Compares the future-work one-sided reduction against the conventional
// collective allreduce: virtual completion time, messages, and who has to
// participate. The one-sided version loads only the root; the collective
// involves everyone but synchronizes as a side effect.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "pgas/collectives.hpp"
#include "util/assert.hpp"

namespace dsmr::bench {
namespace {

using mem::GlobalAddress;
using runtime::Process;
using runtime::World;

struct ReduceCosts {
  double virtual_ns = 0;
  double messages = 0;
  double data_messages = 0;
};

ReduceCosts measure_onesided(int nprocs) {
  auto config = world_config(nprocs, core::DetectorMode::kDualClock,
                             core::Transport::kHomeSide);
  config.latency.jitter_ns = 0;
  World world(config);
  std::vector<GlobalAddress> cells;
  for (Rank r = 0; r < nprocs; ++r) cells.push_back(world.alloc(r, 8, "c"));

  sim::Time reduce_time = 0;
  for (Rank r = 0; r < nprocs; ++r) {
    world.spawn(r, [cells, r, &reduce_time, &world](Process& p) -> sim::Task {
      pgas::Team team(p);
      co_await p.put_value(cells[static_cast<std::size_t>(r)],
                           static_cast<std::uint64_t>(r));
      co_await team.barrier();
      if (p.rank() == 0) {
        world.reset_traffic();  // measure only the reduction itself.
        const sim::Time start = p.now();
        co_await pgas::onesided_reduce(
            p, cells, std::uint64_t{0},
            [](std::uint64_t a, std::uint64_t b) { return a + b; });
        reduce_time = p.now() - start;
      }
    });
  }
  DSMR_CHECK(world.run().completed);
  return {static_cast<double>(reduce_time),
          static_cast<double>(world.traffic().total_messages),
          static_cast<double>(world.traffic().data_path_messages)};
}

ReduceCosts measure_collective(int nprocs) {
  auto config = world_config(nprocs, core::DetectorMode::kDualClock,
                             core::Transport::kHomeSide);
  config.latency.jitter_ns = 0;
  World world(config);
  sim::Time reduce_time = 0;
  for (Rank r = 0; r < nprocs; ++r) {
    world.spawn(r, [r, &reduce_time, &world](Process& p) -> sim::Task {
      pgas::Team team(p);
      co_await team.barrier();
      if (p.rank() == 0) world.reset_traffic();
      const sim::Time start = p.now();
      co_await team.allreduce(static_cast<std::uint64_t>(r),
                              [](std::uint64_t a, std::uint64_t b) { return a + b; });
      if (p.rank() == 0) reduce_time = p.now() - start;
    });
  }
  DSMR_CHECK(world.run().completed);
  return {static_cast<double>(reduce_time),
          static_cast<double>(world.traffic().total_messages),
          static_cast<double>(world.traffic().data_path_messages)};
}

void BM_OneSidedReduce(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  ReduceCosts costs;
  for (auto _ : state) costs = measure_onesided(nprocs);
  state.counters["virtual_ns"] = costs.virtual_ns;
  state.counters["messages"] = costs.messages;
}
BENCHMARK(BM_OneSidedReduce)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->ArgName("n");

void BM_CollectiveAllreduce(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  ReduceCosts costs;
  for (auto _ : state) costs = measure_collective(nprocs);
  state.counters["virtual_ns"] = costs.virtual_ns;
  state.counters["messages"] = costs.messages;
}
BENCHMARK(BM_CollectiveAllreduce)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->ArgName("n");

void print_summary() {
  util::Table table({"n procs", "one-sided ns", "msgs", "collective ns", "msgs",
                     "one-sided/collective"});
  for (const int n : {2, 4, 8, 16, 32}) {
    const auto onesided = measure_onesided(n);
    const auto collective = measure_collective(n);
    table.add_row({util::Table::fmt_int(static_cast<std::uint64_t>(n)),
                   util::Table::fmt(onesided.virtual_ns, 0),
                   util::Table::fmt(onesided.messages, 0),
                   util::Table::fmt(collective.virtual_ns, 0),
                   util::Table::fmt(collective.messages, 0),
                   util::Table::fmt(onesided.virtual_ns / collective.virtual_ns, 2)});
  }
  print_table(
      "=== CLAIM-V.B: one-sided (non-collective) reduction vs allreduce ===\n"
      "one-sided: root fetches serially, O(n) root-side latency, targets idle;\n"
      "collective: O(log n) critical path, everyone participates",
      table);
}

}  // namespace
}  // namespace dsmr::bench

int main(int argc, char** argv) {
  dsmr::bench::init_json(&argc, argv, "reduction");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dsmr::bench::print_summary();
  dsmr::bench::write_json();
  return 0;
}
