// EXPERIMENTS: CLAIM-IV.C — "the size of the vector clocks must be at
// least n [Charron-Bost]. As a consequence, the size of the clocks cannot
// be reduced."
//
// The ablation: recompute ground truth with clocks truncated to k < n
// components. Projection preserves domination, so truncation produces only
// false negatives; the table shows how many genuine races become invisible
// at each width — empirically, full width n is required to see them all.
#include <benchmark/benchmark.h>

#include "analysis/ground_truth.hpp"
#include "bench_common.hpp"
#include "util/assert.hpp"
#include "workload/workloads.hpp"

namespace dsmr::bench {
namespace {

using runtime::World;

struct SweepResult {
  std::uint64_t truth = 0;
  std::vector<analysis::TruncationPoint> points;
};

SweepResult run_sweep(int nprocs, std::uint64_t seed) {
  auto config = world_config(nprocs, core::DetectorMode::kDualClock,
                             core::Transport::kHomeSide, seed);
  World world(config);
  workload::RandomConfig wl;
  wl.areas = std::max(2, nprocs / 2);
  wl.ops_per_proc = 30;
  wl.write_fraction = 0.7;
  wl.seed = seed * 131;
  workload::spawn_random(world, wl);
  DSMR_CHECK(world.run().completed);
  SweepResult result;
  result.truth = analysis::compute_ground_truth(world.events()).pairs.size();
  result.points =
      analysis::truncation_sweep(world.events(), static_cast<std::size_t>(nprocs));
  return result;
}

void BM_TruncationSweep(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto result = run_sweep(nprocs, 42);
    benchmark::DoNotOptimize(result.points.data());
  }
}
BENCHMARK(BM_TruncationSweep)->Arg(4)->Arg(8)->Arg(16)->ArgName("n");

void print_summary() {
  for (const int nprocs : {4, 8, 16}) {
    // Aggregate over several seeds so the trend is not one schedule's luck.
    std::vector<std::uint64_t> detected(static_cast<std::size_t>(nprocs), 0);
    std::uint64_t truth_total = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const auto result = run_sweep(nprocs, seed);
      truth_total += result.truth;
      for (std::size_t k = 0; k < result.points.size(); ++k) {
        detected[k] += result.points[k].detected;
      }
    }
    util::Table table({"clock width k", "races detected", "missed", "detection rate",
                       "wire B/clock"});
    for (std::size_t k = 0; k < detected.size(); ++k) {
      // The wire cost a width-k clock would pay under the compact encoding
      // (zero-history lower bound: one varint per component).
      const auto wire_bytes = clocks::VectorClock(k + 1).wire_size();
      table.add_row({util::Table::fmt_int(k + 1), util::Table::fmt_int(detected[k]),
                     util::Table::fmt_int(truth_total - detected[k]),
                     util::Table::fmt(truth_total == 0
                                          ? 1.0
                                          : static_cast<double>(detected[k]) /
                                                static_cast<double>(truth_total),
                                      3),
                     util::Table::fmt_int(wire_bytes)});
      json_add("truncation_sweep",
               {{"n", std::to_string(nprocs)}, {"k", std::to_string(k + 1)}},
               static_cast<double>(detected[k]), static_cast<double>(wire_bytes));
    }
    print_table("=== CLAIM-IV.C: races visible with width-k clocks (n=" +
                    std::to_string(nprocs) + ", 5 seeds) ===",
                table);
  }
}

}  // namespace
}  // namespace dsmr::bench

int main(int argc, char** argv) {
  dsmr::bench::init_json(&argc, argv, "clock_size");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dsmr::bench::print_summary();
  dsmr::bench::write_json();
  return 0;
}
