// EXPERIMENTS: CLAIM-IV.D (dual-clock refinement) and BASE (lockset
// comparison).
//
// Quantifies, against the offline ground truth:
//  * the dual-clock detector: precision 1.0 by construction, pairwise
//    recall < 1 (only the latest access is compared), area recall;
//  * the single-clock ablation: read-read false positives (the paper's
//    §IV.D motivation) and its read false negatives (V absorbs knowledge
//    W never saw — see EXPERIMENTS.md);
//  * the Eraser-style lockset baseline: flags locking-discipline violations
//    — false positives on message-/barrier-synchronized programs.
#include <benchmark/benchmark.h>

#include "analysis/ground_truth.hpp"
#include "baseline/lockset.hpp"
#include "bench_common.hpp"
#include "util/assert.hpp"
#include "workload/workloads.hpp"

namespace dsmr::bench {
namespace {

using runtime::World;

struct QualityRow {
  std::string workload;
  std::uint64_t truth_pairs = 0;
  double dual_precision = 0, dual_recall = 0, dual_area_recall = 0;
  std::uint64_t single_fp = 0, single_fn = 0;
  std::uint64_t lockset_flags = 0;
  bool lockset_fp = false;
};

template <typename SpawnFn>
QualityRow measure(const std::string& name, int nprocs, std::uint64_t seed,
                   SpawnFn spawn) {
  auto config = world_config(nprocs, core::DetectorMode::kDualClock,
                             core::Transport::kHomeSide, seed);
  World world(config);
  spawn(world);
  DSMR_CHECK(world.run().completed);

  QualityRow row;
  row.workload = name;
  const auto truth = analysis::compute_ground_truth(world.events());
  row.truth_pairs = truth.pairs.size();

  const auto acc = analysis::evaluate(world.events(), world.races());
  row.dual_precision = acc.precision();
  row.dual_recall = acc.pair_recall();
  row.dual_area_recall = acc.area_recall();

  const auto single =
      analysis::replay_online(world.events(), core::DetectorMode::kSingleClock);
  const auto dual =
      analysis::replay_online(world.events(), core::DetectorMode::kDualClock);
  for (const auto& pair : single.pairs) {
    if (truth.pairs.count(pair) == 0) ++row.single_fp;
  }
  for (const auto& pair : dual.pairs) {
    if (single.pairs.count(pair) == 0) ++row.single_fn;  // dual caught, single blind.
  }

  const auto lockset = baseline::LocksetDetector::analyze(world.events());
  row.lockset_flags = lockset.warnings.size();
  row.lockset_fp = row.truth_pairs == 0 && !lockset.warnings.empty();
  return row;
}

std::vector<QualityRow> all_rows() {
  std::vector<QualityRow> rows;
  rows.push_back(measure("random write-heavy", 6, 21, [](World& world) {
    workload::RandomConfig wl;
    wl.areas = 4;
    wl.ops_per_proc = 40;
    wl.write_fraction = 0.7;
    workload::spawn_random(world, wl);
  }));
  rows.push_back(measure("random read-heavy", 6, 22, [](World& world) {
    workload::RandomConfig wl;
    wl.areas = 4;
    wl.ops_per_proc = 40;
    wl.write_fraction = 0.1;
    workload::spawn_random(world, wl);
  }));
  rows.push_back(measure("master/worker (benign)", 5, 23, [](World& world) {
    workload::MasterWorkerConfig wl;
    wl.tasks_per_worker = 4;
    workload::spawn_master_worker(world, wl);
  }));
  rows.push_back(measure("stencil correct", 4, 24, [](World& world) {
    workload::StencilConfig wl;
    wl.cells_per_rank = 8;
    wl.iters = 4;
    workload::spawn_stencil(world, wl);
  }));
  rows.push_back(measure("stencil buggy", 4, 25, [](World& world) {
    workload::StencilConfig wl;
    wl.cells_per_rank = 8;
    wl.iters = 4;
    wl.buggy = true;
    workload::spawn_stencil(world, wl);
  }));
  rows.push_back(measure("histogram locked", 4, 26, [](World& world) {
    workload::HistogramConfig wl;
    wl.bins = 6;
    wl.increments_per_rank = 25;
    wl.locked = true;
    workload::spawn_histogram(world, wl);
  }));
  rows.push_back(measure("histogram unlocked", 4, 27, [](World& world) {
    workload::HistogramConfig wl;
    wl.bins = 6;
    wl.increments_per_rank = 25;
    workload::spawn_histogram(world, wl);
  }));
  rows.push_back(measure("pipeline (msg-ordered)", 4, 28, [](World& world) {
    workload::PipelineConfig wl;
    wl.tokens = 8;
    workload::spawn_pipeline(world, wl);
  }));
  return rows;
}

void BM_QualitySweep(benchmark::State& state) {
  for (auto _ : state) {
    const auto rows = all_rows();
    benchmark::DoNotOptimize(rows.data());
  }
}
BENCHMARK(BM_QualitySweep);

void print_summary() {
  util::Table table({"workload", "true races", "dual prec", "dual recall",
                     "area recall", "single FP", "single FN", "lockset flags"});
  for (const auto& row : all_rows()) {
    std::string lockset = util::Table::fmt_int(row.lockset_flags);
    if (row.lockset_fp) lockset += " (FP)";
    table.add_row({row.workload, util::Table::fmt_int(row.truth_pairs),
                   util::Table::fmt(row.dual_precision, 2),
                   util::Table::fmt(row.dual_recall, 2),
                   util::Table::fmt(row.dual_area_recall, 2),
                   util::Table::fmt_int(row.single_fp),
                   util::Table::fmt_int(row.single_fn), lockset});
  }
  print_table(
      "=== CLAIM-IV.D + BASE: detection quality vs offline ground truth ===\n"
      "dual = the paper's V+W detector; single = one-clock ablation;\n"
      "lockset = Eraser-style baseline (flags discipline, not causality)",
      table);
}

}  // namespace
}  // namespace dsmr::bench

int main(int argc, char** argv) {
  dsmr::bench::init_json(&argc, argv, "precision");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dsmr::bench::print_summary();
  dsmr::bench::write_json();
  return 0;
}
