// EXPERIMENTS: FIG3 — "a put operation is delayed until the end of the get
// operation on the same data" — and the NIC lock manager under load.
//
// Measures (a) the delay imposed on a put landing during an in-flight get
// as a function of the transfer size (the Fig. 3 semantics made
// quantitative), and (b) lock-manager behaviour when many ranks hammer one
// hot area.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "util/assert.hpp"

namespace dsmr::bench {
namespace {

using mem::GlobalAddress;
using runtime::Process;
using runtime::World;

/// Returns (put completion delay beyond its uncontended cost, get duration)
/// when a SMALL (8-byte) put lands while a `size`-byte get response is in
/// flight. The put message arrives at the home in a couple of µs; the get
/// holds the area lock until its transfer completes, so the put's delay is
/// essentially the remaining transfer time — the Fig. 3 semantics.
struct Fig3Point {
  double put_delay_ns = 0;
  double get_ns = 0;
};

Fig3Point measure_fig3(std::uint32_t size) {
  auto config = world_config(3, core::DetectorMode::kOff, core::Transport::kHomeSide);
  config.latency.jitter_ns = 0;
  config.segment_bytes = size + 4096;

  // Uncontended 8-byte put cost first.
  sim::Time solo_put = 0;
  {
    World world(config);
    const GlobalAddress x = world.alloc(1, size, "x");
    world.spawn(0, [x, &solo_put](Process& p) -> sim::Task {
      const sim::Time start = p.now();
      co_await p.put_value(x, std::uint64_t{1});
      solo_put = p.now() - start;
    });
    DSMR_CHECK(world.run().completed);
  }

  World world(config);
  const GlobalAddress x = world.alloc(1, size, "x");
  sim::Time put_cost = 0, get_cost = 0;
  world.spawn(2, [x, size, &get_cost](Process& p) -> sim::Task {
    const sim::Time start = p.now();
    co_await p.get(x, size);
    get_cost = p.now() - start;
  });
  world.spawn(0, [x, &put_cost](Process& p) -> sim::Task {
    co_await p.sleep(5'000);  // land inside the get's transfer window.
    const sim::Time start = p.now();
    co_await p.put_value(x, std::uint64_t{2});
    put_cost = p.now() - start;
  });
  DSMR_CHECK(world.run().completed);
  return {static_cast<double>(put_cost) - static_cast<double>(solo_put),
          static_cast<double>(get_cost)};
}

void BM_Fig3Delay(benchmark::State& state) {
  const auto size = static_cast<std::uint32_t>(state.range(0));
  Fig3Point point;
  for (auto _ : state) point = measure_fig3(size);
  state.counters["put_delay_ns"] = point.put_delay_ns;
}
BENCHMARK(BM_Fig3Delay)->Arg(4096)->Arg(65536)->Arg(1 << 20)->ArgName("bytes");

/// Hot-area stress: every rank does locked increments on one counter.
struct ContentionPoint {
  double virtual_ns_per_op = 0;
  std::uint64_t contended = 0;
  std::uint64_t max_queue = 0;
};

ContentionPoint measure_contention(int nprocs) {
  auto config = world_config(nprocs, core::DetectorMode::kDualClock,
                             core::Transport::kHomeSide);
  config.latency.jitter_ns = 0;
  World world(config);
  const GlobalAddress counter = world.alloc(0, 8, "hot");
  constexpr int kOpsPerRank = 10;
  for (Rank r = 0; r < nprocs; ++r) {
    world.spawn(r, [counter](Process& p) -> sim::Task {
      for (int i = 0; i < kOpsPerRank; ++i) {
        co_await p.lock(counter);
        const auto v = co_await p.get_value<std::uint64_t>(counter);
        co_await p.put_value(counter, v + 1);
        co_await p.unlock(counter);
      }
    });
  }
  const auto report = world.run();
  DSMR_CHECK(report.completed);
  DSMR_CHECK(world.races().count() == 0);
  ContentionPoint point;
  point.virtual_ns_per_op = static_cast<double>(report.end_time) /
                            (static_cast<double>(nprocs) * kOpsPerRank);
  point.contended = world.nic(0).locks().stats().contended;
  point.max_queue = world.nic(0).locks().stats().max_queue;
  return point;
}

void BM_HotLock(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  ContentionPoint point;
  for (auto _ : state) point = measure_contention(nprocs);
  state.counters["virt_ns_per_op"] = point.virtual_ns_per_op;
  state.counters["max_queue"] = static_cast<double>(point.max_queue);
}
BENCHMARK(BM_HotLock)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->ArgName("n");

void print_summary() {
  {
    util::Table table({"get transfer bytes", "get ns", "put delay ns", "delayed?"});
    for (const std::uint32_t size : {4096u, 65536u, 262144u, 1048576u}) {
      const auto point = measure_fig3(size);
      table.add_row({util::Table::fmt_int(size), util::Table::fmt(point.get_ns, 0),
                     util::Table::fmt(point.put_delay_ns, 0),
                     point.put_delay_ns > 0 ? "yes (Fig. 3)" : "no"});
    }
    print_table(
        "=== FIG3: a put landing mid-get waits for the transfer to finish ===",
        table);
  }
  {
    util::Table table({"n procs", "virtual ns/op", "contended acquires", "max queue"});
    for (const int n : {2, 4, 8, 16}) {
      const auto point = measure_contention(n);
      table.add_row({util::Table::fmt_int(static_cast<std::uint64_t>(n)),
                     util::Table::fmt(point.virtual_ns_per_op, 0),
                     util::Table::fmt_int(point.contended),
                     util::Table::fmt_int(point.max_queue)});
    }
    print_table("=== NIC lock manager under hot-area contention (locked RMW) ===",
                table);
  }
}

}  // namespace
}  // namespace dsmr::bench

int main(int argc, char** argv) {
  dsmr::bench::init_json(&argc, argv, "lock_contention");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dsmr::bench::print_summary();
  dsmr::bench::write_json();
  return 0;
}
