// EXPERIMENTS: FIG4, FIG5a, FIG5b, FIG5c.
//
// Re-runs each worked figure of the paper as a simulation, asserts the
// paper's verdict, and reports the scenario's simulated duration and wire
// traffic. The google-benchmark timings measure the simulator's wall-clock
// cost per scenario.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "util/assert.hpp"

namespace dsmr::bench {
namespace {

using mem::GlobalAddress;
using runtime::Process;
using runtime::World;

struct ScenarioOutcome {
  std::uint64_t races = 0;
  sim::Time virtual_ns = 0;
  std::uint64_t messages = 0;
};

ScenarioOutcome run_fig4() {
  World world(world_config(3, core::DetectorMode::kDualClock, core::Transport::kHomeSide));
  const GlobalAddress a = world.alloc(1, 8, "a");
  world.spawn(0, [a](Process& p) -> sim::Task { co_await p.get(a, 8); });
  world.spawn(2, [a](Process& p) -> sim::Task {
    co_await p.sleep(10'000);
    co_await p.get(a, 8);
  });
  const auto report = world.run();
  DSMR_CHECK(report.completed);
  return {report.race_count, report.end_time, world.traffic().total_messages};
}

ScenarioOutcome run_fig5a() {
  World world(world_config(3, core::DetectorMode::kDualClock, core::Transport::kHomeSide));
  const GlobalAddress x = world.alloc(1, 8, "x");
  world.spawn(0, [x](Process& p) -> sim::Task {
    co_await p.put_value(x, std::uint64_t{1});
  });
  world.spawn(2, [x](Process& p) -> sim::Task {
    co_await p.sleep(20'000);
    co_await p.put_value(x, std::uint64_t{2});
  });
  const auto report = world.run();
  DSMR_CHECK(report.completed);
  return {report.race_count, report.end_time, world.traffic().total_messages};
}

ScenarioOutcome run_fig5b() {
  World world(world_config(3, core::DetectorMode::kDualClock, core::Transport::kHomeSide));
  const GlobalAddress a = world.alloc(0, 8, "a");
  world.spawn(1, [a](Process& p) -> sim::Task {
    co_await p.get(a, 8);
    p.signal(2, 1);
  });
  world.spawn(2, [a](Process& p) -> sim::Task {
    co_await p.wait_signal(1);
    co_await p.put_value(a, std::uint64_t{'B'});
  });
  const auto report = world.run();
  DSMR_CHECK(report.completed);
  return {report.race_count, report.end_time, world.traffic().total_messages};
}

ScenarioOutcome run_fig5c() {
  auto config = world_config(4, core::DetectorMode::kDualClock, core::Transport::kHomeSide);
  config.acked_puts = false;  // the paper's pure one-sided puts (DESIGN.md §4).
  World world(config);
  const GlobalAddress x = world.alloc(1, 8, "x");
  const GlobalAddress y = world.alloc(2, 8, "y");
  const GlobalAddress z = world.alloc(3, 8, "z");
  world.spawn(0, [x, y](Process& p) -> sim::Task {
    co_await p.put_value(x, std::uint64_t{1});
    co_await p.put_value(y, std::uint64_t{2});
    p.signal(2, 1);
  });
  world.spawn(2, [z](Process& p) -> sim::Task {
    co_await p.wait_signal(1);
    co_await p.put_value(z, std::uint64_t{3});
    p.signal(3, 2);
  });
  world.spawn(3, [x](Process& p) -> sim::Task {
    co_await p.wait_signal(2);
    co_await p.put_value(x, std::uint64_t{4});
  });
  const auto report = world.run();
  DSMR_CHECK(report.completed);
  return {report.race_count, report.end_time, world.traffic().total_messages};
}

void BM_Fig4(benchmark::State& state) {
  ScenarioOutcome outcome;
  for (auto _ : state) outcome = run_fig4();
  state.counters["races"] = static_cast<double>(outcome.races);
  state.counters["virtual_ns"] = static_cast<double>(outcome.virtual_ns);
}
BENCHMARK(BM_Fig4);

void BM_Fig5a(benchmark::State& state) {
  ScenarioOutcome outcome;
  for (auto _ : state) outcome = run_fig5a();
  state.counters["races"] = static_cast<double>(outcome.races);
  state.counters["virtual_ns"] = static_cast<double>(outcome.virtual_ns);
}
BENCHMARK(BM_Fig5a);

void BM_Fig5b(benchmark::State& state) {
  ScenarioOutcome outcome;
  for (auto _ : state) outcome = run_fig5b();
  state.counters["races"] = static_cast<double>(outcome.races);
  state.counters["virtual_ns"] = static_cast<double>(outcome.virtual_ns);
}
BENCHMARK(BM_Fig5b);

void BM_Fig5c(benchmark::State& state) {
  ScenarioOutcome outcome;
  for (auto _ : state) outcome = run_fig5c();
  state.counters["races"] = static_cast<double>(outcome.races);
  state.counters["virtual_ns"] = static_cast<double>(outcome.virtual_ns);
}
BENCHMARK(BM_Fig5c);

void print_summary() {
  util::Table table({"figure", "paper verdict", "measured races", "verdict match",
                     "virtual ns", "messages"});
  struct Row {
    const char* name;
    const char* expected;
    bool expect_race;
    ScenarioOutcome outcome;
  };
  const Row rows[] = {
      {"Fig 4 (2 concurrent gets)", "no race", false, run_fig4()},
      {"Fig 5a (m1 x m2 puts)", "race", true, run_fig5a()},
      {"Fig 5b (get -> chained put)", "no race", false, run_fig5b()},
      {"Fig 5c (m1 x m4, async puts)", "race", true, run_fig5c()},
  };
  bool all_match = true;
  for (const auto& row : rows) {
    const bool match = (row.outcome.races > 0) == row.expect_race;
    all_match &= match;
    table.add_row({row.name, row.expected, util::Table::fmt_int(row.outcome.races),
                   match ? "YES" : "NO",
                   util::Table::fmt_int(row.outcome.virtual_ns),
                   util::Table::fmt_int(row.outcome.messages)});
  }
  print_table("=== Paper figures 4, 5a-5c: detection verdicts ===", table);
  DSMR_CHECK_MSG(all_match, "a figure verdict diverged from the paper");
}

}  // namespace
}  // namespace dsmr::bench

int main(int argc, char** argv) {
  dsmr::bench::init_json(&argc, argv, "scenarios");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dsmr::bench::print_summary();
  dsmr::bench::write_json();
  return 0;
}
