// Shared helpers for the benchmark binaries.
//
// Every bench prints (a) a paper-style table of the simulated metrics it
// reproduces — virtual latencies, message counts, detection quality — and
// (b) google-benchmark wall-clock timings of the simulator itself. The
// table is the artifact matching EXPERIMENTS.md; the timings document the
// tool's own cost.
// With `--json`, each bench additionally writes BENCH_<name>.json — a
// machine-readable record (name, params, ns/op, bytes/op per entry) so the
// performance trajectory stays comparable across PRs.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/rules.hpp"

#include "runtime/process.hpp"
#include "runtime/world.hpp"
#include "util/stats.hpp"

namespace dsmr::bench {

inline runtime::WorldConfig world_config(int nprocs, core::DetectorMode mode,
                                         core::Transport transport,
                                         std::uint64_t seed = 1) {
  runtime::WorldConfig config;
  config.nprocs = nprocs;
  config.mode = mode;
  config.transport = transport;
  config.seed = seed;
  return config;
}

inline const char* mode_name(core::DetectorMode mode) { return core::to_string(mode); }
inline const char* transport_name(core::Transport t) { return core::to_string(t); }

/// Emits a titled table to stdout.
inline void print_table(const std::string& title, const util::Table& table) {
  std::printf("\n%s\n%s", title.c_str(), table.render().c_str());
  std::fflush(stdout);
}

// ---------------------------------------------------------------------------
// Machine-readable output (--json).
// ---------------------------------------------------------------------------

/// Collects benchmark entries and, when enabled, writes BENCH_<name>.json.
/// One entry = one measured configuration: a name, string-valued params,
/// and the two headline metrics every perf claim in this repo reduces to.
class JsonReport {
 public:
  static JsonReport& instance() {
    static JsonReport report;
    return report;
  }

  void configure(std::string bench_name, bool enabled) {
    bench_name_ = std::move(bench_name);
    enabled_ = enabled;
  }

  bool enabled() const { return enabled_; }

  void add(std::string name, std::vector<std::pair<std::string, std::string>> params,
           double ns_per_op, double bytes_per_op = 0.0) {
    entries_.push_back(Entry{std::move(name), std::move(params), ns_per_op, bytes_per_op});
  }

  /// Writes BENCH_<name>.json into the current directory. No-op unless
  /// --json was passed.
  void write() const {
    if (!enabled_) return;
    const std::string path = "BENCH_" + bench_name_ + ".json";
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"entries\": [", bench_name_.c_str());
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(out, "%s\n    {\"name\": \"%s\", \"params\": {", i ? "," : "",
                   escaped(e.name).c_str());
      for (std::size_t p = 0; p < e.params.size(); ++p) {
        std::fprintf(out, "%s\"%s\": \"%s\"", p ? ", " : "",
                     escaped(e.params[p].first).c_str(),
                     escaped(e.params[p].second).c_str());
      }
      std::fprintf(out, "}, \"ns_per_op\": %.4f, \"bytes_per_op\": %.4f}", e.ns_per_op,
                   e.bytes_per_op);
    }
    std::fprintf(out, "\n  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s (%zu entries)\n", path.c_str(), entries_.size());
  }

 private:
  struct Entry {
    std::string name;
    std::vector<std::pair<std::string, std::string>> params;
    double ns_per_op;
    double bytes_per_op;
  };

  static std::string escaped(const std::string& in) {
    std::string out;
    out.reserve(in.size());
    for (const char c : in) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  std::string bench_name_;
  bool enabled_ = false;
  std::vector<Entry> entries_;
};

/// Strips `--json` from argv (google-benchmark rejects unknown flags) and
/// configures the process-wide JsonReport. Call before benchmark::Initialize.
inline void init_json(int* argc, char** argv, const char* bench_name) {
  bool enabled = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      enabled = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  JsonReport::instance().configure(bench_name, enabled);
}

/// Shorthand used by the summary printers.
inline void json_add(std::string name,
                     std::vector<std::pair<std::string, std::string>> params,
                     double ns_per_op, double bytes_per_op = 0.0) {
  JsonReport::instance().add(std::move(name), std::move(params), ns_per_op, bytes_per_op);
}

inline void write_json() { JsonReport::instance().write(); }

// ---------------------------------------------------------------------------
// Detector-kernel cost (the per-access check itself, no simulator around it).
// ---------------------------------------------------------------------------

struct DetectorCost {
  double fast_ns = 0;    ///< production check_access (epoch fast path).
  double oracle_ns = 0;  ///< full-vector-clock oracle.
  double speedup() const { return fast_ns > 0 ? oracle_ns / fast_ns : 0; }
};

/// The fully-ordered steady state the epoch representation optimizes: the
/// stored state is the home NIC's post-event clock, and the accessor has
/// merged it (acked put / lock handoff) before ticking for each access.
/// One fixture definition shared by the chrono summary and the
/// google-benchmark registration, so both measure the same kernel.
struct OrderedCheckFixture {
  Rank home;
  Rank accessor;
  clocks::VectorClock stored;
  clocks::Epoch epoch;
  clocks::VectorClock issue;

  explicit OrderedCheckFixture(std::size_t nprocs)
      : home(0), accessor(static_cast<Rank>(nprocs - 1)), stored(nprocs) {
    for (std::size_t i = 0; i < nprocs; ++i) stored[i] = 2 * i + 3;
    stored.tick(home);
    epoch = clocks::Epoch::of_event(home, stored);
    issue = stored;
    issue.tick(accessor);
  }

  /// One per-access check: tick (models the workload and keeps the inputs
  /// loop-variant so the inlined fast path cannot be hoisted), then decide.
  core::Verdict check(bool oracle) {
    issue.tick(accessor);
    const core::StoredClocks with_epoch{stored, stored, home, home, epoch, epoch};
    return oracle ? core::check_access_oracle(core::DetectorMode::kDualClock,
                                              core::AccessKind::kWrite, accessor,
                                              issue, with_epoch)
                  : core::check_access(core::DetectorMode::kDualClock,
                                       core::AccessKind::kWrite, accessor, issue,
                                       with_epoch);
  }
};

/// Wall-clock ns per check_access call on the fully-ordered workload. The
/// oracle pays two O(n) clock walks per check; the epoch path two integer
/// compares.
inline DetectorCost measure_detector_cost(std::size_t nprocs,
                                          std::uint64_t iters = 2'000'000) {
  OrderedCheckFixture fixture(nprocs);
  const auto run = [&](bool oracle) {
    std::uint64_t races = 0;
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
      races += fixture.check(oracle).race ? 1 : 0;
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    DSMR_CHECK_MSG(races == 0, "ordered workload must not race");
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
           static_cast<double>(iters);
  };

  DetectorCost cost;
  cost.oracle_ns = run(/*oracle=*/true);
  cost.fast_ns = run(/*oracle=*/false);
  return cost;
}

/// Prints the detector-kernel table (and emits JSON entries) for the ≥5x
/// fast-path acceptance criterion. Shared by bench_overhead and
/// bench_throughput.
inline void print_detector_cost_summary() {
  util::Table table({"n procs", "oracle ns/check", "epoch ns/check", "speedup"});
  for (const std::size_t n : {4u, 16u, 64u, 256u}) {
    const DetectorCost cost = measure_detector_cost(n);
    table.add_row({util::Table::fmt_int(n), util::Table::fmt(cost.oracle_ns, 2),
                   util::Table::fmt(cost.fast_ns, 2),
                   util::Table::fmt(cost.speedup(), 1)});
    json_add("detector_check_ordered",
             {{"n", std::to_string(n)}, {"path", "epoch"}, {"mode", "dual-clock"}},
             cost.fast_ns);
    json_add("detector_check_ordered",
             {{"n", std::to_string(n)}, {"path", "oracle"}, {"mode", "dual-clock"}},
             cost.oracle_ns);
  }
  print_table(
      "=== Detector kernel: per-access check cost on fully-ordered workloads ===\n"
      "(epoch fast path vs full-vector-clock oracle; dual-clock writes)",
      table);
}

}  // namespace dsmr::bench
