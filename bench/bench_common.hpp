// Shared helpers for the benchmark binaries.
//
// Every bench prints (a) a paper-style table of the simulated metrics it
// reproduces — virtual latencies, message counts, detection quality — and
// (b) google-benchmark wall-clock timings of the simulator itself. The
// table is the artifact matching EXPERIMENTS.md; the timings document the
// tool's own cost.
#pragma once

#include <cstdio>
#include <string>

#include "runtime/process.hpp"
#include "runtime/world.hpp"
#include "util/stats.hpp"

namespace dsmr::bench {

inline runtime::WorldConfig world_config(int nprocs, core::DetectorMode mode,
                                         core::Transport transport,
                                         std::uint64_t seed = 1) {
  runtime::WorldConfig config;
  config.nprocs = nprocs;
  config.mode = mode;
  config.transport = transport;
  config.seed = seed;
  return config;
}

inline const char* mode_name(core::DetectorMode mode) { return core::to_string(mode); }
inline const char* transport_name(core::Transport t) { return core::to_string(t); }

/// Emits a titled table to stdout.
inline void print_table(const std::string& title, const util::Table& table) {
  std::printf("\n%s\n%s", title.c_str(), table.render().c_str());
  std::fflush(stdout);
}

}  // namespace dsmr::bench
