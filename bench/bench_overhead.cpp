// EXPERIMENTS: CLAIM-V.A2 (+ FIG2 accounting).
//
// "Our algorithm has an overhead on ... communication performance."
// Quantified: virtual put/get latency, messages per operation, and bytes
// per operation, for the detector off vs on, across the three wire
// transports and process counts around the paper's debugging scale.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "util/assert.hpp"

namespace dsmr::bench {
namespace {

using mem::GlobalAddress;
using runtime::Process;
using runtime::World;

struct OpCosts {
  double put_virtual_ns = 0;
  double get_virtual_ns = 0;
  double put_messages = 0;
  double get_messages = 0;
  double put_bytes = 0;
  double get_bytes = 0;
};

/// Measures steady-state per-op virtual cost for one configuration: one
/// initiator hammering a remote area (no contention — pure protocol cost).
OpCosts measure(int nprocs, core::DetectorMode mode, core::Transport transport) {
  constexpr int kOps = 64;
  OpCosts costs;

  {  // puts
    auto config = world_config(nprocs, mode, transport);
    config.latency.jitter_ns = 0;
    World world(config);
    const GlobalAddress x = world.alloc(nprocs - 1, 8, "x");
    sim::Time busy = 0;
    world.spawn(0, [x, &busy](Process& p) -> sim::Task {
      const sim::Time start = p.now();
      for (int i = 0; i < kOps; ++i) co_await p.put_value(x, std::uint64_t{1});
      busy = p.now() - start;
    });
    DSMR_CHECK(world.run().completed);
    costs.put_virtual_ns = static_cast<double>(busy) / kOps;
    costs.put_messages =
        static_cast<double>(world.traffic().total_messages) / kOps;
    costs.put_bytes = static_cast<double>(world.traffic().total_bytes) / kOps;
  }
  {  // gets
    auto config = world_config(nprocs, mode, transport);
    config.latency.jitter_ns = 0;
    World world(config);
    const GlobalAddress x = world.alloc(nprocs - 1, 8, "x");
    sim::Time busy = 0;
    world.spawn(0, [x, &busy](Process& p) -> sim::Task {
      const sim::Time start = p.now();
      for (int i = 0; i < kOps; ++i) co_await p.get(x, 8);
      busy = p.now() - start;
    });
    DSMR_CHECK(world.run().completed);
    costs.get_virtual_ns = static_cast<double>(busy) / kOps;
    costs.get_messages =
        static_cast<double>(world.traffic().total_messages) / kOps;
    costs.get_bytes = static_cast<double>(world.traffic().total_bytes) / kOps;
  }
  return costs;
}

void BM_PutProtocol(benchmark::State& state) {
  const auto mode = static_cast<core::DetectorMode>(state.range(0));
  const auto transport = static_cast<core::Transport>(state.range(1));
  OpCosts costs;
  for (auto _ : state) costs = measure(4, mode, transport);
  state.counters["virt_put_ns"] = costs.put_virtual_ns;
  state.counters["msgs_per_put"] = costs.put_messages;
}
BENCHMARK(BM_PutProtocol)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2}})
    ->ArgNames({"mode", "transport"});

/// The detection kernel itself (no simulator around it): one check_access
/// per iteration on a fully-ordered same-rank workload. arg1 selects the
/// production epoch fast path (0) or the full-vector-clock oracle (1).
void BM_CheckAccessOrdered(benchmark::State& state) {
  OrderedCheckFixture fixture(static_cast<std::size_t>(state.range(0)));
  const bool oracle = state.range(1) != 0;
  std::uint64_t races = 0;
  for (auto _ : state) {
    auto verdict = fixture.check(oracle);
    benchmark::DoNotOptimize(verdict);
    races += verdict.race ? 1 : 0;
  }
  DSMR_CHECK(races == 0);
}
BENCHMARK(BM_CheckAccessOrdered)
    ->ArgsProduct({{4, 16, 64, 256}, {0, 1}})
    ->ArgNames({"n", "oracle"});

void print_summary() {
  {
    util::Table table({"detector", "transport", "put ns", "x base", "msgs/put",
                       "get ns", "x base", "msgs/get", "clock B/put"});
    const OpCosts base = measure(4, core::DetectorMode::kOff, core::Transport::kHomeSide);
    struct Config {
      core::DetectorMode mode;
      core::Transport transport;
    };
    const Config configs[] = {
        {core::DetectorMode::kOff, core::Transport::kHomeSide},
        {core::DetectorMode::kDualClock, core::Transport::kSeparate},
        {core::DetectorMode::kDualClock, core::Transport::kPiggyback},
        {core::DetectorMode::kDualClock, core::Transport::kHomeSide},
    };
    for (const auto& config : configs) {
      const OpCosts costs = measure(4, config.mode, config.transport);
      table.add_row({mode_name(config.mode), transport_name(config.transport),
                     util::Table::fmt(costs.put_virtual_ns, 0),
                     util::Table::fmt(costs.put_virtual_ns / base.put_virtual_ns, 2),
                     util::Table::fmt(costs.put_messages, 1),
                     util::Table::fmt(costs.get_virtual_ns, 0),
                     util::Table::fmt(costs.get_virtual_ns / base.get_virtual_ns, 2),
                     util::Table::fmt(costs.get_messages, 1),
                     util::Table::fmt(costs.put_bytes - base.put_bytes, 0)});
      json_add("put_protocol_virtual",
               {{"n", "4"},
                {"mode", mode_name(config.mode)},
                {"transport", transport_name(config.transport)}},
               costs.put_virtual_ns, costs.put_bytes);
      json_add("get_protocol_virtual",
               {{"n", "4"},
                {"mode", mode_name(config.mode)},
                {"transport", transport_name(config.transport)}},
               costs.get_virtual_ns, costs.get_bytes);
    }
    print_table(
        "=== CLAIM-V.A2: communication overhead of detection (n=4, virtual time) ===",
        table);
  }
  {
    // Scaling with the process count: clocks grow linearly with n (§IV.C),
    // so piggybacked bytes grow too; message counts stay flat.
    util::Table table({"n procs", "put ns (off)", "put ns (dual)", "overhead",
                       "clock B/put", "msgs/put"});
    for (const int n : {2, 4, 8, 16, 32}) {
      const OpCosts off = measure(n, core::DetectorMode::kOff, core::Transport::kHomeSide);
      const OpCosts dual =
          measure(n, core::DetectorMode::kDualClock, core::Transport::kHomeSide);
      table.add_row({util::Table::fmt_int(static_cast<std::uint64_t>(n)),
                     util::Table::fmt(off.put_virtual_ns, 0),
                     util::Table::fmt(dual.put_virtual_ns, 0),
                     util::Table::fmt(dual.put_virtual_ns / off.put_virtual_ns, 3),
                     util::Table::fmt(dual.put_bytes - off.put_bytes, 0),
                     util::Table::fmt(dual.put_messages, 1)});
      json_add("put_overhead_vs_nprocs",
               {{"n", std::to_string(n)}, {"mode", "dual-clock"}, {"transport", "home-side"}},
               dual.put_virtual_ns, dual.put_bytes - off.put_bytes);
    }
    print_table(
        "=== CLAIM-V.A2: overhead vs process count (home-side transport) ===\n"
        "(\"debugging happens at ~10 processes\": the overhead stays modest there)",
        table);
  }
  print_detector_cost_summary();
}

}  // namespace
}  // namespace dsmr::bench

int main(int argc, char** argv) {
  dsmr::bench::init_json(&argc, argv, "overhead");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dsmr::bench::print_summary();
  dsmr::bench::write_json();
  return 0;
}
