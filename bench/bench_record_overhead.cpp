// Recording overhead (ROADMAP item 3): what does the always-on ordering
// recorder cost per operation?
//
// Three comparisons, the production story in numbers:
//
//  * wall-clock per-op on the real-threads backend — detector off,
//    off + recorder (the "always-on recording" production config), full
//    dual-clock live, and dual-clock + recorder. The record/off ratio is
//    the headline number and is gated (tools/bench_gate.py) against
//    bench/baseline.json: machine speed cancels in the ratio.
//  * virtual-time invariance on the simulator — the recorder hooks the
//    engine, not the wire, so recorded runs must cost EXACTLY the same
//    virtual ns/op as unrecorded ones (deterministic, exact-gated).
//  * log density — bytes per recorded event and per op for a fixed sim
//    schedule (deterministic: LEB128 sizes of a seeded run).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "record/recorder.hpp"
#include "runtime/thread_world.hpp"
#include "util/assert.hpp"

namespace dsmr::bench {
namespace {

using mem::GlobalAddress;
using runtime::Process;
using runtime::ThreadProcess;
using runtime::ThreadWorld;
using runtime::ThreadWorldConfig;
using runtime::World;

constexpr int kRanks = 4;
constexpr int kOpsPerRank = 5'000;  // × 2 ops (put + get) per iteration.

struct ThreadCost {
  double wall_ns_per_op = 0;
  double log_bytes_per_op = 0;
};

/// One threaded run: every rank hammers its own area with put+get pairs
/// (disjoint areas — pure per-op engine + recorder cost, no contention
/// beyond stripe sharing). Median of `reps` wall times.
ThreadCost measure_thread(core::DetectorMode mode, bool record, int reps = 3) {
  const double ops = static_cast<double>(kRanks) * kOpsPerRank * 2;
  std::vector<double> walls;
  double log_bytes = 0;
  for (int rep = 0; rep < reps; ++rep) {
    ThreadWorldConfig config;
    config.nprocs = kRanks;
    config.mode = mode;
    record::Recorder recorder(kRanks, record::Backend::kThread, mode,
                              config.lock_clock_handoff, config.acked_puts);
    if (record) config.recorder = &recorder;
    ThreadWorld world(config);
    std::vector<GlobalAddress> areas;
    for (int r = 0; r < kRanks; ++r) {
      std::string name = "a";
      name += std::to_string(r);
      areas.push_back(world.alloc(r, 8, name));
    }
    for (int r = 0; r < kRanks; ++r) {
      world.spawn(r, [r, areas](ThreadProcess& p) {
        std::vector<std::byte> value(8);
        for (int i = 0; i < kOpsPerRank; ++i) {
          std::memcpy(value.data(), &i, sizeof(i));
          p.put(areas[static_cast<std::size_t>(r)], value);
          p.get(areas[static_cast<std::size_t>(r)], 8);
        }
      });
    }
    const auto report = world.run();
    DSMR_CHECK(report.completed);
    walls.push_back(static_cast<double>(report.wall_ns) / ops);
    if (record) {
      recorder.finish(world.races().reports(), report.completed,
                      report.stuck_ranks);
      log_bytes = static_cast<double>(recorder.log().serialize().size()) / ops;
    }
  }
  std::sort(walls.begin(), walls.end());
  return ThreadCost{walls[walls.size() / 2], log_bytes};
}

/// Virtual put cost on the sim backend with a recorder attached — must be
/// bit-identical to the unrecorded cost (the recorder is engine-side).
double measure_sim_virtual(bool record) {
  constexpr int kOps = 64;
  auto config = world_config(kRanks, core::DetectorMode::kOff,
                             core::Transport::kHomeSide);
  config.latency.jitter_ns = 0;
  World world(config);
  record::Recorder recorder(kRanks, record::Backend::kSim,
                            core::DetectorMode::kOff,
                            config.lock_clock_handoff, config.acked_puts);
  if (record) world.set_recorder(&recorder);
  const GlobalAddress x = world.alloc(kRanks - 1, 8, "x");
  sim::Time busy = 0;
  world.spawn(0, [x, &busy](Process& p) -> sim::Task {
    const sim::Time start = p.now();
    for (int i = 0; i < kOps; ++i) co_await p.put_value(x, std::uint64_t{1});
    busy = p.now() - start;
  });
  DSMR_CHECK(world.run().completed);
  return static_cast<double>(busy) / kOps;
}

/// Log density on a fixed seeded sim schedule: bytes per event and per op.
struct LogDensity {
  double bytes_per_event = 0;
  double bytes_per_op = 0;
  std::uint64_t events = 0;
};

LogDensity measure_log_density() {
  constexpr int kOps = 64;
  auto config = world_config(kRanks, core::DetectorMode::kDualClock,
                             core::Transport::kHomeSide);
  World world(config);
  record::Recorder recorder(kRanks, record::Backend::kSim,
                            core::DetectorMode::kDualClock,
                            config.lock_clock_handoff, config.acked_puts);
  world.set_recorder(&recorder);
  const GlobalAddress x = world.alloc(kRanks - 1, 8, "x");
  world.spawn(0, [x](Process& p) -> sim::Task {
    for (int i = 0; i < kOps; ++i) {
      co_await p.put_value(x, std::uint64_t{1});
      co_await p.get(x, 8);
    }
  });
  const auto report = world.run();
  DSMR_CHECK(report.completed);
  recorder.finish(world.races().reports(), report.completed, report.stuck_ranks);
  const auto bytes = recorder.log().serialize();
  LogDensity density;
  density.events = recorder.log().events.size();
  density.bytes_per_event = static_cast<double>(bytes.size()) /
                            static_cast<double>(density.events);
  density.bytes_per_op = static_cast<double>(bytes.size()) / (2.0 * kOps);
  return density;
}

void BM_ThreadOpRecorded(benchmark::State& state) {
  const auto mode = static_cast<core::DetectorMode>(state.range(0));
  const bool record = state.range(1) != 0;
  ThreadCost cost;
  for (auto _ : state) cost = measure_thread(mode, record, 1);
  state.counters["wall_ns_per_op"] = cost.wall_ns_per_op;
}
BENCHMARK(BM_ThreadOpRecorded)
    ->ArgsProduct({{0, 2}, {0, 1}})
    ->ArgNames({"mode", "record"});

void print_summary() {
  struct Config {
    const char* label;
    core::DetectorMode mode;
    bool record;
  };
  const Config configs[] = {
      {"off", core::DetectorMode::kOff, false},
      {"off+record", core::DetectorMode::kOff, true},
      {"dual-clock", core::DetectorMode::kDualClock, false},
      {"dual-clock+record", core::DetectorMode::kDualClock, true},
  };
  util::Table table({"config", "wall ns/op", "x off", "log B/op"});
  const ThreadCost base = measure_thread(core::DetectorMode::kOff, false);
  for (const auto& config : configs) {
    const ThreadCost cost = measure_thread(config.mode, config.record);
    table.add_row({config.label, util::Table::fmt(cost.wall_ns_per_op, 0),
                   util::Table::fmt(cost.wall_ns_per_op / base.wall_ns_per_op, 2),
                   util::Table::fmt(cost.log_bytes_per_op, 1)});
    json_add("record_op_wall",
             {{"backend", "thread"}, {"config", config.label}},
             cost.wall_ns_per_op);
  }
  print_table(
      "=== recording overhead: threaded backend, wall clock per op (n=4) ===\n"
      "(record/off is the gated ratio — the always-on production cost)",
      table);

  {
    const double off = measure_sim_virtual(false);
    const double recorded = measure_sim_virtual(true);
    util::Table virt({"config", "put virtual ns", "delta"});
    virt.add_row({"off", util::Table::fmt(off, 0), "-"});
    virt.add_row({"off+record", util::Table::fmt(recorded, 0),
                  util::Table::fmt(recorded - off, 0)});
    print_table(
        "=== recording is virtually free: sim virtual put cost (exact-gated) ===",
        virt);
    json_add("put_protocol_record_virtual",
             {{"n", std::to_string(kRanks)}, {"mode", "off"}, {"record", "on"}},
             recorded);
  }
  {
    const LogDensity density = measure_log_density();
    util::Table log_table({"events", "bytes/event", "bytes/op"});
    log_table.add_row({util::Table::fmt_int(density.events),
                       util::Table::fmt(density.bytes_per_event, 2),
                       util::Table::fmt(density.bytes_per_op, 2)});
    print_table("=== log density: fixed dual-clock sim schedule (exact-gated) ===",
                log_table);
    json_add("record_log_density_virtual",
             {{"n", std::to_string(kRanks)}, {"backend", "sim"}, {"seed", "1"}},
             density.bytes_per_event, density.bytes_per_op);
  }
}

}  // namespace
}  // namespace dsmr::bench

int main(int argc, char** argv) {
  dsmr::bench::init_json(&argc, argv, "record_overhead");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dsmr::bench::print_summary();
  dsmr::bench::write_json();
  return 0;
}
