// EXPERIMENTS: CLAIM-V.A1 (storage overhead) and the granularity ablation.
//
// "a clock must be used for each shared piece of data. As a consequence,
// our algorithm has an overhead on data storage space" — and the dual-clock
// refinement "doubles the necessary amount of memory" (§IV.D).
//
// Measured: bytes of clock metadata as a function of process count and of
// the number of registered areas, plus the SharedArray chunk-granularity
// trade-off (metadata bytes vs detection precision).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "pgas/shared_array.hpp"
#include "util/assert.hpp"

namespace dsmr::bench {
namespace {

using runtime::Process;
using runtime::World;

std::size_t metadata_bytes(int nprocs, int areas) {
  World world(world_config(nprocs, core::DetectorMode::kDualClock,
                           core::Transport::kHomeSide));
  for (int a = 0; a < areas; ++a) {
    world.alloc(static_cast<Rank>(a % nprocs), 8, "a" + std::to_string(a));
  }
  return world.total_clock_bytes();
}

void BM_MetadataFootprint(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  const int areas = static_cast<int>(state.range(1));
  std::size_t bytes = 0;
  for (auto _ : state) {
    bytes = metadata_bytes(nprocs, areas);
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["clock_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_MetadataFootprint)
    ->ArgsProduct({{2, 8, 32}, {16, 256}})
    ->ArgNames({"n", "areas"});

/// Granularity ablation: same 64-element array, different chunk sizes; two
/// writers touch *different* elements of the same chunk — coarse chunks
/// false-share, fine chunks pay more metadata.
struct GranularityPoint {
  std::size_t chunk;
  std::size_t clock_bytes;
  std::uint64_t false_reports;
};

GranularityPoint measure_granularity(std::size_t chunk) {
  World world(world_config(3, core::DetectorMode::kDualClock, core::Transport::kHomeSide));
  auto array = pgas::SharedArray<std::uint64_t>::allocate(world, 64,
                                                          pgas::Distribution::kBlock,
                                                          chunk, "g");
  // Ranks 1 and 2 write disjoint even/odd elements of rank 0's block: a
  // correct program; any report is a granularity artifact.
  world.spawn(1, [array](Process& p) -> sim::Task {
    for (std::size_t i = 0; i < 16; i += 2) co_await array.write(p, i, 1);
  });
  world.spawn(2, [array](Process& p) -> sim::Task {
    for (std::size_t i = 1; i < 16; i += 2) co_await array.write(p, i, 2);
  });
  DSMR_CHECK(world.run().completed);
  return {chunk, world.total_clock_bytes(), world.races().count()};
}

void print_summary() {
  {
    util::Table table({"n procs", "areas", "clock bytes", "per area",
                       "fixed model (2*8*n)", "saving"});
    for (const int n : {2, 4, 8, 16, 32}) {
      for (const int areas : {16, 64, 256}) {
        const auto bytes = metadata_bytes(n, areas);
        const auto fixed =
            2u * sizeof(ClockValue) * static_cast<std::uint64_t>(n) *
            static_cast<std::uint64_t>(areas);
        table.add_row({util::Table::fmt_int(static_cast<std::uint64_t>(n)),
                       util::Table::fmt_int(static_cast<std::uint64_t>(areas)),
                       util::Table::fmt_int(bytes),
                       util::Table::fmt_int(bytes / static_cast<std::size_t>(areas)),
                       util::Table::fmt_int(2u * sizeof(ClockValue) *
                                            static_cast<std::uint64_t>(n)),
                       util::Table::fmt(static_cast<double>(fixed) /
                                            static_cast<double>(bytes),
                                        1)});
        json_add("metadata_footprint",
                 {{"n", std::to_string(n)}, {"areas", std::to_string(areas)},
                  {"mode", "dual-clock"}},
                 0.0, static_cast<double>(bytes));
      }
    }
    print_table(
        "=== CLAIM-V.A1: clock storage per area (compact/epoch accounting) ===\n"
        "(vs the paper's fixed 2 clocks x n entries x 8 bytes model)",
        table);
  }
  {
    util::Table table({"chunk elems", "areas", "clock bytes", "false reports",
                       "verdict"});
    for (const std::size_t chunk : {1u, 2u, 4u, 8u, 16u}) {
      const auto point = measure_granularity(chunk);
      table.add_row(
          {util::Table::fmt_int(point.chunk),
           util::Table::fmt_int(64u / point.chunk + (64u % point.chunk ? 1 : 0)),
           util::Table::fmt_int(point.clock_bytes),
           util::Table::fmt_int(point.false_reports),
           point.false_reports == 0 ? "precise" : "false sharing"});
      json_add("granularity_ablation", {{"chunk", std::to_string(point.chunk)}},
               static_cast<double>(point.false_reports),
               static_cast<double>(point.clock_bytes));
    }
    print_table(
        "=== Granularity ablation: metadata vs detection precision ===\n"
        "(disjoint writers; any report is an artifact of coarse areas)",
        table);
  }
}

}  // namespace
}  // namespace dsmr::bench

int main(int argc, char** argv) {
  dsmr::bench::init_json(&argc, argv, "clock_memory");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dsmr::bench::print_summary();
  dsmr::bench::write_json();
  return 0;
}
