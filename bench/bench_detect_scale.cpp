// The sharded detector core at production scale (ISSUE 10 tentpole).
//
// Four claims, each gated by tools/bench_gate.py against bench/baseline.json:
//  * batched range checks beat the legacy per-area check_access pattern by
//    >= 4x per check at 10^6 areas (the cache-shaped API claim), measured at
//    n=64 and at n=1024 ranks;
//  * checks/sec scales with the shard count under real 8-thread contention
//    (8 shards must not be slower than 2 beyond CI-machine slack);
//  * area registration stays amortized O(1): ns/area at 10^6 areas within a
//    small factor of ns/area at 16k (the PublicSegment sorted-index fix);
//  * piggybacking both area clocks charges the second as a delta against the
//    first — exact deterministic bytes per message, equal clocks collapsing
//    to two bytes.
#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "detect/sharded_detector.hpp"
#include "mem/public_segment.hpp"
#include "net/message.hpp"
#include "util/assert.hpp"

namespace dsmr::bench {
namespace {

using clocks::VectorClock;
using detect::AreaSpan;
using detect::ShardedDetector;

constexpr std::size_t kAreas = 1'000'000;
constexpr std::size_t kBlock = 64;  ///< areas per same-state block (hot pattern).

/// Builds the bench detector: `hot` stores one distinct event per 4th block
/// of 64 areas (a mixed hot/cold lane with real run boundaries); cold leaves
/// every area aliasing the shared zero clock.
std::unique_ptr<ShardedDetector> make_detector(std::size_t nprocs, int shards,
                                               bool hot) {
  auto det = std::make_unique<ShardedDetector>(nprocs, /*home=*/0, shards);
  det->register_areas(kAreas);
  if (hot) {
    VectorClock clk(nprocs);
    std::uint64_t event = 0;
    for (std::size_t first = 0; first < kAreas; first += 4 * kBlock) {
      clk[0] += 1;  // a fresh home event per hot block.
      det->store_range(AreaSpan{static_cast<detect::AreaId>(first),
                                static_cast<std::uint32_t>(kBlock)},
                       /*owner=*/0, clk, /*is_write=*/true, /*accessor=*/0,
                       ++event);
    }
  }
  return det;
}

VectorClock issue_clock(std::size_t nprocs, Rank accessor) {
  VectorClock issue(nprocs);
  issue[0] = kAreas;  // dominates every stored home event: ordered, no races.
  issue[static_cast<std::size_t>(accessor)] += 1;
  return issue;
}

/// ns per area-check through the batched API, over `passes` full sweeps.
double batch_ns_per_check(const ShardedDetector& det, const VectorClock& issue,
                          Rank accessor, int passes) {
  std::uint64_t races = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int p = 0; p < passes; ++p) {
    const auto batch = det.check_range(
        core::DetectorMode::kDualClock, core::AccessKind::kWrite, accessor, issue,
        AreaSpan{0, static_cast<std::uint32_t>(det.area_count())});
    races += batch.races;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  DSMR_CHECK(races == 0);
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
         (static_cast<double>(passes) * static_cast<double>(det.area_count()));
}

/// ns per area-check through the legacy pattern the NIC used before the
/// extraction: per area, assemble StoredClocks from the stored state and
/// call core::check_access.
double scalar_ns_per_check(const ShardedDetector& det, const VectorClock& issue,
                           Rank accessor, int passes) {
  std::uint64_t races = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int p = 0; p < passes; ++p) {
    for (detect::AreaId id = 0; id < det.area_count(); ++id) {
      const core::StoredClocks stored{
          det.v_clock(id),          det.w_clock(id),
          det.last_access_rank(id), det.last_write_rank(id),
          det.v_epoch(id),          det.w_epoch(id)};
      const auto verdict =
          core::check_access(core::DetectorMode::kDualClock,
                             core::AccessKind::kWrite, accessor, issue, stored);
      races += verdict.race ? 1 : 0;
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  DSMR_CHECK(races == 0);
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
         (static_cast<double>(passes) * static_cast<double>(det.area_count()));
}

/// ns per op with 8 threads doing check+store rounds against one detector
/// partitioned into `shards` shards — the ThreadWorld inline-path shape.
double contended_ns_per_op(int shards) {
  constexpr std::size_t kProcs = 8;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kOpsPerThread = 100'000;
  constexpr std::size_t kHotAreas = 4096;  // small enough to collide, mod shards.
  ShardedDetector det(kProcs, /*home=*/0, shards);
  det.register_areas(kHotAreas);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &det]() {
      const auto rank = static_cast<Rank>(t);
      VectorClock clk(kProcs);
      std::uint64_t x = static_cast<std::uint64_t>(t) * 2654435761u + 1;
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;  // xorshift: cheap, deterministic per thread.
        const auto id = static_cast<detect::AreaId>(x % kHotAreas);
        clk[static_cast<std::size_t>(rank)] += 1;
        std::lock_guard<std::mutex> guard(det.shard_mutex(id));
        const auto verdict =
            det.check_one(core::DetectorMode::kDualClock, core::AccessKind::kWrite,
                          rank, clk, id);
        benchmark::DoNotOptimize(verdict);
        det.store_access(id, rank, clk, /*is_write=*/true, rank, i + 1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
         static_cast<double>(kThreads * kOpsPerThread);
}

/// ns per registered area along the full World::alloc path — PublicSegment
/// bump allocation through the amortized sorted index, plus detector
/// registration — at two scales. Amortized O(1) keeps them within a small
/// factor (the old always-sorted insert was what this bench guards against).
double registration_ns_per_area(std::size_t count) {
  const auto start = std::chrono::steady_clock::now();
  mem::PublicSegment segment(0, static_cast<std::uint32_t>(8 * count), 64);
  ShardedDetector det(64, /*home=*/0, /*shards=*/8);
  for (std::size_t i = 0; i < count; ++i) {
    const mem::AreaId id = segment.allocate_area(8, "x");
    det.register_area(id);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  DSMR_CHECK(det.area_count() == count && segment.area_count() == count);
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) /
         static_cast<double>(count);
}

/// Exact charged clock bytes for a dual-clock message at n=64: the V clock
/// plain, the W clock delta-encoded against it (net::Message accounting).
double piggyback_clock_bytes(bool diverged) {
  net::Message m;
  m.clock = VectorClock(64);
  for (std::size_t i = 0; i < 64; ++i) m.clock[i] = 100 + i;
  m.clock2 = m.clock;
  if (diverged) {
    m.clock2[3] += 1;
    m.clock2[40] += 7;
  }
  return static_cast<double>(m.charged_clock_bytes());
}

// ---------------------------------------------------------------------------
// google-benchmark registrations (CI smoke filter: BM_DetectCheckRange).
// ---------------------------------------------------------------------------

void BM_DetectCheckRange(benchmark::State& state) {
  const auto nprocs = static_cast<std::size_t>(state.range(0));
  const bool hot = state.range(1) != 0;
  const auto det = make_detector(nprocs, 8, hot);
  const Rank accessor = 1;
  const VectorClock issue = issue_clock(nprocs, accessor);
  std::uint64_t races = 0;
  for (auto _ : state) {
    const auto batch = det->check_range(
        core::DetectorMode::kDualClock, core::AccessKind::kWrite, accessor, issue,
        AreaSpan{0, static_cast<std::uint32_t>(kAreas)});
    races += batch.races;
    benchmark::DoNotOptimize(batch);
  }
  DSMR_CHECK(races == 0);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kAreas));
}
BENCHMARK(BM_DetectCheckRange)
    ->ArgsProduct({{64, 1024}, {0, 1}})
    ->ArgNames({"n", "hot"})
    ->Unit(benchmark::kMillisecond);

void print_summary() {
  {
    // Batch vs scalar at 10^6 areas. Cold at n=64 and n=1024 (the production
    // claim: 10^8 checks through the batch path in this one table), hot at
    // n=64 (real run boundaries every 64 areas).
    util::Table table({"n", "pattern", "batch ns/check", "scalar ns/check",
                       "speedup", "checks"});
    struct Axis {
      std::size_t nprocs;
      bool hot;
      int batch_passes;
      int scalar_passes;
    };
    const Axis axes[] = {{64, false, 100, 3}, {64, true, 20, 3}, {1024, false, 20, 3}};
    for (const Axis& axis : axes) {
      const auto det = make_detector(axis.nprocs, 8, axis.hot);
      const Rank accessor = 1;
      const VectorClock issue = issue_clock(axis.nprocs, accessor);
      const double batch_ns =
          batch_ns_per_check(*det, issue, accessor, axis.batch_passes);
      const double scalar_ns =
          scalar_ns_per_check(*det, issue, accessor, axis.scalar_passes);
      const char* pattern = axis.hot ? "blocks64" : "cold";
      table.add_row({util::Table::fmt_int(axis.nprocs), pattern,
                     util::Table::fmt(batch_ns, 2), util::Table::fmt(scalar_ns, 2),
                     util::Table::fmt(scalar_ns / batch_ns, 1),
                     util::Table::fmt_int(static_cast<std::uint64_t>(
                         axis.batch_passes) * kAreas)});
      json_add("detect_check_scale",
               {{"n", std::to_string(axis.nprocs)},
                {"areas", std::to_string(kAreas)},
                {"pattern", pattern},
                {"path", "batch"}},
               batch_ns);
      json_add("detect_check_scale",
               {{"n", std::to_string(axis.nprocs)},
                {"areas", std::to_string(kAreas)},
                {"pattern", pattern},
                {"path", "scalar"}},
               scalar_ns);
    }
    print_table(
        "=== Sharded detector: batched vs per-area checks, 10^6 areas ===", table);
  }
  {
    util::Table table({"shards", "ns/op (8 threads)", "Mops/s"});
    for (const int shards : {1, 2, 8}) {
      const double ns = contended_ns_per_op(shards);
      table.add_row({util::Table::fmt_int(static_cast<std::uint64_t>(shards)),
                     util::Table::fmt(ns, 1), util::Table::fmt(1000.0 / ns, 1)});
      json_add("detect_shard_scaling", {{"threads", "8"}, {"shards", std::to_string(shards)}},
               ns);
    }
    print_table(
        "=== Sharded detector: 8-thread check+store contention vs shard count ===",
        table);
  }
  {
    util::Table table({"areas", "ns/area"});
    const double small = registration_ns_per_area(16'384);
    const double large = registration_ns_per_area(kAreas);
    table.add_row({"16384", util::Table::fmt(small, 1)});
    table.add_row({"1000000", util::Table::fmt(large, 1)});
    json_add("detect_registration", {{"areas", "16384"}}, small);
    json_add("detect_registration", {{"areas", "1000000"}}, large);
    print_table("=== Area registration stays amortized O(1) ===", table);
  }
  {
    util::Table table({"clock state (n=64)", "charged bytes"});
    const double equal = piggyback_clock_bytes(false);
    const double diverged = piggyback_clock_bytes(true);
    table.add_row({"V == W", util::Table::fmt(equal, 0)});
    table.add_row({"W diverges in 2 slots", util::Table::fmt(diverged, 0)});
    json_add("piggyback_clock_bytes", {{"n", "64"}, {"state", "equal"}}, 0.0, equal);
    json_add("piggyback_clock_bytes", {{"n", "64"}, {"state", "diverged"}}, 0.0,
             diverged);
    print_table("=== Piggyback cost: dual clocks, second delta-encoded ===", table);
  }
}

}  // namespace
}  // namespace dsmr::bench

int main(int argc, char** argv) {
  dsmr::bench::init_json(&argc, argv, "detect_scale");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dsmr::bench::print_summary();
  dsmr::bench::write_json();
  return 0;
}
