// EXPERIMENTS: SCALE — simulator throughput and detector cost at and beyond
// the paper's debugging scale ("typically, about 10 processes", §V.A).
//
// Wall-clock cost of simulating a fixed workload as the process count and
// detector mode vary: the tool itself must stay cheap where it is meant to
// be used.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "util/assert.hpp"
#include "workload/workloads.hpp"

namespace dsmr::bench {
namespace {

using runtime::World;

std::uint64_t run_workload(int nprocs, core::DetectorMode mode) {
  auto config = world_config(nprocs, mode, core::Transport::kHomeSide, 7);
  config.max_events = 10'000'000;
  World world(config);
  workload::RandomConfig wl;
  wl.areas = nprocs;
  wl.ops_per_proc = 50;
  wl.write_fraction = 0.5;
  wl.barrier_every = 10;
  workload::spawn_random(world, wl);
  const auto report = world.run();
  DSMR_CHECK(report.completed);
  return report.engine_events;
}

void BM_SimulatedWorkload(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  const auto mode = static_cast<core::DetectorMode>(state.range(1));
  std::uint64_t events = 0;
  std::uint64_t total_ops = 0;
  for (auto _ : state) {
    events = run_workload(nprocs, mode);
    total_ops += static_cast<std::uint64_t>(nprocs) * 50;
  }
  state.counters["engine_events"] = static_cast<double>(events);
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(total_ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatedWorkload)
    ->ArgsProduct({{2, 4, 8, 10, 16, 32}, {0, 2}})
    ->ArgNames({"n", "mode"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dsmr::bench

BENCHMARK_MAIN();
