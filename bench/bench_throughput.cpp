// EXPERIMENTS: SCALE — simulator throughput and detector cost at and beyond
// the paper's debugging scale ("typically, about 10 processes", §V.A).
//
// Wall-clock cost of simulating a fixed workload as the process count and
// detector mode vary: the tool itself must stay cheap where it is meant to
// be used.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "util/assert.hpp"
#include "workload/workloads.hpp"

namespace dsmr::bench {
namespace {

using runtime::World;

std::uint64_t run_workload(int nprocs, core::DetectorMode mode) {
  auto config = world_config(nprocs, mode, core::Transport::kHomeSide, 7);
  config.max_events = 10'000'000;
  World world(config);
  workload::RandomConfig wl;
  wl.areas = nprocs;
  wl.ops_per_proc = 50;
  wl.write_fraction = 0.5;
  wl.barrier_every = 10;
  workload::spawn_random(world, wl);
  const auto report = world.run();
  DSMR_CHECK(report.completed);
  return report.engine_events;
}

void BM_SimulatedWorkload(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  const auto mode = static_cast<core::DetectorMode>(state.range(1));
  std::uint64_t events = 0;
  std::uint64_t total_ops = 0;
  for (auto _ : state) {
    events = run_workload(nprocs, mode);
    total_ops += static_cast<std::uint64_t>(nprocs) * 50;
  }
  state.counters["engine_events"] = static_cast<double>(events);
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(total_ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatedWorkload)
    ->ArgsProduct({{2, 4, 8, 10, 16, 32}, {0, 2}})
    ->ArgNames({"n", "mode"})
    ->Unit(benchmark::kMillisecond);

/// Wall-clock throughput of a fully-ordered same-rank workload (one writer
/// hammering its own remote slot through acked puts): every detection check
/// is epoch-decidable, so the detector-on run should track the baseline.
void print_summary() {
  util::Table table({"n procs", "ops/s (off)", "ops/s (dual)", "dual/off"});
  for (const int n : {4, 10, 32}) {
    const auto run_ordered = [n](core::DetectorMode mode) {
      auto config = world_config(n, mode, core::Transport::kHomeSide, 11);
      World world(config);
      const mem::GlobalAddress x = world.alloc(n - 1, 8, "slot");
      constexpr int kOps = 2000;
      world.spawn(0, [x](runtime::Process& p) -> sim::Task {
        for (int i = 0; i < kOps; ++i) co_await p.put_value(x, std::uint64_t{1});
      });
      const auto start = std::chrono::steady_clock::now();
      DSMR_CHECK(world.run().completed);
      const auto elapsed = std::chrono::steady_clock::now() - start;
      const double seconds =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()) *
          1e-9;
      return static_cast<double>(kOps) / seconds;
    };
    (void)run_ordered(core::DetectorMode::kOff);  // warmup (cold caches).
    const double off = run_ordered(core::DetectorMode::kOff);
    const double dual = run_ordered(core::DetectorMode::kDualClock);
    table.add_row({util::Table::fmt_int(static_cast<std::uint64_t>(n)),
                   util::Table::fmt(off, 0), util::Table::fmt(dual, 0),
                   util::Table::fmt(dual / off, 3)});
    json_add("ordered_put_throughput",
             {{"n", std::to_string(n)}, {"mode", "off"}, {"transport", "home-side"}},
             1e9 / off);
    json_add("ordered_put_throughput",
             {{"n", std::to_string(n)}, {"mode", "dual-clock"}, {"transport", "home-side"}},
             1e9 / dual);
  }
  print_table(
      "=== SCALE: ordered same-rank workload, wall-clock ops/s (simulator incl.) ===",
      table);
  print_detector_cost_summary();
}

}  // namespace
}  // namespace dsmr::bench

int main(int argc, char** argv) {
  dsmr::bench::init_json(&argc, argv, "throughput");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dsmr::bench::print_summary();
  dsmr::bench::write_json();
  return 0;
}
