// The standalone detector core: every per-area detection fact that used to
// live inside mem::Area (V/W clocks, epoch witnesses, prior initiator ranks
// and event ids) now lives here, in a shape chosen for production scale:
//
//  * Struct-of-arrays. Per-area metadata is parallel arrays (epoch, prior
//    rank, event id, clock handle) sized for millions of areas — a check
//    touches four small contiguous lanes, not a 100+-byte Area object.
//  * Shared-zero clock handles. A registered-but-untouched area owns no
//    clock storage at all: its handle aliases one detector-wide zero clock.
//    Registering 10^6 areas materializes zero vector clocks; storage appears
//    only when an area is actually written or read (one pool slot per lane,
//    stable addresses via deque).
//  * Sharding by `area_id % shards`. Each shard owns its slice of every
//    lane plus one mutex; area id → (shard, slot) is two integer ops, and
//    writers on different shards never contend. This subsumes PR 7's
//    per-home-rank striped locking in ThreadWorld (the stripe count is now
//    the shard count) and gives the sim backend the same layout at shards=1.
//  * Batched range checks. check_range walks each shard's contiguous lane
//    slice through core::check_span: one epoch compare per *run* of
//    state-identical areas (equal clock handle + epoch + prior rank), not
//    per area — the cache-shaped API the benches drive to 10^6 areas.
//
// Concurrency contract: the detector does not lock for you on the per-area
// fast path. check_one / store_access / the per-area accessors require the
// caller to hold shard_mutex(id) when other threads may touch that shard
// (the ThreadWorld path), and need no lock single-threaded (the sim path).
// check_range and store_range acquire each shard's mutex themselves as they
// walk it.
//
// Verdict equivalence: check_one/check_range run check_span with
// trusted_epochs=true — a valid epoch here is consistent with its stored
// clock *by construction* (store_access writes both from the same event),
// so the per-area consistency probe of the legacy path is skipped. The
// verdicts are bit-identical to core::check_access on the same state; the
// shard-equivalence and batch≡per-area suites in tests/test_detect.cpp hold
// this invariant under fuzzing.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "clocks/epoch.hpp"
#include "clocks/vector_clock.hpp"
#include "core/rules.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace dsmr::detect {

using AreaId = std::uint32_t;

/// A contiguous range of area ids: [first, first + count).
struct AreaSpan {
  AreaId first = 0;
  std::uint32_t count = 0;
};

/// What one check_range call found and did.
struct BatchVerdict {
  std::uint64_t checked = 0;        ///< areas covered (== span.count).
  std::uint64_t races = 0;          ///< areas whose verdict flagged a race.
  std::uint64_t runs = 0;           ///< state-identical runs, one verdict each.
  std::uint64_t epoch_compares = 0; ///< runs decided by the O(1) epoch path.
  std::uint64_t full_compares = 0;  ///< runs needing the full clock compare.
};

class ShardedDetector {
 public:
  /// Detector for areas homed at `home` in a system of `nprocs` processes,
  /// state partitioned across `shards` lock shards (>= 1).
  ShardedDetector(std::size_t nprocs, Rank home, int shards);

  ShardedDetector(const ShardedDetector&) = delete;
  ShardedDetector& operator=(const ShardedDetector&) = delete;

  std::size_t nprocs() const { return nprocs_; }
  int shards() const { return static_cast<int>(shards_.size()); }
  std::size_t area_count() const { return areas_; }

  /// Registers the next area. Ids are dense and allocation-ordered (the
  /// segment's bump allocator assigns them), so `id` must equal
  /// area_count(). O(1) amortized — no clock is materialized.
  void register_area(AreaId id);

  /// Bulk registration for benches and mass-allocation callers.
  void register_areas(std::size_t count);

  /// The mutex guarding `id`'s shard. Callers on the per-area path hold it
  /// across their check+store sequence (check / record / store must be one
  /// atomic step, exactly as PR 7's stripe locks did).
  std::mutex& shard_mutex(AreaId id) const { return shard_for(id).mutex; }

  // ---- checks ----

  /// One area, one verdict. Caller-locked (see the concurrency contract).
  core::Verdict check_one(core::DetectorMode mode, core::AccessKind kind,
                          Rank accessor, const clocks::VectorClock& accessor_clock,
                          AreaId id) const;

  /// Batched check over a contiguous id range: walks each shard's lane
  /// slice (locking that shard) and decides one verdict per run of
  /// state-identical areas. `on_race(id, verdict)` fires for every area
  /// whose verdict flags a race. Verdicts are identical to calling
  /// check_one on every id in the span.
  template <typename OnRace>
  BatchVerdict check_range(core::DetectorMode mode, core::AccessKind kind,
                           Rank accessor, const clocks::VectorClock& accessor_clock,
                           AreaSpan span, OnRace&& on_race) const;

  BatchVerdict check_range(core::DetectorMode mode, core::AccessKind kind,
                           Rank accessor, const clocks::VectorClock& accessor_clock,
                           AreaSpan span) const {
    return check_range(mode, kind, accessor, accessor_clock, span,
                       [](AreaId, const core::Verdict&) {});
  }

  // ---- stores ----

  /// Records the event `clk` (the clock of event `event_id`, which occurred
  /// at `owner` and was initiated by `accessor`) into area `id`'s V lane,
  /// and into the W lane too when `is_write`. Caller-locked.
  void store_access(AreaId id, Rank owner, const clocks::VectorClock& clk,
                    bool is_write, Rank accessor, std::uint64_t event_id);

  /// Bulk store over a contiguous id range (locks each shard as it goes):
  /// every area in the span records the same event. Used by benches and
  /// range-granular ingest; the per-area protocol paths use store_access.
  void store_range(AreaSpan span, Rank owner, const clocks::VectorClock& clk,
                   bool is_write, Rank accessor, std::uint64_t event_id);

  // ---- per-area state accessors (caller-locked under concurrency) ----

  const clocks::VectorClock& v_clock(AreaId id) const { return *slot_ref(id).v_clock; }
  const clocks::VectorClock& w_clock(AreaId id) const { return *slot_ref(id).w_clock; }
  clocks::Epoch v_epoch(AreaId id) const;
  clocks::Epoch w_epoch(AreaId id) const;
  Rank last_access_rank(AreaId id) const;
  Rank last_write_rank(AreaId id) const;
  std::uint64_t last_access_event(AreaId id) const;
  std::uint64_t last_write_event(AreaId id) const;

  /// The stored clock / prior event id a verdict was decided against.
  const clocks::VectorClock& prior_clock(AreaId id, core::ComparedAgainst against) const {
    return against == core::ComparedAgainst::kW ? w_clock(id) : v_clock(id);
  }
  std::uint64_t prior_event(AreaId id, core::ComparedAgainst against) const {
    return against == core::ComparedAgainst::kW ? last_write_event(id)
                                                : last_access_event(id);
  }

  // ---- storage accounting (CLAIM-V.A1) ----

  /// Modeled detection-metadata bytes for one area: both lanes' compact
  /// clock encodings plus their epoch witnesses — the same formula
  /// clocks::AdaptiveClock::storage_bytes charged when this state lived in
  /// mem::Area, so the §V.A accounting is unchanged by the extraction.
  std::size_t area_storage_bytes(AreaId id) const {
    return v_storage_bytes(id) + w_storage_bytes(id);
  }
  std::size_t v_storage_bytes(AreaId id) const;
  std::size_t w_storage_bytes(AreaId id) const;
  std::size_t storage_bytes() const;  ///< sum over all registered areas.

  /// Bytes of clock storage actually materialized (owned pool slots only —
  /// areas still aliasing the shared zero clock cost nothing). This is the
  /// number that stays 0 across 10^6 cold registrations.
  std::size_t resident_clock_bytes() const;

 private:
  /// One comparison lane (V or W) of one shard, struct-of-arrays. `clock`
  /// entries alias either the detector's shared zero clock or this shard's
  /// pool; `owned[slot]` is 1 + the pool index of the slot's owned clock, or
  /// 0 while the slot still aliases the zero clock. Each lane owns its pool
  /// slot separately — V and W must not share storage, or a later V-only
  /// event would retroactively corrupt W.
  struct Lane {
    std::vector<clocks::Epoch> epoch;
    std::vector<Rank> prior;
    std::vector<std::uint64_t> event;
    std::vector<const clocks::VectorClock*> clock;
    std::vector<std::uint32_t> owned;
  };

  struct Shard {
    mutable std::mutex mutex;
    Lane v;
    Lane w;
    /// Materialized clock storage; deque for stable addresses under growth.
    std::deque<clocks::VectorClock> pool;
  };

  /// A borrowed view of one area's state, both lanes.
  struct SlotRef {
    const clocks::VectorClock* v_clock;
    const clocks::VectorClock* w_clock;
    const Shard* shard;
    std::size_t slot;
  };

  std::size_t shard_of(AreaId id) const { return id % shards_.size(); }
  std::size_t slot_of(AreaId id) const { return id / shards_.size(); }
  Shard& shard_for(AreaId id) const { return *shards_[shard_of(id)]; }
  SlotRef slot_ref(AreaId id) const;

  void store_lane(Shard& shard, Lane& lane, std::size_t slot, Rank owner,
                  const clocks::VectorClock& clk, Rank accessor,
                  std::uint64_t event_id);
  std::size_t lane_storage_bytes(const Lane& lane, std::size_t slot) const;

  std::size_t nprocs_;
  Rank home_;
  std::size_t areas_ = 0;
  /// The one clock every cold lane slot aliases. Never mutated after
  /// construction, so concurrent readers across shards are safe.
  clocks::VectorClock zero_clock_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

// ---------------------------------------------------------------------------
// check_range — header-inline because of the OnRace template; everything it
// calls per run is the core::check_span kernel.
// ---------------------------------------------------------------------------

template <typename OnRace>
BatchVerdict ShardedDetector::check_range(core::DetectorMode mode,
                                          core::AccessKind kind, Rank accessor,
                                          const clocks::VectorClock& accessor_clock,
                                          AreaSpan span, OnRace&& on_race) const {
  DSMR_CHECK_MSG(static_cast<std::size_t>(span.first) + span.count <= areas_,
                 "check_range span [" << span.first << ", +" << span.count
                                      << ") exceeds " << areas_ << " areas");
  BatchVerdict batch;
  batch.checked = span.count;
  if (span.count == 0) return batch;

  const std::size_t nshards = shards_.size();
  const std::size_t lo_id = span.first;
  const std::size_t hi_id = lo_id + span.count;  // exclusive
  const bool use_v = core::detail::compares_against_v(mode, kind);

  for (std::size_t s = 0; s < nshards; ++s) {
    // Ids in this shard are slot * nshards + s; the span maps to the
    // contiguous slot range [lo_slot, hi_slot).
    const std::size_t lo_slot = lo_id > s ? (lo_id - s + nshards - 1) / nshards : 0;
    const std::size_t hi_slot = hi_id > s ? (hi_id - s + nshards - 1) / nshards : 0;
    if (lo_slot >= hi_slot) continue;

    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> guard(shard.mutex);
    const Lane& lane = use_v ? shard.v : shard.w;
    const core::SpanLane view{lane.epoch.data() + lo_slot,
                              lane.prior.data() + lo_slot,
                              lane.clock.data() + lo_slot};
    const core::SpanStats stats = core::check_span(
        mode, kind, accessor, accessor_clock, view, hi_slot - lo_slot,
        /*trusted_epochs=*/true,
        [&](std::size_t first, std::size_t count, const core::Verdict& verdict) {
          if (!verdict.race) return;
          batch.races += count;
          for (std::size_t k = 0; k < count; ++k) {
            const std::size_t slot = lo_slot + first + k;
            on_race(static_cast<AreaId>(slot * nshards + s), verdict);
          }
        });
    batch.runs += stats.runs;
    batch.epoch_compares += stats.epoch_compares;
    batch.full_compares += stats.full_compares;
  }
  return batch;
}

}  // namespace dsmr::detect
