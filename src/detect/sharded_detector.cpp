#include "detect/sharded_detector.hpp"

namespace dsmr::detect {

ShardedDetector::ShardedDetector(std::size_t nprocs, Rank home, int shards)
    : nprocs_(nprocs), home_(home), zero_clock_(nprocs) {
  DSMR_REQUIRE(shards >= 1, "detector needs at least one shard, got " << shards);
  DSMR_REQUIRE(home >= 0 && static_cast<std::size_t>(home) < nprocs,
               "detector home rank " << home << " out of range for " << nprocs
                                     << " processes");
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) shards_.push_back(std::make_unique<Shard>());
}

void ShardedDetector::register_area(AreaId id) {
  DSMR_REQUIRE(id == areas_, "areas register densely in allocation order: got id "
                                 << id << ", expected " << areas_);
  Shard& shard = shard_for(id);
  for (Lane* lane : {&shard.v, &shard.w}) {
    // Fresh state is the zero clock as an event clock — the fictitious 0th
    // event of the home rank — so a cold area starts epoch-summarized,
    // exactly like AdaptiveClock's zero state did.
    lane->epoch.push_back(clocks::Epoch{home_, 0});
    lane->prior.push_back(kInvalidRank);
    lane->event.push_back(0);
    lane->clock.push_back(&zero_clock_);
    lane->owned.push_back(0);
  }
  ++areas_;
}

void ShardedDetector::register_areas(std::size_t count) {
  const std::size_t nshards = shards_.size();
  const std::size_t first = areas_;
  for (std::size_t s = 0; s < nshards; ++s) {
    // Slots in shard s after growth: ids s, s+S, s+2S, ... below the new
    // area count.
    const std::size_t total = first + count;
    const std::size_t slots = total > s ? (total - s + nshards - 1) / nshards : 0;
    Shard& shard = *shards_[s];
    for (Lane* lane : {&shard.v, &shard.w}) {
      lane->epoch.resize(slots, clocks::Epoch{home_, 0});
      lane->prior.resize(slots, kInvalidRank);
      lane->event.resize(slots, 0);
      lane->clock.resize(slots, &zero_clock_);
      lane->owned.resize(slots, 0);
    }
  }
  areas_ += count;
}

ShardedDetector::SlotRef ShardedDetector::slot_ref(AreaId id) const {
  DSMR_ASSERT(id < areas_);
  const Shard& shard = shard_for(id);
  const std::size_t slot = slot_of(id);
  return {shard.v.clock[slot], shard.w.clock[slot], &shard, slot};
}

core::Verdict ShardedDetector::check_one(core::DetectorMode mode,
                                         core::AccessKind kind, Rank accessor,
                                         const clocks::VectorClock& accessor_clock,
                                         AreaId id) const {
  DSMR_ASSERT(id < areas_);
  const Shard& shard = shard_for(id);
  const std::size_t slot = slot_of(id);
  const Lane& lane =
      core::detail::compares_against_v(mode, kind) ? shard.v : shard.w;
  const core::SpanLane view{lane.epoch.data() + slot, lane.prior.data() + slot,
                            lane.clock.data() + slot};
  core::Verdict verdict;
  core::check_span(mode, kind, accessor, accessor_clock, view, 1,
                   /*trusted_epochs=*/true,
                   [&](std::size_t, std::size_t, const core::Verdict& v) {
                     verdict = v;
                   });
  return verdict;
}

void ShardedDetector::store_lane(Shard& shard, Lane& lane, std::size_t slot,
                                 Rank owner, const clocks::VectorClock& clk,
                                 Rank accessor, std::uint64_t event_id) {
  std::uint32_t idx = lane.owned[slot];
  if (idx == 0) {
    shard.pool.emplace_back(clk);
    idx = static_cast<std::uint32_t>(shard.pool.size());
    lane.owned[slot] = idx;
  } else {
    shard.pool[idx - 1] = clk;
  }
  lane.clock[slot] = &shard.pool[idx - 1];
  // Same adaptive rule as AdaptiveClock::store_event: the stored state is
  // the clock of one known event at `owner`, summarized by its epoch (which
  // comes out invalid — full-compare fallback — if owner is out of range).
  lane.epoch[slot] = clocks::Epoch::of_event(owner, clk);
  lane.prior[slot] = accessor;
  lane.event[slot] = event_id;
}

void ShardedDetector::store_access(AreaId id, Rank owner,
                                   const clocks::VectorClock& clk, bool is_write,
                                   Rank accessor, std::uint64_t event_id) {
  DSMR_ASSERT(id < areas_);
  Shard& shard = shard_for(id);
  const std::size_t slot = slot_of(id);
  store_lane(shard, shard.v, slot, owner, clk, accessor, event_id);
  if (is_write) store_lane(shard, shard.w, slot, owner, clk, accessor, event_id);
}

void ShardedDetector::store_range(AreaSpan span, Rank owner,
                                  const clocks::VectorClock& clk, bool is_write,
                                  Rank accessor, std::uint64_t event_id) {
  DSMR_CHECK_MSG(static_cast<std::size_t>(span.first) + span.count <= areas_,
                 "store_range span [" << span.first << ", +" << span.count
                                      << ") exceeds " << areas_ << " areas");
  const std::size_t nshards = shards_.size();
  const std::size_t lo_id = span.first;
  const std::size_t hi_id = lo_id + span.count;
  for (std::size_t s = 0; s < nshards; ++s) {
    const std::size_t lo_slot = lo_id > s ? (lo_id - s + nshards - 1) / nshards : 0;
    const std::size_t hi_slot = hi_id > s ? (hi_id - s + nshards - 1) / nshards : 0;
    if (lo_slot >= hi_slot) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> guard(shard.mutex);
    for (std::size_t slot = lo_slot; slot < hi_slot; ++slot) {
      store_lane(shard, shard.v, slot, owner, clk, accessor, event_id);
      if (is_write) store_lane(shard, shard.w, slot, owner, clk, accessor, event_id);
    }
  }
}

clocks::Epoch ShardedDetector::v_epoch(AreaId id) const {
  return shard_for(id).v.epoch[slot_of(id)];
}

clocks::Epoch ShardedDetector::w_epoch(AreaId id) const {
  return shard_for(id).w.epoch[slot_of(id)];
}

Rank ShardedDetector::last_access_rank(AreaId id) const {
  return shard_for(id).v.prior[slot_of(id)];
}

Rank ShardedDetector::last_write_rank(AreaId id) const {
  return shard_for(id).w.prior[slot_of(id)];
}

std::uint64_t ShardedDetector::last_access_event(AreaId id) const {
  return shard_for(id).v.event[slot_of(id)];
}

std::uint64_t ShardedDetector::last_write_event(AreaId id) const {
  return shard_for(id).w.event[slot_of(id)];
}

std::size_t ShardedDetector::lane_storage_bytes(const Lane& lane,
                                                std::size_t slot) const {
  const clocks::Epoch epoch = lane.epoch[slot];
  return lane.clock[slot]->wire_size() + (epoch.valid() ? epoch.wire_size() : 0);
}

std::size_t ShardedDetector::v_storage_bytes(AreaId id) const {
  DSMR_ASSERT(id < areas_);
  return lane_storage_bytes(shard_for(id).v, slot_of(id));
}

std::size_t ShardedDetector::w_storage_bytes(AreaId id) const {
  DSMR_ASSERT(id < areas_);
  return lane_storage_bytes(shard_for(id).w, slot_of(id));
}

std::size_t ShardedDetector::storage_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    for (const Lane* lane : {&shard->v, &shard->w}) {
      for (std::size_t slot = 0; slot < lane->epoch.size(); ++slot) {
        total += lane_storage_bytes(*lane, slot);
      }
    }
  }
  return total;
}

std::size_t ShardedDetector::resident_clock_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    for (const clocks::VectorClock& clock : shard->pool) {
      total += clock.fixed_wire_size();
    }
  }
  return total;
}

}  // namespace dsmr::detect
