// Recorder: accumulates ordering events during a run and seals them into a
// record::Log with the live verdict footer.
//
// Two append disciplines, matching the two engines:
//  * `record`        — simulator backend. The sim engine is single-threaded
//                      and executes one atomic event at a time, so append
//                      order IS execution order. No synchronization.
//  * `record_thread` — threaded backend. Each rank thread appends to its own
//                      buffer; a global atomic sequence number stamped at the
//                      op's linearization point (inside the stripe / user-lock
//                      mutex) defines the total order. `finish` merges the
//                      buffers by stamp.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/race_report.hpp"
#include "record/log.hpp"
#include "util/types.hpp"

namespace dsmr::record {

/// Canonical (sorted, counted) signature of a run's verdicts. Used for the
/// log footer, for replay comparison, and by the differential harnesses.
VerdictSignature make_signature(const AreaIndex& areas,
                                const std::vector<core::RaceReport>& reports,
                                bool completed, std::vector<Rank> stuck_ranks);

class Recorder {
 public:
  Recorder(std::uint32_t nprocs, Backend backend, core::DetectorMode mode,
           bool lock_clock_handoff, bool acked_puts);

  /// Registers the next allocated area; allocation order defines the flat
  /// index space the events speak. Called before the run starts.
  void register_area(Rank home, std::uint32_t id, std::uint64_t size,
                     std::string name);
  std::uint64_t area_index(Rank home, std::uint32_t id) const {
    return areas_.at(home, id);
  }
  const AreaIndex& areas() const { return areas_; }

  /// Attaches provenance (program text, seeds, fault plan...). Insertion
  /// order is preserved on the wire.
  void set_metadata(std::string key, std::string value);

  // --- simulator backend: append in engine execution order ---
  void record(EventKind kind, std::uint64_t a, std::uint64_t b = 0,
              std::uint64_t c = 0, std::uint64_t d = 0) {
    log_.events.push_back(Event{kind, a, b, c, d});
  }

  // --- threaded backend: per-rank buffers + atomic linearization stamp ---
  // Must be called at the point where the op's effect on shared state is
  // committed (inside the protecting mutex); `rank` is the acting rank and
  // becomes field `a`.
  void record_thread(Rank rank, EventKind kind, std::uint64_t b = 0,
                     std::uint64_t c = 0, std::uint64_t d = 0) {
    const std::uint64_t stamp = seq_.fetch_add(1, std::memory_order_seq_cst);
    auto& buffer = thread_buffers_[static_cast<std::size_t>(rank)];
    buffer.push_back(Stamped{
        stamp, Event{kind, static_cast<std::uint64_t>(rank), b, c, d}});
  }

  /// Seals the log: merges thread buffers (if any) into global stamp order
  /// and embeds the live verdict signature in the footer.
  void finish(const std::vector<core::RaceReport>& reports, bool completed,
              std::vector<Rank> stuck_ranks);

  bool finished() const { return finished_; }
  const LogHeader& header() const { return log_.header; }  ///< valid pre-finish.
  const Log& log() const;  ///< REQUIREs finish() was called.

 private:
  struct Stamped {
    std::uint64_t seq = 0;
    Event event;
  };

  Log log_;
  AreaIndex areas_;
  std::vector<std::vector<Stamped>> thread_buffers_;
  std::atomic<std::uint64_t> seq_{0};
  bool finished_ = false;
};

}  // namespace dsmr::record
