#include "record/replay.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <tuple>
#include <utility>

#include "clocks/epoch.hpp"
#include "clocks/vector_clock.hpp"
#include "core/rules.hpp"
#include "util/assert.hpp"

namespace dsmr::record {
namespace {

using clocks::VectorClock;

/// The fold mirrors, field for field, the state the live engines keep:
/// mem::Area's adaptive V/W clocks + last-initiator ranks, the per-node
/// NodeClock (one per rank — in the sim a rank's Process and its home NIC
/// share a clock, which is why puts and gets are split into issue/apply/
/// completion events), the lock-manager handoff clocks, and the in-flight
/// ack/response payloads. Identical state + identical check inputs =>
/// bit-identical verdicts, including the epoch fast-path decisions.
struct FoldState {
  struct Area {
    Rank home = kInvalidRank;
    std::string name;
    clocks::AdaptiveClock v;
    clocks::AdaptiveClock w;
    Rank last_access_rank = kInvalidRank;
    Rank last_write_rank = kInvalidRank;
    VectorClock handoff;
    bool has_handoff = false;
  };

  std::vector<VectorClock> clocks;  // per rank
  std::vector<Area> areas;
  // In-flight payload clocks keyed by (initiator, area). Each initiator op
  // is a blocking await, so every queue's depth is at most 1; deques keep
  // the fold honest if a malformed log violates that.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::deque<VectorClock>>
      put_issue, put_ack, get_issue, get_merge, unlock_release;
  // Undelivered signal clocks keyed by (src, dst, tag). Matching is by the
  // sender's own clock component (Event::d), not FIFO: same-channel signals
  // can be reordered by perturbation or fault retries.
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
           std::deque<VectorClock>>
      signals;
};

class Folder {
 public:
  Folder(const Log& log, core::DetectorMode mode) : log_(log), mode_(mode) {
    const std::size_t n = log.header.nprocs;
    state_.clocks.assign(n, VectorClock(n));
    state_.areas.reserve(log.areas.size());
    for (const AreaEntry& entry : log.areas) {
      FoldState::Area area;
      area.home = entry.home;
      area.name = entry.name;
      area.v = clocks::AdaptiveClock(n, entry.home);
      area.w = clocks::AdaptiveClock(n, entry.home);
      state_.areas.push_back(std::move(area));
    }
  }

  ReplayResult run() {
    for (std::size_t i = 0; i < log_.events.size() && result_.ok(); ++i) {
      index_ = i;
      fold(log_.events[i]);
      if (result_.ok()) ++result_.events;
    }
    if (result_.ok()) {
      result_.signature.completed = log_.live.completed;
      result_.signature.stuck_ranks = log_.live.stuck_ranks;
      std::map<std::tuple<std::uint64_t, Rank, int>, std::uint64_t> counts;
      for (const core::RaceReport& report : result_.reports) {
        counts[{report.area, report.accessor, static_cast<int>(report.kind)}] +=
            1;
      }
      for (const auto& [key, count] : counts) {
        result_.signature.races.push_back(
            RaceCount{std::get<0>(key), std::get<1>(key),
                      static_cast<core::AccessKind>(std::get<2>(key)), count});
      }
    }
    return std::move(result_);
  }

 private:
  void fail(const Event& event, const std::string& what) {
    if (!result_.ok()) return;
    result_.error = "[bad-trace] event #" + std::to_string(index_) + " (" +
                    to_string(event.kind) + "): " + what;
  }

  bool valid_rank(const Event& event, std::uint64_t rank) {
    if (rank < state_.clocks.size()) return true;
    fail(event, "rank " + std::to_string(rank) + " out of range");
    return false;
  }

  FoldState::Area* valid_area(const Event& event, std::uint64_t index) {
    if (index < state_.areas.size()) return &state_.areas[index];
    fail(event, "area " + std::to_string(index) + " out of range");
    return nullptr;
  }

  /// Pops the single in-flight payload of (rank, area) from `queue`.
  bool pop(const Event& event,
           std::map<std::pair<std::uint64_t, std::uint64_t>,
                    std::deque<VectorClock>>& queue,
           std::uint64_t rank, std::uint64_t area, VectorClock* out,
           const char* what) {
    auto it = queue.find({rank, area});
    if (it == queue.end() || it->second.empty()) {
      fail(event, std::string("no pending ") + what + " for rank " +
                      std::to_string(rank) + " area " + std::to_string(area));
      return false;
    }
    *out = std::move(it->second.front());
    it->second.pop_front();
    return true;
  }

  /// One access through the real predicate, with exactly the inputs the
  /// live engine passes (pre-update stored state, post-tick event clock).
  void check(std::uint64_t area_index, const FoldState::Area& area,
             core::AccessKind kind, Rank accessor,
             const VectorClock& accessor_clock) {
    ++result_.checks;
    const core::StoredClocks stored{area.v.full(),          area.w.full(),
                                    area.last_access_rank,  area.last_write_rank,
                                    area.v.epoch(),         area.w.epoch()};
    const core::Verdict verdict =
        core::check_access(mode_, kind, accessor, accessor_clock, stored);
    if (!verdict.race) return;
    core::RaceReport report;
    report.id = result_.reports.size() + 1;
    report.home = area.home;
    // The fold speaks flat area-table indices (per-segment ids are not in
    // the log); signatures are built in the same coordinates.
    report.area = static_cast<std::uint32_t>(area_index);
    report.area_name = area.name;
    report.accessor = accessor;
    report.kind = kind;
    report.accessor_clock = accessor_clock;
    report.against = verdict.against;
    report.stored_clock = verdict.against == core::ComparedAgainst::kW
                              ? area.w.full()
                              : area.v.full();
    result_.reports.push_back(std::move(report));
  }

  void fold(const Event& event) {
    switch (event.kind) {
      case EventKind::kTick: {
        if (!valid_rank(event, event.a)) return;
        state_.clocks[event.a].tick(static_cast<Rank>(event.a));
        return;
      }
      case EventKind::kPutIssue:
      case EventKind::kGetIssue: {
        if (!valid_rank(event, event.a) || !valid_area(event, event.b)) return;
        auto& queue = event.kind == EventKind::kPutIssue ? state_.put_issue
                                                         : state_.get_issue;
        state_.clocks[event.a].tick(static_cast<Rank>(event.a));
        queue[{event.a, event.b}].push_back(state_.clocks[event.a]);
        return;
      }
      case EventKind::kPutApply: {
        FoldState::Area* area = valid_area(event, event.b);
        if (!valid_rank(event, event.a) || area == nullptr) return;
        VectorClock issue;
        if (!pop(event, state_.put_issue, event.a, event.b, &issue,
                 "put issue"))
          return;
        const auto src = static_cast<Rank>(event.a);
        check(event.b, *area, core::AccessKind::kWrite, src, issue);
        // Home NIC receive_event + store, unconditionally (mode-independent).
        VectorClock& home_clock = state_.clocks[static_cast<std::size_t>(area->home)];
        home_clock.tick(area->home);
        home_clock.merge_from(issue);
        area->v.store_event(area->home, home_clock);
        area->w.store_event(area->home, home_clock);
        area->last_access_rank = src;
        area->last_write_rank = src;
        if (log_.header.acked_puts) {
          state_.put_ack[{event.a, event.b}].push_back(home_clock);
        }
        return;
      }
      case EventKind::kGetApply: {
        FoldState::Area* area = valid_area(event, event.b);
        if (!valid_rank(event, event.a) || area == nullptr) return;
        VectorClock issue;
        if (!pop(event, state_.get_issue, event.a, event.b, &issue,
                 "get issue"))
          return;
        const auto src = static_cast<Rank>(event.a);
        check(event.b, *area, core::AccessKind::kRead, src, issue);
        VectorClock& home_clock = state_.clocks[static_cast<std::size_t>(area->home)];
        home_clock.tick(area->home);
        home_clock.merge_from(issue);
        area->v.store_event(area->home, home_clock);  // reads update V only
        area->last_access_rank = src;
        state_.get_merge[{event.a, event.b}].push_back(home_clock);
        return;
      }
      case EventKind::kPutAck:
      case EventKind::kGetMerge: {
        if (!valid_rank(event, event.a) || !valid_area(event, event.b)) return;
        auto& queue = event.kind == EventKind::kPutAck ? state_.put_ack
                                                       : state_.get_merge;
        VectorClock payload;
        if (!pop(event, queue, event.a, event.b, &payload, "completion"))
          return;
        state_.clocks[event.a].merge_from(payload);
        return;
      }
      case EventKind::kLock: {
        FoldState::Area* area = valid_area(event, event.b);
        if (!valid_rank(event, event.a) || area == nullptr) return;
        state_.clocks[event.a].tick(static_cast<Rank>(event.a));
        if (area->has_handoff) state_.clocks[event.a].merge_from(area->handoff);
        return;
      }
      case EventKind::kUnlockIssue: {
        if (!valid_rank(event, event.a) || !valid_area(event, event.b)) return;
        state_.clocks[event.a].tick(static_cast<Rank>(event.a));
        if (log_.header.lock_clock_handoff) {
          state_.unlock_release[{event.a, event.b}].push_back(
              state_.clocks[event.a]);
        }
        return;
      }
      case EventKind::kUnlockApply: {
        FoldState::Area* area = valid_area(event, event.b);
        if (!valid_rank(event, event.a) || area == nullptr) return;
        VectorClock release;
        if (!pop(event, state_.unlock_release, event.a, event.b, &release,
                 "unlock release"))
          return;
        // Sim LockManager::set_handoff MERGES successive releases.
        if (area->has_handoff) {
          area->handoff.merge_from(release);
        } else {
          area->handoff = std::move(release);
          area->has_handoff = true;
        }
        return;
      }
      case EventKind::kSignal: {
        if (!valid_rank(event, event.a) || !valid_rank(event, event.b)) return;
        state_.clocks[event.a].tick(static_cast<Rank>(event.a));
        state_.signals[{event.a, event.b, event.c}].push_back(
            state_.clocks[event.a]);
        return;
      }
      case EventKind::kWaitMatch: {
        if (!valid_rank(event, event.a) || !valid_rank(event, event.b)) return;
        auto& queue = state_.signals[{event.b, event.a, event.c}];
        // Match by the sender's own component at send time (field d): the
        // sender ticks before every signal, so the component names exactly
        // one send even when same-channel signals arrive reordered.
        auto it = std::find_if(queue.begin(), queue.end(),
                               [&](const VectorClock& clk) {
                                 return clk[static_cast<std::size_t>(event.b)] ==
                                        event.d;
                               });
        if (it == queue.end()) {
          fail(event, "no undelivered signal from rank " +
                          std::to_string(event.b) + " tag " +
                          std::to_string(event.c) + " with sender component " +
                          std::to_string(event.d));
          return;
        }
        const VectorClock sender = std::move(*it);
        queue.erase(it);
        state_.clocks[event.a].tick(static_cast<Rank>(event.a));
        state_.clocks[event.a].merge_from(sender);
        return;
      }
      case EventKind::kThreadPut:
      case EventKind::kThreadGet: {
        FoldState::Area* area = valid_area(event, event.b);
        if (!valid_rank(event, event.a) || area == nullptr) return;
        const auto rank = static_cast<Rank>(event.a);
        VectorClock& clock = state_.clocks[event.a];
        clock.tick(rank);
        if (event.kind == EventKind::kThreadPut) {
          check(event.b, *area, core::AccessKind::kWrite, rank, clock);
          // Completion clock = pre-update V ∨ W, exactly ThreadWorld's
          // acked-put merge source.
          VectorClock completion = area->v.full();
          completion.merge_from(area->w.full());
          area->v.store_event(rank, clock);
          area->w.store_event(rank, clock);
          area->last_access_rank = rank;
          area->last_write_rank = rank;
          if (log_.header.acked_puts) clock.merge_from(completion);
        } else {
          check(event.b, *area, core::AccessKind::kRead, rank, clock);
          VectorClock reads_from = area->w.full();
          area->v.store_event(rank, clock);
          area->last_access_rank = rank;
          clock.merge_from(reads_from);
        }
        return;
      }
      case EventKind::kThreadLock: {
        FoldState::Area* area = valid_area(event, event.b);
        if (!valid_rank(event, event.a) || area == nullptr) return;
        state_.clocks[event.a].tick(static_cast<Rank>(event.a));
        if (log_.header.lock_clock_handoff && area->has_handoff) {
          state_.clocks[event.a].merge_from(area->handoff);
        }
        return;
      }
      case EventKind::kThreadUnlock: {
        FoldState::Area* area = valid_area(event, event.b);
        if (!valid_rank(event, event.a) || area == nullptr) return;
        state_.clocks[event.a].tick(static_cast<Rank>(event.a));
        // ThreadWorld's UserLock handoff is overwritten, not merged.
        area->handoff = state_.clocks[event.a];
        area->has_handoff = true;
        return;
      }
    }
    fail(event, "unknown event kind");
  }

  const Log& log_;
  core::DetectorMode mode_;
  FoldState state_;
  ReplayResult result_;
  std::size_t index_ = 0;

 public:
  /// Canonical dump of the post-run fold state; every field the fold keeps
  /// shows up, so two event orders commute iff their dumps match.
  std::string state_digest(const ReplayResult& result) const {
    std::ostringstream out;
    for (std::size_t r = 0; r < state_.clocks.size(); ++r) {
      out << "r" << r << "=" << state_.clocks[r].to_string() << "\n";
    }
    for (std::size_t i = 0; i < state_.areas.size(); ++i) {
      const FoldState::Area& area = state_.areas[i];
      out << "a" << i << " " << area.name << " home=" << area.home
          << " v=" << area.v.full().to_string()
          << " ve=" << epoch_digest(area.v)
          << " w=" << area.w.full().to_string()
          << " we=" << epoch_digest(area.w)
          << " la=" << area.last_access_rank << " lw=" << area.last_write_rank;
      out << " handoff=";
      if (area.has_handoff) {
        out << area.handoff.to_string();
      } else {
        out << "-";
      }
      out << "\n";
    }
    queue_digest(out, "put_issue", state_.put_issue);
    queue_digest(out, "put_ack", state_.put_ack);
    queue_digest(out, "get_issue", state_.get_issue);
    queue_digest(out, "get_merge", state_.get_merge);
    queue_digest(out, "unlock_release", state_.unlock_release);
    for (const auto& [key, queue] : state_.signals) {
      if (queue.empty()) continue;
      out << "signal " << std::get<0>(key) << "->" << std::get<1>(key) << " t"
          << std::get<2>(key) << ":";
      for (const VectorClock& clk : queue) out << " " << clk.to_string();
      out << "\n";
    }
    for (const core::RaceReport& report : result.reports) {
      out << "race a" << report.area << " by r" << report.accessor << " "
          << (report.kind == core::AccessKind::kWrite ? "W" : "R") << " vs "
          << (report.against == core::ComparedAgainst::kW ? "W" : "V") << " "
          << report.accessor_clock.to_string() << " | "
          << report.stored_clock.to_string() << "\n";
    }
    return out.str();
  }

 private:
  static std::string epoch_digest(const clocks::AdaptiveClock& clock) {
    if (!clock.summarized()) return "full";
    const clocks::Epoch epoch = clock.epoch();
    return std::to_string(epoch.rank) + "@" + std::to_string(epoch.value);
  }

  template <typename Map>
  static void queue_digest(std::ostringstream& out, const char* label,
                           const Map& map) {
    for (const auto& [key, queue] : map) {
      if (queue.empty()) continue;
      out << label << " (" << key.first << ",a" << key.second << "):";
      for (const VectorClock& clk : queue) out << " " << clk.to_string();
      out << "\n";
    }
  }
};

}  // namespace

ReplayResult replay_fold(const Log& log, core::DetectorMode mode) {
  return Folder(log, mode).run();
}

std::string replay_state_digest(const Log& log, core::DetectorMode mode) {
  Folder folder(log, mode);
  const ReplayResult result = folder.run();
  if (!result.ok()) return result.error;
  return folder.state_digest(result);
}

std::string check_record_replay(const Log& log) {
  // Compare against the footer at the recorded detector mode: the footer
  // holds what the live detector actually reported under that mode.
  const ReplayResult folded = replay_fold(log, log.header.mode);
  if (!folded.ok()) return "fold failed: " + folded.error;
  if (folded.signature == log.live) return "";
  return "replay verdicts diverge from live: replay " +
         folded.signature.to_string() + " vs live " + log.live.to_string();
}

std::string check_record_replay_bytes(std::span<const std::byte> bytes) {
  std::string error;
  const std::optional<Log> log = Log::parse(bytes, &error);
  if (!log.has_value()) return "log round-trip failed: " + error;
  return check_record_replay(*log);
}

ReplayGate::ReplayGate(const Log& log)
    : events_(log.events), remaining_(log.header.nprocs, 0) {
  for (const Event& event : events_) {
    if (event.a < remaining_.size()) ++remaining_[event.a];
  }
}

ReplayGate::Enter ReplayGate::enter(
    Rank rank, std::chrono::steady_clock::time_point deadline,
    const Event** event) {
  const auto r = static_cast<std::size_t>(rank);
  std::unique_lock lock(mutex_);
  while (true) {
    if (remaining_[r] == 0) return Enter::kExhausted;
    if (cursor_ < events_.size() && events_[cursor_].a == r) {
      *event = &events_[cursor_];
      return Enter::kOk;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return Enter::kTimeout;
    }
  }
}

void ReplayGate::advance() {
  std::lock_guard lock(mutex_);
  DSMR_CHECK(cursor_ < events_.size());
  const std::uint64_t rank = events_[cursor_].a;
  if (rank < remaining_.size()) --remaining_[rank];
  ++cursor_;
  cv_.notify_all();
}

std::size_t ReplayGate::cursor() const {
  std::lock_guard lock(mutex_);
  return cursor_;
}

}  // namespace dsmr::record
