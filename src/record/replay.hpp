// Replay: re-derive the verdicts of a recorded run from its ordering log.
//
// `replay_fold` is the offline detector. It walks the event stream in the
// recorded total order and reconstructs, step by step, exactly the state the
// live engines maintain — per-rank vector clocks, per-area adaptive V/W
// clocks with their epoch witnesses, last-initiator ranks, lock handoff
// clocks, in-flight ack/response queues — and runs `core::check_access` at
// each access event. Because clock evolution in the live engines is
// mode-independent, the fold of a `mode=off` recording under
// `DetectorMode::kDualClock` yields bit-identical verdicts to a live
// dual-clock run of the same schedule. That equivalence is the fuzz-grid
// invariant (`check_record_replay`).
//
// `ReplayGate` is the other half of the threaded-backend story: it forces a
// live `runtime::ThreadWorld` to re-execute its ops in a recorded log's
// total order, turning the backend's `kSometimes` schedules into replayable
// coordinates.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/race_report.hpp"
#include "core/types.hpp"
#include "record/log.hpp"
#include "util/types.hpp"

namespace dsmr::record {

struct ReplayResult {
  /// Empty on success; otherwise a "[bad-trace] ..." diagnostic naming the
  /// event that could not be folded (logs are disk input — never a crash).
  std::string error;
  bool ok() const { return error.empty(); }

  /// Races found by the fold; completed/stuck carried over from the live
  /// footer (the fold replays exactly the recorded prefix, so liveness is
  /// the recording's to report).
  VerdictSignature signature;
  std::vector<core::RaceReport> reports;
  std::uint64_t checks = 0;   ///< accesses run through check_access.
  std::uint64_t events = 0;   ///< events folded.
};

/// Folds `log` under detector `mode`. Pass `log.header.mode` to reproduce
/// the recorded configuration, or a stronger mode (the always-on production
/// story: record at kOff, fold at kDualClock).
ReplayResult replay_fold(const Log& log, core::DetectorMode mode);

/// Canonical rendering of the COMPLETE folded detector state after the
/// last event: per-rank clocks, every area's V/W (full clock + epoch +
/// summarized bit), last-access/last-write ranks, lock handoff clocks,
/// in-flight payload queues, undelivered signal clocks in queue order, and
/// the race reports in fold order. Two event orders commute on detector
/// state iff their digests are byte-identical — explore/'s DPOR
/// independence property test is built on this. Returns the "[bad-trace]"
/// diagnostic when the fold fails.
std::string replay_state_digest(const Log& log, core::DetectorMode mode);

/// The fuzz-grid invariant check: fold the log at full dual-clock detection
/// and compare against the embedded live footer. Returns "" on match, else
/// a one-line divergence description.
std::string check_record_replay(const Log& log);

/// Round-trip variant for harnesses: serialize → parse → check, so the wire
/// format itself is exercised on every grid coordinate.
std::string check_record_replay_bytes(std::span<const std::byte> bytes);

/// Serializes a threaded-backend log's total order back into a live
/// `runtime::ThreadWorld`: each rank thread calls `enter` before an op and
/// `advance` after it, so ops commit in exactly the recorded order.
class ReplayGate {
 public:
  explicit ReplayGate(const Log& log);

  enum class Enter {
    kOk,         ///< `*event` is this rank's next op; proceed, then advance().
    kExhausted,  ///< log has no further events for this rank — the recorded
                 ///< run had it blocked here; re-block (report stuck).
    kTimeout,    ///< deadline passed while waiting for our turn: the replayed
                 ///< execution diverged from the log.
  };

  /// Blocks until the global cursor reaches an event of `rank`.
  Enter enter(Rank rank, std::chrono::steady_clock::time_point deadline,
              const Event** event);

  /// Commits the entered event and wakes the next rank. Call exactly once
  /// after a successful enter, once the op's shared-state effect is done.
  void advance();

  std::size_t cursor() const;
  std::size_t size() const { return events_.size(); }

 private:
  std::vector<Event> events_;
  std::vector<std::size_t> remaining_;  ///< per rank, events not yet consumed.
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t cursor_ = 0;
};

}  // namespace dsmr::record
