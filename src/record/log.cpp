#include "record/log.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "util/assert.hpp"
#include "util/varint.hpp"

namespace dsmr::record {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void put_string(std::vector<std::byte>& out, std::string_view s) {
  util::put_varint(out, s.size());
  for (const char c : s) out.push_back(static_cast<std::byte>(c));
}

/// Parse cursor with uniform error reporting: every getter returns false
/// once `fail` has been called, so parse code can chain without checking
/// each step.
struct Cursor {
  std::span<const std::byte> in;
  std::size_t pos = 0;
  std::string error;

  bool ok() const { return error.empty(); }
  void fail(std::string message) {
    if (error.empty()) error = std::move(message);
  }

  bool get(std::uint64_t* out, const char* what) {
    if (!ok()) return false;
    const auto v = util::try_get_varint(in, &pos);
    if (!v.has_value()) {
      fail(std::string("[truncated] log ends inside ") + what +
           " (offset " + std::to_string(pos) + ")");
      return false;
    }
    *out = *v;
    return true;
  }

  bool get_string(std::string* out, const char* what) {
    std::uint64_t len = 0;
    if (!get(&len, what)) return false;
    if (len > in.size() - pos) {
      fail(std::string("[truncated] log ends inside ") + what + " (" +
           std::to_string(len) + " bytes claimed, " +
           std::to_string(in.size() - pos) + " left)");
      return false;
    }
    out->assign(reinterpret_cast<const char*>(in.data() + pos),
                static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    return true;
  }
};

}  // namespace

std::string to_string(Backend backend) {
  return backend == Backend::kSim ? "sim" : "thread";
}

std::string to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kTick: return "tick";
    case EventKind::kPutIssue: return "put-issue";
    case EventKind::kPutApply: return "put-apply";
    case EventKind::kPutAck: return "put-ack";
    case EventKind::kGetIssue: return "get-issue";
    case EventKind::kGetApply: return "get-apply";
    case EventKind::kGetMerge: return "get-merge";
    case EventKind::kLock: return "lock";
    case EventKind::kUnlockIssue: return "unlock-issue";
    case EventKind::kUnlockApply: return "unlock-apply";
    case EventKind::kSignal: return "signal";
    case EventKind::kWaitMatch: return "wait-match";
    case EventKind::kThreadPut: return "thread-put";
    case EventKind::kThreadGet: return "thread-get";
    case EventKind::kThreadLock: return "thread-lock";
    case EventKind::kThreadUnlock: return "thread-unlock";
  }
  return "?";
}

std::string VerdictSignature::to_string() const {
  std::ostringstream out;
  out << (completed ? "completed" : "incomplete");
  if (!stuck_ranks.empty()) {
    out << " stuck=[";
    for (std::size_t i = 0; i < stuck_ranks.size(); ++i) {
      if (i > 0) out << ",";
      out << stuck_ranks[i];
    }
    out << "]";
  }
  out << " races=" << races.size() << "{";
  for (std::size_t i = 0; i < races.size(); ++i) {
    if (i > 0) out << ",";
    out << "a" << races[i].area << ":r" << races[i].accessor << ":"
        << core::to_string(races[i].kind) << "x" << races[i].count;
  }
  out << "}";
  return out.str();
}

std::uint64_t AreaIndex::add(Rank home, std::uint32_t id) {
  const std::uint64_t k = key(home, id);
  DSMR_REQUIRE(!contains(home, id),
               "area registered twice: home " << home << " id " << id);
  const std::uint64_t index = flat_.size();
  flat_.emplace_back(k, index);
  return index;
}

std::uint64_t AreaIndex::at(Rank home, std::uint32_t id) const {
  const std::uint64_t k = key(home, id);
  for (const auto& [key_, index] : flat_) {
    if (key_ == k) return index;
  }
  DSMR_REQUIRE(false, "area not registered with the recorder: home "
                          << home << " id " << id);
  return 0;
}

bool AreaIndex::contains(Rank home, std::uint32_t id) const {
  const std::uint64_t k = key(home, id);
  return std::any_of(flat_.begin(), flat_.end(),
                     [k](const auto& entry) { return entry.first == k; });
}

AreaIndex make_area_index(const std::vector<AreaEntry>& areas) {
  AreaIndex index;
  std::map<Rank, std::uint32_t> next_id;
  for (const AreaEntry& entry : areas) index.add(entry.home, next_id[entry.home]++);
  return index;
}

const std::string* Log::find_metadata(std::string_view key) const {
  for (const auto& [k, v] : metadata) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::uint64_t fnv1a(std::span<const std::byte> bytes) {
  std::uint64_t hash = kFnvOffset;
  for (const std::byte b : bytes) {
    hash ^= static_cast<std::uint64_t>(b);
    hash *= kFnvPrime;
  }
  return hash;
}

std::vector<std::byte> Log::serialize() const {
  std::vector<std::byte> out;
  out.reserve(64 + events.size() * 4);
  for (const char c : kMagic) out.push_back(static_cast<std::byte>(c));
  util::put_varint(out, kVersion);

  util::put_varint(out, header.nprocs);
  util::put_varint(out, static_cast<std::uint64_t>(header.backend));
  util::put_varint(out, static_cast<std::uint64_t>(header.mode));
  util::put_varint(out, header.lock_clock_handoff ? 1 : 0);
  util::put_varint(out, header.acked_puts ? 1 : 0);

  util::put_varint(out, areas.size());
  for (const AreaEntry& area : areas) {
    util::put_varint(out, static_cast<std::uint64_t>(area.home));
    util::put_varint(out, area.size);
    put_string(out, area.name);
  }

  util::put_varint(out, metadata.size());
  for (const auto& [key, value] : metadata) {
    put_string(out, key);
    put_string(out, value);
  }

  util::put_varint(out, events.size());
  for (const Event& event : events) {
    out.push_back(static_cast<std::byte>(event.kind));
    const int fields = field_count(event.kind);
    if (fields >= 1) util::put_varint(out, event.a);
    if (fields >= 2) util::put_varint(out, event.b);
    if (fields >= 3) util::put_varint(out, event.c);
    if (fields >= 4) util::put_varint(out, event.d);
  }

  util::put_varint(out, live.completed ? 1 : 0);
  util::put_varint(out, live.stuck_ranks.size());
  for (const Rank rank : live.stuck_ranks) {
    util::put_varint(out, static_cast<std::uint64_t>(rank));
  }
  util::put_varint(out, live.races.size());
  for (const RaceCount& race : live.races) {
    util::put_varint(out, race.area);
    util::put_varint(out, static_cast<std::uint64_t>(race.accessor));
    util::put_varint(out, race.kind == core::AccessKind::kWrite ? 1 : 0);
    util::put_varint(out, race.count);
  }

  const std::uint64_t checksum = fnv1a(out);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((checksum >> (8 * i)) & 0xff));
  }
  return out;
}

std::optional<Log> Log::parse(std::span<const std::byte> bytes,
                              std::string* error) {
  DSMR_REQUIRE(error != nullptr, "Log::parse needs an error sink");
  *error = "";
  // Smallest syntactically possible log: magic + version + 5 header varints
  // + 3 empty-section counts + 2 footer varints + 8 checksum bytes.
  if (bytes.size() < 8 + 1 + 5 + 3 + 2 + 8) {
    *error = "[truncated] file too small to be a dsmr log (" +
             std::to_string(bytes.size()) + " bytes)";
    return std::nullopt;
  }
  for (std::size_t i = 0; i < 8; ++i) {
    if (bytes[i] != static_cast<std::byte>(kMagic[i])) {
      *error = "[bad-magic] not a dsmr event log (magic mismatch at byte " +
               std::to_string(i) + ")";
      return std::nullopt;
    }
  }

  Cursor cursor{bytes.first(bytes.size() - 8), 8, ""};
  std::uint64_t version = 0;
  if (!cursor.get(&version, "version")) {
    *error = cursor.error;
    return std::nullopt;
  }
  if (version != kVersion) {
    *error = "[bad-version] log format version " + std::to_string(version) +
             ", this build reads version " + std::to_string(kVersion);
    return std::nullopt;
  }

  // Integrity before structure: a flipped bit deep in the event stream
  // should surface as a checksum failure, not as a confusing structural one.
  const std::span<const std::byte> body = bytes.first(bytes.size() - 8);
  std::uint64_t stored = 0;
  for (int i = 7; i >= 0; --i) {
    stored = (stored << 8) |
             static_cast<std::uint64_t>(bytes[bytes.size() - 8 + i]);
  }
  const std::uint64_t computed = fnv1a(body);
  if (stored != computed) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "stored %016llx, computed %016llx",
                  static_cast<unsigned long long>(stored),
                  static_cast<unsigned long long>(computed));
    *error = std::string("[checksum-mismatch] log integrity check failed (") +
             buf + "); the file is corrupt or truncated";
    return std::nullopt;
  }

  Log log;
  std::uint64_t backend = 0;
  std::uint64_t mode = 0;
  std::uint64_t handoff = 0;
  std::uint64_t acked = 0;
  std::uint64_t nprocs = 0;
  cursor.get(&nprocs, "header nprocs");
  cursor.get(&backend, "header backend");
  cursor.get(&mode, "header mode");
  cursor.get(&handoff, "header lock_clock_handoff");
  cursor.get(&acked, "header acked_puts");
  if (cursor.ok() &&
      (backend > static_cast<std::uint64_t>(Backend::kThread) ||
       mode > static_cast<std::uint64_t>(core::DetectorMode::kDualClock) ||
       handoff > 1 || acked > 1 || nprocs == 0 || nprocs > (1u << 20))) {
    cursor.fail("[bad-field] header out of range (nprocs " +
                std::to_string(nprocs) + ", backend " +
                std::to_string(backend) + ", mode " + std::to_string(mode) +
                ")");
  }
  if (cursor.ok()) {
    log.header.nprocs = static_cast<std::uint32_t>(nprocs);
    log.header.backend = static_cast<Backend>(backend);
    log.header.mode = static_cast<core::DetectorMode>(mode);
    log.header.lock_clock_handoff = handoff == 1;
    log.header.acked_puts = acked == 1;
  }

  std::uint64_t area_count = 0;
  cursor.get(&area_count, "area table count");
  for (std::uint64_t i = 0; cursor.ok() && i < area_count; ++i) {
    AreaEntry area;
    std::uint64_t home = 0;
    cursor.get(&home, "area home");
    cursor.get(&area.size, "area size");
    cursor.get_string(&area.name, "area name");
    if (cursor.ok() && home >= nprocs) {
      cursor.fail("[bad-field] area " + std::to_string(i) + " home rank " +
                  std::to_string(home) + " >= nprocs " +
                  std::to_string(nprocs));
    }
    area.home = static_cast<Rank>(home);
    log.areas.push_back(std::move(area));
  }

  std::uint64_t meta_count = 0;
  cursor.get(&meta_count, "metadata count");
  for (std::uint64_t i = 0; cursor.ok() && i < meta_count; ++i) {
    std::string key;
    std::string value;
    cursor.get_string(&key, "metadata key");
    cursor.get_string(&value, "metadata value");
    log.metadata.emplace_back(std::move(key), std::move(value));
  }

  std::uint64_t event_count = 0;
  cursor.get(&event_count, "event count");
  if (cursor.ok()) log.events.reserve(std::min<std::uint64_t>(event_count, 1u << 22));
  for (std::uint64_t i = 0; cursor.ok() && i < event_count; ++i) {
    if (cursor.pos >= cursor.in.size()) {
      cursor.fail("[truncated] log ends inside event " + std::to_string(i) +
                  " of " + std::to_string(event_count));
      break;
    }
    const auto raw = static_cast<std::uint8_t>(cursor.in[cursor.pos++]);
    if (raw < 1 || raw > kMaxEventKind) {
      cursor.fail("[bad-event-kind] event " + std::to_string(i) +
                  " has unknown kind " + std::to_string(raw));
      break;
    }
    Event event;
    event.kind = static_cast<EventKind>(raw);
    const int fields = field_count(event.kind);
    if (fields >= 1) cursor.get(&event.a, "event field a");
    if (fields >= 2) cursor.get(&event.b, "event field b");
    if (fields >= 3) cursor.get(&event.c, "event field c");
    if (fields >= 4) cursor.get(&event.d, "event field d");
    log.events.push_back(event);
  }

  std::uint64_t completed = 0;
  std::uint64_t stuck_count = 0;
  cursor.get(&completed, "footer completed flag");
  cursor.get(&stuck_count, "footer stuck count");
  log.live.completed = completed == 1;
  for (std::uint64_t i = 0; cursor.ok() && i < stuck_count; ++i) {
    std::uint64_t rank = 0;
    cursor.get(&rank, "footer stuck rank");
    log.live.stuck_ranks.push_back(static_cast<Rank>(rank));
  }
  std::uint64_t race_count = 0;
  cursor.get(&race_count, "footer race count");
  for (std::uint64_t i = 0; cursor.ok() && i < race_count; ++i) {
    RaceCount race;
    std::uint64_t accessor = 0;
    std::uint64_t kind = 0;
    cursor.get(&race.area, "footer race area");
    cursor.get(&accessor, "footer race accessor");
    cursor.get(&kind, "footer race kind");
    cursor.get(&race.count, "footer race count");
    race.accessor = static_cast<Rank>(accessor);
    race.kind = kind == 1 ? core::AccessKind::kWrite : core::AccessKind::kRead;
    log.live.races.push_back(race);
  }

  if (!cursor.ok()) {
    *error = cursor.error;
    return std::nullopt;
  }
  if (cursor.pos != cursor.in.size()) {
    *error = "[trailing-garbage] " +
             std::to_string(cursor.in.size() - cursor.pos) +
             " unexpected bytes between the footer and the checksum";
    return std::nullopt;
  }
  return log;
}

void write_file(const std::string& path, std::span<const std::byte> bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  DSMR_REQUIRE(file != nullptr, "cannot open " << path << " for writing");
  const std::size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), file);
  const int closed = std::fclose(file);
  DSMR_REQUIRE(written == bytes.size() && closed == 0,
               "short write to " << path);
}

std::optional<std::vector<std::byte>> read_file(const std::string& path,
                                                std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (error) *error = "cannot open " + path + " for reading";
    return std::nullopt;
  }
  std::vector<std::byte> bytes;
  std::byte buffer[1 << 16];
  while (true) {
    const std::size_t n = std::fread(buffer, 1, sizeof(buffer), file);
    bytes.insert(bytes.end(), buffer, buffer + n);
    if (n < sizeof(buffer)) break;
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    if (error) *error = "read error on " + path;
    return std::nullopt;
  }
  return bytes;
}

}  // namespace dsmr::record
