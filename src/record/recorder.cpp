#include "record/recorder.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "util/assert.hpp"

namespace dsmr::record {

VerdictSignature make_signature(const AreaIndex& areas,
                                const std::vector<core::RaceReport>& reports,
                                bool completed, std::vector<Rank> stuck_ranks) {
  VerdictSignature signature;
  signature.completed = completed;
  signature.stuck_ranks = std::move(stuck_ranks);
  std::sort(signature.stuck_ranks.begin(), signature.stuck_ranks.end());

  std::map<std::tuple<std::uint64_t, Rank, int>, std::uint64_t> counts;
  for (const core::RaceReport& report : reports) {
    const std::uint64_t flat = areas.at(report.home, report.area);
    counts[{flat, report.accessor, static_cast<int>(report.kind)}] += 1;
  }
  for (const auto& [key, count] : counts) {
    signature.races.push_back(RaceCount{
        std::get<0>(key), std::get<1>(key),
        static_cast<core::AccessKind>(std::get<2>(key)), count});
  }
  return signature;
}

Recorder::Recorder(std::uint32_t nprocs, Backend backend,
                   core::DetectorMode mode, bool lock_clock_handoff,
                   bool acked_puts) {
  DSMR_REQUIRE(nprocs > 0, "recorder needs at least one process");
  log_.header.nprocs = nprocs;
  log_.header.backend = backend;
  log_.header.mode = mode;
  log_.header.lock_clock_handoff = lock_clock_handoff;
  log_.header.acked_puts = acked_puts;
  if (backend == Backend::kThread) thread_buffers_.resize(nprocs);
}

void Recorder::register_area(Rank home, std::uint32_t id, std::uint64_t size,
                             std::string name) {
  DSMR_REQUIRE(log_.events.empty() && !finished_,
               "areas must be registered before recording starts");
  areas_.add(home, id);
  log_.areas.push_back(AreaEntry{home, size, std::move(name)});
}

void Recorder::set_metadata(std::string key, std::string value) {
  for (auto& [k, v] : log_.metadata) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  log_.metadata.emplace_back(std::move(key), std::move(value));
}

void Recorder::finish(const std::vector<core::RaceReport>& reports,
                      bool completed, std::vector<Rank> stuck_ranks) {
  DSMR_REQUIRE(!finished_, "recorder finished twice");
  if (!thread_buffers_.empty()) {
    std::vector<Stamped> merged;
    std::size_t total = 0;
    for (const auto& buffer : thread_buffers_) total += buffer.size();
    merged.reserve(total);
    for (const auto& buffer : thread_buffers_) {
      merged.insert(merged.end(), buffer.begin(), buffer.end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const Stamped& a, const Stamped& b) { return a.seq < b.seq; });
    log_.events.reserve(log_.events.size() + merged.size());
    for (const Stamped& stamped : merged) log_.events.push_back(stamped.event);
    thread_buffers_.clear();
  }
  log_.live = make_signature(areas_, reports, completed, std::move(stuck_ranks));
  finished_ = true;
}

const Log& Recorder::log() const {
  DSMR_REQUIRE(finished_, "recorder log read before finish()");
  return log_;
}

}  // namespace dsmr::record
