// The compact binary event log behind record/replay (ROADMAP item 3).
//
// Design follows Ronsse & De Bosschere's RecPlay split (PAPERS.md): the
// recording side stores only the *ordering* information of an execution —
// which access hit which area in which order, which unlock fed which lock
// grant, which signal a wait consumed — and none of the detector state.
// Clock evolution in this codebase is mode-independent (the NIC updates
// per-area V/W state and merges clocks whether or not detection is on), so
// a log captured at `DetectorMode::kOff` replays offline under the full
// dual-clock detector with exactly the verdicts a live run on that schedule
// would have produced. Replay folds the event stream through the same
// `core::check_access` rules and compares against the live verdict footer.
//
// Wire layout (all integers LEB128 varints, util/varint.hpp):
//
//   magic      8 bytes  "DSMRLOG\0"
//   version    varint   kVersion
//   header     varints  nprocs, backend, mode, lock_clock_handoff, acked_puts
//   areas      varint count, then per area: home, size, name_len, name bytes
//   metadata   varint count, then per entry: key_len, key, value_len, value
//   events     varint count, then per event: 1 kind byte + field_count(kind)
//              varint fields
//   footer     live verdict signature: completed, stuck count + ranks,
//              race count + per race (area, accessor, kind, count)
//   checksum   8 bytes  little-endian FNV-1a 64 of everything above
//
// Parsing is defensive: every malformed input maps to a structured
// diagnostic with a bracketed code — [truncated], [bad-magic],
// [bad-version], [checksum-mismatch], [bad-event-kind], [bad-field],
// [trailing-garbage] — never a crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "util/types.hpp"

namespace dsmr::record {

inline constexpr char kMagic[8] = {'D', 'S', 'M', 'R', 'L', 'O', 'G', '\0'};
inline constexpr std::uint64_t kVersion = 1;

/// Which execution engine produced the log. Event kinds are disjoint per
/// backend because the two engines have different linearization points
/// (the sim splits put/get/unlock across initiator and home NIC; the
/// threaded backend commits each op atomically under a stripe lock).
enum class Backend : std::uint8_t {
  kSim = 0,
  kThread = 1,
};

std::string to_string(Backend backend);

/// One recorded ordering event. Fields a..d are kind-specific (see the
/// table in field_count); unused fields are zero and not serialized.
enum class EventKind : std::uint8_t {
  // --- simulator backend (engine order == append order) ---
  kTick = 1,         ///< a=rank. Local step (compute) that only ticks.
  kPutIssue = 2,     ///< a=rank, b=area. Initiator ticks + snapshots clock.
  kPutApply = 3,     ///< a=src, b=area, c=bytes. Home applies: check, store, ack.
  kPutAck = 4,       ///< a=rank, b=area. Initiator merges the ack's home clock.
  kGetIssue = 5,     ///< a=rank, b=area.
  kGetApply = 6,     ///< a=src, b=area, c=bytes. Home serves: check, store V.
  kGetMerge = 7,     ///< a=rank, b=area. Initiator merges the response clock.
  kLock = 8,         ///< a=rank, b=area. Grant arrived: tick + merge handoff.
  kUnlockIssue = 9,  ///< a=rank, b=area. Holder ticks + sends release clock.
  kUnlockApply = 10, ///< a=src, b=area. Home merges release into the handoff.
  // --- shared (both backends) ---
  kSignal = 11,      ///< a=src, b=dst, c=tag. Sender ticks + snapshots clock.
  kWaitMatch = 12,   ///< a=self, b=src, c=tag, d=sender clock component at
                     ///< send — uniquely identifies WHICH signal was consumed
                     ///< (same-channel signals can reorder under perturbation).
  // --- threaded backend (one event per op, stamped at its lock-protected
  //     linearization point; global order via an atomic sequence) ---
  kThreadPut = 13,   ///< a=rank, b=area, c=bytes.
  kThreadGet = 14,   ///< a=rank, b=area, c=bytes.
  kThreadLock = 15,  ///< a=rank, b=area. Stamped at grant, inside the lock.
  kThreadUnlock = 16,///< a=rank, b=area. Stamped at the handoff install.
};

inline constexpr std::uint8_t kMaxEventKind = 16;

/// How many of a..d the kind uses on the wire.
constexpr int field_count(EventKind kind) {
  switch (kind) {
    case EventKind::kTick:
      return 1;
    case EventKind::kPutIssue:
    case EventKind::kPutAck:
    case EventKind::kGetIssue:
    case EventKind::kGetMerge:
    case EventKind::kLock:
    case EventKind::kUnlockIssue:
    case EventKind::kUnlockApply:
    case EventKind::kThreadLock:
    case EventKind::kThreadUnlock:
      return 2;
    case EventKind::kPutApply:
    case EventKind::kGetApply:
    case EventKind::kSignal:
    case EventKind::kThreadPut:
    case EventKind::kThreadGet:
      return 3;
    case EventKind::kWaitMatch:
      return 4;
  }
  return 0;
}

std::string to_string(EventKind kind);

struct Event {
  EventKind kind = EventKind::kTick;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t d = 0;

  bool operator==(const Event&) const = default;
};

/// One public-memory area, in registration (allocation) order. The flat
/// index into this table is the `area` operand of every event.
struct AreaEntry {
  Rank home = kInvalidRank;
  std::uint64_t size = 0;
  std::string name;

  bool operator==(const AreaEntry&) const = default;
};

/// A race verdict folded to its schedule-stable core: which area, which
/// accessor, which kind, how many times. Clocks and event ids are omitted
/// on purpose — the signature must be comparable between a live run and a
/// replay fold that never assigns event ids.
struct RaceCount {
  std::uint64_t area = 0;  ///< flat index into the log's area table.
  Rank accessor = kInvalidRank;
  core::AccessKind kind = core::AccessKind::kRead;
  std::uint64_t count = 0;

  bool operator==(const RaceCount&) const = default;
  bool operator<(const RaceCount& other) const {
    if (area != other.area) return area < other.area;
    if (accessor != other.accessor) return accessor < other.accessor;
    return static_cast<int>(kind) < static_cast<int>(other.kind);
  }
};

/// The verdict of a whole run, in canonical (sorted) form. Embedded in the
/// log footer by the recorder so any later replay can detect divergence.
struct VerdictSignature {
  bool completed = false;
  std::vector<Rank> stuck_ranks;   ///< sorted ascending.
  std::vector<RaceCount> races;    ///< sorted by (area, accessor, kind).

  bool operator==(const VerdictSignature&) const = default;
  std::string to_string() const;
};

/// Maps (home rank, per-segment AreaId) to the flat registration index the
/// log speaks. Both recorder and replay maintain one; registration order is
/// the allocation order, which is deterministic per program.
class AreaIndex {
 public:
  /// Registers the next area; returns its flat index.
  std::uint64_t add(Rank home, std::uint32_t id);
  std::uint64_t at(Rank home, std::uint32_t id) const;  ///< REQUIREs presence.
  bool contains(Rank home, std::uint32_t id) const;
  std::size_t size() const { return flat_.size(); }

 private:
  static std::uint64_t key(Rank home, std::uint32_t id) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(home)) << 32) |
           id;
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> flat_;  // (key, index)
};

/// Rebuilds the (home, AreaId) → flat mapping from a parsed log's area
/// table. Sound because PublicSegment assigns AreaIds 0,1,2,... per home in
/// allocation order — the same order the table records.
AreaIndex make_area_index(const std::vector<AreaEntry>& areas);

struct LogHeader {
  std::uint32_t nprocs = 0;
  Backend backend = Backend::kSim;
  core::DetectorMode mode = core::DetectorMode::kOff;
  bool lock_clock_handoff = true;
  bool acked_puts = true;

  bool operator==(const LogHeader&) const = default;
};

/// A fully materialized log: what the recorder writes, what replay reads.
struct Log {
  LogHeader header;
  std::vector<AreaEntry> areas;
  /// Free-form provenance (program text, seeds, fault plan...) in insertion
  /// order; purely informational except where tools re-execute from it.
  std::vector<std::pair<std::string, std::string>> metadata;
  std::vector<Event> events;
  VerdictSignature live;

  bool operator==(const Log&) const = default;

  const std::string* find_metadata(std::string_view key) const;

  std::vector<std::byte> serialize() const;

  /// Parses `bytes`; on failure returns nullopt and sets `*error` to a
  /// diagnostic starting with a bracketed code (see file header).
  static std::optional<Log> parse(std::span<const std::byte> bytes,
                                  std::string* error);
};

/// FNV-1a 64 over `bytes` — the trailing integrity checksum.
std::uint64_t fnv1a(std::span<const std::byte> bytes);

/// Whole-file helpers. `write_file` REQUIREs success (caller owns the
/// directory); `read_file` returns nullopt with a diagnostic for tools.
void write_file(const std::string& path, std::span<const std::byte> bytes);
std::optional<std::vector<std::byte>> read_file(const std::string& path,
                                                std::string* error);

}  // namespace dsmr::record
