#include "explore/executor.hpp"

#include "record/replay.hpp"
#include "util/assert.hpp"

namespace dsmr::explore {

Executor::Executor(const FlatProgram* program) : program_(program) {
  DSMR_REQUIRE(program != nullptr, "executor needs a program");
  reset();
}

void Executor::reset() {
  const auto n = static_cast<std::size_t>(program_->nprocs);
  cursor_.assign(n, 0);
  count_.assign(n, 0);
  mail_.clear();
  events_.clear();
  steps_executed_ = 0;
}

bool Executor::rank_done(Rank rank) const {
  const auto r = static_cast<std::size_t>(rank);
  return cursor_[r] >= program_->steps[r].size();
}

bool Executor::all_done() const {
  for (Rank r = 0; r < program_->nprocs; ++r) {
    if (!rank_done(r)) return false;
  }
  return true;
}

const Step* Executor::next_step(Rank rank) const {
  const auto r = static_cast<std::size_t>(rank);
  if (cursor_[r] >= program_->steps[r].size()) return nullptr;
  return &program_->steps[r][cursor_[r]];
}

bool Executor::step_enabled(Rank rank) const {
  const Step* step = next_step(rank);
  if (step == nullptr) return false;
  if (step->kind != StepKind::kWait) return true;
  const auto queue = mail_.find({rank, step->tag});
  return queue != mail_.end() && !queue->second.empty();
}

std::vector<Rank> Executor::enabled() const {
  std::vector<Rank> out;
  for (Rank r = 0; r < program_->nprocs; ++r) {
    if (step_enabled(r)) out.push_back(r);
  }
  return out;
}

std::vector<Rank> Executor::unfinished() const {
  std::vector<Rank> out;
  for (Rank r = 0; r < program_->nprocs; ++r) {
    if (!rank_done(r)) out.push_back(r);
  }
  return out;
}

std::pair<Rank, std::uint64_t> Executor::peek_match(Rank rank) const {
  const Step* step = next_step(rank);
  DSMR_CHECK_MSG(step != nullptr && step->kind == StepKind::kWait,
                 "peek_match on a non-wait step");
  const auto queue = mail_.find({rank, step->tag});
  DSMR_CHECK_MSG(queue != mail_.end() && !queue->second.empty(),
                 "peek_match on a blocked wait");
  return queue->second.front();
}

ExecutedStep Executor::peek_executed(Rank rank) const {
  const Step* step = next_step(rank);
  DSMR_CHECK_MSG(step != nullptr, "peek_executed past the end of rank "
                                      << rank << "'s program");
  ExecutedStep exec;
  exec.rank = rank;
  exec.step_index = cursor_[static_cast<std::size_t>(rank)];
  exec.step = *step;
  if (step->kind == StepKind::kSignal) {
    // Every event ticks the clock once, so the send stamp is the count
    // after the signal's own event.
    exec.sent_d = count_[static_cast<std::size_t>(rank)] + 1;
  } else if (step->kind == StepKind::kWait && step_enabled(rank)) {
    const auto [src, d] = peek_match(rank);
    exec.matched_src = src;
    exec.matched_d = d;
  }
  return exec;
}

ExecutedStep Executor::execute(Rank rank) {
  DSMR_CHECK_MSG(step_enabled(rank), "execute of a disabled rank " << rank);
  ExecutedStep exec = peek_executed(rank);
  const auto r = static_cast<std::size_t>(rank);
  const Step& step = exec.step;
  const auto a = static_cast<std::uint64_t>(rank);
  switch (step.kind) {
    case StepKind::kTick:
      ++count_[r];
      events_.push_back({record::EventKind::kTick, a, 0, 0, 0});
      break;
    case StepKind::kAccess: {
      if (step.lock != -1) {
        ++count_[r];
        events_.push_back({record::EventKind::kThreadLock, a,
                           static_cast<std::uint64_t>(step.lock), 0, 0});
      }
      ++count_[r];
      events_.push_back({step.write ? record::EventKind::kThreadPut
                                    : record::EventKind::kThreadGet,
                         a, static_cast<std::uint64_t>(step.area),
                         program_->area_bytes, 0});
      if (step.lock != -1) {
        ++count_[r];
        events_.push_back({record::EventKind::kThreadUnlock, a,
                           static_cast<std::uint64_t>(step.lock), 0, 0});
      }
      break;
    }
    case StepKind::kSignal:
      ++count_[r];
      events_.push_back({record::EventKind::kSignal, a,
                         static_cast<std::uint64_t>(step.peer), step.tag, 0});
      mail_[{step.peer, step.tag}].push_back({rank, count_[r]});
      DSMR_CHECK_MSG(count_[r] == exec.sent_d, "send stamp out of step");
      break;
    case StepKind::kWait: {
      auto& queue = mail_[{rank, step.tag}];
      queue.pop_front();
      ++count_[r];
      events_.push_back({record::EventKind::kWaitMatch, a,
                         static_cast<std::uint64_t>(exec.matched_src), step.tag,
                         exec.matched_d});
      break;
    }
  }
  ++cursor_[r];
  ++steps_executed_;
  return exec;
}

std::string Executor::scheduler_digest() const {
  std::string out;
  for (std::size_t r = 0; r < cursor_.size(); ++r) {
    out += "r" + std::to_string(r) + "@" + std::to_string(cursor_[r]) + "#" +
           std::to_string(count_[r]) + "\n";
  }
  for (const auto& [key, queue] : mail_) {
    if (queue.empty()) continue;
    out += "mail r" + std::to_string(key.first) + " t" +
           std::to_string(key.second) + ":";
    for (const auto& [src, d] : queue) {
      out += " " + std::to_string(src) + "@" + std::to_string(d);
    }
    out += "\n";
  }
  return out;
}

record::Log make_witness_log(const FlatProgram& program,
                             const std::vector<record::Event>& events,
                             core::DetectorMode mode, bool completed,
                             const std::vector<Rank>& stuck) {
  record::Log log;
  log.header.nprocs = static_cast<std::uint32_t>(program.nprocs);
  log.header.backend = record::Backend::kThread;
  log.header.mode = mode;
  log.header.lock_clock_handoff = true;
  log.header.acked_puts = true;
  for (int area = 0; area < program.areas; ++area) {
    record::AreaEntry entry;
    entry.home = static_cast<Rank>(area % program.nprocs);
    entry.size = program.area_bytes;
    entry.name = "fz" + std::to_string(area);
    log.areas.push_back(entry);
  }
  log.events = events;
  log.live.completed = completed;
  log.live.stuck_ranks = stuck;
  const record::ReplayResult folded = record::replay_fold(log, mode);
  DSMR_CHECK_MSG(folded.ok(), "synthesized interleaving does not fold: "
                                  << folded.error);
  log.live = folded.signature;
  return log;
}

}  // namespace dsmr::explore
