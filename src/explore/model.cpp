#include "explore/model.hpp"

#include <numeric>

#include "fuzz/thread_harness.hpp"
#include "util/assert.hpp"

namespace dsmr::explore {

std::string Step::to_string() const {
  switch (kind) {
    case StepKind::kTick:
      return "tick";
    case StepKind::kAccess: {
      std::string out = write ? "put" : "get";
      out += "(a" + std::to_string(area);
      if (lock != -1) out += ",L" + std::to_string(lock);
      out += ")";
      return out;
    }
    case StepKind::kSignal:
      return "signal(r" + std::to_string(peer) + ",t" + std::to_string(tag) + ")";
    case StepKind::kWait:
      return "wait(t" + std::to_string(tag) + ")";
  }
  return "?";
}

std::size_t FlatProgram::total_steps() const {
  return std::accumulate(
      steps.begin(), steps.end(), std::size_t{0},
      [](std::size_t acc, const std::vector<Step>& s) { return acc + s.size(); });
}

std::size_t FlatProgram::max_rank_steps() const {
  std::size_t best = 0;
  for (const std::vector<Step>& s : steps) best = std::max(best, s.size());
  return best;
}

namespace {

/// The dissemination barrier for phase `ph`, rank `r` — the same rounds,
/// tags, and signal-then-wait order as thread_harness.cpp run_boundary.
void flatten_boundary(const fuzz::Phase& phase, std::size_t ph, int nprocs,
                      Rank r, std::vector<Step>& out) {
  const bool arrive_only =
      phase.entry.kind == fuzz::BoundaryKind::kBarrier && phase.skip_rank == r;
  for (std::uint32_t round = 0; (1 << round) < nprocs; ++round) {
    const int dist = 1 << round;
    Step send;
    send.kind = StepKind::kSignal;
    send.peer = static_cast<Rank>((static_cast<int>(r) + dist) % nprocs);
    send.tag = fuzz::boundary_signal_tag(ph, round);
    out.push_back(send);
    if (!arrive_only) {
      Step wait;
      wait.kind = StepKind::kWait;
      wait.tag = fuzz::boundary_signal_tag(ph, round);
      out.push_back(wait);
    }
  }
}

}  // namespace

FlatProgram flatten_program(const fuzz::Program& program) {
  std::string error;
  DSMR_REQUIRE(fuzz::validate(program, &error), "flatten of invalid program: " << error);
  FlatProgram flat;
  flat.nprocs = program.nprocs;
  flat.areas = program.areas;
  flat.area_bytes = program.area_bytes;
  flat.steps.resize(static_cast<std::size_t>(program.nprocs));
  for (Rank r = 0; r < program.nprocs; ++r) {
    std::vector<Step>& out = flat.steps[static_cast<std::size_t>(r)];
    for (std::size_t ph = 0; ph < program.phases.size(); ++ph) {
      const fuzz::Phase& phase = program.phases[ph];
      if (ph > 0) flatten_boundary(phase, ph, program.nprocs, r, out);
      for (const fuzz::Op& op : phase.ops[static_cast<std::size_t>(r)]) {
        Step step;
        switch (op.kind) {
          case fuzz::OpKind::kPut:
          case fuzz::OpKind::kGet:
            step.kind = StepKind::kAccess;
            step.write = op.kind == fuzz::OpKind::kPut;
            step.area = op.area;
            step.lock = op.locked ? (op.lock == -1 ? op.area : op.lock) : -1;
            break;
          case fuzz::OpKind::kSignal:
            step.kind = StepKind::kSignal;
            step.peer = static_cast<Rank>(op.peer);
            step.tag = op.tag;
            break;
          case fuzz::OpKind::kWait:
            step.kind = StepKind::kWait;
            step.tag = op.tag;
            break;
          case fuzz::OpKind::kSleep:
          case fuzz::OpKind::kCompute:
            step.kind = StepKind::kTick;
            break;
        }
        out.push_back(step);
      }
    }
  }
  return flat;
}

bool dependent(const ExecutedStep& a, const ExecutedStep& b, int nprocs,
               const IndependenceOptions& options) {
  if (a.rank == b.rank) return true;  // program order.
  const Step& sa = a.step;
  const Step& sb = b.step;
  if (sa.kind == StepKind::kTick || sb.kind == StepKind::kTick) return false;

  if (sa.kind == StepKind::kAccess && sb.kind == StepKind::kAccess) {
    if (options.coarse_same_home) {
      return sa.area % nprocs == sb.area % nprocs;
    }
    if (sa.area == sb.area) return true;
    if (sa.lock != -1 && sa.lock == sb.lock) return true;  // handoff overwrite.
    return false;
  }

  if (sa.kind == StepKind::kSignal && sb.kind == StepKind::kSignal) {
    // FIFO append order to the same (dst, tag) mailbox decides which send a
    // later wait consumes.
    return sa.peer == sb.peer && sa.tag == sb.tag;
  }

  // A wait is dependent with exactly the signal it consumed: swapping them
  // changes what the wait matches (or whether it is enabled at all). A
  // co-enabled signal to the same channel behind an older queued send
  // commutes — the wait pops the pre-existing front in both orders.
  if (sa.kind == StepKind::kSignal && sb.kind == StepKind::kWait) {
    return b.matched_src == a.rank && b.matched_d == a.sent_d;
  }
  if (sa.kind == StepKind::kWait && sb.kind == StepKind::kSignal) {
    return a.matched_src == b.rank && a.matched_d == b.sent_d;
  }

  // Wait/wait of different ranks: distinct mailboxes (keyed by receiver).
  return false;
}

}  // namespace dsmr::explore
