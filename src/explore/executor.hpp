// Deterministic schedule executor for exploration: runs a FlatProgram one
// chosen transition at a time and synthesizes the record::Log event stream
// the threaded backend would have recorded under that interleaving.
//
// The executor holds ONLY scheduling state — per-rank step cursors,
// per-rank event counts (each log event ticks the folding clock exactly
// once, so a rank's clock component IS its event count), and FIFO signal
// mailboxes per (destination, tag). It never touches detector state: at
// the end of a run the caller folds the synthesized log through
// record::replay_fold, the single source of truth for verdicts. That keeps
// the explorer and the detector impossible to diverge by construction.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "core/rules.hpp"
#include "explore/model.hpp"
#include "record/log.hpp"

namespace dsmr::explore {

class Executor {
 public:
  explicit Executor(const FlatProgram* program);

  void reset();

  int nprocs() const { return program_->nprocs; }
  bool rank_done(Rank rank) const;
  bool all_done() const;

  /// The next (not yet executed) step of `rank`; nullptr when done.
  const Step* next_step(Rank rank) const;

  /// True when `rank` has a next step that can execute now (a wait needs a
  /// queued matching signal).
  bool step_enabled(Rank rank) const;

  /// All enabled ranks, ascending.
  std::vector<Rank> enabled() const;

  /// Ranks with unexecuted steps (enabled or blocked), ascending.
  std::vector<Rank> unfinished() const;

  /// Executes `rank`'s next step (must be enabled), appending its log
  /// events and returning the executed-transition record (with the dynamic
  /// signal/wait match fields filled in).
  ExecutedStep execute(Rank rank);

  /// For an enabled kWait next step: the (sender, stamp) it would consume.
  std::pair<Rank, std::uint64_t> peek_match(Rank rank) const;

  /// The dynamic view of `rank`'s next step, as if executed now — what
  /// execute() would return. Used by the sleep-set filter and the
  /// independence property test, which need dependence of *pending*
  /// transitions. For a blocked wait the match fields stay unset (-1/0),
  /// which can never equal a real send stamp (stamps are >= 1).
  ExecutedStep peek_executed(Rank rank) const;

  const std::vector<record::Event>& events() const { return events_; }
  std::size_t steps_executed() const { return steps_executed_; }

  /// Canonical dump of the scheduler state (cursors, counts, mailbox FIFO
  /// order). The fold keys undelivered signals by sender, so same-channel
  /// sends from different ranks commute in *fold* state — but their mailbox
  /// order decides which one a future wait consumes, so it is semantic
  /// state too. The property test compares scheduler_digest +
  /// record::replay_state_digest; together they capture the full model
  /// state.
  std::string scheduler_digest() const;

 private:
  const FlatProgram* program_;
  std::vector<std::size_t> cursor_;        ///< next step index per rank.
  std::vector<std::uint64_t> count_;       ///< events emitted per rank.
  /// (dst, tag) -> FIFO of (src, sender stamp) for unconsumed signals.
  std::map<std::pair<Rank, std::uint64_t>, std::deque<std::pair<Rank, std::uint64_t>>>
      mail_;
  std::vector<record::Event> events_;
  std::size_t steps_executed_ = 0;
};

/// Seals an explored interleaving as a replayable witness log: kThread
/// header (dual-clock, lock handoff, acked puts — the thread harness
/// defaults), the program's "fz<i>" area table, the synthesized events,
/// and the folded verdict signature in the live footer (the caller adds
/// forensic metadata — program text, schedule — before export).
record::Log make_witness_log(const FlatProgram& program,
                             const std::vector<record::Event>& events,
                             core::DetectorMode mode, bool completed,
                             const std::vector<Rank>& stuck);

}  // namespace dsmr::explore
