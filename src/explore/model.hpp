// The transition model for exhaustive schedule exploration (ROADMAP item 4).
//
// Exploration enumerates interleavings of the *threaded-backend op model*:
// each transition is one atomic micro-op of fuzz/thread_harness.cpp's
// run_rank — a put/get (with its lock/unlock fused in), a signal, a wait,
// or a tick — and every explored interleaving is materialized as a
// record::Log of kThread* events, so the verdict comes from the one true
// detector fold (record::replay_fold) and every racy interleaving is a
// witness that replays byte-for-byte through dsmr_replay AND back onto
// real OS threads via ReplayGate.
//
// Why the thread model and not gated sim execution (the issue sketches
// "over the sim engine"): the sim fabric merges the initiator's clock into
// the HOME rank's node clock on every kPutApply/kGetApply, so two accesses
// to *different* areas with the same home do not commute there — the
// issue's prescribed independence relation (disjoint areas commute) is
// simply false in the sim model, and DPOR built on it would be unsound.
// In the thread model the relation holds, and the witness story comes for
// free. docs/testing.md "Exhaustive exploration" spells out the contract.
//
// Independence is *finer* than the issue's sketch in one deliberate way:
// same-area read/read pairs are DEPENDENT. AdaptiveClock::store_event
// overwrites the stored V clock and last_access_rank on every access,
// reads included, so two reads of one area do not commute in detector
// state (the final V is the last reader's clock). The property test in
// tests/test_explore.cpp pins this: marking read/read independent is the
// "deliberately coarsened relation must fail" case too, alongside the
// home-granular coarsening below.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/program.hpp"
#include "util/types.hpp"

namespace dsmr::explore {

enum class StepKind : std::uint8_t {
  kTick,    ///< sleep / compute — one kTick event, no shared state.
  kAccess,  ///< put or get, lock/unlock fused when locked.
  kSignal,  ///< tagged signal to a peer.
  kWait,    ///< blocking wait; consumes the FIFO-front matching signal.
};

/// One atomic transition of one rank. Fusing a locked access into a single
/// step (lock+access+unlock, three log events) is state-complete: no other
/// rank can take the same lock between grant and release (the contending
/// step would simply run before or after, which the interleaving already
/// enumerates), and any unrelated step interleaved inside the critical
/// section folds to the same detector state as placing it outside.
struct Step {
  StepKind kind = StepKind::kTick;
  bool write = false;      ///< kAccess: put (true) or get (false).
  int area = -1;           ///< kAccess: flat area index.
  int lock = -1;           ///< kAccess: flat lock-area index, -1 = unlocked.
  Rank peer = -1;          ///< kSignal: destination rank.
  std::uint64_t tag = 0;   ///< kSignal / kWait.

  std::string to_string() const;
};

/// A fuzz::Program lowered to per-rank step sequences — op for op, phase
/// boundaries expanded to the dissemination barrier's signal/wait rounds
/// (tags from fuzz::boundary_signal_tag), exactly mirroring
/// thread_harness.cpp run_rank so the synthesized event stream is the one
/// a gated ThreadWorld will accept.
struct FlatProgram {
  int nprocs = 0;
  int areas = 0;
  std::uint32_t area_bytes = 0;
  std::vector<std::vector<Step>> steps;  ///< [rank] -> transitions in order.

  std::size_t total_steps() const;
  std::size_t max_rank_steps() const;
};

FlatProgram flatten_program(const fuzz::Program& program);

/// A transition as it actually executed: the static step plus the dynamic
/// match information that decides signal/wait dependence.
struct ExecutedStep {
  Rank rank = -1;
  std::size_t step_index = 0;   ///< index into FlatProgram::steps[rank].
  Step step;
  Rank matched_src = -1;        ///< kWait: sender of the consumed signal.
  std::uint64_t matched_d = 0;  ///< kWait: sender's clock stamp at the send.
  std::uint64_t sent_d = 0;     ///< kSignal: own clock stamp of the send.
};

struct IndependenceOptions {
  /// Deliberately coarsened relation for the DPOR soundness property test:
  /// accesses are dependent iff their areas share a HOME rank
  /// (area % nprocs). This marks truly-commuting pairs (different areas,
  /// same home) dependent — harmless for soundness but it must FAIL the
  /// iff-direction of the property test, proving the test has teeth.
  bool coarse_same_home = false;
};

/// The dependence relation DPOR and the sleep sets are built on. True when
/// the two executed transitions do NOT commute on detector state:
///  * same rank (program order);
///  * accesses to the same area — any kinds (see header comment), or both
///    locked with the same lock area (the unlock handoff clock is an
///    overwrite, so grant order shows);
///  * signals to the same (destination, tag) channel (FIFO append order);
///  * a wait and exactly the signal it consumed (covers the enabling
///    direction; a co-enabled same-channel signal/wait pair with an older
///    queued signal genuinely commutes — the wait pops the pre-existing
///    front either way);
///  * everything involving a tick, waits of different ranks, and all other
///    pairs commute.
bool dependent(const ExecutedStep& a, const ExecutedStep& b, int nprocs,
               const IndependenceOptions& options = {});

}  // namespace dsmr::explore
