// Stateless exhaustive exploration with dynamic partial-order reduction
// and sleep sets (Flanagan & Godefroid; Godefroid's sleep-set discipline;
// CDSChecker is the engineering exemplar — see ROADMAP item 4).
//
// The explorer drives explore::Executor through a depth-first search over
// scheduling choices. Every maximal run is folded through
// record::replay_fold and its verdict signature collected; DPOR computes
// backtrack points from explore::dependent() over the executed trace's
// happens-before clocks, and sleep sets kill branches whose first step
// commutes with an already-explored sibling subtree. With both on, the
// search visits at least one representative of every Mazurkiewicz trace —
// so over the reduced space, "no racy interleaving" is a CERTIFICATE, not
// a sample, and every kSometimes manifestation rate becomes a proof of
// existence (the witness log replays it on real threads).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/rules.hpp"
#include "explore/executor.hpp"
#include "explore/model.hpp"
#include "fuzz/program.hpp"
#include "record/log.hpp"

namespace dsmr::explore {

struct ExploreOptions {
  core::DetectorMode mode = core::DetectorMode::kDualClock;
  /// DPOR backtracking off => every node backtracks into every enabled
  /// rank: naive full enumeration, the cross-check baseline.
  bool dpor = true;
  /// Sleep sets compose with either setting; the naive baseline runs with
  /// both off.
  bool sleep_sets = true;
  IndependenceOptions independence;
  /// Explored + sleep-blocked prefixes budget; tripping it leaves
  /// ExploreReport::limit set and the exploration incomplete.
  std::uint64_t max_interleavings = 1u << 20;
  /// Total executed transitions budget (0 = unlimited).
  std::uint64_t max_transitions = 0;
  /// Witness logs kept (one per distinct racy signature, first sighting).
  std::size_t max_witnesses = 4;
};

struct ExploreReport {
  /// True iff the DFS exhausted the (reduced) space within budget. Only a
  /// complete exploration certifies; an incomplete one is reported as a
  /// limit failure by check_exhaustive.
  bool complete = false;
  std::string limit;  ///< which budget tripped; "" when complete.

  std::uint64_t interleavings = 0;       ///< maximal runs executed.
  std::uint64_t deadlocks = 0;           ///< runs that did not complete.
  std::uint64_t sleep_blocked = 0;       ///< prefixes killed by sleep sets.
  std::uint64_t transitions = 0;         ///< transitions executed (with replays).
  std::uint64_t pruned_branches = 0;     ///< enabled-but-never-explored choices.
  std::uint64_t racy_interleavings = 0;  ///< runs with >= 1 race report.
  std::uint64_t planted_flagged = 0;     ///< runs flagging the planted area.

  std::set<std::string> signatures;  ///< distinct verdict signatures.
  std::set<std::string> racy_areas;  ///< area names flagged in any run.
  /// Replayable witnesses: kThread logs (dsmr_replay / ReplayGate ready),
  /// one per distinct racy signature, with program text + schedule in the
  /// metadata.
  std::vector<record::Log> witnesses;

  /// The certificate: every interleaving of the reduced space ran clean.
  bool certified_clean() const {
    return complete && deadlocks == 0 && racy_interleavings == 0;
  }
};

/// Explores every (reduced) interleaving of `program` on the
/// threaded-backend op model. Deterministic: same program + options =>
/// identical report, including all counters.
ExploreReport explore_program(const fuzz::Program& program,
                              const ExploreOptions& options = {});

/// The size gate for the exhaustive fuzz-grid invariant (ISSUE 9: <= 3
/// ranks, <= 8 IR ops per rank). Sleeps/computes flatten to kTick —
/// independent of everything, pruned to one ordering by sleep sets — so
/// only non-tick ops count against the per-rank cap.
struct Eligibility {
  bool eligible = false;
  std::string reason;  ///< why not, when ineligible.
};
Eligibility exhaustive_eligible(const fuzz::Program& program, int max_ranks = 3,
                                std::size_t max_ops_per_rank = 8);

/// The exhaustive invariant, per expectation: kClean must certify clean,
/// kRacy must flag the planted area on EVERY interleaving, kSometimes must
/// flag it on AT LEAST ONE (the rate-to-proof upgrade); any deadlock or
/// tripped budget is a failure. Returns human-readable failures, empty on
/// pass.
std::vector<std::string> check_exhaustive(const fuzz::Program& program,
                                          const ExploreReport& report);

/// Planted-bug area name ("fz<i>") for non-clean programs, "" for clean.
std::string planted_area_name(const fuzz::Program& program);

}  // namespace dsmr::explore
