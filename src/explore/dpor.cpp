#include "explore/dpor.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "util/assert.hpp"

namespace dsmr::explore {

namespace {

using HbClock = std::vector<std::uint64_t>;

/// One frame of the DFS path. Persistent across re-executions: the
/// explorer is stateless in the model-checking sense (it re-runs the
/// prefix from scratch after every backtrack), but the search frames — who
/// was enabled, which choices are done, which are asleep, where DPOR wants
/// to backtrack — live here.
struct Node {
  std::vector<Rank> enabled;  ///< at node creation, ascending.
  std::set<Rank> sleep;       ///< inherited-filtered + completed choices.
  std::set<Rank> backtrack;   ///< DPOR backtrack set (subset of enabled).
  std::set<Rank> done;        ///< choices whose subtree is explored.
  Rank chosen = kInvalidRank; ///< the choice the current path takes.
  ExecutedStep exec;          ///< `chosen`'s executed transition.
  HbClock clock;              ///< exec's HB clock over dependent().
};

class Explorer {
 public:
  Explorer(const fuzz::Program& program, const ExploreOptions& options)
      : program_(program),
        options_(options),
        flat_(flatten_program(program)),
        executor_(&flat_),
        planted_(planted_area_name(program)) {}

  ExploreReport run() {
    while (true) {
      if (budget_tripped()) break;
      descend();
      if (!backtrack()) {
        report_.complete = report_.limit.empty();
        break;
      }
    }
    return std::move(report_);
  }

 private:
  bool budget_tripped() {
    if (report_.interleavings + report_.sleep_blocked >=
        options_.max_interleavings) {
      report_.limit = "max-interleavings";
      return true;
    }
    if (options_.max_transitions != 0 &&
        report_.transitions >= options_.max_transitions) {
      report_.limit = "max-transitions";
      return true;
    }
    return false;
  }

  /// Re-executes the stored prefix (the last node under its — possibly
  /// new — choice), then extends the path with smallest-first choices
  /// until the run is maximal or sleep-blocked.
  void descend() {
    executor_.reset();
    const auto n = static_cast<std::size_t>(flat_.nprocs);
    cv_.assign(n, HbClock(n, 0));
    std::set<Rank> next_sleep;
    for (std::size_t depth = 0; depth < nodes_.size(); ++depth) {
      Node& node = nodes_[depth];
      const bool fresh = depth + 1 == nodes_.size() && node.clock.empty();
      if (fresh) {
        next_sleep = execute_choice(node, depth);
      } else {
        // Unchanged prefix: replay the stored transition; its clock and
        // backtrack contributions were computed when it was first taken.
        executor_.execute(node.chosen);
        ++report_.transitions;
        cv_[static_cast<std::size_t>(node.exec.rank)] = node.clock;
        // next_sleep of an interior node is only needed at the frontier;
        // the children frames already exist.
      }
    }
    // Extend to a maximal run.
    while (true) {
      std::vector<Rank> enabled = executor_.enabled();
      if (enabled.empty()) {
        record_terminal();
        return;
      }
      Rank pick = kInvalidRank;
      for (const Rank r : enabled) {
        if (next_sleep.count(r) == 0) {
          pick = r;
          break;
        }
      }
      if (pick == kInvalidRank) {
        // Every enabled transition sleeps: this prefix is covered by
        // already-explored sibling orders.
        ++report_.sleep_blocked;
        return;
      }
      Node node;
      node.enabled = std::move(enabled);
      node.sleep = std::move(next_sleep);
      node.chosen = pick;
      node.done.insert(pick);
      if (options_.dpor) {
        node.backtrack.insert(pick);
      } else {
        node.backtrack.insert(node.enabled.begin(), node.enabled.end());
      }
      nodes_.push_back(std::move(node));
      next_sleep = execute_choice(nodes_.back(), nodes_.size() - 1);
    }
  }

  /// Executes node.chosen, computes its HB clock, applies the DPOR
  /// backtrack rule against the prefix, and returns the child's sleep set.
  std::set<Rank> execute_choice(Node& node, std::size_t depth) {
    // Pending transitions of sleeping ranks, peeked BEFORE the choice
    // executes: the child keeps exactly the sleepers that commute with it.
    std::vector<std::pair<Rank, ExecutedStep>> sleepers;
    if (options_.sleep_sets) {
      sleepers.reserve(node.sleep.size());
      for (const Rank r : node.sleep) {
        sleepers.emplace_back(r, executor_.peek_executed(r));
      }
    }
    node.exec = executor_.execute(node.chosen);
    ++report_.transitions;

    const auto p = static_cast<std::size_t>(node.exec.rank);
    const HbClock pre = cv_[p];
    HbClock clock = pre;
    for (std::size_t j = 0; j < depth; ++j) {
      const Node& prior = nodes_[j];
      if (!dependent(prior.exec, node.exec, flat_.nprocs,
                     options_.independence)) {
        continue;
      }
      const auto q = static_cast<std::size_t>(prior.exec.rank);
      if (options_.dpor && q != p && prior.clock[q] > pre[q]) {
        add_backtrack(j, node.exec.rank, pre);
      }
      for (std::size_t i = 0; i < clock.size(); ++i) {
        clock[i] = std::max(clock[i], prior.clock[i]);
      }
    }
    ++clock[p];
    node.clock = clock;
    cv_[p] = std::move(clock);

    std::set<Rank> child_sleep;
    for (const auto& [r, pending] : sleepers) {
      if (!dependent(pending, node.exec, flat_.nprocs, options_.independence)) {
        child_sleep.insert(r);
      }
    }
    return child_sleep;
  }

  /// The DPOR rule: transition `p` (about to extend the path) is dependent
  /// with and concurrent to nodes_[j]'s transition, so some transition of
  /// `p`'s branch must also be tried at j. Prefer a rank whose transition
  /// at j happens-before p's branch (p itself qualifies); if none is
  /// enabled at j, conservatively backtrack into everything enabled there.
  void add_backtrack(std::size_t j, Rank p, const HbClock& pre) {
    Node& target = nodes_[j];
    std::set<Rank> candidates;
    for (const Rank q : target.enabled) {
      if (q == p) {
        candidates.insert(q);
        continue;
      }
      for (std::size_t m = j + 1; m < nodes_.size(); ++m) {
        const auto qi = static_cast<std::size_t>(q);
        if (nodes_[m].exec.rank == q && nodes_[m].clock[qi] <= pre[qi]) {
          candidates.insert(q);
          break;
        }
      }
    }
    if (!candidates.empty()) {
      target.backtrack.insert(*candidates.begin());
    } else {
      target.backtrack.insert(target.enabled.begin(), target.enabled.end());
    }
  }

  /// Folds the maximal run into the report (and a witness, when racy and
  /// its signature is new).
  void record_terminal() {
    const bool completed = executor_.all_done();
    const std::vector<Rank> stuck = executor_.unfinished();
    record::Log log = make_witness_log(flat_, executor_.events(),
                                       options_.mode, completed, stuck);
    ++report_.interleavings;
    if (!completed) ++report_.deadlocks;
    const bool racy = !log.live.races.empty();
    const bool fresh_signature =
        report_.signatures.insert(log.live.to_string()).second;
    if (!racy) return;
    ++report_.racy_interleavings;
    bool planted_hit = false;
    for (const record::RaceCount& race : log.live.races) {
      const std::string& name = log.areas[race.area].name;
      report_.racy_areas.insert(name);
      planted_hit = planted_hit || name == planted_;
    }
    if (planted_hit && !planted_.empty()) ++report_.planted_flagged;
    if (fresh_signature && report_.witnesses.size() < options_.max_witnesses) {
      log.metadata.emplace_back("tool", "dsmr_explore --exhaustive");
      log.metadata.emplace_back("program", fuzz::serialize(program_));
      log.metadata.emplace_back("schedule", schedule_string());
      log.metadata.emplace_back("interleaving",
                                std::to_string(report_.interleavings - 1));
      report_.witnesses.push_back(std::move(log));
    }
  }

  std::string schedule_string() const {
    std::string out;
    for (const Node& node : nodes_) {
      if (!out.empty()) out += ",";
      out += std::to_string(node.exec.rank);
    }
    return out;
  }

  /// Pops exhausted frames, moving each completed choice into the sleep
  /// set, until a frame has an unexplored backtrack choice. Returns false
  /// when the whole tree is exhausted.
  bool backtrack() {
    while (!nodes_.empty()) {
      Node& node = nodes_.back();
      node.sleep.insert(node.chosen);
      Rank next = kInvalidRank;
      for (const Rank r : node.backtrack) {
        if (node.done.count(r) != 0) continue;
        if (options_.sleep_sets && node.sleep.count(r) != 0) continue;
        next = r;
        break;
      }
      if (next != kInvalidRank) {
        node.chosen = next;
        node.done.insert(next);
        node.exec = ExecutedStep{};
        node.clock.clear();  // marks the frame fresh for descend().
        return true;
      }
      report_.pruned_branches +=
          node.enabled.size() - std::min(node.enabled.size(), node.done.size());
      nodes_.pop_back();
    }
    return false;
  }

  const fuzz::Program& program_;
  const ExploreOptions& options_;
  FlatProgram flat_;
  Executor executor_;
  std::string planted_;
  std::vector<Node> nodes_;
  std::vector<HbClock> cv_;  ///< per rank: clock of its last transition.
  ExploreReport report_;
};

}  // namespace

ExploreReport explore_program(const fuzz::Program& program,
                              const ExploreOptions& options) {
  return Explorer(program, options).run();
}

std::string planted_area_name(const fuzz::Program& program) {
  if (program.expect == fuzz::Expectation::kClean || !program.planted) return "";
  return "fz" + std::to_string(program.planted->area);
}

Eligibility exhaustive_eligible(const fuzz::Program& program, int max_ranks,
                                std::size_t max_ops_per_rank) {
  Eligibility out;
  if (program.nprocs > max_ranks) {
    out.reason = "program has " + std::to_string(program.nprocs) +
                 " ranks, exhaustive cap is " + std::to_string(max_ranks);
    return out;
  }
  for (int r = 0; r < program.nprocs; ++r) {
    // Sleeps and computes flatten to kTick, which is independent of every
    // other transition — sleep sets collapse their orderings, so they do
    // not grow the reduced space and do not count against the gate.
    std::size_t ops = 0;
    for (const fuzz::Phase& phase : program.phases) {
      for (const fuzz::Op& op : phase.ops[static_cast<std::size_t>(r)]) {
        if (op.kind != fuzz::OpKind::kSleep && op.kind != fuzz::OpKind::kCompute) {
          ++ops;
        }
      }
    }
    if (ops > max_ops_per_rank) {
      out.reason = "rank " + std::to_string(r) + " has " +
                   std::to_string(ops) + " non-tick ops, exhaustive cap is " +
                   std::to_string(max_ops_per_rank);
      return out;
    }
  }
  out.eligible = true;
  return out;
}

std::vector<std::string> check_exhaustive(const fuzz::Program& program,
                                          const ExploreReport& report) {
  std::vector<std::string> failures;
  const std::string total = std::to_string(report.interleavings);
  if (!report.limit.empty()) {
    failures.push_back("explore-limit: budget " + report.limit +
                       " tripped after " + total +
                       " interleavings; exploration is not a certificate");
    return failures;
  }
  if (report.deadlocks != 0) {
    failures.push_back("exhaustive-deadlock: " +
                       std::to_string(report.deadlocks) + " of " + total +
                       " interleavings did not complete");
  }
  const std::string planted = planted_area_name(program);
  switch (program.expect) {
    case fuzz::Expectation::kClean:
      if (report.racy_interleavings != 0) {
        std::string areas;
        for (const std::string& name : report.racy_areas) {
          if (!areas.empty()) areas += ",";
          areas += name;
        }
        failures.push_back("exhaustive-clean-race: " + areas + " raced in " +
                           std::to_string(report.racy_interleavings) + " of " +
                           total + " interleavings of a clean program");
      }
      break;
    case fuzz::Expectation::kRacy:
      if (report.planted_flagged != report.interleavings) {
        failures.push_back("exhaustive-racy-missed: planted " + planted +
                           " flagged in only " +
                           std::to_string(report.planted_flagged) + " of " +
                           total + " interleavings");
      }
      break;
    case fuzz::Expectation::kSometimes:
      if (report.planted_flagged == 0) {
        const std::string kind =
            program.planted ? fuzz::to_string(program.planted->kind) : "?";
        failures.push_back("exhaustive-bug-missed: planted " + planted + " (" +
                           kind + ") never flagged across " + total +
                           " interleavings");
      }
      break;
  }
  return failures;
}

}  // namespace dsmr::explore
