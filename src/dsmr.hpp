// dsmr — umbrella header: the full public API in one include.
//
//   #include "dsmr.hpp"
//
// Layers (see DESIGN.md for the dependency structure):
//   runtime::World / runtime::Process — the simulated machine and the
//     instrumented one-sided communication API (put/get/copy, area locks,
//     signals); race reports in World::races(), access log in
//     World::events().
//   pgas::SharedArray / pgas::Team    — distributed arrays and collectives,
//     including the §V.B one-sided reduction.
//   analysis::*                       — offline ground truth, accuracy
//     metrics, clock-truncation ablation, online-replay, seed sweeps.
//   baseline::LocksetDetector         — the Eraser-style comparison point.
//   trace::*                          — JSONL and chrome://tracing export.
#pragma once

#include "analysis/ground_truth.hpp"
#include "analysis/seed_sweep.hpp"
#include "baseline/lockset.hpp"
#include "clocks/lamport.hpp"
#include "clocks/matrix_clock.hpp"
#include "clocks/vector_clock.hpp"
#include "core/event_log.hpp"
#include "core/race_report.hpp"
#include "core/rules.hpp"
#include "core/types.hpp"
#include "mem/global_address.hpp"
#include "mem/public_segment.hpp"
#include "net/fabric.hpp"
#include "net/message.hpp"
#include "net/sim_fabric.hpp"
#include "nic/lock_manager.hpp"
#include "nic/nic.hpp"
#include "nic/node_clock.hpp"
#include "pgas/collectives.hpp"
#include "pgas/distribution.hpp"
#include "pgas/shared_array.hpp"
#include "runtime/process.hpp"
#include "runtime/world.hpp"
#include "sim/engine.hpp"
#include "sim/future.hpp"
#include "sim/task.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/workloads.hpp"
