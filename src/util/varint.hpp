// LEB128 base-128 varints — the one shared integer wire encoding.
//
// Both the compact VectorClock wire format (clocks/vector_clock.hpp) and the
// record/replay event log (record/log.hpp) encode unsigned integers as
// little-endian base-128 varints: 7 value bits per byte, high bit set on
// every byte but the last. Small values (the overwhelmingly common case for
// clock components and event fields at debugging scale) take one byte.
//
// Two decode flavors:
//  * get_varint       — panics (DSMR_REQUIRE) on truncation/overflow; for
//                       in-memory buffers the program itself produced.
//  * try_get_varint   — returns nullopt instead; for untrusted bytes read
//                       off disk, where the caller owes the user a
//                       structured diagnostic rather than a crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace dsmr::util {

/// Size in bytes of the LEB128 encoding of `v`.
constexpr std::size_t varint_size(std::uint64_t v) {
  std::size_t bytes = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++bytes;
  }
  return bytes;
}

/// Appends the LEB128 encoding of `v` to `out`.
inline void put_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

/// Decodes one varint at `*pos`, advancing `*pos`. Returns nullopt if the
/// buffer ends mid-varint or the value would overflow 64 bits (a u64 takes
/// at most 10 bytes and the 10th — shift 63 — may only carry the low bit;
/// anything else would silently drop high bits).
inline std::optional<std::uint64_t> try_get_varint(std::span<const std::byte> in,
                                                   std::size_t* pos) {
  std::size_t p = *pos;
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (p >= in.size()) return std::nullopt;
    const auto byte = static_cast<std::uint64_t>(in[p++]);
    if (!(shift < 64 && (shift < 63 || (byte & 0x7f) <= 1))) return std::nullopt;
    v |= (byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *pos = p;
  return v;
}

/// Strict decode for trusted in-memory buffers: panics on malformed input.
inline std::uint64_t get_varint(std::span<const std::byte> in, std::size_t* pos) {
  const auto v = try_get_varint(in, pos);
  DSMR_REQUIRE(v.has_value(), "varint decode ran past the buffer or overflowed 64 bits");
  return *v;
}

}  // namespace dsmr::util
