// Online statistics and fixed-layout histograms for benchmark reporting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dsmr::util {

/// Welford's online algorithm: numerically stable running mean/variance
/// plus min/max, without storing samples.
class OnlineStats {
 public:
  void add(double x);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const OnlineStats& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Power-of-two bucketed histogram for latency-style distributions.
/// Bucket i holds samples in [2^i, 2^(i+1)); bucket 0 holds [0, 2).
class LogHistogram {
 public:
  LogHistogram();

  void add(std::uint64_t value);
  std::uint64_t count() const { return total_; }

  /// Approximate quantile (q in [0,1]) using the geometric midpoint of the
  /// bucket containing the q-th sample.
  double quantile(double q) const;

  /// Multi-line textual rendering used by the bench binaries.
  std::string render(std::size_t max_rows = 16) const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Fixed-width column table printer: all bench binaries emit their
/// paper-style rows through this, so outputs stay visually consistent.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::string render() const;

  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(std::uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dsmr::util
