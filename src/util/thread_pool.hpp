// Fixed-size worker pool for embarrassingly parallel analysis jobs.
//
// The simulator itself stays single-threaded (a World's determinism depends
// on it), but whole *runs* are pure functions of (config, seed, perturb) and
// share no state — so sweeps and conformance grids fan out across worlds,
// one world per job, and scale with cores. Engine::current() is
// thread_local, so concurrent worlds never observe each other.
//
// Aggregation stays deterministic by construction: jobs write results into
// pre-sized slots indexed by job id, and callers fold the slots in index
// order after wait_idle() — never in completion order.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsmr::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (≥1; values above a sane cap are clamped).
  explicit ThreadPool(int threads);
  ~ThreadPool();  ///< drains the queue, then joins.

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a job. Jobs must not throw (the simulator's failure mode is
  /// panic/abort, never exceptions).
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished executing.
  void wait_idle();

  /// max(1, std::thread::hardware_concurrency) — the CLI default.
  static int hardware_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::uint64_t in_flight_ = 0;  ///< queued + currently executing.
  bool stopping_ = false;
};

/// Runs fn(0..count-1), fanning out over `threads` workers when threads > 1.
/// With threads == 1, runs inline on the calling thread — bit-identical to a
/// plain loop, no pool spun up.
void parallel_for(std::uint64_t count, int threads,
                  const std::function<void(std::uint64_t)>& fn);

}  // namespace dsmr::util
