// Always-on invariant checking for the dsmr libraries.
//
// The simulator is a correctness tool: a silently-corrupted simulation is
// worse than an aborted one, so contract checks stay enabled in release
// builds. `DSMR_CHECK` guards internal invariants, `DSMR_REQUIRE` guards
// public-API preconditions (and produces a message aimed at the caller).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dsmr::util {

/// Terminate the process after printing a formatted diagnostic.
/// Used by the check macros below; call directly for unreachable states.
[[noreturn]] inline void panic(const char* file, int line, const std::string& what) {
  std::fprintf(stderr, "dsmr panic at %s:%d: %s\n", file, line, what.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace dsmr::util

// Lightweight always-on assert for hot paths (e.g. clock component access):
// no message streaming, so the expansion stays small enough to inline. Use
// DSMR_CHECK_MSG / DSMR_REQUIRE where a diagnostic is worth the code size.
#define DSMR_ASSERT(cond)                                                     \
  do {                                                                        \
    if (!(cond)) [[unlikely]] {                                               \
      ::dsmr::util::panic(__FILE__, __LINE__, "assert failed: " #cond);       \
    }                                                                         \
  } while (0)

#define DSMR_CHECK(cond)                                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::dsmr::util::panic(__FILE__, __LINE__, "invariant failed: " #cond);    \
    }                                                                         \
  } while (0)

#define DSMR_CHECK_MSG(cond, msg)                                             \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::ostringstream dsmr_oss_;                                           \
      dsmr_oss_ << "invariant failed: " #cond << " — " << msg;                \
      ::dsmr::util::panic(__FILE__, __LINE__, dsmr_oss_.str());               \
    }                                                                         \
  } while (0)

#define DSMR_REQUIRE(cond, msg)                                               \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::ostringstream dsmr_oss_;                                           \
      dsmr_oss_ << "precondition failed: " << msg;                            \
      ::dsmr::util::panic(__FILE__, __LINE__, dsmr_oss_.str());               \
    }                                                                         \
  } while (0)

#define DSMR_UNREACHABLE(msg) ::dsmr::util::panic(__FILE__, __LINE__, std::string("unreachable: ") + (msg))
