#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "util/assert.hpp"

namespace dsmr::util {

namespace {
/// Guard against pathological --threads values; far above any real machine
/// this code targets, low enough to keep thread-spawn cost bounded.
constexpr int kMaxThreads = 256;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  DSMR_REQUIRE(threads >= 1, "thread pool needs at least one worker");
  const int n = std::min(threads, kMaxThreads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DSMR_CHECK_MSG(!stopping_, "submit on a stopping thread pool");
    queue_.push_back(std::move(job));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

int ThreadPool::hardware_threads() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

void parallel_for(std::uint64_t count, int threads,
                  const std::function<void(std::uint64_t)>& fn) {
  if (threads <= 1 || count <= 1) {
    for (std::uint64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // One range-job per worker pulling indices from a shared counter: O(workers)
  // allocations instead of one heap-allocated closure per index, which for
  // million-run sweeps would materialize the whole queue up-front.
  const int workers = static_cast<int>(
      std::min<std::uint64_t>(static_cast<std::uint64_t>(threads), count));
  ThreadPool pool(workers);
  std::atomic<std::uint64_t> next{0};
  for (int w = 0; w < workers; ++w) {
    pool.submit([&fn, &next, count] {
      for (std::uint64_t i = next.fetch_add(1, std::memory_order_relaxed); i < count;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace dsmr::util
