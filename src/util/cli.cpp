#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/assert.hpp"

namespace dsmr::util {

Cli::Cli(int argc, char** argv, const std::string& usage) {
  program_ = argc > 0 ? argv[0] : "dsmr";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s %s\n", program_.c_str(), usage.c_str());
      std::exit(0);
    }
    DSMR_REQUIRE(arg.rfind("--", 0) == 0, "flags must start with --, got: " << arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t default_value) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double default_value) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Cli::get_string(const std::string& name, const std::string& default_value) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

bool Cli::get_flag(const std::string& name) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  return it != values_.end() && it->second != "false" && it->second != "0";
}

void Cli::finish() const {
  for (const auto& [name, value] : values_) {
    DSMR_REQUIRE(consumed_.count(name) > 0, "unknown flag --" << name << " (try --help)");
    (void)value;
  }
}

}  // namespace dsmr::util
