#include "util/cli.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/assert.hpp"

namespace dsmr::util {

namespace {

/// strto* skip leading whitespace; strict parsing must not.
bool strict_start(const std::string& text, bool allow_minus) {
  if (text.empty()) return false;
  const char c = text[0];
  return (c >= '0' && c <= '9') || (allow_minus && c == '-' && text.size() > 1);
}

/// Plain decimal floating-point only: no whitespace, hex, inf, or nan
/// (strtod accepts all of those).
bool strict_double_text(const std::string& text) {
  if (text.empty()) return false;
  const char first = text[0];
  if (first != '-' && first != '.' && !(first >= '0' && first <= '9')) return false;
  for (const char c : text) {
    const bool ok = (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
                    c == '+' || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::optional<std::int64_t> parse_i64(const std::string& text) {
  if (!strict_start(text, /*allow_minus=*/true)) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) return std::nullopt;
  return static_cast<std::int64_t>(value);
}

std::optional<std::uint64_t> parse_u64(const std::string& text) {
  // No sign at all: strtoull would silently wrap "-1".
  if (!strict_start(text, /*allow_minus=*/false)) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) return std::nullopt;
  return static_cast<std::uint64_t>(value);
}

std::optional<SeedRange> parse_seed_range(const std::string& text,
                                          std::uint64_t default_first,
                                          std::string* error) {
  auto fail = [error](const std::string& what) -> std::optional<SeedRange> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  const auto dots = text.find("..");
  if (dots == std::string::npos) {
    const auto count = parse_u64(text);
    if (!count) return fail("'" + text + "' is not a seed count (expected N or LO..HI)");
    if (*count == 0) return fail("seed count must be positive");
    // The last seed is first + count - 1; past 2^64-1 the sweep's seeds
    // would silently wrap around and repeat low seeds.
    if (*count - 1 > std::numeric_limits<std::uint64_t>::max() - default_first) {
      return fail("seed count '" + text + "' overflows past seed 2^64-1 (first seed " +
                  std::to_string(default_first) + ")");
    }
    return SeedRange{default_first, *count};
  }
  const auto lo = parse_u64(text.substr(0, dots));
  const auto hi = parse_u64(text.substr(dots + 2));
  if (!lo || !hi) {
    return fail("'" + text + "' is not a seed range (expected LO..HI, both integers)");
  }
  if (*hi < *lo) {
    return fail("seed range '" + text + "' is empty (HI must be >= LO)");
  }
  const std::uint64_t count = *hi - *lo + 1;
  if (count == 0) {  // 0..2^64-1 wraps: the count is not representable.
    return fail("seed range '" + text + "' is too large to count");
  }
  return SeedRange{*lo, count};
}

Cli::Cli(int argc, char** argv, const std::string& usage) {
  program_ = argc > 0 ? argv[0] : "dsmr";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s %s\n", program_.c_str(), usage.c_str());
      std::exit(0);
    }
    DSMR_REQUIRE(arg.rfind("--", 0) == 0, "flags must start with --, got: " << arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t default_value) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const auto value = parse_i64(it->second);
  DSMR_REQUIRE(value.has_value(),
               "--" << name << " expects an integer, got '" << it->second << "'");
  return *value;
}

std::uint64_t Cli::get_uint(const std::string& name, std::uint64_t default_value) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const auto value = parse_u64(it->second);
  DSMR_REQUIRE(value.has_value(), "--" << name << " expects a non-negative integer, got '"
                                       << it->second << "'");
  return *value;
}

double Cli::get_double(const std::string& name, double default_value) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  // ERANGE underflow still yields the nearest representable value (a
  // denormal or 0) — accept it; only reject overflow to ±infinity.
  const bool overflow = errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL);
  DSMR_REQUIRE(strict_double_text(it->second) && !overflow &&
                   end == it->second.c_str() + it->second.size(),
               "--" << name << " expects a number, got '" << it->second << "'");
  return value;
}

std::string Cli::get_string(const std::string& name, const std::string& default_value) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

bool Cli::get_flag(const std::string& name) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  return it != values_.end() && it->second != "false" && it->second != "0";
}

SeedRange Cli::get_seed_range(const std::string& name, const SeedRange& default_value) {
  consumed_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  std::string error;
  const auto range = parse_seed_range(it->second, default_value.first, &error);
  DSMR_REQUIRE(range.has_value(), "--" << name << ": " << error);
  return *range;
}

void Cli::finish() const {
  for (const auto& [name, value] : values_) {
    DSMR_REQUIRE(consumed_.count(name) > 0, "unknown flag --" << name << " (try --help)");
    (void)value;
  }
}

}  // namespace dsmr::util
