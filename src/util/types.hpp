// Shared fundamental vocabulary types.
#pragma once

#include <cstdint>

namespace dsmr {

/// Process identifier: 0..n-1, matching the paper's P0..Pn-1.
using Rank = std::int32_t;

/// Logical clock component type.
using ClockValue = std::uint64_t;

constexpr Rank kInvalidRank = -1;

}  // namespace dsmr
