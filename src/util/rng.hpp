// Deterministic pseudo-random number generation.
//
// Simulation reproducibility is a hard requirement (DESIGN.md §2): every
// random decision in the system flows from a single user-supplied seed.
// We use xoshiro256** (public-domain, Blackman & Vigna) seeded through
// SplitMix64, which is both faster and of higher statistical quality than
// std::mt19937_64 and — unlike the standard distributions — produces
// identical streams on every platform and standard-library implementation.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/assert.hpp"

namespace dsmr::util {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state.
/// Also useful directly for hashing small integers into well-mixed values.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the project-wide PRNG. Satisfies the C++ named requirement
/// UniformRandomBitGenerator, so it can also drive <random> distributions
/// where platform-exact reproducibility is not required.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection
  /// method; platform-independent unlike std::uniform_int_distribution.
  std::uint64_t below(std::uint64_t bound) {
    DSMR_REQUIRE(bound > 0, "Rng::below requires a positive bound");
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    DSMR_REQUIRE(lo <= hi, "Rng::range requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability `p` of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Derives an independent child stream; used to give each simulated
  /// component (channel, workload, process) its own decorrelated sequence.
  Rng fork(std::uint64_t stream_id) {
    SplitMix64 sm(next() ^ (0xd1342543de82ef95ULL * (stream_id + 1)));
    return Rng(sm.next());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dsmr::util
