#include "util/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace dsmr::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ = (n1 * mean_ + n2 * other.mean_) / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

LogHistogram::LogHistogram() : buckets_(64, 0) {}

void LogHistogram::add(std::uint64_t value) {
  const int bucket = value < 2 ? 0 : 64 - std::countl_zero(value) - 1;
  buckets_[static_cast<std::size_t>(bucket)] += 1;
  ++total_;
}

double LogHistogram::quantile(double q) const {
  DSMR_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (total_ == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
      const double hi = std::ldexp(1.0, static_cast<int>(i) + 1);
      return (lo + hi) / 2.0;
    }
  }
  return std::ldexp(1.0, 63);
}

std::string LogHistogram::render(std::size_t max_rows) const {
  std::ostringstream out;
  std::size_t hi = buckets_.size();
  while (hi > 0 && buckets_[hi - 1] == 0) --hi;
  std::size_t lo = 0;
  while (lo < hi && buckets_[lo] == 0) ++lo;
  if (hi - lo > max_rows) lo = hi - max_rows;
  std::uint64_t peak = 1;
  for (std::size_t i = lo; i < hi; ++i) peak = std::max(peak, buckets_[i]);
  for (std::size_t i = lo; i < hi; ++i) {
    const auto bars = static_cast<std::size_t>(40.0 * static_cast<double>(buckets_[i]) /
                                               static_cast<double>(peak));
    out << "[2^" << i << ", 2^" << i + 1 << "): " << std::string(bars, '#') << " "
        << buckets_[i] << "\n";
  }
  return out.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  DSMR_REQUIRE(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << " " << cells[c] << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  out << "|";
  for (const auto w : widths) out << std::string(w + 2, '-') << "|";
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

std::string Table::fmt_int(std::uint64_t v) { return std::to_string(v); }

}  // namespace dsmr::util
