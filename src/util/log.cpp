#include "util/log.hpp"

#include <cstdio>
#include <utility>

namespace dsmr::util {

namespace {
LogLevel g_level = LogLevel::kWarn;
Log::Sink g_sink;  // empty => stderr
}  // namespace

LogLevel Log::level() { return g_level; }

void Log::set_level(LogLevel level) { g_level = level; }

Log::Sink Log::set_sink(Sink sink) {
  return std::exchange(g_sink, std::move(sink));
}

void Log::write(LogLevel level, const std::string& message) {
  if (level < g_level) return;
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[dsmr %s] %s\n", level_name(level), message.c_str());
}

const char* Log::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace dsmr::util
