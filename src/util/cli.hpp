// Tiny command-line flag parser used by the example and tool binaries.
//
// Supports `--name value`, `--name=value` and boolean `--name` forms.
// Unknown flags are an error: examples are teaching material and should
// fail loudly on typos. Numeric flags are parsed *strictly* — trailing
// garbage ("12abc") or overflow is a loud error, never a silent truncation.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dsmr::util {

/// Strict base-10 parsers: the whole string must be one in-range integer
/// (optional leading '-' for the signed form). nullopt on anything else —
/// including empty strings, whitespace, trailing garbage, and overflow.
std::optional<std::int64_t> parse_i64(const std::string& text);
std::optional<std::uint64_t> parse_u64(const std::string& text);

/// A contiguous seed range: seeds [first, first + count).
struct SeedRange {
  std::uint64_t first = 1;
  std::uint64_t count = 1;

  bool operator==(const SeedRange&) const = default;
};

/// Parses the seed-range grammar shared by dsmr_explore and dsmr_fuzz:
///   "N"       — N seeds starting at `default_first`
///   "LO..HI"  — the inclusive range [LO, HI]
/// Malformed text (empty, non-numeric, trailing garbage, HI < LO, zero
/// count) returns nullopt and stores a caller-printable message in *error.
/// Overflow is rejected, not wrapped: every seed of the result — up to and
/// including the last, `first + count - 1` — is representable in uint64
/// ("0..18446744073709551615" and an "N" whose sweep would run past
/// 2^64-1 both fail loudly instead of silently repeating low seeds).
std::optional<SeedRange> parse_seed_range(const std::string& text,
                                          std::uint64_t default_first,
                                          std::string* error = nullptr);

class Cli {
 public:
  /// Parses argv. On `--help` prints usage (built from the described flags
  /// queried so far is impossible, so callers pass a usage string) and exits.
  Cli(int argc, char** argv, const std::string& usage);

  std::int64_t get_int(const std::string& name, std::int64_t default_value);
  /// Count-like flags: rejects signs outright, so "-1" is a loud error
  /// instead of wrapping to 2^64-1 at the cast site.
  std::uint64_t get_uint(const std::string& name, std::uint64_t default_value);
  double get_double(const std::string& name, double default_value);
  std::string get_string(const std::string& name, const std::string& default_value);
  bool get_flag(const std::string& name);

  /// The shared `--<name> N|LO..HI` seed-range flag (parse_seed_range);
  /// panics with the parse error on malformed input.
  SeedRange get_seed_range(const std::string& name, const SeedRange& default_value);

  /// Call after all get_* lookups: panics on flags that were passed but
  /// never consumed (i.e. typos).
  void finish() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
  std::string program_;
};

}  // namespace dsmr::util
