// Tiny command-line flag parser used by the example binaries.
//
// Supports `--name value`, `--name=value` and boolean `--name` forms.
// Unknown flags are an error: examples are teaching material and should
// fail loudly on typos.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dsmr::util {

class Cli {
 public:
  /// Parses argv. On `--help` prints usage (built from the described flags
  /// queried so far is impossible, so callers pass a usage string) and exits.
  Cli(int argc, char** argv, const std::string& usage);

  std::int64_t get_int(const std::string& name, std::int64_t default_value);
  double get_double(const std::string& name, double default_value);
  std::string get_string(const std::string& name, const std::string& default_value);
  bool get_flag(const std::string& name);

  /// Call after all get_* lookups: panics on flags that were passed but
  /// never consumed (i.e. typos).
  void finish() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
  std::string program_;
};

}  // namespace dsmr::util
