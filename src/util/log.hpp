// Minimal leveled logger.
//
// Race reports (the user-facing output of the detector, paper §IV.D) go
// through a dedicated observer interface in dsmr::core, not through this
// logger; this is for diagnostics of the simulator itself.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace dsmr::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-global log configuration. Single-threaded by design (the
/// simulator is single-threaded); the sink may be replaced in tests.
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);

  /// Replaces the output sink (default: stderr). Returns previous sink.
  using Sink = std::function<void(LogLevel, const std::string&)>;
  static Sink set_sink(Sink sink);

  static void write(LogLevel level, const std::string& message);

  static const char* level_name(LogLevel level);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace dsmr::util

#define DSMR_LOG(level_enum)                                                   \
  if (::dsmr::util::Log::level() <= ::dsmr::util::LogLevel::level_enum)        \
  ::dsmr::util::detail::LogLine(::dsmr::util::LogLevel::level_enum)

#define DSMR_LOG_DEBUG DSMR_LOG(kDebug)
#define DSMR_LOG_INFO DSMR_LOG(kInfo)
#define DSMR_LOG_WARN DSMR_LOG(kWarn)
#define DSMR_LOG_ERROR DSMR_LOG(kError)
