// Race reports and the report log.
//
// Paper §IV.D: "race conditions must be signaled to the user (e.g., by a
// message on the standard output of the program), but they must not abort
// the execution of the program." Reports therefore flow through observers;
// nothing in the library ever terminates on a race.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "clocks/vector_clock.hpp"
#include "core/rules.hpp"
#include "core/types.hpp"
#include "sim/time.hpp"
#include "util/types.hpp"

namespace dsmr::core {

struct RaceReport {
  std::uint64_t id = 0;          ///< sequence number of the report.
  sim::Time time = 0;            ///< virtual time of detection.
  Rank home = kInvalidRank;      ///< rank whose public memory holds the area.
  std::uint32_t area = 0;
  std::string area_name;

  // The access that triggered detection.
  Rank accessor = kInvalidRank;
  AccessKind kind = AccessKind::kRead;
  std::uint64_t event_id = 0;    ///< EventLog id of the triggering access.
  clocks::VectorClock accessor_clock;

  // The stored state it was found concurrent with.
  ComparedAgainst against = ComparedAgainst::kNone;
  clocks::VectorClock stored_clock;
  std::uint64_t prior_event_id = 0;  ///< EventLog id of the other side (0 = unknown).

  /// Human-readable one-liner in the spirit the paper suggests.
  std::string describe() const;
};

/// Collects reports and fans them out to observers. Deduplication by
/// (area, prior event, current accessor) is available for user-facing
/// output; the raw stream is kept for the analysis module.
class RaceLog {
 public:
  using Observer = std::function<void(const RaceReport&)>;

  void add_observer(Observer observer) { observers_.push_back(std::move(observer)); }

  /// Records a report (assigning its id) and notifies observers.
  const RaceReport& record(RaceReport report);

  const std::vector<RaceReport>& reports() const { return reports_; }
  std::size_t count() const { return reports_.size(); }
  bool empty() const { return reports_.empty(); }
  void clear() { reports_.clear(); }

  /// Reports collapsed to unique (home, area) pairs — "which data raced".
  std::vector<RaceReport> unique_by_area() const;

 private:
  std::vector<RaceReport> reports_;
  std::vector<Observer> observers_;
};

}  // namespace dsmr::core
