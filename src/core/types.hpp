// Vocabulary types of the race-detection core.
#pragma once

#include <cstdint>

namespace dsmr::core {

/// The two access kinds the model distinguishes. A race requires at least
/// one write among unordered conflicting accesses (paper §III.C).
enum class AccessKind : std::uint8_t { kRead, kWrite };

constexpr const char* to_string(AccessKind k) {
  return k == AccessKind::kRead ? "read" : "write";
}

/// Detector variants.
///  * kOff        — plain DSM, no clocks: the performance baseline.
///  * kSingleClock— one clock per area compared on every access; the naive
///                  scheme §IV.D improves upon (flags concurrent reads).
///  * kDualClock  — the paper's algorithm: general-purpose V + write clock W,
///                  eliminating read-read false positives at 2× clock memory.
enum class DetectorMode : std::uint8_t { kOff, kSingleClock, kDualClock };

constexpr const char* to_string(DetectorMode m) {
  switch (m) {
    case DetectorMode::kOff: return "off";
    case DetectorMode::kSingleClock: return "single-clock";
    case DetectorMode::kDualClock: return "dual-clock";
  }
  return "?";
}

/// How detection metadata travels (same algorithm, different wire layouts;
/// verdict-equivalent — a property test asserts this):
///  * kSeparate  — Algorithms 1-2 spelled out: lock, clock fetch, data,
///                 clock update and unlock are each their own messages.
///  * kPiggyback — clocks ride on the lock grant / data messages.
///  * kHomeSide  — the comparison runs at the home NIC inside the data
///                 message's atomic event; zero extra messages, clock bytes
///                 only.
enum class Transport : std::uint8_t { kSeparate, kPiggyback, kHomeSide };

constexpr const char* to_string(Transport t) {
  switch (t) {
    case Transport::kSeparate: return "separate";
    case Transport::kPiggyback: return "piggyback";
    case Transport::kHomeSide: return "home-side";
  }
  return "?";
}

}  // namespace dsmr::core
