// The race predicate — the decision kernel of the paper's Algorithms 1 & 2.
//
// Pure functions of clocks and ranks only: usable identically from the
// initiator side (kSeparate / kPiggyback transports) and from inside the
// home NIC's atomic event (kHomeSide transport), so every transport applies
// the same algorithm.
//
// Two implementations of the same predicate:
//  * `check_access` — the production path. When the stored state carries an
//    epoch witness (clocks/epoch.hpp) and the accessor clock is a genuine
//    post-tick event clock, the full four-way clock comparison collapses to
//    two integer compares (O(1) instead of O(n)); otherwise it falls back
//    to the full comparison.
//  * `check_access_oracle` — the original always-O(n) full-vector-clock
//    path, kept as the property-test oracle: both functions must return
//    bit-identical verdicts on every input the protocols can produce (and
//    debug builds cross-check every fast-path verdict against it).
#pragma once

#include "clocks/epoch.hpp"
#include "clocks/ordering.hpp"
#include "clocks/vector_clock.hpp"
#include "core/types.hpp"
#include "util/types.hpp"

namespace dsmr::core {

/// Which stored clock a verdict was decided against.
enum class ComparedAgainst : std::uint8_t { kNone, kV, kW };

struct Verdict {
  bool race = false;
  clocks::Ordering ordering = clocks::Ordering::kEqual;
  ComparedAgainst against = ComparedAgainst::kNone;

  bool operator==(const Verdict&) const = default;
};

/// The stored state of one area as seen by the check: the two clocks plus
/// the initiator ranks of the events that produced them, plus (optionally)
/// the epoch witnesses that enable the O(1) fast path. An invalid epoch
/// simply means "unknown provenance — compare the full clocks".
struct StoredClocks {
  const clocks::VectorClock& v;
  const clocks::VectorClock& w;
  Rank last_access_rank = kInvalidRank;
  Rank last_write_rank = kInvalidRank;
  /// Valid iff `v` (resp. `w`) is known to be the clock of the
  /// v_epoch.value-th event at process v_epoch.rank — true for every clock
  /// a home NIC stores (its own post-event clock) and for every clock it
  /// ships to initiators.
  clocks::Epoch v_epoch{};
  clocks::Epoch w_epoch{};
};

/// Applies Corollary 1 to one access:
///
///  * DualClock (the paper):
///      - write: compare the accessor clock with V(x), the last *access* —
///        a write races with any unordered read or write (§III.C);
///      - read: compare with W(x), the last *write* — concurrent reads are
///        not races (Fig. 4) and are never even compared against.
///  * SingleClock (ablation): every access compares with V(x); concurrent
///    reads get flagged — the false positives §IV.D eliminates.
///  * Off: never a race.
///
/// Two refinements the prose implies but the pseudocode leaves open:
///  * an area never accessed before (zero stored clock) cannot race — the
///    zero clock is dominated by every event clock;
///  * when the stored clock's event was issued by the *same* rank as this
///    access, program order plus the FIFO channel already order the two
///    operations even if the clocks cannot prove it (unacknowledged puts),
///    so the pair is exempted.
///
/// Precondition for the epoch fast path (what every call site guarantees):
/// `accessor_clock` is the accessor's clock *after* ticking for this access,
/// i.e. the clock of an event at `accessor`. Callers passing arbitrary
/// clocks must leave the epochs invalid.
Verdict check_access(DetectorMode mode, AccessKind kind, Rank accessor,
                     const clocks::VectorClock& accessor_clock,
                     const StoredClocks& stored);

/// The original full-vector-clock implementation (ignores the epochs):
/// the oracle the epoch path is property-tested against.
Verdict check_access_oracle(DetectorMode mode, AccessKind kind, Rank accessor,
                            const clocks::VectorClock& accessor_clock,
                            const StoredClocks& stored);

// ---------------------------------------------------------------------------
// Implementation. The production predicate is header-inline: the fast path
// is a handful of instructions and runs once per one-sided operation, so a
// call into another TU would cost more than the check itself.
// ---------------------------------------------------------------------------

namespace detail {

/// True when the O(1) event-clock comparison may decide this pair: the
/// stored clock carries a consistent epoch witness and the accessor clock is
/// a genuine post-tick event clock of `accessor`.
inline bool epoch_fast_applicable(const clocks::VectorClock& accessor_clock,
                                  Rank accessor, const clocks::VectorClock& stored,
                                  const clocks::Epoch& epoch) {
  if (!epoch.valid() || accessor_clock.size() != stored.size()) return false;
  const auto a = static_cast<std::size_t>(accessor);
  const auto e = static_cast<std::size_t>(epoch.rank);
  return accessor >= 0 && a < accessor_clock.size() && e < stored.size() &&
         stored[e] == epoch.value &&  // witness consistent with the clock
         accessor_clock[a] > 0;       // genuinely post-tick
}

/// Fidge/Mattern, applied in both directions: for an event e at process p
/// and any event f, C(e) <= C(f) iff C(e)[p] <= C(f)[p]. `stored` is the
/// clock of the epoch's event; `accessor_clock` is the clock of an event at
/// `accessor`. The full four-way ordering from two integer compares.
inline clocks::Ordering compare_event_clocks(const clocks::VectorClock& accessor_clock,
                                             Rank accessor,
                                             const clocks::VectorClock& stored,
                                             const clocks::Epoch& epoch) {
  const auto a = static_cast<std::size_t>(accessor);
  const bool stored_le =
      accessor_clock[static_cast<std::size_t>(epoch.rank)] >= epoch.value;
  const bool accessor_le = stored[a] >= accessor_clock[a];
  if (accessor_le && stored_le) return clocks::Ordering::kEqual;
  if (accessor_le) return clocks::Ordering::kBefore;
  if (stored_le) return clocks::Ordering::kAfter;
  return clocks::Ordering::kConcurrent;
}

}  // namespace detail

inline Verdict check_access(DetectorMode mode, AccessKind kind, Rank accessor,
                            const clocks::VectorClock& accessor_clock,
                            const StoredClocks& stored) {
  Verdict verdict;
  if (mode == DetectorMode::kOff) return verdict;

  const clocks::VectorClock* reference = nullptr;
  const clocks::Epoch* epoch = nullptr;
  Rank prior_rank = kInvalidRank;
  if (mode == DetectorMode::kSingleClock || kind == AccessKind::kWrite) {
    reference = &stored.v;
    epoch = &stored.v_epoch;
    prior_rank = stored.last_access_rank;
    verdict.against = ComparedAgainst::kV;
  } else {
    reference = &stored.w;
    epoch = &stored.w_epoch;
    prior_rank = stored.last_write_rank;
    verdict.against = ComparedAgainst::kW;
  }

  verdict.ordering =
      detail::epoch_fast_applicable(accessor_clock, accessor, *reference, *epoch)
          ? detail::compare_event_clocks(accessor_clock, accessor, *reference, *epoch)
          : accessor_clock.compare(*reference);
  verdict.race = verdict.ordering == clocks::Ordering::kConcurrent;
  // Same-initiator accesses are serialized by program order and the FIFO
  // channel to the home NIC regardless of what the clocks can prove.
  if (verdict.race && prior_rank == accessor) verdict.race = false;

#ifndef NDEBUG
  // Debug builds cross-check every verdict — including every live verdict of
  // every protocol run — against the full-vector-clock oracle.
  DSMR_ASSERT(verdict == check_access_oracle(mode, kind, accessor, accessor_clock, stored));
#endif
  return verdict;
}

}  // namespace dsmr::core
