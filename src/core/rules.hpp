// The race predicate — the decision kernel of the paper's Algorithms 1 & 2.
//
// Pure functions of clocks and ranks only: usable identically from the
// initiator side (kSeparate / kPiggyback transports) and from inside the
// home NIC's atomic event (kHomeSide transport), so every transport applies
// the same algorithm.
//
// Three implementations of the same predicate:
//  * `check_span` — the production kernel. Walks a struct-of-arrays lane of
//    per-area stored state (epoch witness, prior rank, clock handle) and
//    emits ONE verdict per run of state-identical areas: within a run the
//    epoch comparison (two integer compares, O(1)) or the vectorized full
//    comparison happens once, however many areas the run covers. This is
//    what detect::ShardedDetector::check_range feeds per shard.
//  * `check_access` — the legacy single-area entry point, kept as a thin
//    wrapper over a one-element span so every existing call site (and the
//    P-test/P8 bit-identity property suites) keeps working unchanged.
//  * `check_access_oracle` — the original always-O(n) full-vector-clock
//    path, kept as the property-test oracle: all entry points must return
//    bit-identical verdicts on every input the protocols can produce (and
//    debug builds cross-check every span verdict against it, per area).
#pragma once

#include <cstddef>

#include "clocks/epoch.hpp"
#include "clocks/ordering.hpp"
#include "clocks/vector_clock.hpp"
#include "core/types.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace dsmr::core {

/// Which stored clock a verdict was decided against.
enum class ComparedAgainst : std::uint8_t { kNone, kV, kW };

struct Verdict {
  bool race = false;
  clocks::Ordering ordering = clocks::Ordering::kEqual;
  ComparedAgainst against = ComparedAgainst::kNone;

  bool operator==(const Verdict&) const = default;
};

/// The stored state of one area as seen by the check: the two clocks plus
/// the initiator ranks of the events that produced them, plus (optionally)
/// the epoch witnesses that enable the O(1) fast path. An invalid epoch
/// simply means "unknown provenance — compare the full clocks".
struct StoredClocks {
  const clocks::VectorClock& v;
  const clocks::VectorClock& w;
  Rank last_access_rank = kInvalidRank;
  Rank last_write_rank = kInvalidRank;
  /// Valid iff `v` (resp. `w`) is known to be the clock of the
  /// v_epoch.value-th event at process v_epoch.rank — true for every clock
  /// a home NIC stores (its own post-event clock) and for every clock it
  /// ships to initiators.
  clocks::Epoch v_epoch{};
  clocks::Epoch w_epoch{};
};

/// A struct-of-arrays view of one comparison lane (V or W) over a contiguous
/// range of detector slots: parallel arrays of epoch witnesses, prior
/// initiator ranks, and stored-clock handles. Clock handles are pointers so
/// cold areas can all alias one shared zero clock — pointer equality is the
/// run-batching predicate (equal handle ⇒ equal clock, no O(n) compare
/// needed to extend a run).
struct SpanLane {
  const clocks::Epoch* epochs = nullptr;
  const Rank* prior_ranks = nullptr;
  const clocks::VectorClock* const* clocks = nullptr;  ///< never-null entries.
};

/// What a span walk did — the batch-vs-scalar accounting the benches report.
struct SpanStats {
  std::size_t checked = 0;        ///< areas covered.
  std::size_t runs = 0;           ///< state-identical runs, one verdict each.
  std::size_t epoch_compares = 0; ///< runs decided by the O(1) epoch path.
  std::size_t full_compares = 0;  ///< runs that fell back to the full compare.
};

/// Applies Corollary 1 to one access:
///
///  * DualClock (the paper):
///      - write: compare the accessor clock with V(x), the last *access* —
///        a write races with any unordered read or write (§III.C);
///      - read: compare with W(x), the last *write* — concurrent reads are
///        not races (Fig. 4) and are never even compared against.
///  * SingleClock (ablation): every access compares with V(x); concurrent
///    reads get flagged — the false positives §IV.D eliminates.
///  * Off: never a race.
///
/// Two refinements the prose implies but the pseudocode leaves open:
///  * an area never accessed before (zero stored clock) cannot race — the
///    zero clock is dominated by every event clock;
///  * when the stored clock's event was issued by the *same* rank as this
///    access, program order plus the FIFO channel already order the two
///    operations even if the clocks cannot prove it (unacknowledged puts),
///    so the pair is exempted.
///
/// Precondition for the epoch fast path (what every call site guarantees):
/// `accessor_clock` is the accessor's clock *after* ticking for this access,
/// i.e. the clock of an event at `accessor`. Callers passing arbitrary
/// clocks must leave the epochs invalid.
Verdict check_access(DetectorMode mode, AccessKind kind, Rank accessor,
                     const clocks::VectorClock& accessor_clock,
                     const StoredClocks& stored);

/// The original full-vector-clock implementation (ignores the epochs):
/// the oracle the epoch path is property-tested against.
Verdict check_access_oracle(DetectorMode mode, AccessKind kind, Rank accessor,
                            const clocks::VectorClock& accessor_clock,
                            const StoredClocks& stored);

// ---------------------------------------------------------------------------
// Implementation. The production predicate is header-inline: the fast path
// is a handful of instructions and runs once per one-sided operation, so a
// call into another TU would cost more than the check itself.
// ---------------------------------------------------------------------------

namespace detail {

/// True when the O(1) event-clock comparison may decide this pair: the
/// stored clock carries a consistent epoch witness and the accessor clock is
/// a genuine post-tick event clock of `accessor`.
inline bool epoch_fast_applicable(const clocks::VectorClock& accessor_clock,
                                  Rank accessor, const clocks::VectorClock& stored,
                                  const clocks::Epoch& epoch) {
  if (!epoch.valid() || accessor_clock.size() != stored.size()) return false;
  const auto a = static_cast<std::size_t>(accessor);
  const auto e = static_cast<std::size_t>(epoch.rank);
  return accessor >= 0 && a < accessor_clock.size() && e < stored.size() &&
         stored[e] == epoch.value &&  // witness consistent with the clock
         accessor_clock[a] > 0;       // genuinely post-tick
}

/// Fidge/Mattern, applied in both directions: for an event e at process p
/// and any event f, C(e) <= C(f) iff C(e)[p] <= C(f)[p]. `stored` is the
/// clock of the epoch's event; `accessor_clock` is the clock of an event at
/// `accessor`. The full four-way ordering from two integer compares.
inline clocks::Ordering compare_event_clocks(const clocks::VectorClock& accessor_clock,
                                             Rank accessor,
                                             const clocks::VectorClock& stored,
                                             const clocks::Epoch& epoch) {
  const auto a = static_cast<std::size_t>(accessor);
  const bool stored_le =
      accessor_clock[static_cast<std::size_t>(epoch.rank)] >= epoch.value;
  const bool accessor_le = stored[a] >= accessor_clock[a];
  if (accessor_le && stored_le) return clocks::Ordering::kEqual;
  if (accessor_le) return clocks::Ordering::kBefore;
  if (stored_le) return clocks::Ordering::kAfter;
  return clocks::Ordering::kConcurrent;
}

/// True when this (mode, kind) compares against V — the lane-selection rule
/// shared by every entry point and by the detector's lane layout.
inline bool compares_against_v(DetectorMode mode, AccessKind kind) {
  return mode == DetectorMode::kSingleClock || kind == AccessKind::kWrite;
}

}  // namespace detail

/// The batched kernel: walks `count` slots of `lane` and calls
/// `on_run(first, length, verdict)` once per maximal run of state-identical
/// slots (same clock handle, same epoch, same prior rank — equal handle
/// implies equal clock, so one comparison soundly decides the whole run).
/// Covers every slot exactly once, in order.
///
/// `trusted_epochs` distinguishes the two producers of lane state:
///  * true  — the lane belongs to a detect::ShardedDetector, where a valid
///    epoch is consistent with its clock *by construction* (both were
///    written together by store_access), so the per-slot consistency probe
///    of `epoch_fast_applicable` is skipped; only the accessor-side
///    preconditions are checked (once, not per run).
///  * false — the lane view was assembled from arbitrary caller state (the
///    check_access shim): the full legacy applicability test runs per run,
///    keeping verdicts bit-identical to the historical single-area path.
///
/// Debug builds cross-check every run's verdict against the full-VC oracle
/// exactly as check_access always has: the selected lane is presented to the
/// oracle as both V and W, which collapses the oracle's lane selection onto
/// the same reference clock and prior rank regardless of (mode, kind).
template <typename OnRun>
SpanStats check_span(DetectorMode mode, AccessKind kind, Rank accessor,
                     const clocks::VectorClock& accessor_clock,
                     const SpanLane& lane, std::size_t count,
                     bool trusted_epochs, OnRun&& on_run) {
  SpanStats stats;
  stats.checked = count;
  if (count == 0) return stats;
  if (mode == DetectorMode::kOff) {
    stats.runs = 1;
    on_run(std::size_t{0}, count, Verdict{});
    return stats;
  }

  const ComparedAgainst against = detail::compares_against_v(mode, kind)
                                      ? ComparedAgainst::kV
                                      : ComparedAgainst::kW;
  const auto a = static_cast<std::size_t>(accessor);
  // Accessor-side half of the fast-path precondition, hoisted out of the
  // loop: valid rank, in-range component, genuinely post-tick clock.
  const bool accessor_ok =
      accessor >= 0 && a < accessor_clock.size() && accessor_clock[a] > 0;

  std::size_t i = 0;
  while (i < count) {
    const clocks::VectorClock* stored = lane.clocks[i];
    const clocks::Epoch epoch = lane.epochs[i];
    const Rank prior = lane.prior_ranks[i];
    std::size_t j = i + 1;
    while (j < count && lane.clocks[j] == stored && lane.epochs[j] == epoch &&
           lane.prior_ranks[j] == prior) {
      ++j;
    }

    Verdict verdict;
    verdict.against = against;
    const bool fast =
        trusted_epochs
            ? (epoch.valid() && accessor_ok &&
               static_cast<std::size_t>(epoch.rank) < accessor_clock.size())
            : detail::epoch_fast_applicable(accessor_clock, accessor, *stored, epoch);
    if (fast) {
      verdict.ordering =
          detail::compare_event_clocks(accessor_clock, accessor, *stored, epoch);
      ++stats.epoch_compares;
    } else {
      verdict.ordering = accessor_clock.compare_vectorized(*stored);
      ++stats.full_compares;
    }
    // Same-initiator accesses are serialized by program order and the FIFO
    // channel to the home NIC regardless of what the clocks can prove.
    verdict.race =
        verdict.ordering == clocks::Ordering::kConcurrent && prior != accessor;

#ifndef NDEBUG
    {
      const StoredClocks shadow{*stored, *stored, prior, prior, epoch, epoch};
      DSMR_ASSERT(verdict ==
                  check_access_oracle(mode, kind, accessor, accessor_clock, shadow));
    }
#endif
    ++stats.runs;
    on_run(i, j - i, verdict);
    i = j;
  }
  return stats;
}

inline Verdict check_access(DetectorMode mode, AccessKind kind, Rank accessor,
                            const clocks::VectorClock& accessor_clock,
                            const StoredClocks& stored) {
  // Deprecation shim: a one-element span over the caller's StoredClocks.
  // Bit-identical to the historical single-area implementation (untrusted
  // epochs → the full legacy applicability test decides the fast path).
  const bool use_v = detail::compares_against_v(mode, kind);
  const clocks::VectorClock* clock = use_v ? &stored.v : &stored.w;
  const clocks::Epoch epoch = use_v ? stored.v_epoch : stored.w_epoch;
  const Rank prior = use_v ? stored.last_access_rank : stored.last_write_rank;
  const SpanLane lane{&epoch, &prior, &clock};

  Verdict verdict;
  check_span(mode, kind, accessor, accessor_clock, lane, 1,
             /*trusted_epochs=*/false,
             [&](std::size_t, std::size_t, const Verdict& v) { verdict = v; });
#ifndef NDEBUG
  // Debug builds cross-check every verdict — including every live verdict of
  // every protocol run — against the full-vector-clock oracle.
  DSMR_ASSERT(verdict == check_access_oracle(mode, kind, accessor, accessor_clock, stored));
#endif
  return verdict;
}

}  // namespace dsmr::core
