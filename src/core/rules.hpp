// The race predicate — the decision kernel of the paper's Algorithms 1 & 2.
//
// Pure functions of clocks and ranks only: usable identically from the
// initiator side (kSeparate / kPiggyback transports) and from inside the
// home NIC's atomic event (kHomeSide transport), so every transport applies
// the same algorithm.
#pragma once

#include "clocks/ordering.hpp"
#include "clocks/vector_clock.hpp"
#include "core/types.hpp"
#include "util/types.hpp"

namespace dsmr::core {

/// Which stored clock a verdict was decided against.
enum class ComparedAgainst : std::uint8_t { kNone, kV, kW };

struct Verdict {
  bool race = false;
  clocks::Ordering ordering = clocks::Ordering::kEqual;
  ComparedAgainst against = ComparedAgainst::kNone;
};

/// The stored state of one area as seen by the check: the two clocks plus
/// the initiator ranks of the events that produced them.
struct StoredClocks {
  const clocks::VectorClock& v;
  const clocks::VectorClock& w;
  Rank last_access_rank = kInvalidRank;
  Rank last_write_rank = kInvalidRank;
};

/// Applies Corollary 1 to one access:
///
///  * DualClock (the paper):
///      - write: compare the accessor clock with V(x), the last *access* —
///        a write races with any unordered read or write (§III.C);
///      - read: compare with W(x), the last *write* — concurrent reads are
///        not races (Fig. 4) and are never even compared against.
///  * SingleClock (ablation): every access compares with V(x); concurrent
///    reads get flagged — the false positives §IV.D eliminates.
///  * Off: never a race.
///
/// Two refinements the prose implies but the pseudocode leaves open:
///  * an area never accessed before (zero stored clock) cannot race — the
///    zero clock is dominated by every event clock;
///  * when the stored clock's event was issued by the *same* rank as this
///    access, program order plus the FIFO channel already order the two
///    operations even if the clocks cannot prove it (unacknowledged puts),
///    so the pair is exempted.
Verdict check_access(DetectorMode mode, AccessKind kind, Rank accessor,
                     const clocks::VectorClock& accessor_clock,
                     const StoredClocks& stored);

}  // namespace dsmr::core
