// Append-only log of every shared-memory access event.
//
// The online detector does not need this log — it is the *instrumentation*
// substrate for the offline analysis (dsmr::analysis): ground-truth race
// enumeration over all conflicting pairs, precision/recall of the online
// algorithm, and the clock-truncation ablation of §IV.C.
#pragma once

#include <cstdint>
#include <vector>

#include "clocks/vector_clock.hpp"
#include "core/types.hpp"
#include "sim/time.hpp"
#include "util/types.hpp"

namespace dsmr::core {

struct AccessEvent {
  std::uint64_t id = 0;  ///< 1-based; 0 means "no event".
  sim::Time time = 0;
  Rank rank = kInvalidRank;          ///< initiator.
  AccessKind kind = AccessKind::kRead;
  Rank home = kInvalidRank;          ///< area's home rank.
  std::uint32_t area = 0;
  std::uint32_t offset = 0;          ///< within the area.
  std::uint32_t length = 0;
  clocks::VectorClock issue_clock;   ///< initiator clock at issue (post-tick).
  std::vector<std::uint64_t> held_locks;  ///< user lock tokens held at issue
                                          ///< (consumed by the lockset baseline).

  // Filled in when the home NIC applies the access (annotate_apply): the
  // home's post-event clock and the global application order. Ground truth
  // asks, for each conflicting pair applied as (a, b): could b's initiator
  // have known a's application? race iff rank_a != rank_b and
  // !(a.apply_clock ≤ b.issue_clock).
  clocks::VectorClock apply_clock;
  std::uint64_t apply_seq = 0;       ///< 0 = never applied.
};

class EventLog {
 public:
  /// Records an event, assigning its id. Returns the id.
  std::uint64_t record(AccessEvent event);

  /// Marks event `id` as applied at the home NIC with the given post-event
  /// clock; assigns the global application sequence number. No-op when
  /// recording is disabled.
  void annotate_apply(std::uint64_t id, const clocks::VectorClock& apply_clock);

  const std::vector<AccessEvent>& events() const { return events_; }
  const AccessEvent& event(std::uint64_t id) const;
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Disables recording (long benchmark runs that don't need analysis).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

 private:
  std::vector<AccessEvent> events_;
  bool enabled_ = true;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_apply_seq_ = 1;
};

}  // namespace dsmr::core
