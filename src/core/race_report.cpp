#include "core/race_report.hpp"

#include <set>
#include <sstream>

namespace dsmr::core {

std::string RaceReport::describe() const {
  std::ostringstream out;
  out << "RACE #" << id << " @t=" << time << "ns: " << to_string(kind) << " by P"
      << accessor << " on " << area_name << " (P" << home << "/area " << area
      << ") clock " << accessor_clock.to_string() << " is concurrent with last "
      << (against == ComparedAgainst::kW ? "write" : "access") << " clock "
      << stored_clock.to_string();
  if (prior_event_id != 0) out << " (event #" << prior_event_id << ")";
  return out.str();
}

const RaceReport& RaceLog::record(RaceReport report) {
  report.id = reports_.size() + 1;
  reports_.push_back(std::move(report));
  const RaceReport& stored = reports_.back();
  for (const auto& observer : observers_) observer(stored);
  return stored;
}

std::vector<RaceReport> RaceLog::unique_by_area() const {
  std::set<std::pair<Rank, std::uint32_t>> seen;
  std::vector<RaceReport> unique;
  for (const auto& report : reports_) {
    if (seen.insert({report.home, report.area}).second) unique.push_back(report);
  }
  return unique;
}

}  // namespace dsmr::core
