#include "core/event_log.hpp"

#include "util/assert.hpp"

namespace dsmr::core {

std::uint64_t EventLog::record(AccessEvent event) {
  const std::uint64_t id = next_id_++;
  if (!enabled_) return id;
  event.id = id;
  events_.push_back(std::move(event));
  return id;
}

void EventLog::annotate_apply(std::uint64_t id, const clocks::VectorClock& apply_clock) {
  if (!enabled_) return;
  DSMR_CHECK_MSG(id >= 1 && id <= events_.size(), "annotate_apply: unknown event " << id);
  AccessEvent& event = events_[id - 1];
  DSMR_CHECK_MSG(event.apply_seq == 0, "event " << id << " applied twice");
  event.apply_clock = apply_clock;
  event.apply_seq = next_apply_seq_++;
}

const AccessEvent& EventLog::event(std::uint64_t id) const {
  DSMR_CHECK_MSG(id >= 1 && id <= events_.size() && events_[id - 1].id == id,
                 "event id " << id << " not in log (log may be disabled)");
  return events_[id - 1];
}

}  // namespace dsmr::core
