#include "core/rules.hpp"

namespace dsmr::core {

Verdict check_access_oracle(DetectorMode mode, AccessKind kind, Rank accessor,
                            const clocks::VectorClock& accessor_clock,
                            const StoredClocks& stored) {
  Verdict verdict;
  if (mode == DetectorMode::kOff) return verdict;

  const clocks::VectorClock* reference = nullptr;
  Rank prior_rank = kInvalidRank;
  if (mode == DetectorMode::kSingleClock || kind == AccessKind::kWrite) {
    reference = &stored.v;
    prior_rank = stored.last_access_rank;
    verdict.against = ComparedAgainst::kV;
  } else {
    reference = &stored.w;
    prior_rank = stored.last_write_rank;
    verdict.against = ComparedAgainst::kW;
  }

  verdict.ordering = accessor_clock.compare(*reference);
  verdict.race = verdict.ordering == clocks::Ordering::kConcurrent;
  // Same-initiator accesses are serialized by program order and the FIFO
  // channel to the home NIC regardless of what the clocks can prove.
  if (verdict.race && prior_rank == accessor) verdict.race = false;
  return verdict;
}

}  // namespace dsmr::core
