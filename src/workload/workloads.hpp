// Parameterized workload generators with known race expectations.
//
// Each spawn_* function allocates the shared data and installs one program
// per rank on a not-yet-run World. The returned handles let tests and
// benches verify results and expectations:
//
//  * random          — tunable mix of puts/gets over shared areas, with
//                      optional barriers and locks; ground truth comes from
//                      the offline analysis.
//  * master_worker   — the paper's §IV.D motivating pattern: workers put
//                      results into one master slot; the write-write race is
//                      intentional and benign, and must be signaled without
//                      aborting.
//  * stencil         — 1-D Jacobi halo exchange; barrier-synchronized phases
//                      are race-free, `buggy` drops the barriers and the
//                      halo traffic races.
//  * histogram       — remote read-modify-write on distributed bins;
//                      `locked` uses NIC area locks (race-free, no lost
//                      updates), unlocked races and may lose updates.
//  * pipeline        — a token ring ordered purely by signals and
//                      backpressure: no barriers, no locks, and still
//                      race-free (happens-before through messages);
//                      disabling backpressure introduces a write/read race.
//
// Programs are free coroutine functions taking all state by value: lambda
// captures do not survive into a coroutine frame, so nothing here captures.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/global_address.hpp"
#include "pgas/shared_array.hpp"
#include "runtime/world.hpp"

namespace dsmr::workload {

// ---------------------------------------------------------------------------
// random
// ---------------------------------------------------------------------------

struct RandomConfig {
  int areas = 8;                ///< shared areas, placed round-robin.
  int ops_per_proc = 50;
  double write_fraction = 0.5;
  int barrier_every = 0;        ///< 0 = never.
  double lock_fraction = 0.0;   ///< fraction of ops wrapped in the area lock.
  std::uint64_t seed = 1;
  std::uint32_t value_bytes = 8;
};

struct RandomHandles {
  std::vector<mem::GlobalAddress> areas;
};

RandomHandles spawn_random(runtime::World& world, const RandomConfig& config);

// ---------------------------------------------------------------------------
// master_worker
// ---------------------------------------------------------------------------

struct MasterWorkerConfig {
  int tasks_per_worker = 2;
  std::uint64_t seed = 7;
};

struct MasterWorkerHandles {
  mem::GlobalAddress result;  ///< the contended slot on the master (rank 0).
};

/// Uses every rank of the world: rank 0 is the master, ranks 1..n-1 workers.
MasterWorkerHandles spawn_master_worker(runtime::World& world,
                                        const MasterWorkerConfig& config);

// ---------------------------------------------------------------------------
// stencil
// ---------------------------------------------------------------------------

struct StencilConfig {
  int cells_per_rank = 16;
  int iters = 4;
  bool buggy = false;  ///< drop the barriers: halo traffic races.
  /// Barrier-synchronize only every `barrier_period`-th iteration (1 = every
  /// iteration, the race-free default). Periods > 1 leave some phases
  /// unsynchronized, so the halo race becomes *schedule-dependent* — it
  /// manifests only under unlucky timing, which is exactly what the
  /// exploration harness hunts. 0 behaves like `buggy` (never synchronize).
  int barrier_period = 1;
};

struct StencilHandles {
  /// Per-rank result areas holding the final cells (doubles).
  std::vector<mem::GlobalAddress> results;
  int cells_per_rank = 0;
  int iters = 0;
};

StencilHandles spawn_stencil(runtime::World& world, const StencilConfig& config);

/// Sequential reference for verification: the same Jacobi iteration on the
/// whole domain (zero boundary conditions).
std::vector<double> stencil_reference(int nprocs, const StencilConfig& config);

// ---------------------------------------------------------------------------
// histogram
// ---------------------------------------------------------------------------

struct HistogramConfig {
  int bins = 16;
  int increments_per_rank = 32;
  bool locked = false;
  std::uint64_t seed = 3;
};

struct HistogramHandles {
  pgas::SharedArray<std::uint64_t> bins;
};

HistogramHandles spawn_histogram(runtime::World& world, const HistogramConfig& config);

/// Sums the bins directly out of the segments after the run.
std::uint64_t histogram_total(runtime::World& world, const HistogramHandles& handles);

// ---------------------------------------------------------------------------
// pipeline
// ---------------------------------------------------------------------------

struct PipelineConfig {
  int tokens = 8;
  bool backpressure = true;  ///< false: deliberately racy variant.
  /// Credit window: with backpressure, a producer may run `ack_window`
  /// tokens ahead of its consumer's acks. 1 (default) is race-free; wider
  /// windows reintroduce the overwrite race, but only in schedules where
  /// the producer actually outpaces the consumer — a timing-dependent bug
  /// for the exploration harness to expose.
  int ack_window = 1;
};

struct PipelineHandles {
  mem::GlobalAddress sink;  ///< final accumulator on the last rank.
};

PipelineHandles spawn_pipeline(runtime::World& world, const PipelineConfig& config);

/// Expected sink value: each of `tokens` tokens is incremented once per hop
/// across ranks 1..n-1.
std::uint64_t pipeline_expected(int nprocs, const PipelineConfig& config);

}  // namespace dsmr::workload
