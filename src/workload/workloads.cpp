#include "workload/workloads.hpp"

#include <cstring>

#include "pgas/collectives.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dsmr::workload {

using runtime::Process;
using runtime::World;

// ---------------------------------------------------------------------------
// random
// ---------------------------------------------------------------------------

namespace {

sim::Task random_program(Process& p, RandomConfig cfg,
                         std::vector<mem::GlobalAddress> areas, std::uint64_t seed) {
  util::Rng rng(seed);
  pgas::Team team(p);
  std::vector<std::byte> value(cfg.value_bytes, std::byte{0});
  for (int op = 0; op < cfg.ops_per_proc; ++op) {
    const auto& target = areas[rng.below(areas.size())];
    const bool write = rng.chance(cfg.write_fraction);
    const bool locked = cfg.lock_fraction > 0.0 && rng.chance(cfg.lock_fraction);
    if (locked) co_await p.lock(target);
    if (write) {
      const std::uint64_t stamp = rng.next();
      std::memcpy(value.data(), &stamp, std::min(sizeof(stamp), value.size()));
      co_await p.put(target, value);
    } else {
      co_await p.get(target, cfg.value_bytes);
    }
    if (locked) co_await p.unlock(target);
    if (cfg.barrier_every > 0 && (op + 1) % cfg.barrier_every == 0) {
      co_await team.barrier();
    }
  }
}

}  // namespace

RandomHandles spawn_random(World& world, const RandomConfig& config) {
  DSMR_REQUIRE(config.areas > 0, "random workload needs areas");
  RandomHandles handles;
  for (int a = 0; a < config.areas; ++a) {
    const Rank home = static_cast<Rank>(a % world.nprocs());
    handles.areas.push_back(
        world.alloc(home, config.value_bytes, "rand" + std::to_string(a)));
  }
  util::Rng seeder(config.seed);
  for (Rank r = 0; r < world.nprocs(); ++r) {
    const std::uint64_t seed = seeder.next();
    world.spawn(r, [config, areas = handles.areas, seed](Process& p) {
      return random_program(p, config, areas, seed);
    });
  }
  return handles;
}

// ---------------------------------------------------------------------------
// master_worker
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint64_t kDoneTag = 0x4d57ULL << 32;  // "MW"

sim::Task worker_program(Process& p, MasterWorkerConfig cfg, mem::GlobalAddress result,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  for (int t = 0; t < cfg.tasks_per_worker; ++t) {
    co_await p.compute(1000 + rng.below(5000));  // the "work".
    // All workers put to the same slot: the intentional, benign race the
    // paper's §IV.D discusses — it must be signaled but never fatal.
    co_await p.put_value(result, static_cast<std::uint64_t>(p.rank()) * 1000 + t);
  }
  p.signal(0, kDoneTag);
}

sim::Task master_program(Process& p, mem::GlobalAddress result) {
  for (int w = 1; w < p.nprocs(); ++w) {
    co_await p.wait_signal(kDoneTag);
  }
  // Every worker's completion signal happened-before this read: no race.
  co_await p.get_value<std::uint64_t>(result);
}

}  // namespace

MasterWorkerHandles spawn_master_worker(World& world, const MasterWorkerConfig& config) {
  DSMR_REQUIRE(world.nprocs() >= 2, "master_worker needs a master and ≥1 worker");
  MasterWorkerHandles handles;
  handles.result = world.alloc(0, sizeof(std::uint64_t), "mw.result");
  world.spawn(0, [result = handles.result](Process& p) {
    return master_program(p, result);
  });
  util::Rng seeder(config.seed);
  for (Rank r = 1; r < world.nprocs(); ++r) {
    const std::uint64_t seed = seeder.next();
    world.spawn(r, [config, result = handles.result, seed](Process& p) {
      return worker_program(p, config, result, seed);
    });
  }
  return handles;
}

// ---------------------------------------------------------------------------
// stencil
// ---------------------------------------------------------------------------

namespace {

struct StencilAreas {
  std::vector<mem::GlobalAddress> halo_left;   ///< per rank: receives from r-1.
  std::vector<mem::GlobalAddress> halo_right;  ///< per rank: receives from r+1.
  std::vector<mem::GlobalAddress> results;
};

sim::Task stencil_program(Process& p, StencilConfig cfg, StencilAreas areas) {
  const Rank r = p.rank();
  const int n = p.nprocs();
  pgas::Team team(p);

  std::vector<double> cells(static_cast<std::size_t>(cfg.cells_per_rank));
  for (int i = 0; i < cfg.cells_per_rank; ++i) {
    cells[static_cast<std::size_t>(i)] = static_cast<double>(r * cfg.cells_per_rank + i);
  }

  for (int iter = 0; iter < cfg.iters; ++iter) {
    // Synchronized phase? Always when barrier_period == 1; with sparser
    // periods only every barrier_period-th iteration; never when buggy.
    const bool synced =
        !cfg.buggy && cfg.barrier_period > 0 && (iter % cfg.barrier_period) == 0;
    // Publish boundary cells into the neighbours' halos.
    if (r > 0) co_await p.put_value(areas.halo_right[static_cast<std::size_t>(r - 1)], cells.front());
    if (r < n - 1) co_await p.put_value(areas.halo_left[static_cast<std::size_t>(r + 1)], cells.back());
    if (synced) co_await team.barrier();

    // Read own halos (instrumented *local* accesses to public memory: the
    // model makes no distinction, §III.A) and relax.
    const double left = r > 0
        ? co_await p.get_value<double>(areas.halo_left[static_cast<std::size_t>(r)])
        : 0.0;
    const double right = r < n - 1
        ? co_await p.get_value<double>(areas.halo_right[static_cast<std::size_t>(r)])
        : 0.0;

    std::vector<double> next(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const double lv = i == 0 ? left : cells[i - 1];
      const double rv = i + 1 == cells.size() ? right : cells[i + 1];
      next[i] = (lv + cells[i] + rv) / 3.0;
    }
    cells = std::move(next);
    if (synced) co_await team.barrier();
  }

  // Publish final cells (local puts; sequential, race-free).
  std::vector<std::byte> bytes(cells.size() * sizeof(double));
  std::memcpy(bytes.data(), cells.data(), bytes.size());
  co_await p.put(areas.results[static_cast<std::size_t>(r)], bytes);
}

}  // namespace

StencilHandles spawn_stencil(World& world, const StencilConfig& config) {
  DSMR_REQUIRE(config.cells_per_rank >= 2, "stencil needs ≥2 cells per rank");
  DSMR_REQUIRE(config.barrier_period >= 0, "stencil barrier_period must be ≥ 0");
  StencilAreas areas;
  for (Rank r = 0; r < world.nprocs(); ++r) {
    areas.halo_left.push_back(world.alloc(r, sizeof(double), "halo_l" + std::to_string(r)));
    areas.halo_right.push_back(world.alloc(r, sizeof(double), "halo_r" + std::to_string(r)));
    areas.results.push_back(world.alloc(
        r, static_cast<std::uint32_t>(config.cells_per_rank * sizeof(double)),
        "cells" + std::to_string(r)));
  }
  for (Rank r = 0; r < world.nprocs(); ++r) {
    world.spawn(r, [config, areas](Process& p) { return stencil_program(p, config, areas); });
  }
  StencilHandles handles;
  handles.results = areas.results;
  handles.cells_per_rank = config.cells_per_rank;
  handles.iters = config.iters;
  return handles;
}

std::vector<double> stencil_reference(int nprocs, const StencilConfig& config) {
  const std::size_t total = static_cast<std::size_t>(nprocs) *
                            static_cast<std::size_t>(config.cells_per_rank);
  std::vector<double> cells(total);
  for (std::size_t i = 0; i < total; ++i) cells[i] = static_cast<double>(i);
  for (int iter = 0; iter < config.iters; ++iter) {
    std::vector<double> next(total);
    for (std::size_t i = 0; i < total; ++i) {
      const double lv = i == 0 ? 0.0 : cells[i - 1];
      const double rv = i + 1 == total ? 0.0 : cells[i + 1];
      next[i] = (lv + cells[i] + rv) / 3.0;
    }
    cells = std::move(next);
  }
  return cells;
}

// ---------------------------------------------------------------------------
// histogram
// ---------------------------------------------------------------------------

namespace {

sim::Task histogram_program(Process& p, HistogramConfig cfg,
                            pgas::SharedArray<std::uint64_t> bins, std::uint64_t seed) {
  util::Rng rng(seed);
  for (int i = 0; i < cfg.increments_per_rank; ++i) {
    const std::size_t bin = rng.below(static_cast<std::uint64_t>(cfg.bins));
    if (cfg.locked) co_await p.lock(bins.chunk_address(bin));
    const std::uint64_t value = co_await bins.read(p, bin);
    co_await bins.write(p, bin, value + 1);
    if (cfg.locked) co_await p.unlock(bins.chunk_address(bin));
  }
}

}  // namespace

HistogramHandles spawn_histogram(World& world, const HistogramConfig& config) {
  HistogramHandles handles{pgas::SharedArray<std::uint64_t>::allocate(
      world, static_cast<std::size_t>(config.bins), pgas::Distribution::kBlock,
      /*chunk_elems=*/1, "bin")};
  util::Rng seeder(config.seed);
  for (Rank r = 0; r < world.nprocs(); ++r) {
    const std::uint64_t seed = seeder.next();
    world.spawn(r, [config, bins = handles.bins, seed](Process& p) {
      return histogram_program(p, config, bins, seed);
    });
  }
  return handles;
}

std::uint64_t histogram_total(World& world, const HistogramHandles& handles) {
  std::uint64_t total = 0;
  for (std::size_t bin = 0; bin < handles.bins.size(); ++bin) {
    const auto addr = handles.bins.address(bin);
    const auto bytes = world.segment(addr.rank).read_bytes(addr.offset, sizeof(std::uint64_t));
    std::uint64_t value;
    std::memcpy(&value, bytes.data(), sizeof(value));
    total += value;
  }
  return total;
}

// ---------------------------------------------------------------------------
// pipeline
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint64_t token_tag(int t) { return (0x544bULL << 32) | static_cast<std::uint32_t>(t); }
constexpr std::uint64_t ack_tag(int t) { return (0x414bULL << 32) | static_cast<std::uint32_t>(t); }

sim::Task pipeline_program(Process& p, PipelineConfig cfg,
                           std::vector<mem::GlobalAddress> slots,
                           mem::GlobalAddress sink) {
  const Rank r = p.rank();
  const int n = p.nprocs();
  std::uint64_t accumulated = 0;

  for (int t = 0; t < cfg.tokens; ++t) {
    std::uint64_t value = 0;
    if (r == 0) {
      value = static_cast<std::uint64_t>(t);
    } else {
      // Predecessor put the token into my slot, then signaled: the signal's
      // clock orders my read after that write — no race.
      co_await p.wait_signal(token_tag(t));
      value = co_await p.get_value<std::uint64_t>(slots[static_cast<std::size_t>(r)]);
      p.signal(r - 1, ack_tag(t));  // credit: predecessor may overwrite my slot.
      value += 1;
    }
    if (r < n - 1) {
      if (cfg.backpressure && t >= cfg.ack_window) {
        // Without this credit the put below races with the successor's
        // read of the previous token. A window > 1 lets the producer run
        // ahead, so the credit arrives too late in unlucky schedules.
        co_await p.wait_signal(ack_tag(t - cfg.ack_window));
      }
      co_await p.put_value(slots[static_cast<std::size_t>(r + 1)], value);
      p.signal(r + 1, token_tag(t));
    } else {
      accumulated += value;
    }
  }
  if (r == n - 1) {
    co_await p.put_value(sink, accumulated);
  }
}

}  // namespace

PipelineHandles spawn_pipeline(World& world, const PipelineConfig& config) {
  DSMR_REQUIRE(world.nprocs() >= 2, "pipeline needs at least two ranks");
  DSMR_REQUIRE(config.ack_window >= 1, "pipeline ack_window must be ≥ 1");
  std::vector<mem::GlobalAddress> slots;
  for (Rank r = 0; r < world.nprocs(); ++r) {
    slots.push_back(world.alloc(r, sizeof(std::uint64_t), "slot" + std::to_string(r)));
  }
  PipelineHandles handles;
  handles.sink = world.alloc(world.nprocs() - 1, sizeof(std::uint64_t), "sink");
  for (Rank r = 0; r < world.nprocs(); ++r) {
    world.spawn(r, [config, slots, sink = handles.sink](Process& p) {
      return pipeline_program(p, config, slots, sink);
    });
  }
  return handles;
}

std::uint64_t pipeline_expected(int nprocs, const PipelineConfig& config) {
  std::uint64_t total = 0;
  for (int t = 0; t < config.tokens; ++t) {
    total += static_cast<std::uint64_t>(t) + static_cast<std::uint64_t>(nprocs - 1);
  }
  return total;
}

}  // namespace dsmr::workload
