// The simulated machine: n processes, their public memories and NICs, one
// interconnect, one virtual clock — plus the global race and event logs.
//
// A World is single-use: configure, allocate shared areas, spawn one program
// per rank, run to completion, then inspect races/events/traffic.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/event_log.hpp"
#include "core/race_report.hpp"
#include "core/types.hpp"
#include "detect/sharded_detector.hpp"
#include "mem/global_address.hpp"
#include "mem/public_segment.hpp"
#include "net/sim_fabric.hpp"
#include "nic/nic.hpp"
#include "nic/node_clock.hpp"
#include "sim/engine.hpp"
#include "sim/perturb.hpp"
#include "sim/task.hpp"

namespace dsmr::runtime {

class Process;

}  // namespace dsmr::runtime

namespace dsmr::record {
class Recorder;
}  // namespace dsmr::record

namespace dsmr::runtime {

struct WorldConfig {
  int nprocs = 2;
  std::uint64_t seed = 1;
  core::DetectorMode mode = core::DetectorMode::kDualClock;
  /// Lock shards per node detector (detect::ShardedDetector). The sim runs
  /// single-threaded, so 1 is right for it; >1 exists so the
  /// shard-equivalence suite can prove the partitioning is verdict-neutral.
  int detector_shards = 1;
  core::Transport transport = core::Transport::kHomeSide;
  net::LatencyModel latency{};
  /// Delay-bound schedule perturbation (sim/perturb.hpp): seeded extra skew
  /// on message delivery and task wakeups. Identity by default; (seed,
  /// perturb) names a replayable schedule.
  sim::PerturbConfig perturb{};
  /// Fault-injection plan (net/fault.hpp): lossy/duplicating/partitioned
  /// wire behind the reliable transport. Off by default; (seed, perturb,
  /// fault) is the complete replay coordinate.
  net::FaultPlan fault{};
  bool lock_clock_handoff = true;
  bool track_matrix_clocks = false;
  /// When true (default), a put's completion ack merges the home's clock
  /// into the initiator — puts behave as acknowledged/blocking writes, and
  /// produce-then-notify patterns are causally ordered. When false, puts are
  /// the paper's pure one-sided unacknowledged writes: completion conveys no
  /// knowledge, which is the regime in which Fig. 5c's m1 × m4 race exists.
  bool acked_puts = true;
  std::uint32_t segment_bytes = 1 << 20;   ///< public memory per rank.
  bool print_races = false;                ///< echo race reports to stderr
                                           ///< (the paper's §IV.D signaling).
  std::uint64_t max_events = 100'000'000;  ///< runaway-simulation guard.
};

struct RunReport {
  bool completed = false;          ///< every spawned program ran to its end.
  std::vector<Rank> stuck_ranks;   ///< programs still blocked at drain (deadlock).
  sim::Time end_time = 0;
  std::uint64_t engine_events = 0;
  std::uint64_t race_count = 0;
  bool hit_event_cap = false;      ///< stopped by max_events, not quiescence.
  /// The quiescence watchdog's structured dump — non-empty exactly when the
  /// run ended non-quiescent (stuck tasks, event cap, or undeliverable
  /// messages past the retry cap): per-rank pending NIC ops, the transport's
  /// oldest unacked messages, and the live coroutine frame count. Callers
  /// (dsmr_fuzz, dsmr_explore) surface it and exit nonzero instead of
  /// letting Engine teardown sweep the orphaned frames silently.
  std::string diagnostic;
};

class World {
 public:
  explicit World(WorldConfig config);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  const WorldConfig& config() const { return config_; }
  int nprocs() const { return config_.nprocs; }

  /// Registers `bytes` of shared data in `home`'s public memory (the
  /// compiler's data-placement role, §III.A). The returned global address
  /// is the area's start; the area is the unit of locking and detection.
  mem::GlobalAddress alloc(Rank home, std::uint32_t bytes, std::string name);

  /// Attaches an ordering recorder (record/recorder.hpp) for this run.
  /// Must be called before any alloc(): areas register with the recorder in
  /// allocation order, and the NICs/processes then emit one event per
  /// clock-affecting step. Recording requires the home-side wire layout
  /// (kHomeSide transport, or mode off which always uses it).
  void set_recorder(record::Recorder* recorder);
  record::Recorder* recorder() { return recorder_; }

  /// Installs the program for `rank`.
  ///
  /// The body may be a capturing (coroutine) lambda: the World stores the
  /// closure at a stable address for its whole lifetime, so captures remain
  /// valid inside the coroutine frame. (A coroutine lambda's captures live
  /// in the closure object, not the frame — destroying the closure while
  /// the coroutine is suspended is the classic C++20 lifetime bug.)
  void spawn(Rank rank, std::function<sim::Task(Process&)> body);

  /// Runs the simulation to completion (or deadlock / event cap).
  RunReport run();

  // ---- inspection ----
  sim::Engine& engine() { return engine_; }
  core::RaceLog& races() { return races_; }
  core::EventLog& events() { return events_; }
  net::SimFabric& fabric() { return fabric_; }  ///< e.g. for trace recording.
  const net::TrafficCounters& traffic() const { return fabric_.counters(); }
  void reset_traffic() { fabric_.reset_counters(); }
  mem::PublicSegment& segment(Rank rank);
  detect::ShardedDetector& detector(Rank rank);
  nic::Nic& nic(Rank rank);
  nic::NodeClock& node_clock(Rank rank);
  Process& process(Rank rank);

  /// The next wakeup skew under the configured perturbation (0 when
  /// disabled). Consumed by Process::sleep / Process::compute.
  sim::Time wakeup_skew() { return wakeup_perturb_.skew(); }

  /// Detection-metadata bytes across all ranks (CLAIM-V.A1).
  std::size_t total_clock_bytes() const;

  /// The global knowledge frontier: componentwise minimum over all process
  /// clocks. Every event whose issue clock is dominated by the frontier is
  /// causally before *every* future event in the system — the sound pruning
  /// horizon for race-candidate bookkeeping. Monotonically non-decreasing.
  ///
  /// With `track_matrix_clocks` enabled, each node can compute its own
  /// conservative estimate distributively (MatrixClock::gc_frontier), which
  /// is always dominated by this global value — asserted by tests.
  clocks::VectorClock knowledge_frontier() const;

 private:
  struct Node {
    Node(Rank rank, World& world);
    mem::PublicSegment segment;
    detect::ShardedDetector detector;  ///< declared before nic (init order).
    nic::NodeClock clock;
    nic::Nic nic;
  };

  WorldConfig config_;
  record::Recorder* recorder_ = nullptr;
  sim::Engine engine_;
  net::SimFabric fabric_;
  sim::Perturbator wakeup_perturb_;
  core::RaceLog races_;
  core::EventLog events_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Process>> processes_;
  /// Spawned program closures, heap-pinned so coroutine frames may keep
  /// referring to their captures. Destroyed after tasks_ (declared before).
  std::vector<std::unique_ptr<std::function<sim::Task(Process&)>>> bodies_;
  std::vector<sim::Task> tasks_;
  std::vector<Rank> task_ranks_;
  bool ran_ = false;
};

}  // namespace dsmr::runtime
