#include "runtime/world.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "record/recorder.hpp"
#include "runtime/process.hpp"
#include "util/assert.hpp"

namespace dsmr::runtime {

World::Node::Node(Rank rank, World& world)
    : segment(rank, world.config_.segment_bytes, static_cast<std::size_t>(world.config_.nprocs)),
      detector(static_cast<std::size_t>(world.config_.nprocs), rank,
               world.config_.detector_shards),
      clock(static_cast<std::size_t>(world.config_.nprocs), rank,
            world.config_.track_matrix_clocks),
      nic(rank, world.engine_, world.fabric_, segment, detector, clock,
          nic::NicConfig{world.config_.mode, world.config_.transport,
                         world.config_.lock_clock_handoff},
          world.races_, world.events_) {}

World::World(WorldConfig config)
    : config_(config),
      engine_(),
      fabric_(engine_, config.nprocs, config.latency, config.seed, config.perturb,
              config.fault),
      wakeup_perturb_(config.perturb, config.seed, /*stream=*/1) {
  DSMR_REQUIRE(config_.nprocs > 0, "world needs at least one process");
  nodes_.reserve(static_cast<std::size_t>(config_.nprocs));
  processes_.reserve(static_cast<std::size_t>(config_.nprocs));
  for (Rank r = 0; r < config_.nprocs; ++r) {
    nodes_.push_back(std::make_unique<Node>(r, *this));
    fabric_.attach(r, [nic = &nodes_.back()->nic](const net::Message& m) {
      nic->on_message(m);
    });
  }
  // The "compiler" knows the whole layout: every NIC resolves any rank's
  // addresses through the World.
  const auto resolver = [this](Rank rank, std::uint32_t offset,
                               std::uint32_t len) -> const mem::Area* {
    DSMR_REQUIRE(rank >= 0 && rank < config_.nprocs, "resolve: bad rank " << rank);
    return nodes_[static_cast<std::size_t>(rank)]->segment.find_area(offset, len);
  };
  for (auto& node : nodes_) node->nic.set_resolver(resolver);
  for (Rank r = 0; r < config_.nprocs; ++r) {
    processes_.push_back(std::make_unique<Process>(*this, r));
  }
  if (config_.print_races) {
    races_.add_observer([](const core::RaceReport& report) {
      std::fprintf(stderr, "%s\n", report.describe().c_str());
    });
  }
}

World::~World() = default;

void World::set_recorder(record::Recorder* recorder) {
  DSMR_REQUIRE(!ran_, "set_recorder after run()");
  DSMR_REQUIRE(config_.mode == core::DetectorMode::kOff ||
                   config_.transport == core::Transport::kHomeSide,
               "recording requires the home-side wire layout, got transport "
                   << core::to_string(config_.transport) << " with mode "
                   << core::to_string(config_.mode));
  recorder_ = recorder;
  for (auto& node : nodes_) node->nic.set_recorder(recorder);
}

mem::GlobalAddress World::alloc(Rank home, std::uint32_t bytes, std::string name) {
  DSMR_REQUIRE(home >= 0 && home < config_.nprocs, "alloc: bad rank " << home);
  auto& node = *nodes_[static_cast<std::size_t>(home)];
  auto& segment = node.segment;
  const mem::AreaId id = segment.allocate_area(bytes, std::move(name));
  node.detector.register_area(id);
  if (recorder_ != nullptr) {
    recorder_->register_area(home, id, bytes, segment.area(id).name);
  }
  return {home, segment.area(id).offset};
}

void World::spawn(Rank rank, std::function<sim::Task(Process&)> body) {
  DSMR_REQUIRE(rank >= 0 && rank < config_.nprocs, "spawn: bad rank " << rank);
  DSMR_REQUIRE(!ran_, "spawn after run()");
  bodies_.push_back(
      std::make_unique<std::function<sim::Task(Process&)>>(std::move(body)));
  tasks_.push_back((*bodies_.back())(*processes_[static_cast<std::size_t>(rank)]));
  task_ranks_.push_back(rank);
}

RunReport World::run() {
  DSMR_REQUIRE(!ran_, "World::run may only be called once");
  ran_ = true;
  for (auto& task : tasks_) {
    engine_.schedule_at(0, [&task] { task.start(); });
  }
  const std::uint64_t fired = engine_.run(config_.max_events);

  RunReport report;
  report.end_time = engine_.now();
  report.engine_events = fired;
  report.race_count = races_.count();
  report.completed = true;
  report.hit_event_cap = fired >= config_.max_events && !engine_.idle();
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!tasks_[i].done()) {
      report.completed = false;
      report.stuck_ranks.push_back(task_ranks_[i]);
    }
  }

  // Quiescence watchdog: a run that drained with suspended tasks (deadlock,
  // unrecoverable fault) or hit the event cap terminates with a structured
  // diagnostic — stuck rank, pending op, oldest unacked message — instead
  // of the silent orphan-frame sweep in ~Engine.
  if (!report.completed || report.hit_event_cap) {
    std::ostringstream out;
    out << "watchdog: non-quiescent termination at t=" << report.end_time << " ("
        << (report.hit_event_cap ? "event cap hit, " : "") << report.stuck_ranks.size()
        << "/" << tasks_.size() << " tasks stuck, " << engine_.live_frames()
        << " live coroutine frames)";
    for (const Rank rank : report.stuck_ranks) {
      const auto ops = nodes_[static_cast<std::size_t>(rank)]->nic.pending_ops();
      out << "\n  rank " << rank << ": "
          << (ops.empty() ? "blocked with no pending NIC op" : "");
      for (std::size_t i = 0; i < ops.size(); ++i) {
        out << (i == 0 ? "" : "; ") << ops[i];
      }
    }
    const auto unacked = fabric_.unacked();
    if (!unacked.empty()) {
      out << "\n  oldest unacked: " << unacked.front().describe();
      if (unacked.size() > 1) out << " (+" << unacked.size() - 1 << " more)";
    }
    report.diagnostic = out.str();
  }
  return report;
}

mem::PublicSegment& World::segment(Rank rank) {
  DSMR_REQUIRE(rank >= 0 && rank < config_.nprocs, "segment: bad rank " << rank);
  return nodes_[static_cast<std::size_t>(rank)]->segment;
}

detect::ShardedDetector& World::detector(Rank rank) {
  DSMR_REQUIRE(rank >= 0 && rank < config_.nprocs, "detector: bad rank " << rank);
  return nodes_[static_cast<std::size_t>(rank)]->detector;
}

nic::Nic& World::nic(Rank rank) {
  DSMR_REQUIRE(rank >= 0 && rank < config_.nprocs, "nic: bad rank " << rank);
  return nodes_[static_cast<std::size_t>(rank)]->nic;
}

nic::NodeClock& World::node_clock(Rank rank) {
  DSMR_REQUIRE(rank >= 0 && rank < config_.nprocs, "node_clock: bad rank " << rank);
  return nodes_[static_cast<std::size_t>(rank)]->clock;
}

Process& World::process(Rank rank) {
  DSMR_REQUIRE(rank >= 0 && rank < config_.nprocs, "process: bad rank " << rank);
  return *processes_[static_cast<std::size_t>(rank)];
}

std::size_t World::total_clock_bytes() const {
  std::size_t total = 0;
  for (const auto& node : nodes_) total += node->detector.storage_bytes();
  return total;
}

clocks::VectorClock World::knowledge_frontier() const {
  clocks::VectorClock frontier = nodes_.front()->clock.vector();
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const auto& clock = nodes_[i]->clock.vector();
    for (std::size_t k = 0; k < frontier.size(); ++k) {
      frontier[k] = std::min(frontier[k], clock[k]);
    }
  }
  return frontier;
}

}  // namespace dsmr::runtime
