#include "runtime/thread_world.hpp"

#include <algorithm>
#include <thread>

#include "record/recorder.hpp"
#include "record/replay.hpp"
#include "util/assert.hpp"

namespace dsmr::runtime {

namespace {

/// Real-pause caps for the virtual-duration ops: long virtual sleeps must
/// still shake the thread scheduler without making runs wall-clock slow.
constexpr std::chrono::microseconds kMaxSleep{50};
constexpr std::chrono::microseconds kMaxCompute{5};

std::chrono::microseconds capped(std::uint64_t virtual_ns,
                                 std::chrono::microseconds cap) {
  const auto want = std::chrono::microseconds(virtual_ns / 1000);
  return std::min(want, cap);
}

}  // namespace

ThreadWorld::Node::Node(Rank rank, const ThreadWorldConfig& config)
    : segment(rank, config.segment_bytes, static_cast<std::size_t>(config.nprocs)),
      detector(static_cast<std::size_t>(config.nprocs), rank, config.stripes) {}

ThreadWorld::ThreadWorld(ThreadWorldConfig config)
    : config_(config), fabric_(config.nprocs) {
  DSMR_REQUIRE(config_.nprocs > 0, "ThreadWorld needs at least one rank");
  DSMR_REQUIRE(config_.stripes > 0, "ThreadWorld needs at least one detector shard");
  if (config_.recorder != nullptr) {
    const record::LogHeader& header = config_.recorder->header();
    DSMR_REQUIRE(header.backend == record::Backend::kThread &&
                     header.nprocs == static_cast<std::uint32_t>(config_.nprocs) &&
                     header.mode == config_.mode &&
                     header.lock_clock_handoff == config_.lock_clock_handoff &&
                     header.acked_puts == config_.acked_puts,
                 "recorder header does not match this ThreadWorld's config");
  }
  if (config_.replay != nullptr) {
    const record::LogHeader& header = config_.replay->header;
    DSMR_REQUIRE(header.backend == record::Backend::kThread,
                 "replay of a " << record::to_string(header.backend)
                                << " log on the threaded backend");
    DSMR_REQUIRE(header.nprocs == static_cast<std::uint32_t>(config_.nprocs),
                 "replay log has " << header.nprocs << " ranks, world has "
                                   << config_.nprocs);
    DSMR_REQUIRE(header.lock_clock_handoff == config_.lock_clock_handoff &&
                     header.acked_puts == config_.acked_puts,
                 "replay log was recorded under a different clock regime");
    gate_ = std::make_unique<record::ReplayGate>(*config_.replay);
  }
  for (Rank r = 0; r < config_.nprocs; ++r) {
    nodes_.push_back(std::make_unique<Node>(r, config_));
    processes_.push_back(std::make_unique<ThreadProcess>(r, *this));
  }
  bodies_.resize(static_cast<std::size_t>(config_.nprocs));
  if (config_.print_races) {
    races_.add_observer([](const core::RaceReport& report) {
      std::fprintf(stderr, "%s\n", report.describe().c_str());
    });
  }
}

ThreadWorld::~ThreadWorld() = default;

mem::GlobalAddress ThreadWorld::alloc(Rank home, std::uint32_t bytes, std::string name) {
  DSMR_REQUIRE(!ran_, "alloc after run(): the area index is immutable once threads start");
  DSMR_REQUIRE(home >= 0 && home < config_.nprocs, "alloc home " << home << " out of range");
  Node& node = *nodes_[static_cast<std::size_t>(home)];
  const mem::AreaId id = node.segment.allocate_area(bytes, std::move(name));
  node.detector.register_area(id);
  node.user_locks.push_back(std::make_unique<UserLock>());
  DSMR_CHECK_MSG(node.user_locks.size() == node.segment.area_count(),
                 "user-lock table out of step with the area table");
  if (config_.recorder != nullptr) {
    config_.recorder->register_area(home, id, bytes, node.segment.area(id).name);
  }
  if (config_.replay != nullptr) {
    // Replay re-executes the recorded program, so allocations must rebuild
    // the recorded area table entry for entry.
    const std::uint64_t flat = replay_areas_.add(home, id);
    DSMR_REQUIRE(flat < config_.replay->areas.size(),
                 "replay program allocates more areas than the log records");
    const record::AreaEntry& entry = config_.replay->areas[flat];
    DSMR_REQUIRE(entry.home == home && entry.size == bytes,
                 "replay area #" << flat << " (" << node.segment.area(id).name
                                 << ") does not match the recorded table");
  }
  return mem::GlobalAddress{home, node.segment.area(id).offset};
}

void ThreadWorld::spawn(Rank rank, std::function<void(ThreadProcess&)> body) {
  DSMR_REQUIRE(!ran_, "spawn after run()");
  DSMR_REQUIRE(rank >= 0 && rank < config_.nprocs, "spawn rank " << rank << " out of range");
  auto& slot = bodies_[static_cast<std::size_t>(rank)];
  DSMR_REQUIRE(!slot, "rank " << rank << " already has a program");
  slot = std::move(body);
}

ThreadRunReport ThreadWorld::run() {
  DSMR_REQUIRE(!ran_, "a ThreadWorld is single-use");
  ran_ = true;
  const auto start = std::chrono::steady_clock::now();
  deadline_ = start + config_.run_timeout;

  std::mutex stuck_mutex;
  std::vector<Rank> stuck;
  std::vector<std::thread> threads;
  for (Rank r = 0; r < config_.nprocs; ++r) {
    auto& body = bodies_[static_cast<std::size_t>(r)];
    if (!body) continue;
    threads.emplace_back([this, r, &body, &stuck_mutex, &stuck]() {
      try {
        body(*processes_[static_cast<std::size_t>(r)]);
      } catch (const StuckRank&) {
        std::lock_guard<std::mutex> guard(stuck_mutex);
        stuck.push_back(r);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  ThreadRunReport report;
  std::sort(stuck.begin(), stuck.end());
  report.stuck_ranks = std::move(stuck);
  report.completed = report.stuck_ranks.empty();
  report.race_count = races_.count();
  for (const auto& process : processes_) report.checks += process->checks();
  report.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return report;
}

mem::PublicSegment& ThreadWorld::segment(Rank rank) {
  DSMR_REQUIRE(rank >= 0 && rank < config_.nprocs, "segment rank out of range");
  return nodes_[static_cast<std::size_t>(rank)]->segment;
}

ThreadProcess& ThreadWorld::process(Rank rank) {
  DSMR_REQUIRE(rank >= 0 && rank < config_.nprocs, "process rank out of range");
  return *processes_[static_cast<std::size_t>(rank)];
}

detect::ShardedDetector& ThreadWorld::detector(Rank rank) {
  DSMR_REQUIRE(rank >= 0 && rank < config_.nprocs, "detector rank out of range");
  return nodes_[static_cast<std::size_t>(rank)]->detector;
}

const record::Event* ThreadWorld::replay_enter(Rank rank, record::EventKind kind,
                                               std::uint64_t detail) {
  if (!gate_) return nullptr;
  const record::Event* event = nullptr;
  switch (gate_->enter(rank, deadline_, &event)) {
    case record::ReplayGate::Enter::kOk:
      break;
    case record::ReplayGate::Enter::kExhausted:
      // The recorded run had this rank blocked past this point; reproduce
      // the stuck verdict without waiting out the deadline.
      throw StuckRank{};
    case record::ReplayGate::Enter::kTimeout:
      throw StuckRank{};
  }
  // A wait names only its tag up front (the log pins the sender); every
  // other kind is discriminated by field b (area / destination).
  const std::uint64_t logged =
      kind == record::EventKind::kWaitMatch ? event->c : event->b;
  DSMR_CHECK_MSG(event->kind == kind && logged == detail,
                 "replay divergence at event #" << gate_->cursor() << ": log has "
                     << record::to_string(event->kind) << "(" << logged
                     << "), program executed " << record::to_string(kind) << "("
                     << detail << ") on rank " << rank);
  return event;
}

void ThreadWorld::replay_advance() {
  if (gate_) gate_->advance();
}

void ThreadWorld::record_race(core::AccessKind kind, Rank accessor, Rank home,
                              const mem::Area& area,
                              const clocks::VectorClock& accessor_clock,
                              const core::Verdict& verdict, std::uint64_t event_id,
                              std::uint64_t prior_event_id) {
  core::RaceReport report;
  report.home = home;
  report.area = area.id;
  report.area_name = area.name;
  report.accessor = accessor;
  report.kind = kind;
  report.event_id = event_id;
  report.accessor_clock = accessor_clock;
  report.against = verdict.against;
  // Caller holds the area's shard mutex, so this read is under the same
  // critical section as the verdict it explains.
  report.stored_clock =
      nodes_[static_cast<std::size_t>(home)]->detector.prior_clock(area.id,
                                                                   verdict.against);
  report.prior_event_id = prior_event_id;
  std::lock_guard<std::mutex> guard(races_mutex_);
  races_.record(std::move(report));
}

// ---------------------------------------------------------------------------
// ThreadProcess
// ---------------------------------------------------------------------------

ThreadProcess::ThreadProcess(Rank rank, ThreadWorld& world)
    : rank_(rank),
      world_(world),
      clock_(static_cast<std::size_t>(world.nprocs())) {}

ThreadProcess::Resolved ThreadProcess::resolve(mem::GlobalAddress addr,
                                               std::uint32_t len) {
  DSMR_REQUIRE(addr.rank >= 0 && addr.rank < world_.nprocs(),
               "access to rank " << addr.rank << " out of range");
  ThreadWorld::Node* node = world_.nodes_[static_cast<std::size_t>(addr.rank)].get();
  mem::Area* area = node->segment.find_area(addr.offset, len);
  DSMR_REQUIRE(area != nullptr, "access to unregistered range " << addr.to_string()
                                                                << "+" << len);
  return Resolved{node, area};
}

void ThreadProcess::account(net::Message m) {
  world_.fabric_.shard(rank_).record(m);
}

std::uint64_t ThreadProcess::recorded_area(Rank home, mem::AreaId area_id) const {
  // When replaying, the log's table is authoritative (a re-record run has
  // both attached, and alloc() keeps the two tables identical).
  if (world_.config_.replay != nullptr) return world_.replay_areas_.at(home, area_id);
  return world_.config_.recorder->area_index(home, area_id);
}

void ThreadProcess::put(mem::GlobalAddress dst, const std::vector<std::byte>& data) {
  record::Recorder* const rec = world_.config_.recorder;
  auto [node, area] = resolve(dst, static_cast<std::uint32_t>(data.size()));
  const std::uint64_t flat = (rec != nullptr || world_.config_.replay != nullptr)
                                 ? recorded_area(dst.rank, area->id)
                                 : 0;
  world_.replay_enter(rank_, record::EventKind::kThreadPut, flat);
  clock_.tick(rank_);
  const std::uint64_t event_id = next_event_id();
  const bool acked = world_.config_.acked_puts;
  clocks::VectorClock completion;  ///< pre-update V ∨ W, merged on ack.
  {
    detect::ShardedDetector& det = node->detector;
    std::lock_guard<std::mutex> guard(det.shard_mutex(area->id));
    ++checks_;
    // Linearization point: the stamp is taken under the shard mutex, so
    // the merged log orders this op against every other op on the area
    // exactly as the run did.
    if (rec != nullptr) {
      rec->record_thread(rank_, record::EventKind::kThreadPut, flat, data.size());
    }
    const core::Verdict verdict = det.check_one(
        world_.config_.mode, core::AccessKind::kWrite, rank_, clock_, area->id);
    if (verdict.race) {
      world_.record_race(core::AccessKind::kWrite, rank_, dst.rank, *area, clock_,
                         verdict, event_id,
                         det.prior_event(area->id, verdict.against));
    }
    if (acked) {
      completion = det.v_clock(area->id);
      completion.merge_from(det.w_clock(area->id));
    }
    det.store_access(area->id, rank_, clock_, /*is_write=*/true, rank_, event_id);
    node->segment.write_bytes(dst.offset, data);
  }
  if (acked) clock_.merge_from(completion);

  // Wire-equivalent accounting, kHomeSide shapes: one commit carrying the
  // initiator clock, one ack (carrying the completion clock when acked).
  net::Message commit;
  commit.type = net::MsgType::kPutCommit;
  commit.src = rank_;
  commit.dst = dst.rank;
  commit.area = area->id;
  commit.data.resize(data.size());
  commit.clock = clock_;
  account(std::move(commit));
  net::Message ack;
  ack.type = net::MsgType::kPutCommitAck;
  ack.src = dst.rank;
  ack.dst = rank_;
  ack.area = area->id;
  if (acked) {
    ack.clock = completion;
  } else {
    ack.clocks_on_wire = false;
  }
  account(std::move(ack));
  world_.replay_advance();
}

std::vector<std::byte> ThreadProcess::get(mem::GlobalAddress src, std::uint32_t len) {
  record::Recorder* const rec = world_.config_.recorder;
  auto [node, area] = resolve(src, len);
  const std::uint64_t flat = (rec != nullptr || world_.config_.replay != nullptr)
                                 ? recorded_area(src.rank, area->id)
                                 : 0;
  world_.replay_enter(rank_, record::EventKind::kThreadGet, flat);
  clock_.tick(rank_);
  const std::uint64_t event_id = next_event_id();
  clocks::VectorClock reads_from;  ///< the stored W this get observed.
  std::vector<std::byte> data;
  {
    detect::ShardedDetector& det = node->detector;
    std::lock_guard<std::mutex> guard(det.shard_mutex(area->id));
    ++checks_;
    if (rec != nullptr) {
      rec->record_thread(rank_, record::EventKind::kThreadGet, flat, len);
    }
    const core::Verdict verdict = det.check_one(
        world_.config_.mode, core::AccessKind::kRead, rank_, clock_, area->id);
    if (verdict.race) {
      world_.record_race(core::AccessKind::kRead, rank_, src.rank, *area, clock_,
                         verdict, event_id,
                         det.prior_event(area->id, verdict.against));
    }
    reads_from = det.w_clock(area->id);
    det.store_access(area->id, rank_, clock_, /*is_write=*/false, rank_, event_id);
    data = node->segment.read_bytes(src.offset, len);
  }
  clock_.merge_from(reads_from);

  net::Message request;
  request.type = net::MsgType::kGetLockedRequest;
  request.src = rank_;
  request.dst = src.rank;
  request.area = area->id;
  request.clock = clock_;
  account(std::move(request));
  net::Message response;
  response.type = net::MsgType::kGetLockedResponse;
  response.src = src.rank;
  response.dst = rank_;
  response.area = area->id;
  response.data.resize(len);
  response.clock = reads_from;
  account(std::move(response));
  world_.replay_advance();
  return data;
}

void ThreadProcess::lock(mem::GlobalAddress addr) {
  record::Recorder* const rec = world_.config_.recorder;
  auto [node, area] = resolve(addr, 1);
  const std::uint64_t flat = (rec != nullptr || world_.config_.replay != nullptr)
                                 ? recorded_area(addr.rank, area->id)
                                 : 0;
  // Gate BEFORE taking a ticket: the FIFO queue then hands out tickets in
  // the logged grant order, so the grant is immediate (the logged previous
  // holder's unlock has already executed and advanced the gate).
  world_.replay_enter(rank_, record::EventKind::kThreadLock, flat);
  ThreadWorld::UserLock& user_lock = *node->user_locks[area->id];
  std::unique_lock<std::mutex> guard(user_lock.mutex);
  const std::uint64_t ticket = user_lock.next_ticket++;
  const bool granted = user_lock.turn.wait_until(
      guard, world_.deadline_,
      [&user_lock, ticket]() { return user_lock.now_serving == ticket; });
  if (!granted) {
    // Leave a tombstone so releases skip this ticket: one stuck rank must
    // not wedge every later waiter in the queue.
    user_lock.abandoned.insert(ticket);
    throw ThreadWorld::StuckRank{};
  }
  clock_.tick(rank_);
  if (world_.config_.lock_clock_handoff && user_lock.handoff.size() > 0) {
    clock_.merge_from(user_lock.handoff);
  }
  // Stamped under the user-lock mutex: grant order IS the logged order.
  if (rec != nullptr) rec->record_thread(rank_, record::EventKind::kThreadLock, flat);
  net::Message request;
  request.type = net::MsgType::kLockRequest;
  request.src = rank_;
  request.dst = addr.rank;
  request.area = area->id;
  request.clocks_on_wire = false;
  account(std::move(request));
  net::Message grant;
  grant.type = net::MsgType::kLockGrant;
  grant.src = addr.rank;
  grant.dst = rank_;
  grant.area = area->id;
  if (world_.config_.lock_clock_handoff) {
    grant.clock = clock_;
  } else {
    grant.clocks_on_wire = false;
  }
  account(std::move(grant));
  world_.replay_advance();
}

void ThreadProcess::unlock(mem::GlobalAddress addr) {
  record::Recorder* const rec = world_.config_.recorder;
  auto [node, area] = resolve(addr, 1);
  const std::uint64_t flat = (rec != nullptr || world_.config_.replay != nullptr)
                                 ? recorded_area(addr.rank, area->id)
                                 : 0;
  world_.replay_enter(rank_, record::EventKind::kThreadUnlock, flat);
  ThreadWorld::UserLock& user_lock = *node->user_locks[area->id];
  clock_.tick(rank_);
  {
    std::lock_guard<std::mutex> guard(user_lock.mutex);
    DSMR_REQUIRE(user_lock.now_serving < user_lock.next_ticket,
                 "unlock of an unheld lock on area " << area->name);
    user_lock.handoff = clock_;
    if (rec != nullptr) {
      rec->record_thread(rank_, record::EventKind::kThreadUnlock, flat);
    }
    ++user_lock.now_serving;
    while (user_lock.abandoned.erase(user_lock.now_serving) > 0) {
      ++user_lock.now_serving;
    }
  }
  user_lock.turn.notify_all();
  net::Message release;
  release.type = net::MsgType::kUnlock;
  release.src = rank_;
  release.dst = addr.rank;
  release.area = area->id;
  release.clocks_on_wire = false;
  account(std::move(release));
  world_.replay_advance();
}

void ThreadProcess::signal(Rank to, std::uint64_t tag, std::vector<std::byte> payload) {
  record::Recorder* const rec = world_.config_.recorder;
  world_.replay_enter(rank_, record::EventKind::kSignal,
                      static_cast<std::uint64_t>(to));
  clock_.tick(rank_);
  // Stamped before the mailbox append: the matching wait stamps after its
  // pop, and pop happens-after append, so send < wait in the merged log.
  if (rec != nullptr) {
    rec->record_thread(rank_, record::EventKind::kSignal,
                       static_cast<std::uint64_t>(to), tag);
  }
  net::Message wire;
  wire.type = net::MsgType::kSignal;
  wire.src = rank_;
  wire.dst = to;
  wire.tag = tag;
  wire.data.resize(payload.size());
  wire.clock = clock_;
  account(std::move(wire));
  world_.fabric_.signal(to, tag, net::ThreadSignal{rank_, clock_, std::move(payload)});
  world_.replay_advance();
}

std::vector<std::byte> ThreadProcess::wait_signal(std::uint64_t tag) {
  record::Recorder* const rec = world_.config_.recorder;
  std::optional<net::ThreadSignal> message;
  if (const record::Event* event =
          world_.replay_enter(rank_, record::EventKind::kWaitMatch, tag)) {
    // The log pins WHICH sender's signal this wait consumed; the mailbox
    // already holds it (its send is earlier in the log and has advanced).
    message = world_.fabric_.wait_signal_from(
        rank_, tag, static_cast<Rank>(event->b), world_.deadline_);
  } else {
    message = world_.fabric_.wait_signal(rank_, tag, world_.deadline_);
  }
  if (!message) throw ThreadWorld::StuckRank{};
  if (rec != nullptr) {
    rec->record_thread(rank_, record::EventKind::kWaitMatch,
                       static_cast<std::uint64_t>(message->src), tag,
                       message->clock[static_cast<std::size_t>(message->src)]);
  }
  clock_.tick(rank_);
  clock_.merge_from(message->clock);
  world_.replay_advance();
  return std::move(message->payload);
}

void ThreadProcess::sleep(std::uint64_t ns) {
  record::Recorder* const rec = world_.config_.recorder;
  world_.replay_enter(rank_, record::EventKind::kTick, 0);
  clock_.tick(rank_);
  if (rec != nullptr) rec->record_thread(rank_, record::EventKind::kTick);
  // The pause only shakes the live scheduler; under the gate the
  // interleaving is already forced, so replay skips it.
  if (world_.config_.replay == nullptr) {
    const auto pause = capped(ns, kMaxSleep);
    if (pause.count() > 0) {
      std::this_thread::sleep_for(pause);
    } else {
      std::this_thread::yield();
    }
  }
  world_.replay_advance();
}

void ThreadProcess::compute(std::uint64_t ns) {
  record::Recorder* const rec = world_.config_.recorder;
  world_.replay_enter(rank_, record::EventKind::kTick, 0);
  clock_.tick(rank_);
  if (rec != nullptr) rec->record_thread(rank_, record::EventKind::kTick);
  if (world_.config_.replay == nullptr) {
    const auto pause = capped(ns, kMaxCompute);
    if (pause.count() > 0) {
      std::this_thread::sleep_for(pause);
    } else {
      std::this_thread::yield();
    }
  }
  world_.replay_advance();
}

}  // namespace dsmr::runtime
