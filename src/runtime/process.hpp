// The per-process communication-library API — the layer the paper proposes
// instrumenting ("in the communication library of a parallel language, for
// automatic detection of conflictual accesses", §V.B).
//
// Every operation is a blocking coroutine: `co_await p.put(...)` returns
// when the one-sided operation has completed (including the detection steps
// of Algorithms 1-2, which run inside the NIC layer). Race conditions are
// *signaled* through the World's RaceLog; they never abort execution
// (§IV.D).
#pragma once

#include <cstring>
#include <set>
#include <span>
#include <vector>

#include "clocks/vector_clock.hpp"
#include "mem/global_address.hpp"
#include "nic/nic.hpp"
#include "sim/future.hpp"
#include "sim/task.hpp"

namespace dsmr::runtime {

class World;

class Process {
 public:
  Process(World& world, Rank rank);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  Rank rank() const { return rank_; }
  int nprocs() const;
  sim::Time now() const;
  sim::Engine& engine();
  World& world() { return world_; }

  /// The process's current vector clock (the own row of its clock matrix).
  const clocks::VectorClock& clock() const;

  // ---- one-sided data operations ----

  /// Writes `src` into the public memory at `dst` (Algorithm 1).
  sim::Future<void> put(mem::GlobalAddress dst, std::span<const std::byte> src);

  /// Reads `len` bytes from the public memory at `src` (Algorithm 2) into
  /// the process's private memory (the returned buffer).
  sim::Future<std::vector<std::byte>> get(mem::GlobalAddress src, std::uint32_t len);

  /// Typed convenience wrappers for trivially copyable values.
  template <typename T>
  sim::Future<void> put_value(mem::GlobalAddress dst, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(sizeof(T));
    std::memcpy(bytes.data(), &value, sizeof(T));
    return put_bytes(dst, std::move(bytes));
  }

  template <typename T>
  sim::Future<T> get_value(mem::GlobalAddress src) {
    return typed_get<T>(src);
  }

  /// Copies `len` bytes within the global address space (paper §III.B:
  /// "communications can also be done within the public space") — an
  /// instrumented get followed by an instrumented put.
  sim::Future<void> copy(mem::GlobalAddress src, mem::GlobalAddress dst,
                         std::uint32_t len);

  // ---- NIC-provided area locks (paper §III.A) ----

  /// Acquires the lock of the area at `addr`; establishes happens-before
  /// from the previous releaser when lock handoff is enabled. Non-reentrant.
  sim::Future<void> lock(mem::GlobalAddress addr);
  sim::Future<void> unlock(mem::GlobalAddress addr);

  // ---- point-to-point synchronization (control plane) ----

  /// Sends a signal carrying this process's clock (a happens-before edge)
  /// and optional payload. Fire-and-forget.
  void signal(Rank to, std::uint64_t tag, std::span<const std::byte> payload = {});

  /// Waits for a signal with `tag`; merges the sender's clock (receive
  /// event) and returns the payload.
  sim::Future<std::vector<std::byte>> wait_signal(std::uint64_t tag);

  /// Local computation for `duration` of virtual time (a logical event:
  /// ticks the process clock).
  sim::Future<void> compute(sim::Time duration);

  /// Pure scheduling delay without a logical event (clock untouched).
  sim::Future<void> sleep(sim::Time duration);

  /// User lock tokens currently held — consumed by the lockset baseline via
  /// the event log.
  const std::set<std::uint64_t>& held_locks() const { return held_locks_; }

 private:
  friend class World;

  nic::Nic& nic();
  const nic::Nic& nic() const;

  /// Common preamble of every access (Algorithms 1-2 steps 1-2): tick the
  /// local clock, snapshot the issue clock, record the event.
  nic::OpContext begin_access(core::AccessKind kind, mem::GlobalAddress addr,
                              std::uint32_t len);

  sim::Future<void> put_bytes(mem::GlobalAddress dst, std::vector<std::byte> bytes);

  template <typename T>
  sim::Future<T> typed_get(mem::GlobalAddress src) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = co_await get(src, sizeof(T));
    T value;
    std::memcpy(&value, bytes.data(), sizeof(T));
    co_return value;
  }

  World& world_;
  Rank rank_;
  std::set<std::uint64_t> held_locks_;
};

}  // namespace dsmr::runtime
