#include "runtime/process.hpp"

#include <utility>

#include "record/recorder.hpp"
#include "runtime/world.hpp"
#include "util/assert.hpp"

namespace dsmr::runtime {

namespace {
/// Lockset-analysis identity of a user lock: (home rank, area id).
std::uint64_t lock_identity(Rank home, mem::AreaId area) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(home)) << 32) | area;
}

/// Flat area-table index of `addr`'s area for the attached recorder.
std::uint64_t recorded_area(World& world, const nic::Nic& nic,
                            mem::GlobalAddress addr) {
  const mem::Area* area = nic.resolve(addr.rank, addr.offset, 1);
  DSMR_CHECK(area != nullptr);
  return world.recorder()->area_index(addr.rank, area->id);
}
}  // namespace

Process::Process(World& world, Rank rank) : world_(world), rank_(rank) {}

int Process::nprocs() const { return world_.nprocs(); }

sim::Time Process::now() const { return world_.engine().now(); }

sim::Engine& Process::engine() { return world_.engine(); }

const clocks::VectorClock& Process::clock() const {
  return world_.node_clock(rank_).vector();
}

nic::Nic& Process::nic() { return world_.nic(rank_); }
const nic::Nic& Process::nic() const { return world_.nic(rank_); }

nic::OpContext Process::begin_access(core::AccessKind kind, mem::GlobalAddress addr,
                                     std::uint32_t len) {
  // update_local_clock: the access is an event at this process.
  world_.node_clock(rank_).tick();

  nic::OpContext ctx;
  ctx.issue_clock = clock();

  core::AccessEvent event;
  event.time = now();
  event.rank = rank_;
  event.kind = kind;
  event.home = addr.rank;
  const mem::Area* area = nic().resolve(addr.rank, addr.offset, len);
  DSMR_REQUIRE(area != nullptr,
               "access to unregistered public memory at " << addr.to_string());
  event.area = area->id;
  event.offset = addr.offset - area->offset;
  event.length = len;
  event.issue_clock = ctx.issue_clock;
  event.held_locks.assign(held_locks_.begin(), held_locks_.end());
  ctx.event_id = world_.events().record(std::move(event));
  if (auto* rec = world_.recorder()) {
    rec->record(kind == core::AccessKind::kWrite ? record::EventKind::kPutIssue
                                                 : record::EventKind::kGetIssue,
                rank_, rec->area_index(addr.rank, area->id));
  }
  return ctx;
}

sim::Future<void> Process::put(mem::GlobalAddress dst, std::span<const std::byte> src) {
  return put_bytes(dst, std::vector<std::byte>(src.begin(), src.end()));
}

sim::Future<void> Process::put_bytes(mem::GlobalAddress dst, std::vector<std::byte> bytes) {
  const auto ctx = begin_access(core::AccessKind::kWrite, dst,
                                static_cast<std::uint32_t>(bytes.size()));
  const nic::PutResult result = co_await nic().put(dst, std::move(bytes), ctx);
  // With acked puts the completion ack carries knowledge: "put returned,
  // then I told someone" causally orders later accesses after this write.
  // Without it, puts are the paper's pure one-sided writes (DESIGN.md §4).
  if (world_.config().acked_puts) {
    if (world_.recorder() != nullptr) {
      world_.recorder()->record(record::EventKind::kPutAck, rank_,
                                recorded_area(world_, nic(), dst));
    }
    world_.node_clock(rank_).merge(dst.rank, result.home_clock);
  }
}

sim::Future<std::vector<std::byte>> Process::get(mem::GlobalAddress src,
                                                 std::uint32_t len) {
  const auto ctx = begin_access(core::AccessKind::kRead, src, len);
  const nic::GetResult result = co_await nic().get(src, len, ctx);
  if (world_.recorder() != nullptr) {
    world_.recorder()->record(record::EventKind::kGetMerge, rank_,
                              recorded_area(world_, nic(), src));
  }
  world_.node_clock(rank_).merge(src.rank, result.home_clock);
  co_return result.data;
}

sim::Future<void> Process::copy(mem::GlobalAddress src, mem::GlobalAddress dst,
                                std::uint32_t len) {
  auto bytes = co_await get(src, len);
  co_await put_bytes(dst, std::move(bytes));
}

sim::Future<void> Process::lock(mem::GlobalAddress addr) {
  const mem::Area* area = nic().resolve(addr.rank, addr.offset, 1);
  DSMR_REQUIRE(area != nullptr, "lock on unregistered memory at " << addr.to_string());
  const std::uint64_t identity = lock_identity(addr.rank, area->id);
  DSMR_REQUIRE(held_locks_.count(identity) == 0,
               "re-entrant user lock on " << addr.to_string());
  const nic::UserLockResult result = co_await nic().user_lock(addr);
  // Acquisition is an event; merging the previous releaser's clock creates
  // the release→acquire happens-before edge.
  if (auto* rec = world_.recorder()) {
    rec->record(record::EventKind::kLock, rank_, rec->area_index(addr.rank, area->id));
  }
  world_.node_clock(rank_).tick();
  if (!result.handoff.empty()) world_.node_clock(rank_).merge(addr.rank, result.handoff);
  held_locks_.insert(identity);
}

sim::Future<void> Process::unlock(mem::GlobalAddress addr) {
  const mem::Area* area = nic().resolve(addr.rank, addr.offset, 1);
  DSMR_REQUIRE(area != nullptr, "unlock on unregistered memory at " << addr.to_string());
  const std::uint64_t identity = lock_identity(addr.rank, area->id);
  DSMR_REQUIRE(held_locks_.count(identity) == 1,
               "unlock of a lock this process does not hold: " << addr.to_string());
  if (auto* rec = world_.recorder()) {
    rec->record(record::EventKind::kUnlockIssue, rank_,
                rec->area_index(addr.rank, area->id));
  }
  world_.node_clock(rank_).tick();  // release is an event.
  nic().user_unlock(addr, clock());
  held_locks_.erase(identity);
  // The unlock message is fire-and-forget; co_return keeps the signature
  // uniform with lock() for callers.
  co_return;
}

void Process::signal(Rank to, std::uint64_t tag, std::span<const std::byte> payload) {
  if (world_.recorder() != nullptr) {
    world_.recorder()->record(record::EventKind::kSignal, rank_,
                              static_cast<std::uint64_t>(to), tag);
  }
  world_.node_clock(rank_).tick();  // send is an event.
  nic().send_signal(to, tag, clock(), {payload.begin(), payload.end()});
}

sim::Future<std::vector<std::byte>> Process::wait_signal(std::uint64_t tag) {
  const net::Message msg = co_await nic().wait_signal(tag);
  if (world_.recorder() != nullptr) {
    // Field d pins WHICH send was consumed: the sender ticks before every
    // signal, so its own clock component names the send uniquely even when
    // same-channel signals arrive reordered (perturbation, fault retries).
    world_.recorder()->record(record::EventKind::kWaitMatch, rank_,
                              static_cast<std::uint64_t>(msg.src), tag,
                              msg.clock[static_cast<std::size_t>(msg.src)]);
  }
  world_.node_clock(rank_).receive_event(msg.src, msg.clock);
  co_return msg.data;
}

sim::Future<void> Process::compute(sim::Time duration) {
  if (world_.recorder() != nullptr) {
    world_.recorder()->record(record::EventKind::kTick, rank_);
  }
  world_.node_clock(rank_).tick();  // a local event.
  // Wakeup skew (schedule perturbation): the computation "runs long" by a
  // seeded bounded amount — legal, since duration carries no ordering
  // semantics beyond the delay itself.
  co_await sim::Delay{engine(), duration + world_.wakeup_skew()};
}

sim::Future<void> Process::sleep(sim::Time duration) {
  // Pure scheduling delay: no logical event, the clock is untouched. Used
  // by tests that reproduce the paper's figures with exact clock values.
  co_await sim::Delay{engine(), duration + world_.wakeup_skew()};
}

}  // namespace dsmr::runtime
