// The real-threads execution backend: each rank is one OS thread of this
// process, and the detector runs inline on the put/get path.
//
// Where runtime::World simulates the machine on a single-threaded
// cooperative engine (and is therefore seeded, replayable, and the oracle),
// a ThreadWorld executes ranks as std::threads sharing the PublicSegment
// state directly — the deployment shape the paper claims for the
// NIC-resident detector. The schedule is whatever the real machine
// produces: runs are NOT replayable, and harnesses compare backends by
// final verdict *signature* (completion + which areas raced), never by
// schedule (docs/testing.md, "Backends").
//
// Detection model. Each one-sided op ticks the initiator's thread-confined
// vector clock and checks inline against the home's detect::ShardedDetector,
// under that detector's shard mutex (shard = area id mod shards — the
// detector's own partitioning, which replaced the ad-hoc per-home stripe
// array this backend carried before the detector was extracted):
//
//   tick; lock shard; detector.check_one(issue clock vs V/W lane);
//   detector.store_access(V, and W for writes) := issue clock;
//   move the bytes; unlock.
//
// The stored clock is the *initiator's issue clock* (a genuine event clock,
// so the epoch O(1) fast path applies — and debug builds auto-cross-check
// every inline verdict against check_access_oracle). This differs from the
// sim, which stores the home NIC's post-event clock; both induce the same
// verdicts on the generated-program families the differential harness
// compares (fuzz/thread_harness.hpp explains why), but per-event clock
// values differ — one more reason comparison is by signature.
//
// Happens-before edges beyond program order, all backed by real
// synchronization (a mutex or mailbox the edge physically passes through):
//  * signal → wait_signal delivers the sender's clock (receive event);
//  * user lock release → next acquire merges the handoff clock (when
//    lock_clock_handoff, as in the sim);
//  * a get merges the stored W it read from (reads-from edge);
//  * an acked put merges the area's pre-update V ∨ W (completion edge),
//    when acked_puts — matching the sim's ack-carries-home-clock regime.
//
// Logically racy programs stay *physically* race-free (TSan-clean): every
// byte of shared payload moves under the area's detector shard mutex; a
// flagged race is a property of the clocks, not a torn access.
//
// Shutdown is unconditional: every blocking wait carries the run deadline,
// so an orphaned wait (deadlocked program) becomes a reported stuck rank
// and run() still joins every thread — no leaks for ASan to find.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "clocks/vector_clock.hpp"
#include "core/race_report.hpp"
#include "core/rules.hpp"
#include "core/types.hpp"
#include "detect/sharded_detector.hpp"
#include "mem/global_address.hpp"
#include "mem/public_segment.hpp"
#include "net/thread_fabric.hpp"
#include "record/log.hpp"

namespace dsmr::record {
class Recorder;
class ReplayGate;
}  // namespace dsmr::record

namespace dsmr::runtime {

class ThreadProcess;

struct ThreadWorldConfig {
  int nprocs = 2;
  core::DetectorMode mode = core::DetectorMode::kDualClock;
  bool lock_clock_handoff = true;
  bool acked_puts = true;
  std::uint32_t segment_bytes = 1 << 20;  ///< public memory per rank.
  /// Shard count of each home's detect::ShardedDetector: concurrent ops on
  /// different areas of one home contend only when area ids collide mod
  /// `stripes`. (Field name kept from the pre-extraction stripe array.)
  int stripes = 8;
  /// Join watchdog: every blocking wait gives up this long after run()
  /// starts, turning any deadlock into stuck ranks instead of a hang.
  std::chrono::milliseconds run_timeout{20'000};
  bool print_races = false;  ///< echo race reports to stderr (§IV.D).
  /// Ordering recorder (record/recorder.hpp), or null. Each op stamps one
  /// event at its linearization point (inside the stripe / user-lock mutex),
  /// so the merged log is a legal linearization of the run — the one the
  /// offline fold and a gated replay reproduce.
  record::Recorder* recorder = nullptr;
  /// Recorded log to replay, or null. When set, every op first waits its
  /// turn at a ReplayGate built from the log's event sequence, which forces
  /// the nondeterministic thread schedule back into the recorded
  /// linearization order — two replays of one log produce identical verdict
  /// signatures. The log's nprocs/backend/handoff/ack regime must match this
  /// config (checked); the detector mode may differ (record cheap at kOff,
  /// replay under the full dual-clock detector).
  const record::Log* replay = nullptr;
};

struct ThreadRunReport {
  bool completed = false;         ///< every spawned body ran to its end.
  std::vector<Rank> stuck_ranks;  ///< bodies that hit the deadline blocked.
  std::uint64_t race_count = 0;
  std::uint64_t checks = 0;       ///< inline check_access invocations.
  std::uint64_t wall_ns = 0;      ///< run() wall time (checks/sec = checks/wall).
};

class ThreadWorld {
 public:
  explicit ThreadWorld(ThreadWorldConfig config);
  ~ThreadWorld();

  ThreadWorld(const ThreadWorld&) = delete;
  ThreadWorld& operator=(const ThreadWorld&) = delete;

  const ThreadWorldConfig& config() const { return config_; }
  int nprocs() const { return config_.nprocs; }

  /// Registers `bytes` of shared data in `home`'s public memory. Pre-run
  /// only: the area index and lock table are immutable once threads start,
  /// which is what makes their concurrent lookup lock-free.
  mem::GlobalAddress alloc(Rank home, std::uint32_t bytes, std::string name);

  /// Installs the program for `rank` (a plain blocking function — ranks are
  /// threads here, not coroutines).
  void spawn(Rank rank, std::function<void(ThreadProcess&)> body);

  /// Starts one thread per spawned rank, joins them all (always — see the
  /// deadline contract above), and reports.
  ThreadRunReport run();

  // ---- inspection (post-run unless noted) ----
  core::RaceLog& races() { return races_; }
  mem::PublicSegment& segment(Rank rank);
  detect::ShardedDetector& detector(Rank rank);
  ThreadProcess& process(Rank rank);
  /// Folded traffic ledger (per-rank shards merged; see ThreadFabric).
  net::TrafficCounters traffic() const { return fabric_.fold(); }

 private:
  friend class ThreadProcess;

  /// Thrown by blocking waits at the deadline; caught by the thread wrapper
  /// in run(), which records the rank as stuck.
  struct StuckRank {};

  /// FIFO ticket lock backing one area's user-visible NIC lock, plus the
  /// release→acquire handoff clock.
  struct UserLock {
    std::mutex mutex;
    std::condition_variable turn;
    std::uint64_t next_ticket = 0;
    std::uint64_t now_serving = 0;
    /// Tickets whose waiter hit the deadline and left; the serving counter
    /// skips them so one stuck rank doesn't wedge the whole queue.
    std::set<std::uint64_t> abandoned;
    clocks::VectorClock handoff;  ///< empty until the first release.
  };

  struct Node {
    Node(Rank rank, const ThreadWorldConfig& config);
    mem::PublicSegment segment;
    /// This home's detection state — V/W lanes plus the shard mutexes ops
    /// lock around their check/store/data-move critical sections.
    detect::ShardedDetector detector;
    /// One lock per registered area, indexed by AreaId. Grown pre-run only.
    std::vector<std::unique_ptr<UserLock>> user_locks;
  };
  /// Blocks until the replay gate's cursor reaches an event owned by `rank`,
  /// then checks it is the expected (kind, detail) — a mismatch means the
  /// program being replayed is not the one that was recorded. Returns the
  /// gated event (null when not replaying); throws StuckRank when the log
  /// has no more events for this rank (the recorded run had it blocked) or
  /// the deadline passes (schedule divergence — surfaces as a stuck rank and
  /// therefore a signature mismatch).
  const record::Event* replay_enter(Rank rank, record::EventKind kind,
                                    std::uint64_t detail);
  void replay_advance();
  void record_race(core::AccessKind kind, Rank accessor, Rank home,
                   const mem::Area& area, const clocks::VectorClock& accessor_clock,
                   const core::Verdict& verdict, std::uint64_t event_id,
                   std::uint64_t prior_event_id);

  ThreadWorldConfig config_;
  net::ThreadFabric fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<ThreadProcess>> processes_;
  std::vector<std::function<void(ThreadProcess&)>> bodies_;
  core::RaceLog races_;
  std::mutex races_mutex_;
  std::chrono::steady_clock::time_point deadline_{};
  /// (home, id) → flat area-table index while replaying: ops name areas by
  /// the log's flat index, and alloc() verifies the program registers the
  /// same area table the recorded run did.
  record::AreaIndex replay_areas_;
  std::unique_ptr<record::ReplayGate> gate_;
  bool ran_ = false;
};

/// One rank's blocking op surface — the threaded analogue of
/// runtime::Process. Confined to its own thread during run(); the clock is
/// thread-local state, all cross-thread edges go through ThreadWorld's
/// mutexes and the fabric's mailboxes.
class ThreadProcess {
 public:
  ThreadProcess(Rank rank, ThreadWorld& world);

  Rank rank() const { return rank_; }
  int nprocs() const { return world_.nprocs(); }
  const clocks::VectorClock& clock() const { return clock_; }
  std::uint64_t checks() const { return checks_; }

  /// Blocking acked/unacked write of `data` to the area at `dst`.
  void put(mem::GlobalAddress dst, const std::vector<std::byte>& data);
  /// Blocking read of `len` bytes from the area at `src`.
  std::vector<std::byte> get(mem::GlobalAddress src, std::uint32_t len);

  /// User-visible NIC area lock (FIFO; merges the handoff clock when
  /// lock_clock_handoff).
  void lock(mem::GlobalAddress addr);
  void unlock(mem::GlobalAddress addr);

  /// Control-plane signal carrying the sender's clock (+ payload).
  void signal(Rank to, std::uint64_t tag, std::vector<std::byte> payload = {});
  /// Blocks for a signal with `tag`; merges the sender's clock (receive
  /// event) and returns the payload. Deadline-bounded (stuck on timeout).
  std::vector<std::byte> wait_signal(std::uint64_t tag);

  /// Virtual-duration ops, mapped to bounded real pauses: the virtual `ns`
  /// only shapes interleavings here, it is not a timing promise.
  void sleep(std::uint64_t ns);
  void compute(std::uint64_t ns);

 private:
  friend class ThreadWorld;

  struct Resolved {
    ThreadWorld::Node* node;
    mem::Area* area;
  };
  Resolved resolve(mem::GlobalAddress addr, std::uint32_t len);
  std::uint64_t next_event_id() { return (static_cast<std::uint64_t>(rank_) << 40) | ++ops_; }
  void account(net::Message m);
  /// Flat area-table index for the recorder / replay gate. Valid only while
  /// a recorder or replay log is attached.
  std::uint64_t recorded_area(Rank home, mem::AreaId area_id) const;

  Rank rank_;
  ThreadWorld& world_;
  clocks::VectorClock clock_;
  std::uint64_t ops_ = 0;
  std::uint64_t checks_ = 0;
};

}  // namespace dsmr::runtime
