// Reliable-delivery state machines for one ordered (src, dst) link:
// sequence numbers, selective acks, duplicate suppression, and in-order
// release to the protocol layer.
//
// These are pure per-link state machines with no timing in them — SimFabric
// owns the clocks (retransmit timers, ack latency, fault draws) and calls
// into these to decide *what* a wire arrival means. A future real-socket
// backend (ROADMAP item 1) reuses exactly this layer: the contract is
// at-least-once, possibly-reordered, possibly-duplicated wire delivery in,
// exactly-once in-order delivery out. The NIC protocol above
// (nic::Nic::resolve_pending asserts exactly-once responses, the detector
// assumes per-channel FIFO) is written against that guarantee.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/message.hpp"
#include "sim/time.hpp"
#include "util/assert.hpp"

namespace dsmr::net {

/// Sender side of one ordered link: assigns sequence numbers and tracks
/// every transmission until its (selective) ack arrives or the retry cap is
/// exhausted.
class SenderWindow {
 public:
  struct Pending {
    Message msg;
    int attempts = 1;           ///< transmissions so far.
    sim::Time first_sent = 0;   ///< virtual time of the original send.
  };

  std::uint64_t assign_seq() { return next_seq_++; }

  void register_send(Message msg, sim::Time now) {
    const std::uint64_t seq = msg.transport_seq;
    const auto [it, inserted] =
        pending_.emplace(seq, Pending{std::move(msg), 1, now});
    (void)it;
    DSMR_CHECK_MSG(inserted, "duplicate transport seq " << seq << " registered");
  }

  /// nullptr when the seq was already acked (or given up).
  Pending* find(std::uint64_t seq) {
    const auto it = pending_.find(seq);
    return it == pending_.end() ? nullptr : &it->second;
  }

  /// Selective ack: returns true when the seq was still pending.
  bool ack(std::uint64_t seq) { return pending_.erase(seq) > 0; }

  /// Retry cap exhausted: the message moves to the dead-letter list (the
  /// watchdog's "oldest unacked" evidence).
  void give_up(std::uint64_t seq) {
    const auto it = pending_.find(seq);
    DSMR_CHECK_MSG(it != pending_.end(), "give_up on non-pending seq " << seq);
    dead_letters_.push_back(std::move(it->second));
    pending_.erase(it);
  }

  const std::map<std::uint64_t, Pending>& pending() const { return pending_; }
  const std::vector<Pending>& dead_letters() const { return dead_letters_; }

  /// The in-flight or given-up message with the earliest original send time.
  std::optional<Pending> oldest_unacked() const {
    std::optional<Pending> oldest;
    auto consider = [&oldest](const Pending& p) {
      if (!oldest || p.first_sent < oldest->first_sent) oldest = p;
    };
    for (const auto& [seq, p] : pending_) consider(p);
    for (const auto& p : dead_letters_) consider(p);
    return oldest;
  }

 private:
  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, Pending> pending_;
  std::vector<Pending> dead_letters_;
};

/// Receiver side of one ordered link: classifies each wire arrival and
/// buffers out-of-order messages until their predecessors land, restoring
/// the exactly-once in-order stream the FIFO model promises.
class ReceiverWindow {
 public:
  enum class Action {
    kDeliver,    ///< the next expected seq: deliver now, then drain ready().
    kBuffer,     ///< ahead of the stream: hold until the gap fills.
    kDuplicate,  ///< already delivered or already buffered: suppress (re-ack).
  };

  Action classify(std::uint64_t seq) const {
    if (seq < next_expected_ || buffered_.count(seq) > 0) return Action::kDuplicate;
    return seq == next_expected_ ? Action::kDeliver : Action::kBuffer;
  }

  /// For kDeliver: consume the in-order message, then repeatedly pop the
  /// now-ready buffered successors (in seq order).
  std::vector<Message> deliver(Message m) {
    DSMR_CHECK_MSG(m.transport_seq == next_expected_,
                   "deliver out of order: seq " << m.transport_seq << " expected "
                                                << next_expected_);
    std::vector<Message> ready;
    ready.push_back(std::move(m));
    ++next_expected_;
    for (auto it = buffered_.begin();
         it != buffered_.end() && it->first == next_expected_;
         it = buffered_.erase(it)) {
      ready.push_back(std::move(it->second));
      ++next_expected_;
    }
    return ready;
  }

  /// For kBuffer: hold an out-of-order arrival.
  void buffer(Message m) {
    DSMR_CHECK_MSG(m.transport_seq > next_expected_,
                   "buffer of in-order/past seq " << m.transport_seq);
    buffered_.emplace(m.transport_seq, std::move(m));
  }

  std::uint64_t next_expected() const { return next_expected_; }
  std::size_t buffered_count() const { return buffered_.size(); }

 private:
  std::uint64_t next_expected_ = 0;
  std::map<std::uint64_t, Message> buffered_;
};

}  // namespace dsmr::net
