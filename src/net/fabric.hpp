// Abstract interconnect interface + traffic accounting.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>

#include "net/message.hpp"
#include "sim/time.hpp"
#include "util/types.hpp"

namespace dsmr::net {

/// Per-message-type traffic counters; the raw material for the
/// communication-overhead experiment (paper §V.A / EXPERIMENTS.md
/// CLAIM-V.A2).
struct TrafficCounters {
  std::map<MsgType, std::uint64_t> messages_by_type;
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t data_path_messages = 0;  ///< the messages Fig. 2 counts.
  std::uint64_t payload_bytes = 0;       ///< user data only.
  std::uint64_t clock_bytes = 0;         ///< detection metadata on the wire.

  // Reliable-transport accounting (net/fault.hpp plans). Kept strictly
  // separate from the protocol counters above so the paper's overhead
  // experiment stays honest: a retransmitted put is still ONE data-path
  // message, its payload charged once — retry cost shows up only here.
  std::uint64_t retry_messages = 0;          ///< retransmission attempts.
  std::uint64_t retry_bytes = 0;             ///< wire bytes of those attempts.
  std::uint64_t acks_sent = 0;               ///< transport-level acks.
  std::uint64_t duplicates_suppressed = 0;   ///< receive-side dedup hits.
  std::uint64_t faults_injected = 0;         ///< drops/corruptions/blackout losses.
  std::uint64_t undeliverable_messages = 0;  ///< retry cap exhausted.

  void record(const Message& m) {
    messages_by_type[m.type] += 1;
    total_messages += 1;
    total_bytes += m.wire_size();
    payload_bytes += m.data.size();
    clock_bytes += m.charged_clock_bytes();
    if (is_data_path(m.type)) data_path_messages += 1;
  }

  void reset() { *this = TrafficCounters{}; }

  /// Adds another counter set into this one. The fold half of per-thread
  /// sharding: concurrent senders each record into a private shard
  /// (single-writer, no atomics needed) and the owner folds the shards
  /// after the senders have quiesced (net::ThreadFabric does exactly this).
  void merge(const TrafficCounters& other) {
    for (const auto& [type, n] : other.messages_by_type) messages_by_type[type] += n;
    total_messages += other.total_messages;
    total_bytes += other.total_bytes;
    data_path_messages += other.data_path_messages;
    payload_bytes += other.payload_bytes;
    clock_bytes += other.clock_bytes;
    retry_messages += other.retry_messages;
    retry_bytes += other.retry_bytes;
    acks_sent += other.acks_sent;
    duplicates_suppressed += other.duplicates_suppressed;
    faults_injected += other.faults_injected;
    undeliverable_messages += other.undeliverable_messages;
  }
};

/// The interconnection network. Implementations must deliver messages
/// between a given ordered pair of ranks in FIFO order — the paper's model
/// (like InfiniBand/Myrinet channels) assumes ordered point-to-point links.
class Fabric {
 public:
  using Handler = std::function<void(const Message&)>;

  virtual ~Fabric() = default;

  /// Registers the receive handler (the NIC) for `rank`.
  virtual void attach(Rank rank, Handler handler) = 0;

  /// Sends `m` from m.src to m.dst; delivery is asynchronous. Returns the
  /// virtual time at which the message will be delivered — the sending NIC
  /// uses it to model transfer occupancy (an area stays locked until a get
  /// response has fully arrived; paper Fig. 3).
  virtual sim::Time send(Message m) = 0;

  virtual const TrafficCounters& counters() const = 0;
  virtual void reset_counters() = 0;
};

}  // namespace dsmr::net
