// Simulated interconnect with a latency/bandwidth/jitter cost model.
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/perturb.hpp"
#include "util/rng.hpp"

namespace dsmr::net {

/// Cost model: delivery latency = base + wire_size/bandwidth + jitter.
/// Defaults approximate an InfiniBand-class fabric (the hardware the paper
/// targets): ~1.5 µs base latency, ~3 GB/s, small exponential-ish jitter.
struct LatencyModel {
  sim::Time base_ns = 1'500;
  double ns_per_byte = 0.33;
  sim::Time jitter_ns = 200;   ///< uniform in [0, jitter_ns).
  sim::Time loopback_ns = 80;  ///< rank-to-self messages (NIC loopback).

  sim::Time cost(std::size_t wire_bytes, bool loopback, util::Rng& rng) const {
    const auto jitter =
        jitter_ns > 0 ? static_cast<sim::Time>(rng.below(jitter_ns)) : sim::Time{0};
    if (loopback) return loopback_ns + jitter / 4;
    return base_ns + static_cast<sim::Time>(ns_per_byte * static_cast<double>(wire_bytes)) +
           jitter;
  }
};

class SimFabric final : public Fabric {
 public:
  /// `perturb` adds seeded delay-bound skew to every delivery (schedule
  /// exploration, sim/perturb.hpp); the default is the identity.
  SimFabric(sim::Engine& engine, int nranks, LatencyModel model, std::uint64_t seed,
            sim::PerturbConfig perturb = {});

  void attach(Rank rank, Handler handler) override;
  sim::Time send(Message m) override;

  const TrafficCounters& counters() const override { return counters_; }
  void reset_counters() override { counters_.reset(); }

  const LatencyModel& model() const { return model_; }

  /// Observation tap: called for every message with its computed delivery
  /// time, after counting and scheduling. Used by the trace recorder; keep
  /// the callback cheap.
  using Tap = std::function<void(sim::Time send_time, sim::Time deliver_time,
                                 const Message& message)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

 private:
  sim::Engine& engine_;
  LatencyModel model_;
  util::Rng rng_;
  sim::Perturbator perturb_;
  std::vector<Handler> handlers_;
  /// Per ordered (src,dst) pair: the latest scheduled delivery time, used to
  /// enforce FIFO even when jitter would reorder two back-to-back sends.
  std::map<std::pair<Rank, Rank>, sim::Time> channel_front_;
  TrafficCounters counters_;
  Tap tap_;
};

}  // namespace dsmr::net
