// Simulated interconnect with a latency/bandwidth/jitter cost model, an
// optional fault-injection plane (net/fault.hpp) and the reliable transport
// that masks recoverable faults (net/reliable.hpp).
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/fabric.hpp"
#include "net/fault.hpp"
#include "net/reliable.hpp"
#include "sim/engine.hpp"
#include "sim/perturb.hpp"
#include "util/rng.hpp"

namespace dsmr::net {

/// Cost model: delivery latency = base + wire_size/bandwidth + jitter.
/// Defaults approximate an InfiniBand-class fabric (the hardware the paper
/// targets): ~1.5 µs base latency, ~3 GB/s, small exponential-ish jitter.
struct LatencyModel {
  sim::Time base_ns = 1'500;
  double ns_per_byte = 0.33;
  sim::Time jitter_ns = 200;   ///< uniform in [0, jitter_ns).
  sim::Time loopback_ns = 80;  ///< rank-to-self messages (NIC loopback).

  sim::Time cost(std::size_t wire_bytes, bool loopback, util::Rng& rng) const {
    const auto jitter =
        jitter_ns > 0 ? static_cast<sim::Time>(rng.below(jitter_ns)) : sim::Time{0};
    if (loopback) return loopback_ns + jitter / 4;
    return base_ns + static_cast<sim::Time>(ns_per_byte * static_cast<double>(wire_bytes)) +
           jitter;
  }
};

/// One message the transport could not deliver-and-confirm: still awaiting
/// its ack, or past the retry cap (gave_up). The watchdog's evidence.
struct LinkDiagnostic {
  Rank src = kInvalidRank;
  Rank dst = kInvalidRank;
  std::uint64_t seq = 0;
  MsgType type = MsgType::kSignal;
  std::uint64_t op_id = 0;
  int attempts = 0;
  sim::Time first_sent = 0;
  bool gave_up = false;

  std::string describe() const;
};

class SimFabric final : public Fabric {
 public:
  /// `perturb` adds seeded delay-bound skew to every delivery (schedule
  /// exploration, sim/perturb.hpp); the default is the identity. `fault`
  /// switches the wire onto the fault-injection plane + reliable transport;
  /// the default plan is the perfect ordered wire, bit-identical to a
  /// fabric built without one. Fault decisions draw from a dedicated RNG
  /// stream derived from (seed, fault.salt) — never from the latency
  /// model's jitter stream or the perturbation streams.
  SimFabric(sim::Engine& engine, int nranks, LatencyModel model, std::uint64_t seed,
            sim::PerturbConfig perturb = {}, FaultPlan fault = {});

  void attach(Rank rank, Handler handler) override;
  sim::Time send(Message m) override;

  const TrafficCounters& counters() const override { return counters_; }
  void reset_counters() override { counters_.reset(); }

  const LatencyModel& model() const { return model_; }
  const FaultPlan& fault_plan() const { return fault_; }

  /// Messages the reliable transport has not confirmed: unacked in-flight
  /// sends and dead letters (retry cap exhausted), oldest first. Empty on
  /// the perfect wire and after any fully-quiescent reliable run.
  std::vector<LinkDiagnostic> unacked() const;

  /// Observation tap: called for every *original* send with its computed
  /// delivery time, after counting and scheduling (retransmissions and
  /// fault duplicates are transport internals — the trace stays the
  /// protocol's logical view). Used by the trace recorder; keep the
  /// callback cheap.
  using Tap = std::function<void(sim::Time send_time, sim::Time deliver_time,
                                 const Message& message)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

 private:
  using LinkKey = std::pair<Rank, Rank>;

  /// True when a wire arrival on src→dst at time `t` is swallowed by a
  /// partition or crash window (pure predicate — no RNG, no state).
  bool blacked_out(Rank src, Rank dst, sim::Time t) const;

  /// One transmission attempt: draws the fault fate from the fault stream,
  /// schedules the wire arrival (unless dropped) and arms the retransmit
  /// timer. `arrive_at` is the fault-free arrival time for this attempt.
  void launch(const Message& m, int attempt, sim::Time arrive_at);
  void on_wire_arrival(Message m, bool corrupted);
  void send_ack(Rank data_src, Rank data_dst, std::uint64_t seq);
  void on_retry_timer(LinkKey key, std::uint64_t seq, int attempt);
  void deliver(const Message& m);

  sim::Engine& engine_;
  LatencyModel model_;
  util::Rng rng_;
  sim::Perturbator perturb_;
  FaultPlan fault_;
  /// Dedicated fault/transport stream: retransmission jitter, drop/dup/
  /// corrupt/delay draws. Enabling a plan must not disturb `rng_` or the
  /// perturbation streams — (seed, perturb, fault) is the replay coordinate.
  util::Rng fault_rng_;
  std::vector<Handler> handlers_;
  /// Per ordered (src,dst) pair: the latest scheduled delivery time, used to
  /// enforce FIFO even when jitter would reorder two back-to-back sends.
  /// Only original transmissions update it; retransmissions bypass it (the
  /// receiver window restores ordering).
  std::map<LinkKey, sim::Time> channel_front_;
  std::map<LinkKey, SenderWindow> senders_;
  std::map<LinkKey, ReceiverWindow> receivers_;
  TrafficCounters counters_;
  Tap tap_;
};

}  // namespace dsmr::net
