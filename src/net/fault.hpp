// Fault-injection plane for the simulated fabric.
//
// A FaultPlan is a seeded, deterministic per-link fault model: message drop,
// duplication, payload corruption, extreme delay, link partition windows,
// and NIC crash / crash-restart at a virtual time. SimFabric injects the
// plan *behind* the FIFO clamp — every fault perturbs wire behavior, never
// the protocol's view of the model — and draws every fault decision from a
// dedicated RNG stream derived from (world seed, plan salt), so enabling a
// plan does not disturb the latency model's jitter draws or the
// sim/perturb.hpp streams. (seed, perturbation, fault-plan) is therefore
// the complete, replayable schedule coordinate.
//
// Rates are integer parts-per-million (ppm): exact, platform-independent,
// and byte-identical through the text round-trip that `.repro` files and
// CI flags rely on (`to_string` emits the canonical grammar; parsing the
// canonical text and re-serializing reproduces it byte-for-byte).
//
// Plan grammar (one line, comma-separated, canonical order):
//
//   off
//   reliable                      force the ack/retry transport with no faults
//   drop=PPM                      per-transmission loss probability
//   dup=PPM                       per-transmission duplication probability
//   corrupt=PPM                   per-transmission payload corruption (the
//                                 receiver discards; sender retransmits)
//   delay=PPM:MIN-MAX             extreme extra delay, uniform in [MIN,MAX] ns
//   part=A-B@FROM-UNTIL           bidirectional link blackout window (ns);
//                                 empty UNTIL = permanent partition
//   crash=R@AT-RESTART            NIC blackout on every link touching rank R;
//                                 empty RESTART = permanent crash
//   rto=NS cap=NS attempts=N      retransmission policy overrides
//   salt=N                        selects the fault RNG stream
//   drop-live-reports             harness-view fault (fuzz smoke loop): the
//                                 fuzz harness pretends the live detector
//                                 stayed silent; no wire effect
//
// Named presets (parse_fault_plan also accepts them): loss1, loss5,
// dupdelay, crash-restart, blackhole, reliable, drop-live-reports.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/types.hpp"

namespace dsmr::net {

/// Timeout-based retransmission with capped exponential backoff.
struct RetryPolicy {
  sim::Time rto_ns = 60'000;       ///< initial retransmission timeout.
  sim::Time rto_cap_ns = 1'000'000;///< backoff ceiling.
  int max_attempts = 12;           ///< transmissions per message before giving up.

  /// Timeout armed after transmission attempt `attempt` (1-based):
  /// rto * 2^(attempt-1), capped.
  sim::Time backoff(int attempt) const {
    sim::Time t = rto_ns;
    for (int i = 1; i < attempt && t < rto_cap_ns; ++i) t *= 2;
    return t < rto_cap_ns ? t : rto_cap_ns;
  }

  bool operator==(const RetryPolicy&) const = default;
};

/// A blackout window on the (a, b) link, both directions: messages whose
/// wire arrival falls in [from, until) are lost. until == 0 ⇒ permanent.
struct PartitionWindow {
  Rank a = 0;
  Rank b = 0;
  sim::Time from = 0;
  sim::Time until = 0;  ///< exclusive; 0 = forever.

  bool covers(Rank x, Rank y, sim::Time t) const {
    const bool pair = (x == a && y == b) || (x == b && y == a);
    return pair && t >= from && (until == 0 || t < until);
  }
  bool permanent() const { return until == 0; }
  bool operator==(const PartitionWindow&) const = default;
};

/// A NIC blackout: every message entering or leaving `rank` whose wire
/// arrival falls in [at, restart_at) is lost. restart_at == 0 ⇒ the crash
/// is permanent (no restart).
struct CrashWindow {
  Rank rank = 0;
  sim::Time at = 0;
  sim::Time restart_at = 0;  ///< exclusive; 0 = never restarts.

  bool covers(Rank x, sim::Time t) const {
    return x == rank && t >= at && (restart_at == 0 || t < restart_at);
  }
  bool permanent() const { return restart_at == 0; }
  bool operator==(const CrashWindow&) const = default;
};

struct FaultPlan {
  std::uint32_t drop_ppm = 0;
  std::uint32_t dup_ppm = 0;
  std::uint32_t corrupt_ppm = 0;
  std::uint32_t delay_ppm = 0;
  sim::Time delay_min_ns = 0;
  sim::Time delay_max_ns = 0;
  std::vector<PartitionWindow> partitions;
  std::vector<CrashWindow> crashes;
  RetryPolicy retry{};
  std::uint64_t salt = 0;
  /// Force the reliable (seq/ack/retransmit) transport on even with every
  /// fault rate at zero — the RNG stream-separation tests and the
  /// "transport overhead with no faults" measurements need the machinery
  /// without the misbehavior.
  bool reliable = false;
  /// Harness-view fault (migrated fuzz::Fault::kDropLiveReports): the fuzz
  /// harness treats the live detector as silent. No wire effect.
  bool drop_live_reports = false;

  /// True when SimFabric must run the reliable transport (any wire fault
  /// configured, or explicitly forced). drop_live_reports alone does not
  /// touch the wire.
  bool wire_enabled() const {
    return reliable || drop_ppm > 0 || dup_ppm > 0 || corrupt_ppm > 0 ||
           delay_ppm > 0 || !partitions.empty() || !crashes.empty();
  }

  /// True when every injected fault is maskable by retransmission: no
  /// permanent crash or partition, and loss/corruption rates below
  /// certainty. Recoverable plans must be *transparent* — same verdicts as
  /// the fault-free run; unrecoverable plans must end in the watchdog
  /// diagnostic (clean failure).
  bool recoverable() const {
    if (drop_ppm >= 1'000'000 || corrupt_ppm >= 1'000'000) return false;
    for (const auto& p : partitions) {
      if (p.permanent()) return false;
    }
    for (const auto& c : crashes) {
      if (c.permanent()) return false;
    }
    return true;
  }

  bool operator==(const FaultPlan&) const = default;

  /// Canonical one-line text ("off" for the default plan). Parsing the
  /// output and re-serializing is byte-identical.
  std::string to_string() const;
};

/// Parses the canonical grammar, "off"/"none", or a preset name.
/// nullopt (with *error set) on malformed text.
std::optional<FaultPlan> parse_fault_plan(const std::string& text,
                                          std::string* error = nullptr);

/// Parses a ';'-separated list where each element is a preset name or
/// "off"; "off"/"none" elements are dropped (an all-off list is empty).
/// Full grammar plans are accepted too when wrapped in [...] (their own
/// separator is ',') — but the common CLI use is preset names:
/// "--faults 'loss1;dupdelay;crash-restart'".
std::optional<std::vector<FaultPlan>> parse_fault_plan_list(
    const std::string& text, std::string* error = nullptr);

/// The named presets (CI matrix vocabulary). Every preset except
/// "blackhole" is recoverable.
const std::vector<std::pair<std::string, FaultPlan>>& fault_presets();

}  // namespace dsmr::net
