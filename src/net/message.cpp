#include "net/message.hpp"

#include <sstream>

namespace dsmr::net {

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kPutData: return "PUT_DATA";
    case MsgType::kPutAck: return "PUT_ACK";
    case MsgType::kGetRequest: return "GET_REQ";
    case MsgType::kGetResponse: return "GET_RESP";
    case MsgType::kLockRequest: return "LOCK_REQ";
    case MsgType::kLockGrant: return "LOCK_GRANT";
    case MsgType::kUnlock: return "UNLOCK";
    case MsgType::kClockFetch: return "CLK_FETCH";
    case MsgType::kClockResponse: return "CLK_RESP";
    case MsgType::kClockEvent: return "CLK_EVENT";
    case MsgType::kClockEventAck: return "CLK_EVENT_ACK";
    case MsgType::kLockFetchRequest: return "LOCKFETCH_REQ";
    case MsgType::kLockFetchGrant: return "LOCKFETCH_GRANT";
    case MsgType::kPutCommit: return "PUT_COMMIT";
    case MsgType::kPutCommitAck: return "PUT_COMMIT_ACK";
    case MsgType::kGetLockedRequest: return "GETLOCKED_REQ";
    case MsgType::kGetLockedResponse: return "GETLOCKED_RESP";
    case MsgType::kSignal: return "SIGNAL";
  }
  return "?";
}

bool is_data_path(MsgType type) {
  switch (type) {
    case MsgType::kPutData:
    case MsgType::kGetRequest:
    case MsgType::kGetResponse:
    case MsgType::kPutCommit:
    case MsgType::kGetLockedRequest:
    case MsgType::kGetLockedResponse:
      return true;
    default:
      return false;
  }
}

std::string Message::describe() const {
  std::ostringstream out;
  out << to_string(type) << " P" << src << "->P" << dst << " op=" << op_id
      << " area=" << area << "+" << offset;
  if (!data.empty()) out << " bytes=" << data.size();
  if (!clock.empty()) out << " clk=" << clock.to_string();
  return out.str();
}

}  // namespace dsmr::net
