// Wire messages exchanged between NICs.
//
// The message vocabulary mirrors the paper's protocols:
//  * put = one data message (+completion ack), get = request + response
//    (paper Fig. 2);
//  * the detection wrappers (Algorithms 1-2) add lock, clock-fetch and
//    clock-update traffic around the data movement;
//  * the `*Piggyback*`/`*Commit*`/`*Locked*` verbs implement the same
//    algorithms with clocks riding on the lock/data messages — the
//    transport ablation measured in bench_overhead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "clocks/vector_clock.hpp"
#include "util/types.hpp"

namespace dsmr::net {

enum class MsgType : std::uint8_t {
  // Base data movement (paper Fig. 2), used by the Separate transport.
  kPutData,        ///< put payload: initiator -> home. The single put message.
  kPutAck,         ///< completion ack back to the initiator.
  kGetRequest,     ///< get message 1: request.
  kGetResponse,    ///< get message 2: data transfer.

  // Lock traffic (NIC-provided area locks, paper §III.A).
  kLockRequest,
  kLockGrant,
  kUnlock,

  // Detection clock traffic, separate-message transport (Algorithms 1-2, 5).
  kClockFetch,      ///< read V(x), W(x) from the home NIC.
  kClockResponse,   ///< reply carrying both clocks.
  kClockEvent,      ///< home-side clock event: tick, merge, store V (and W).
  kClockEventAck,   ///< reply carrying the home's post-event clock.

  // Fused verbs (Piggyback / HomeSide transports).
  kLockFetchRequest,   ///< lock request that also asks for the area clocks.
  kLockFetchGrant,     ///< grant carrying V(x), W(x).
  kPutCommit,          ///< data + initiator clock; home applies data + clock
                       ///< event, then unlocks (flag => also decide verdict).
  kPutCommitAck,       ///< ack carrying the home's post-event clock.
  kGetLockedRequest,   ///< get carrying the reader clock; home locks,
                       ///< decides, serves, unlocks after transfer.
  kGetLockedResponse,  ///< data + home clock + race verdict.

  // Control-plane signal used by barriers / point-to-point sync (carries a
  // clock: signals create happens-before edges, and may carry payload).
  kSignal,
};

const char* to_string(MsgType type);

/// True for the messages that move user payload (the ones Fig. 2 counts).
bool is_data_path(MsgType type);

/// One NIC-to-NIC message. A fat struct rather than a serialized buffer:
/// the simulator charges wire cost via wire_size() instead of actually
/// packing bytes, keeping protocol code readable.
struct Message {
  MsgType type = MsgType::kSignal;
  Rank src = kInvalidRank;
  Rank dst = kInvalidRank;
  std::uint64_t op_id = 0;    ///< correlates all messages of one operation.
  std::uint32_t area = 0;     ///< target area id on the home rank.
  std::uint32_t offset = 0;   ///< byte offset within the area.
  std::uint32_t length = 0;   ///< requested length for gets.
  std::uint64_t tag = 0;      ///< user tag for kSignal.
  bool flag = false;          ///< verb-specific: user-lock marker, is-write
                              ///< marker, want-verdict marker, race verdict.
  /// Reliable-transport sequence number on this (src, dst) link. Assigned
  /// by the fabric when a FaultPlan enables the reliable layer (0 and
  /// unused on the perfect-wire path); retransmitted copies share it. Rides
  /// in the 40-byte header — no extra wire charge.
  std::uint64_t transport_seq = 0;
  std::uint64_t event_id = 0;   ///< EventLog id of the access (or prior access).
  std::uint64_t event_id2 = 0;  ///< second event id where needed (prior write).
  Rank prior_access_rank = kInvalidRank;  ///< initiator of the area's last access.
  Rank prior_write_rank = kInvalidRank;   ///< initiator of the area's last write.
  std::vector<std::byte> data;
  clocks::VectorClock clock;   ///< piggybacked clock (initiator or home V).
  clocks::VectorClock clock2;  ///< second clock where needed (W).

  /// When detection is off the simulator still moves clocks around as
  /// out-of-band metadata (the offline ground-truth analysis needs real
  /// causality), but they must not be charged to the simulated wire.
  bool clocks_on_wire = true;

  /// Bytes charged to the wire: fixed header + payload + (charged) clocks.
  /// This feeds both the bandwidth term of the latency model and the
  /// traffic counters behind the §V.A overhead experiment. A lone clock is
  /// charged at its compact (LEB128) encoding — VectorClock::wire_size —
  /// which is what the kPiggyback / kSeparate transports would actually
  /// pack per message. When a message carries BOTH clocks (the dual-clock
  /// fetch/grant replies: V plus W), the second is charged delta-encoded
  /// against the first (VectorClock::delta_wire_size): V and W of one area
  /// usually differ in at most a few components, so the piggyback cost of
  /// the second clock collapses to a tag byte plus the sparse diff.
  std::size_t wire_size() const {
    return kHeaderBytes + data.size() + charged_clock_bytes();
  }

  std::size_t charged_clock_bytes() const {
    if (!clocks_on_wire) return 0;
    if (clock.size() > 0 && clock2.size() == clock.size()) {
      return clock.wire_size() + clock2.delta_wire_size(clock);
    }
    return clock.wire_size() + clock2.wire_size();
  }

  static constexpr std::size_t kHeaderBytes = 40;

  std::string describe() const;
};

}  // namespace dsmr::net
