#include "net/thread_fabric.hpp"

#include "util/assert.hpp"

namespace dsmr::net {

ThreadFabric::ThreadFabric(int nprocs) {
  DSMR_REQUIRE(nprocs > 0, "ThreadFabric needs at least one rank");
  mailboxes_.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) mailboxes_.push_back(std::make_unique<Mailbox>());
  shards_ = std::vector<Shard>(static_cast<std::size_t>(nprocs));
}

void ThreadFabric::signal(Rank to, std::uint64_t tag, ThreadSignal message) {
  DSMR_REQUIRE(to >= 0 && to < nprocs(), "signal to rank " << to << " out of range");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(to)];
  {
    std::lock_guard<std::mutex> guard(box.mutex);
    box.by_tag[tag].push_back(std::move(message));
  }
  // notify_all, not _one: waiters are keyed by tag, and the one woken might
  // be waiting on a different tag.
  box.ready.notify_all();
}

std::optional<ThreadSignal> ThreadFabric::wait_signal(
    Rank self, std::uint64_t tag, std::chrono::steady_clock::time_point deadline) {
  DSMR_REQUIRE(self >= 0 && self < nprocs(), "wait on rank " << self << " out of range");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(self)];
  std::unique_lock<std::mutex> guard(box.mutex);
  const auto has_signal = [&box, tag]() {
    const auto it = box.by_tag.find(tag);
    return it != box.by_tag.end() && !it->second.empty();
  };
  if (!box.ready.wait_until(guard, deadline, has_signal)) return std::nullopt;
  auto& queue = box.by_tag.find(tag)->second;
  ThreadSignal message = std::move(queue.front());
  queue.pop_front();
  return message;
}

std::optional<ThreadSignal> ThreadFabric::wait_signal_from(
    Rank self, std::uint64_t tag, Rank src,
    std::chrono::steady_clock::time_point deadline) {
  DSMR_REQUIRE(self >= 0 && self < nprocs(), "wait on rank " << self << " out of range");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(self)];
  std::unique_lock<std::mutex> guard(box.mutex);
  std::size_t found = 0;
  const auto has_match = [&box, tag, src, &found]() {
    const auto it = box.by_tag.find(tag);
    if (it == box.by_tag.end()) return false;
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      if (it->second[i].src == src) {
        found = i;
        return true;
      }
    }
    return false;
  };
  if (!box.ready.wait_until(guard, deadline, has_match)) return std::nullopt;
  auto& queue = box.by_tag.find(tag)->second;
  ThreadSignal message = std::move(queue[found]);
  queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(found));
  return message;
}

TrafficCounters ThreadFabric::fold() const {
  TrafficCounters total;
  for (const Shard& shard : shards_) total.merge(shard.counters);
  return total;
}

}  // namespace dsmr::net
