#include "net/fault.hpp"

#include <sstream>

#include "util/cli.hpp"

namespace dsmr::net {

namespace {

const RetryPolicy kDefaultRetry{};

/// Serializes a time bound whose 0 means "forever": empty text.
void append_open_bound(std::ostringstream& out, sim::Time t) {
  if (t != 0) out << t;
}

std::optional<std::uint64_t> parse_u64_or_empty(const std::string& text,
                                                bool* empty) {
  if (text.empty()) {
    *empty = true;
    return 0;
  }
  *empty = false;
  return util::parse_u64(text);
}

}  // namespace

std::string FaultPlan::to_string() const {
  if (*this == FaultPlan{}) return "off";
  std::ostringstream out;
  bool first = true;
  auto sep = [&out, &first]() -> std::ostringstream& {
    if (!first) out << ",";
    first = false;
    return out;
  };
  if (drop_ppm > 0) sep() << "drop=" << drop_ppm;
  if (dup_ppm > 0) sep() << "dup=" << dup_ppm;
  if (corrupt_ppm > 0) sep() << "corrupt=" << corrupt_ppm;
  if (delay_ppm > 0) {
    sep() << "delay=" << delay_ppm << ":" << delay_min_ns << "-" << delay_max_ns;
  }
  for (const auto& p : partitions) {
    sep() << "part=" << p.a << "-" << p.b << "@" << p.from << "-";
    append_open_bound(out, p.until);
  }
  for (const auto& c : crashes) {
    sep() << "crash=" << c.rank << "@" << c.at << "-";
    append_open_bound(out, c.restart_at);
  }
  if (retry.rto_ns != kDefaultRetry.rto_ns) sep() << "rto=" << retry.rto_ns;
  if (retry.rto_cap_ns != kDefaultRetry.rto_cap_ns) sep() << "cap=" << retry.rto_cap_ns;
  if (retry.max_attempts != kDefaultRetry.max_attempts) {
    sep() << "attempts=" << retry.max_attempts;
  }
  if (salt != 0) sep() << "salt=" << salt;
  if (reliable) sep() << "reliable";
  if (drop_live_reports) sep() << "drop-live-reports";
  return out.str();
}

std::optional<FaultPlan> parse_fault_plan(const std::string& text, std::string* error) {
  auto fail = [error](const std::string& what) -> std::optional<FaultPlan> {
    if (error != nullptr) *error = "fault plan: " + what;
    return std::nullopt;
  };
  if (text == "off" || text == "none" || text.empty()) return FaultPlan{};
  for (const auto& [name, plan] : fault_presets()) {
    if (text == name) return plan;
  }

  FaultPlan plan;
  std::stringstream stream(text);
  std::string entry;
  while (std::getline(stream, entry, ',')) {
    if (entry.empty()) return fail("empty entry in '" + text + "'");
    if (entry == "reliable") {
      plan.reliable = true;
      continue;
    }
    if (entry == "drop-live-reports") {
      plan.drop_live_reports = true;
      continue;
    }
    const auto eq = entry.find('=');
    if (eq == std::string::npos) return fail("unknown entry '" + entry + "'");
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);

    auto parse_ppm = [&fail, &key, &value]() -> std::optional<std::uint32_t> {
      const auto v = util::parse_u64(value);
      if (!v || *v > 1'000'000) {
        fail("bad " + key + " ppm '" + value + "' (0..1000000)");
        return std::nullopt;
      }
      return static_cast<std::uint32_t>(*v);
    };

    if (key == "drop" || key == "dup" || key == "corrupt") {
      const auto ppm = parse_ppm();
      if (!ppm) return std::nullopt;
      (key == "drop" ? plan.drop_ppm : key == "dup" ? plan.dup_ppm : plan.corrupt_ppm) =
          *ppm;
    } else if (key == "delay") {
      // delay=PPM:MIN-MAX
      const auto colon = value.find(':');
      const auto dash = value.find('-', colon == std::string::npos ? 0 : colon);
      if (colon == std::string::npos || dash == std::string::npos || dash < colon) {
        return fail("delay needs PPM:MIN-MAX, got '" + value + "'");
      }
      const auto ppm = util::parse_u64(value.substr(0, colon));
      const auto min = util::parse_u64(value.substr(colon + 1, dash - colon - 1));
      const auto max = util::parse_u64(value.substr(dash + 1));
      if (!ppm || *ppm > 1'000'000 || !min || !max || *min > *max) {
        return fail("bad delay spec '" + value + "'");
      }
      plan.delay_ppm = static_cast<std::uint32_t>(*ppm);
      plan.delay_min_ns = static_cast<sim::Time>(*min);
      plan.delay_max_ns = static_cast<sim::Time>(*max);
    } else if (key == "part") {
      // part=A-B@FROM-UNTIL (UNTIL may be empty = forever)
      const auto at = value.find('@');
      const auto dash1 = value.find('-');
      if (at == std::string::npos || dash1 == std::string::npos || dash1 > at) {
        return fail("part needs A-B@FROM-UNTIL, got '" + value + "'");
      }
      const auto dash2 = value.find('-', at);
      if (dash2 == std::string::npos) return fail("part needs FROM-UNTIL");
      const auto a = util::parse_u64(value.substr(0, dash1));
      const auto b = util::parse_u64(value.substr(dash1 + 1, at - dash1 - 1));
      const auto from = util::parse_u64(value.substr(at + 1, dash2 - at - 1));
      bool open = false;
      const auto until = parse_u64_or_empty(value.substr(dash2 + 1), &open);
      if (!a || !b || !from || !until || (!open && *until <= *from)) {
        return fail("bad part spec '" + value + "'");
      }
      plan.partitions.push_back(PartitionWindow{
          static_cast<Rank>(*a), static_cast<Rank>(*b),
          static_cast<sim::Time>(*from), static_cast<sim::Time>(open ? 0 : *until)});
    } else if (key == "crash") {
      // crash=R@AT-RESTART (RESTART may be empty = permanent)
      const auto at = value.find('@');
      if (at == std::string::npos) return fail("crash needs R@AT-RESTART");
      const auto dash = value.find('-', at);
      if (dash == std::string::npos) return fail("crash needs AT-RESTART");
      const auto rank = util::parse_u64(value.substr(0, at));
      const auto when = util::parse_u64(value.substr(at + 1, dash - at - 1));
      bool open = false;
      const auto restart = parse_u64_or_empty(value.substr(dash + 1), &open);
      if (!rank || !when || !restart || (!open && *restart <= *when)) {
        return fail("bad crash spec '" + value + "'");
      }
      plan.crashes.push_back(CrashWindow{static_cast<Rank>(*rank),
                                         static_cast<sim::Time>(*when),
                                         static_cast<sim::Time>(open ? 0 : *restart)});
    } else if (key == "rto" || key == "cap" || key == "attempts" || key == "salt") {
      const auto v = util::parse_u64(value);
      if (!v) return fail("bad " + key + " '" + value + "'");
      if (key == "rto") {
        if (*v == 0) return fail("rto must be > 0");
        plan.retry.rto_ns = static_cast<sim::Time>(*v);
      } else if (key == "cap") {
        plan.retry.rto_cap_ns = static_cast<sim::Time>(*v);
      } else if (key == "attempts") {
        if (*v == 0 || *v > 1'000) return fail("attempts must be in 1..1000");
        plan.retry.max_attempts = static_cast<int>(*v);
      } else {
        plan.salt = *v;
      }
    } else {
      return fail("unknown entry '" + entry + "'");
    }
  }
  return plan;
}

std::optional<std::vector<FaultPlan>> parse_fault_plan_list(const std::string& text,
                                                            std::string* error) {
  std::vector<FaultPlan> plans;
  if (text.empty() || text == "off" || text == "none") return plans;
  std::stringstream stream(text);
  std::string element;
  while (std::getline(stream, element, ';')) {
    if (element.empty()) continue;
    // [...] wraps a full-grammar plan (whose own separator is ','); bare
    // elements may still contain commas when the list has one element.
    if (element.size() >= 2 && element.front() == '[' && element.back() == ']') {
      element = element.substr(1, element.size() - 2);
    }
    if (element == "off" || element == "none") continue;
    const auto plan = parse_fault_plan(element, error);
    if (!plan) return std::nullopt;
    if (plan->wire_enabled() || plan->drop_live_reports) plans.push_back(*plan);
  }
  return plans;
}

const std::vector<std::pair<std::string, FaultPlan>>& fault_presets() {
  static const std::vector<std::pair<std::string, FaultPlan>> presets = [] {
    std::vector<std::pair<std::string, FaultPlan>> p;
    {
      FaultPlan plan;  // 1% loss.
      plan.drop_ppm = 10'000;
      p.emplace_back("loss1", plan);
    }
    {
      FaultPlan plan;  // 5% loss + 1% corruption: heavier retransmission.
      plan.drop_ppm = 50'000;
      plan.corrupt_ppm = 10'000;
      p.emplace_back("loss5", plan);
    }
    {
      FaultPlan plan;  // 2% duplication + 1% extreme delay (0.2–2 ms — far
                       // past the RTO, forcing spurious retransmits and
                       // receive-side reordering).
      plan.dup_ppm = 20'000;
      plan.delay_ppm = 10'000;
      plan.delay_min_ns = 200'000;
      plan.delay_max_ns = 2'000'000;
      p.emplace_back("dupdelay", plan);
    }
    {
      FaultPlan plan;  // rank 1 NIC blackout from 30 µs to 150 µs.
      plan.crashes.push_back(CrashWindow{1, 30'000, 150'000});
      p.emplace_back("crash-restart", plan);
    }
    {
      FaultPlan plan;  // rank 1 crashes at 20 µs and never comes back.
      plan.crashes.push_back(CrashWindow{1, 20'000, 0});
      p.emplace_back("blackhole", plan);
    }
    {
      FaultPlan plan;  // transport machinery on, zero faults.
      plan.reliable = true;
      p.emplace_back("reliable", plan);
    }
    {
      FaultPlan plan;  // harness-view fault only.
      plan.drop_live_reports = true;
      p.emplace_back("drop-live-reports", plan);
    }
    return p;
  }();
  return presets;
}

}  // namespace dsmr::net
