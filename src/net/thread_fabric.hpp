// The real-threads interconnect: signal mailboxes plus sharded traffic
// accounting for the ThreadWorld backend (runtime/thread_world.hpp).
//
// Where SimFabric models a wire with virtual latency, ThreadFabric IS the
// shared memory of one process: ranks are OS threads, a "message" is a
// mutex-protected mailbox append, and delivery order is whatever the
// machine's scheduler produces. Consequently it does not implement the
// sim-facing net::Fabric interface (whose send() returns a virtual
// delivery time) — only the two services the threaded runtime needs:
//
//  * tagged signal delivery (signal / wait_signal with a deadline), the
//    substrate for point-to-point sync edges and dissemination barriers;
//  * traffic accounting equivalent to what the kHomeSide transport would
//    put on a real wire, recorded into per-rank single-writer shards and
//    folded on demand (TrafficCounters::merge) — concurrent senders never
//    contend on, or race on, a shared ledger.
//
// Every blocking wait takes an absolute deadline: a ThreadWorld run can
// always join all of its threads, so an orphaned wait becomes a reported
// stuck rank rather than a leaked thread.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "clocks/vector_clock.hpp"
#include "net/fabric.hpp"
#include "util/types.hpp"

namespace dsmr::net {

/// One delivered signal: the sender's clock (a receive event merges it)
/// plus an opaque payload, mirroring the sim's kSignal message.
struct ThreadSignal {
  Rank src = kInvalidRank;
  clocks::VectorClock clock;
  std::vector<std::byte> payload;
};

class ThreadFabric {
 public:
  explicit ThreadFabric(int nprocs);

  int nprocs() const { return static_cast<int>(mailboxes_.size()); }

  /// Appends a signal to `to`'s mailbox under `tag` and wakes waiters.
  void signal(Rank to, std::uint64_t tag, ThreadSignal message);

  /// Pops the oldest signal for (`self`, `tag`), blocking until one arrives
  /// or `deadline` passes; nullopt on timeout (the caller reports a stuck
  /// rank). FIFO per (sender, tag) follows from mailbox append order.
  std::optional<ThreadSignal> wait_signal(
      Rank self, std::uint64_t tag,
      std::chrono::steady_clock::time_point deadline);

  /// Like wait_signal, but pops the oldest signal from a *specific* sender,
  /// skipping queued signals from other ranks. Replay needs this: the log
  /// pins which sender's signal each wait consumed, and the live schedule
  /// may have raced several same-tag senders into the mailbox.
  std::optional<ThreadSignal> wait_signal_from(
      Rank self, std::uint64_t tag, Rank src,
      std::chrono::steady_clock::time_point deadline);

  /// The calling rank's private counter shard. Single-writer by contract:
  /// only rank `self`'s thread may record into it while the run is live.
  TrafficCounters& shard(Rank self) { return shards_[static_cast<std::size_t>(self)].counters; }

  /// Folds all shards into one ledger. Call only when the sender threads
  /// have quiesced (after ThreadWorld::run joins them).
  TrafficCounters fold() const;

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable ready;
    std::map<std::uint64_t, std::deque<ThreadSignal>> by_tag;
  };
  /// Cache-line padding: shards are written concurrently by their owner
  /// threads; sharing a line would make the "no contention" claim false in
  /// the way that matters (false sharing), even though it stays race-free.
  struct alignas(64) Shard {
    TrafficCounters counters;
  };

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<Shard> shards_;
};

}  // namespace dsmr::net
