#include "net/sim_fabric.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace dsmr::net {

namespace {

/// Fault-stream derivation: same SplitMix64 shape as sim::Perturbator but
/// with distinct mixing constants, so a fault plan's draws can never collide
/// with the fabric (stream 0) or wakeup (stream 1) perturbation streams.
std::uint64_t fault_stream_seed(std::uint64_t world_seed, std::uint64_t salt) {
  return util::SplitMix64(world_seed ^ (0xa0761d6478bd642fULL * (salt + 1)) ^
                          0x8bb84b93962eacc9ULL)
      .next();
}

}  // namespace

std::string LinkDiagnostic::describe() const {
  std::ostringstream out;
  out << "P" << src << "->P" << dst << " seq " << seq << " " << net::to_string(type)
      << " op " << op_id << " attempts " << attempts << " first-sent t=" << first_sent;
  if (gave_up) out << " GAVE-UP";
  return out.str();
}

SimFabric::SimFabric(sim::Engine& engine, int nranks, LatencyModel model,
                     std::uint64_t seed, sim::PerturbConfig perturb, FaultPlan fault)
    : engine_(engine),
      model_(model),
      rng_(seed),
      perturb_(perturb, seed, /*stream=*/0),
      fault_(std::move(fault)),
      fault_rng_(fault_stream_seed(seed, fault_.salt)),
      handlers_(static_cast<std::size_t>(nranks)) {
  DSMR_REQUIRE(nranks > 0, "fabric needs at least one rank");
}

void SimFabric::attach(Rank rank, Handler handler) {
  DSMR_REQUIRE(rank >= 0 && static_cast<std::size_t>(rank) < handlers_.size(),
               "attach: rank " << rank << " out of range");
  handlers_[static_cast<std::size_t>(rank)] = std::move(handler);
}

sim::Time SimFabric::send(Message m) {
  DSMR_REQUIRE(m.src >= 0 && static_cast<std::size_t>(m.src) < handlers_.size(),
               "send: bad src rank " << m.src);
  DSMR_REQUIRE(m.dst >= 0 && static_cast<std::size_t>(m.dst) < handlers_.size(),
               "send: bad dst rank " << m.dst);
  counters_.record(m);

  // Perturbation skew is added to the raw cost, *before* the FIFO clamp
  // below — so exploration can reorder deliveries on distinct channels but
  // never violate the model's per-channel FIFO guarantee.
  const sim::Time cost =
      model_.cost(m.wire_size(), m.src == m.dst, rng_) + perturb_.skew();
  const auto key = std::make_pair(m.src, m.dst);
  sim::Time deliver_at = engine_.now() + cost;
  // FIFO per ordered pair: never deliver before an earlier message on the
  // same channel. Strictly-after (+1ns) keeps same-channel deliveries at
  // distinct times, which makes traces easier to read.
  const auto it = channel_front_.find(key);
  if (it != channel_front_.end() && deliver_at <= it->second) {
    deliver_at = it->second + 1;
  }
  channel_front_[key] = deliver_at;

  if (tap_) tap_(engine_.now(), deliver_at, m);

  if (!fault_.wire_enabled()) {
    // Perfect ordered wire: the original model, bit-identical to a fabric
    // built without a plan.
    engine_.schedule_at(deliver_at, [this, m = std::move(m)]() { deliver(m); });
    return deliver_at;
  }

  // Reliable transport: the first attempt keeps the exact cost computed
  // above (same primary-stream draws, same FIFO clamp), so a plan with zero
  // fault rates reproduces the perfect wire's logical schedule exactly.
  // The returned time models the first transmission's occupancy (Fig. 3);
  // if a fault swallows that attempt, the actual delivery happens on a
  // retransmission.
  auto& sender = senders_[key];
  m.transport_seq = sender.assign_seq();
  launch(m, 1, deliver_at);
  sender.register_send(std::move(m), engine_.now());
  return deliver_at;
}

bool SimFabric::blacked_out(Rank src, Rank dst, sim::Time t) const {
  for (const auto& p : fault_.partitions) {
    if (p.covers(src, dst, t)) return true;
  }
  for (const auto& c : fault_.crashes) {
    if (c.covers(src, t) || c.covers(dst, t)) return true;
  }
  return false;
}

void SimFabric::launch(const Message& m, int attempt, sim::Time arrive_at) {
  // The transmission's fate, drawn from the dedicated fault stream in a
  // fixed per-plan order (one draw per configured rate).
  auto roll = [this](std::uint32_t ppm) {
    return ppm > 0 && fault_rng_.below(1'000'000) < ppm;
  };
  const bool dropped = roll(fault_.drop_ppm);
  const bool duplicated = roll(fault_.dup_ppm);
  const bool corrupted = roll(fault_.corrupt_ppm);
  sim::Time extra = 0;
  if (roll(fault_.delay_ppm)) {
    const auto span =
        static_cast<std::uint64_t>(fault_.delay_max_ns - fault_.delay_min_ns) + 1;
    extra = fault_.delay_min_ns + static_cast<sim::Time>(fault_rng_.below(span));
  }

  if (dropped) {
    counters_.faults_injected += 1;
  } else {
    const sim::Time at = arrive_at + extra;
    engine_.schedule_at(at, [this, m, corrupted]() { on_wire_arrival(m, corrupted); });
    if (duplicated) {
      // An identical wire copy (same seq) lands shortly after — the
      // receiver window must suppress it.
      const sim::Time echo = at + 1 + static_cast<sim::Time>(fault_rng_.below(1'000));
      engine_.schedule_at(echo, [this, m]() { on_wire_arrival(m, false); });
    }
  }

  // Retransmit timer: a no-op if the ack lands first.
  engine_.schedule_after(
      fault_.retry.backoff(attempt),
      [this, key = std::make_pair(m.src, m.dst), seq = m.transport_seq, attempt]() {
        on_retry_timer(key, seq, attempt);
      });
}

void SimFabric::on_wire_arrival(Message m, bool corrupted) {
  const sim::Time now = engine_.now();
  if (blacked_out(m.src, m.dst, now)) {
    counters_.faults_injected += 1;  // swallowed by a partition/crash window.
    return;
  }
  if (corrupted) {
    counters_.faults_injected += 1;  // receiver-side integrity check discards;
    return;                          // no ack, so the sender retransmits.
  }
  const Rank src = m.src;
  const Rank dst = m.dst;
  const std::uint64_t seq = m.transport_seq;
  auto& receiver = receivers_[std::make_pair(src, dst)];
  switch (receiver.classify(seq)) {
    case ReceiverWindow::Action::kDuplicate:
      counters_.duplicates_suppressed += 1;
      break;  // re-ack below: the previous ack may have been lost.
    case ReceiverWindow::Action::kBuffer:
      receiver.buffer(std::move(m));
      break;  // acked now — it is safely stored; delivery waits for the gap.
    case ReceiverWindow::Action::kDeliver:
      for (const auto& ready : receiver.deliver(std::move(m))) deliver(ready);
      break;
  }
  send_ack(src, dst, seq);
}

void SimFabric::send_ack(Rank data_src, Rank data_dst, std::uint64_t seq) {
  counters_.acks_sent += 1;
  // Acks ride the fault plane too (loss + blackout; they carry no payload,
  // so no corruption/duplication), at a fixed no-jitter cost — transport
  // bookkeeping must not consume primary-stream draws.
  if (fault_.drop_ppm > 0 && fault_rng_.below(1'000'000) < fault_.drop_ppm) {
    counters_.faults_injected += 1;
    return;
  }
  const sim::Time cost = data_src == data_dst ? model_.loopback_ns : model_.base_ns;
  const sim::Time at = engine_.now() + cost;
  if (blacked_out(data_dst, data_src, at)) {
    counters_.faults_injected += 1;
    return;
  }
  engine_.schedule_at(at, [this, key = std::make_pair(data_src, data_dst), seq]() {
    const auto it = senders_.find(key);
    if (it != senders_.end()) it->second.ack(seq);
  });
}

void SimFabric::on_retry_timer(LinkKey key, std::uint64_t seq, int attempt) {
  (void)attempt;  // the pending entry's own count is authoritative.
  const auto it = senders_.find(key);
  if (it == senders_.end()) return;
  SenderWindow::Pending* pending = it->second.find(seq);
  if (pending == nullptr) return;  // acked in the meantime.
  if (pending->attempts >= fault_.retry.max_attempts) {
    counters_.undeliverable_messages += 1;
    it->second.give_up(seq);
    return;
  }
  pending->attempts += 1;
  counters_.retry_messages += 1;
  counters_.retry_bytes += pending->msg.wire_size();
  // Retransmissions cost base + bandwidth + jitter like any transmission,
  // but the jitter draw comes from the fault stream and the FIFO clamp is
  // bypassed — the receiver window restores ordering, and the primary
  // streams must stay untouched.
  const sim::Time cost = model_.cost(pending->msg.wire_size(),
                                     pending->msg.src == pending->msg.dst, fault_rng_);
  launch(pending->msg, pending->attempts, engine_.now() + cost);
}

void SimFabric::deliver(const Message& m) {
  const auto& handler = handlers_[static_cast<std::size_t>(m.dst)];
  DSMR_CHECK_MSG(handler, "message to rank " << m.dst << " with no attached NIC");
  handler(m);
}

std::vector<LinkDiagnostic> SimFabric::unacked() const {
  std::vector<LinkDiagnostic> out;
  auto add = [&out](const LinkKey& key, const SenderWindow::Pending& p, bool gave_up) {
    out.push_back(LinkDiagnostic{key.first, key.second, p.msg.transport_seq,
                                 p.msg.type, p.msg.op_id, p.attempts, p.first_sent,
                                 gave_up});
  };
  for (const auto& [key, sender] : senders_) {
    for (const auto& [seq, p] : sender.pending()) add(key, p, false);
    for (const auto& p : sender.dead_letters()) add(key, p, true);
  }
  std::sort(out.begin(), out.end(), [](const LinkDiagnostic& a, const LinkDiagnostic& b) {
    return a.first_sent != b.first_sent ? a.first_sent < b.first_sent : a.seq < b.seq;
  });
  return out;
}

}  // namespace dsmr::net
