#include "net/sim_fabric.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dsmr::net {

SimFabric::SimFabric(sim::Engine& engine, int nranks, LatencyModel model,
                     std::uint64_t seed, sim::PerturbConfig perturb)
    : engine_(engine),
      model_(model),
      rng_(seed),
      perturb_(perturb, seed, /*stream=*/0),
      handlers_(static_cast<std::size_t>(nranks)) {
  DSMR_REQUIRE(nranks > 0, "fabric needs at least one rank");
}

void SimFabric::attach(Rank rank, Handler handler) {
  DSMR_REQUIRE(rank >= 0 && static_cast<std::size_t>(rank) < handlers_.size(),
               "attach: rank " << rank << " out of range");
  handlers_[static_cast<std::size_t>(rank)] = std::move(handler);
}

sim::Time SimFabric::send(Message m) {
  DSMR_REQUIRE(m.src >= 0 && static_cast<std::size_t>(m.src) < handlers_.size(),
               "send: bad src rank " << m.src);
  DSMR_REQUIRE(m.dst >= 0 && static_cast<std::size_t>(m.dst) < handlers_.size(),
               "send: bad dst rank " << m.dst);
  counters_.record(m);

  // Perturbation skew is added to the raw cost, *before* the FIFO clamp
  // below — so exploration can reorder deliveries on distinct channels but
  // never violate the model's per-channel FIFO guarantee.
  const sim::Time cost =
      model_.cost(m.wire_size(), m.src == m.dst, rng_) + perturb_.skew();
  const auto key = std::make_pair(m.src, m.dst);
  sim::Time deliver_at = engine_.now() + cost;
  // FIFO per ordered pair: never deliver before an earlier message on the
  // same channel. Strictly-after (+1ns) keeps same-channel deliveries at
  // distinct times, which makes traces easier to read.
  const auto it = channel_front_.find(key);
  if (it != channel_front_.end() && deliver_at <= it->second) {
    deliver_at = it->second + 1;
  }
  channel_front_[key] = deliver_at;

  if (tap_) tap_(engine_.now(), deliver_at, m);
  engine_.schedule_at(deliver_at, [this, m = std::move(m)]() {
    const auto& handler = handlers_[static_cast<std::size_t>(m.dst)];
    DSMR_CHECK_MSG(handler, "message to rank " << m.dst << " with no attached NIC");
    handler(m);
  });
  return deliver_at;
}

}  // namespace dsmr::net
