// Data distributions for the PGAS layer (the compiler's data-placement role).
#pragma once

#include <cstddef>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace dsmr::pgas {

/// How global element indices map to owning ranks — the two classic PGAS
/// layouts (UPC-style).
enum class Distribution {
  kBlock,   ///< contiguous blocks: rank 0 gets [0, ceil(N/n)), etc.
  kCyclic,  ///< round-robin: element i lives on rank i % n.
};

struct Placement {
  Rank owner;
  std::size_t local_index;  ///< index within the owner's local elements.
};

inline Placement place(Distribution dist, std::size_t index, std::size_t count,
                       int nprocs) {
  DSMR_REQUIRE(index < count, "index " << index << " out of range " << count);
  const auto n = static_cast<std::size_t>(nprocs);
  if (dist == Distribution::kCyclic) {
    return {static_cast<Rank>(index % n), index / n};
  }
  const std::size_t per_rank = (count + n - 1) / n;
  return {static_cast<Rank>(index / per_rank), index % per_rank};
}

/// Number of elements a rank owns under the distribution.
inline std::size_t local_count(Distribution dist, Rank rank, std::size_t count,
                               int nprocs) {
  const auto n = static_cast<std::size_t>(nprocs);
  const auto r = static_cast<std::size_t>(rank);
  if (dist == Distribution::kCyclic) {
    return count / n + (r < count % n ? 1 : 0);
  }
  const std::size_t per_rank = (count + n - 1) / n;
  const std::size_t begin = r * per_rank;
  if (begin >= count) return 0;
  return std::min(per_rank, count - begin);
}

}  // namespace dsmr::pgas
