// Collective operations built on the control-plane signals.
//
// Every signal carries the sender's vector clock, so collectives are also
// synchronization points in the happens-before sense: accesses separated by
// a barrier can never race — exactly how a PGAS program is supposed to
// coordinate its one-sided traffic.
//
// `onesided_reduce` is the paper's §V.B future-work operation: a
// *non-collective* global reduction performed entirely by the caller via
// remote gets, "without any participation for the other processes".
#pragma once

#include <cstring>
#include <vector>

#include "mem/global_address.hpp"
#include "runtime/process.hpp"
#include "sim/future.hpp"
#include "util/assert.hpp"

namespace dsmr::pgas {

/// Per-process handle for collective operations. Construct one per rank
/// (same configuration everywhere); epochs keep successive collectives'
/// signal tags disjoint.
class Team {
 public:
  explicit Team(runtime::Process& self) : self_(self) {}

  runtime::Process& process() { return self_; }

  /// Dissemination barrier: ceil(log2 n) rounds, each rank signaling
  /// (r + 2^k) mod n and waiting on (r - 2^k) mod n. All clocks merge, so
  /// the barrier is a global happens-before frontier.
  sim::Future<void> barrier();

  /// The *arrive* half of barrier() only: sends every round's signal
  /// eagerly and never waits. Peers running the full barrier() still
  /// complete (each round's wait is satisfied: eager senders deliver up
  /// front, and full participants unlock inductively round by round), but
  /// this rank gains no incoming happens-before edge — its next accesses
  /// are unordered with the peers' pre-barrier work. This models the
  /// classic partial-barrier synchronization bug; the fuzzer plants it
  /// deliberately (fuzz::BugKind::kPartialBarrier). Consumes the same
  /// barrier epoch as barrier(), so mixing the two stays tag-consistent.
  void barrier_arrive();

  /// Binomial-tree broadcast of raw bytes from `root`.
  sim::Future<std::vector<std::byte>> broadcast(Rank root, std::vector<std::byte> data);

  template <typename T>
  sim::Future<T> broadcast_value(Rank root, T value) {
    std::vector<std::byte> bytes(sizeof(T));
    std::memcpy(bytes.data(), &value, sizeof(T));
    auto out = co_await broadcast(root, std::move(bytes));
    T result;
    std::memcpy(&result, out.data(), sizeof(T));
    co_return result;
  }

  /// Gather: every rank's payload arrives at `root` in rank order. The
  /// returned vector is empty on non-root ranks.
  sim::Future<std::vector<std::vector<std::byte>>> gather(Rank root,
                                                          std::vector<std::byte> data);

  /// Scatter: `root` distributes `slices[r]` to rank r (slices ignored on
  /// non-root ranks). Returns this rank's slice.
  sim::Future<std::vector<std::byte>> scatter(Rank root,
                                              std::vector<std::vector<std::byte>> slices);

  template <typename T>
  sim::Future<std::vector<T>> gather_value(Rank root, T value) {
    std::vector<std::byte> bytes(sizeof(T));
    std::memcpy(bytes.data(), &value, sizeof(T));
    auto raw = co_await gather(root, std::move(bytes));
    std::vector<T> values;
    values.reserve(raw.size());
    for (const auto& slice : raw) {
      T v;
      std::memcpy(&v, slice.data(), sizeof(T));
      values.push_back(v);
    }
    co_return values;
  }

  template <typename T>
  sim::Future<T> scatter_value(Rank root, std::vector<T> values) {
    std::vector<std::vector<std::byte>> slices;
    slices.reserve(values.size());
    for (const T& v : values) {
      std::vector<std::byte> bytes(sizeof(T));
      std::memcpy(bytes.data(), &v, sizeof(T));
      slices.push_back(std::move(bytes));
    }
    auto slice = co_await scatter(root, std::move(slices));
    T result;
    std::memcpy(&result, slice.data(), sizeof(T));
    co_return result;
  }

  /// Collective allreduce: binomial reduction to rank 0 followed by a
  /// broadcast. `op` must be commutative and associative.
  template <typename T, typename Op>
  sim::Future<T> allreduce(T value, Op op) {
    const int n = self_.nprocs();
    const Rank r = self_.rank();
    const std::uint64_t epoch = reduce_epoch_++;

    // Binomial-tree reduction to rank 0.
    T partial = value;
    for (int mask = 1; mask < n; mask <<= 1) {
      if ((r & mask) != 0) {
        std::vector<std::byte> bytes(sizeof(T));
        std::memcpy(bytes.data(), &partial, sizeof(T));
        self_.signal(r - mask, tag(kReduce, epoch, 0), bytes);
        break;
      }
      const Rank source = r | mask;
      if (source < n) {
        auto bytes = co_await self_.wait_signal(tag(kReduce, epoch, 0));
        T incoming;
        std::memcpy(&incoming, bytes.data(), sizeof(T));
        partial = op(partial, incoming);
      }
    }
    co_return co_await broadcast_value(0, partial);
  }

 private:
  enum Kind : std::uint64_t {
    kBarrier = 1,
    kBroadcast = 2,
    kReduce = 3,
    kGather = 4,
    kScatter = 5,
  };

  /// Collective tags live in their own high range so they can never collide
  /// with user signal tags.
  static std::uint64_t tag(Kind kind, std::uint64_t epoch, std::uint32_t round) {
    return (kind << 56) | (epoch << 16) | round;
  }

  runtime::Process& self_;
  std::uint64_t barrier_epoch_ = 0;
  std::uint64_t bcast_epoch_ = 0;
  std::uint64_t reduce_epoch_ = 0;
  std::uint64_t gather_epoch_ = 0;
  std::uint64_t scatter_epoch_ = 0;
};

/// §V.B: one-sided global reduction. The caller fetches every source with
/// instrumented gets and folds locally; no other process participates (and
/// none is notified — that is the point of the model).
template <typename T, typename Op>
sim::Future<T> onesided_reduce(runtime::Process& self,
                               std::vector<mem::GlobalAddress> sources, T init, Op op) {
  T accumulator = init;
  for (const auto& source : sources) {
    const T value = co_await self.get_value<T>(source);
    accumulator = op(accumulator, value);
  }
  co_return accumulator;
}

}  // namespace dsmr::pgas
