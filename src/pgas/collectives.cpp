#include "pgas/collectives.hpp"

namespace dsmr::pgas {

sim::Future<void> Team::barrier() {
  const int n = self_.nprocs();
  const Rank r = self_.rank();
  const std::uint64_t epoch = barrier_epoch_++;
  for (std::uint32_t round = 0; (1 << round) < n; ++round) {
    const int dist = 1 << round;
    const Rank to = static_cast<Rank>((r + dist) % n);
    self_.signal(to, tag(kBarrier, epoch, round));
    co_await self_.wait_signal(tag(kBarrier, epoch, round));
  }
}

void Team::barrier_arrive() {
  const int n = self_.nprocs();
  const Rank r = self_.rank();
  const std::uint64_t epoch = barrier_epoch_++;
  for (std::uint32_t round = 0; (1 << round) < n; ++round) {
    const int dist = 1 << round;
    const Rank to = static_cast<Rank>((r + dist) % n);
    self_.signal(to, tag(kBarrier, epoch, round));
  }
}

sim::Future<std::vector<std::byte>> Team::broadcast(Rank root,
                                                    std::vector<std::byte> data) {
  const int n = self_.nprocs();
  const Rank r = self_.rank();
  const std::uint64_t epoch = bcast_epoch_++;
  const int vr = (r - root + n) % n;  // rank relative to the root.

  // Receive from the parent (the rank that differs in my lowest set bit).
  int mask = 1;
  while (mask < n) {
    if ((vr & mask) != 0) {
      data = co_await self_.wait_signal(tag(kBroadcast, epoch, 0));
      break;
    }
    mask <<= 1;
  }
  // Forward to children in decreasing subtree size.
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < n) {
      const Rank child = static_cast<Rank>((vr + mask + root) % n);
      self_.signal(child, tag(kBroadcast, epoch, 0), data);
    }
    mask >>= 1;
  }
  co_return data;
}

sim::Future<std::vector<std::vector<std::byte>>> Team::gather(
    Rank root, std::vector<std::byte> data) {
  const int n = self_.nprocs();
  const Rank r = self_.rank();
  const std::uint64_t epoch = gather_epoch_++;
  std::vector<std::vector<std::byte>> gathered;
  if (r == root) {
    gathered.resize(static_cast<std::size_t>(n));
    gathered[static_cast<std::size_t>(root)] = std::move(data);
    for (Rank source = 0; source < n; ++source) {
      if (source == root) continue;
      // The round encodes the sender, so slices land in the right slot no
      // matter the arrival order.
      gathered[static_cast<std::size_t>(source)] = co_await self_.wait_signal(
          tag(kGather, epoch, static_cast<std::uint32_t>(source)));
    }
  } else {
    self_.signal(root, tag(kGather, epoch, static_cast<std::uint32_t>(r)), data);
  }
  co_return gathered;
}

sim::Future<std::vector<std::byte>> Team::scatter(
    Rank root, std::vector<std::vector<std::byte>> slices) {
  const int n = self_.nprocs();
  const Rank r = self_.rank();
  const std::uint64_t epoch = scatter_epoch_++;
  if (r == root) {
    DSMR_REQUIRE(slices.size() == static_cast<std::size_t>(n),
                 "scatter needs one slice per rank");
    for (Rank target = 0; target < n; ++target) {
      if (target == root) continue;
      self_.signal(target, tag(kScatter, epoch, 0), slices[static_cast<std::size_t>(target)]);
    }
    co_return std::move(slices[static_cast<std::size_t>(root)]);
  }
  co_return co_await self_.wait_signal(tag(kScatter, epoch, 0));
}

}  // namespace dsmr::pgas
