// Distributed shared arrays over the instrumented DSM runtime.
//
// `SharedArray<T>` plays the part of a PGAS language's shared array: the
// programmer indexes globally, the library resolves (rank, offset) — the
// address-resolution role the paper assigns to the compiler (§III.A).
//
// The *chunk* parameter sets the registration granularity: how many
// consecutive local elements share one registered area, i.e. one lock and
// one (V, W) clock pair. Chunk = 1 gives per-element detection precision at
// maximal clock memory; larger chunks trade precision for space — the
// granularity ablation in bench_clock_memory quantifies both directions
// (the analogue of false sharing for detection).
#pragma once

#include <string>
#include <vector>

#include "mem/global_address.hpp"
#include "pgas/distribution.hpp"
#include "runtime/process.hpp"
#include "runtime/world.hpp"
#include "sim/future.hpp"
#include "util/assert.hpp"

namespace dsmr::pgas {

template <typename T>
class SharedArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "shared arrays move raw bytes through public memory");

 public:
  /// Collectively allocates a `count`-element array before World::run.
  static SharedArray allocate(runtime::World& world, std::size_t count,
                              Distribution dist, std::size_t chunk_elems = 1,
                              const std::string& name = "array") {
    DSMR_REQUIRE(count > 0, "shared array needs at least one element");
    DSMR_REQUIRE(chunk_elems > 0, "chunk granularity must be positive");
    SharedArray array;
    array.count_ = count;
    array.dist_ = dist;
    array.chunk_ = chunk_elems;
    array.nprocs_ = world.nprocs();
    array.chunks_by_rank_.resize(static_cast<std::size_t>(world.nprocs()));
    for (Rank r = 0; r < world.nprocs(); ++r) {
      const std::size_t locals = local_count(dist, r, count, world.nprocs());
      const std::size_t nchunks = (locals + chunk_elems - 1) / chunk_elems;
      auto& chunks = array.chunks_by_rank_[static_cast<std::size_t>(r)];
      for (std::size_t c = 0; c < nchunks; ++c) {
        const std::size_t elems = std::min(chunk_elems, locals - c * chunk_elems);
        chunks.push_back(world.alloc(
            r, static_cast<std::uint32_t>(elems * sizeof(T)),
            name + "[" + std::to_string(r) + "." + std::to_string(c) + "]"));
      }
    }
    return array;
  }

  std::size_t size() const { return count_; }
  Distribution distribution() const { return dist_; }
  std::size_t chunk_elems() const { return chunk_; }

  Rank owner(std::size_t index) const {
    return place(dist_, index, count_, nprocs_).owner;
  }

  /// Global address of element `index`.
  mem::GlobalAddress address(std::size_t index) const {
    const Placement p = place(dist_, index, count_, nprocs_);
    const std::size_t chunk_index = p.local_index / chunk_;
    const std::size_t within = p.local_index % chunk_;
    const auto& chunks = chunks_by_rank_[static_cast<std::size_t>(p.owner)];
    DSMR_CHECK(chunk_index < chunks.size());
    return chunks[chunk_index].plus(static_cast<std::uint32_t>(within * sizeof(T)));
  }

  /// Address of the registered area (= lock, = clock pair) containing
  /// element `index` — what Process::lock expects.
  mem::GlobalAddress chunk_address(std::size_t index) const {
    const Placement p = place(dist_, index, count_, nprocs_);
    return chunks_by_rank_[static_cast<std::size_t>(p.owner)][p.local_index / chunk_];
  }

  sim::Future<T> read(runtime::Process& self, std::size_t index) const {
    return self.get_value<T>(address(index));
  }

  sim::Future<void> write(runtime::Process& self, std::size_t index, const T& value) const {
    return self.put_value(address(index), value);
  }

 private:
  SharedArray() = default;

  std::size_t count_ = 0;
  Distribution dist_ = Distribution::kBlock;
  std::size_t chunk_ = 1;
  int nprocs_ = 0;
  std::vector<std::vector<mem::GlobalAddress>> chunks_by_rank_;
};

}  // namespace dsmr::pgas
