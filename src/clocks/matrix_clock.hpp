// Matrix clocks — the paper's §IV.B literally maintains a *clock matrix*
// V_{Pi} per process ("Before Pi performs an event, it increments its local
// logical clock V_{Pi}[i,i]").
//
// Row i of process i's matrix is its ordinary vector clock (what Pi knows of
// everyone's progress); row j is Pi's latest knowledge of Pj's vector clock
// (what Pi knows Pj knows). The comparisons in Algorithms 1-3 only consume
// the own-row vector, which is why the runtime stores a VectorClock on the
// hot path; the matrix is kept for the knowledge/garbage-collection
// extension: `gc_frontier()[k]` is a lower bound on what *every* process
// knows about Pk, so any bookkeeping older than the frontier can be pruned.
#pragma once

#include <string>
#include <vector>

#include "clocks/vector_clock.hpp"
#include "util/types.hpp"

namespace dsmr::clocks {

class MatrixClock {
 public:
  MatrixClock() = default;

  /// n×n matrix of zeros for a system of n processes, owned by `self`.
  MatrixClock(std::size_t n, Rank self);

  std::size_t size() const { return rows_.size(); }
  Rank self() const { return self_; }

  /// The own row — the process's vector clock.
  const VectorClock& own_row() const;
  const VectorClock& row(Rank r) const;

  /// Local event: V[i,i] += 1 (paper §IV.B).
  void tick();

  /// Message receipt from `sender` carrying its full matrix: componentwise
  /// max of all rows, then the own row additionally absorbs the sender's
  /// own row (direct knowledge) — the standard matrix-clock update.
  void merge_matrix(const MatrixClock& sender_matrix);

  /// Cheaper variant for protocols that only ship the sender's vector
  /// (row): merges into our own row and records it as row[sender].
  void merge_row(Rank sender, const VectorClock& sender_row);

  /// Component k of the frontier = min over rows of column k: every process
  /// is known to have seen Pk's events up to this count. Monotone
  /// non-decreasing; safe pruning horizon for per-event metadata.
  VectorClock gc_frontier() const;

  std::string to_string() const;

  bool operator==(const MatrixClock& other) const = default;

 private:
  std::vector<VectorClock> rows_;
  Rank self_ = kInvalidRank;
};

}  // namespace dsmr::clocks
