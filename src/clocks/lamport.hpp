// Lamport scalar clock ([12] in the paper).
//
// Provided for completeness and for the clock-size ablation (EXPERIMENTS.md,
// CLAIM-IV.C): a scalar clock totally orders what it sees and therefore can
// never *witness* concurrency — a detector built on it reports nothing. The
// ablation bench quantifies that false-negative rate against vector clocks.
#pragma once

#include <algorithm>

#include "util/types.hpp"

namespace dsmr::clocks {

class LamportClock {
 public:
  /// Local event: advance and return the event timestamp.
  ClockValue tick() { return ++time_; }

  /// Message receipt carrying timestamp `other`: take max then advance.
  ClockValue merge(ClockValue other) {
    time_ = std::max(time_, other);
    return ++time_;
  }

  ClockValue time() const { return time_; }

 private:
  ClockValue time_ = 0;
};

}  // namespace dsmr::clocks
