// Vector clocks (Mattern [15], Fidge), the partial-order witness the paper's
// detector is built on.
//
// Lemma 1 (paper, citing Mattern Theorem 10): e < e' iff C(e) < C(e'), and
// e ∥ e' iff C(e) ∥ C(e'). Corollary 1: if no ordering can be determined
// between the clocks of two conflicting accesses, there is a race.
//
// The paper's Algorithm 3 (`compare_clocks`) is implemented here as
// `dominated_by` / `compare`; the componentwise-max merge of Algorithm 4
// (`max_clock`) as `merge_from`.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "clocks/ordering.hpp"
#include "util/types.hpp"

namespace dsmr::clocks {

class VectorClock {
 public:
  VectorClock() = default;

  /// A clock for a system of `n` processes, all components zero.
  /// §IV.C: n is also the provable lower bound on the clock size.
  explicit VectorClock(std::size_t n) : components_(n, 0) {}

  /// Convenience constructor for tests/examples: explicit component list.
  VectorClock(std::initializer_list<ClockValue> init) : components_(init) {}

  std::size_t size() const { return components_.size(); }
  bool empty() const { return components_.empty(); }

  ClockValue operator[](std::size_t i) const;
  ClockValue& operator[](std::size_t i);

  /// The paper's update_local_clock: V[i] += 1 before process i acts.
  void tick(Rank rank);

  /// Algorithm 4 (max_clock): componentwise maximum, in place.
  void merge_from(const VectorClock& other);

  /// Componentwise `*this <= other` — the corrected reading of the paper's
  /// Algorithm 3 (whose literal "<" in every component would mis-order
  /// clocks that share any equal component; see DESIGN.md §4).
  bool dominated_by(const VectorClock& other) const;

  /// Full four-way comparison under Mattern's partial order.
  Ordering compare(const VectorClock& other) const;

  /// The race predicate of Corollary 1: neither dominates the other.
  bool concurrent_with(const VectorClock& other) const {
    return compare(other) == Ordering::kConcurrent;
  }

  bool is_zero() const;

  bool operator==(const VectorClock& other) const = default;

  /// Total order for use as a container key (NOT the causal order).
  bool lexicographic_less(const VectorClock& other) const;

  /// Wire encoding: n little-endian u64 components. The serialized size is
  /// what the communication-overhead benches charge per piggybacked clock.
  std::size_t wire_size() const { return components_.size() * sizeof(ClockValue); }
  void encode(std::vector<std::byte>& out) const;
  static VectorClock decode(std::span<const std::byte> in, std::size_t n,
                            std::size_t* offset);

  /// Rendering like the paper's figures: "110" when every component is a
  /// single digit, otherwise "[1,10,2]".
  std::string to_string() const;

  /// Truncated projection onto the first `k` components — deliberately
  /// *unsound*; exists only for the §IV.C clock-size ablation.
  VectorClock truncated(std::size_t k) const;

 private:
  std::vector<ClockValue> components_;
};

/// Free-function form of Algorithm 4 returning a fresh clock.
VectorClock max_clock(const VectorClock& a, const VectorClock& b);

}  // namespace dsmr::clocks
