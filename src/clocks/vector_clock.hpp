// Vector clocks (Mattern [15], Fidge), the partial-order witness the paper's
// detector is built on.
//
// Lemma 1 (paper, citing Mattern Theorem 10): e < e' iff C(e) < C(e'), and
// e ∥ e' iff C(e) ∥ C(e'). Corollary 1: if no ordering can be determined
// between the clocks of two conflicting accesses, there is a race.
//
// The paper's Algorithm 3 (`compare_clocks`) is implemented here as
// `dominated_by` / `compare`; the componentwise-max merge of Algorithm 4
// (`max_clock`) as `merge_from`.
//
// Representation: clocks up to kInlineCapacity components live entirely
// inside the object (no heap allocation) — clocks are copied on every
// simulated message, and debugging-scale systems (the paper's ~10 processes)
// should not pay an allocation per copy. Wider clocks spill to a vector.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "clocks/ordering.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"
#include "util/varint.hpp"

namespace dsmr::clocks {

class VectorClock {
 public:
  /// Clocks of at most this many components need no heap storage. The
  /// inline buffer shares space with the heap pointer (union), so wider
  /// clocks do not pay for it.
  static constexpr std::size_t kInlineCapacity = 4;

  VectorClock() : size_(0), inline_{} {}

  /// A clock for a system of `n` processes, all components zero.
  /// §IV.C: n is also the provable lower bound on the clock size.
  explicit VectorClock(std::size_t n) { allocate_zeroed(n); }

  /// Convenience constructor for tests/examples: explicit component list.
  VectorClock(std::initializer_list<ClockValue> init) {
    allocate_zeroed(init.size());
    std::size_t i = 0;
    for (const ClockValue v : init) data()[i++] = v;
  }

  VectorClock(const VectorClock& other) { copy_from(other); }
  VectorClock& operator=(const VectorClock& other) {
    if (this != &other) {
      release();
      copy_from(other);
    }
    return *this;
  }
  VectorClock(VectorClock&& other) noexcept { steal_from(other); }
  VectorClock& operator=(VectorClock&& other) noexcept {
    if (this != &other) {
      release();
      steal_from(other);
    }
    return *this;
  }
  ~VectorClock() { release(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  ClockValue operator[](std::size_t i) const {
    DSMR_ASSERT(i < size_);
    return data()[i];
  }
  ClockValue& operator[](std::size_t i) {
    DSMR_ASSERT(i < size_);
    return data()[i];
  }

  /// The paper's update_local_clock: V[i] += 1 before process i acts.
  /// Hot path (every access ticks): inline, lightweight bounds check.
  void tick(Rank rank) {
    DSMR_ASSERT(rank >= 0 && static_cast<std::size_t>(rank) < size_);
    data()[static_cast<std::size_t>(rank)] += 1;
  }

  /// Algorithm 4 (max_clock): componentwise maximum, in place.
  void merge_from(const VectorClock& other);

  /// Componentwise `*this <= other` — the corrected reading of the paper's
  /// Algorithm 3 (whose literal "<" in every component would mis-order
  /// clocks that share any equal component; see DESIGN.md §4).
  bool dominated_by(const VectorClock& other) const;

  /// Full four-way comparison under Mattern's partial order.
  Ordering compare(const VectorClock& other) const;

  /// Same comparison, branchless inner loop: both domination predicates
  /// accumulate in a single pass with no early exit, so the compiler can
  /// vectorize it (`#pragma omp simd`; enabled by `-fopenmp-simd` when the
  /// toolchain has it, harmless otherwise). This is the batched check path's
  /// fallback compare — `compare` stays as the scalar oracle, and debug
  /// builds assert the two agree on every call.
  Ordering compare_vectorized(const VectorClock& other) const;

  /// The race predicate of Corollary 1: neither dominates the other.
  bool concurrent_with(const VectorClock& other) const {
    return compare(other) == Ordering::kConcurrent;
  }

  bool is_zero() const;

  bool operator==(const VectorClock& other) const {
    if (size_ != other.size_) return false;
    const ClockValue* a = data();
    const ClockValue* b = other.data();
    for (std::size_t i = 0; i < size_; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

  /// Total order for use as a container key (NOT the causal order).
  bool lexicographic_less(const VectorClock& other) const;

  // ---- wire encodings ----
  //
  // The *compact* LEB128 encoding is what the simulator charges on the wire
  // (`wire_size`) and what the detection-metadata accounting reports: clock
  // components are small non-negative integers that grow with event counts,
  // so base-128 varints shrink the n×8-byte fixed layout by ~8x at
  // debugging scale. The fixed layout survives as `encode`/`decode` for
  // consumers needing random access (`fixed_wire_size` bytes).

  /// Size in bytes of one component's LEB128 encoding (util/varint.hpp —
  /// the same encoding the record/replay event log uses).
  static std::size_t varint_size(ClockValue v) { return util::varint_size(v); }

  /// Bytes of the compact encoding — the per-clock wire cost charged by the
  /// communication-overhead benches for each piggybacked clock.
  std::size_t wire_size() const {
    const ClockValue* values = data();
    std::size_t total = 0;
    for (std::size_t i = 0; i < size_; ++i) total += varint_size(values[i]);
    return total;
  }

  /// LEB128 per component, `size()` components.
  void encode_compact(std::vector<std::byte>& out) const;
  static VectorClock decode_compact(std::span<const std::byte> in, std::size_t n,
                                    std::size_t* offset);

  /// ---- delta encoding (piggyback compression) ----
  //
  // Dual-clock wire messages carry two clocks that are usually equal or
  // near-equal (W is refreshed from the same event stream as V), so the
  // second clock ships as a sparse delta against the first: a 1-byte format
  // tag, then either the plain compact encoding (tag 0) or a varint count of
  // differing components followed by (index, value) varint pairs (tag 1),
  // whichever is smaller. Worst case is plain-compact + 1 byte; typical case
  // (equal clocks) is 2 bytes regardless of n.

  /// Bytes of the delta encoding of `*this` against `base` (tag included).
  std::size_t delta_wire_size(const VectorClock& base) const;
  void encode_delta(const VectorClock& base, std::vector<std::byte>& out) const;
  static VectorClock decode_delta(const VectorClock& base,
                                  std::span<const std::byte> in,
                                  std::size_t* offset);

  /// Fixed wire encoding: n little-endian u64 components.
  std::size_t fixed_wire_size() const { return size_ * sizeof(ClockValue); }
  void encode(std::vector<std::byte>& out) const;
  static VectorClock decode(std::span<const std::byte> in, std::size_t n,
                            std::size_t* offset);

  /// Rendering like the paper's figures: "110" when every component is a
  /// single digit, otherwise "[1,10,2]".
  std::string to_string() const;

  /// Truncated projection onto the first `k` components — deliberately
  /// *unsound*; exists only for the §IV.C clock-size ablation.
  VectorClock truncated(std::size_t k) const;

 private:
  ClockValue* data() { return size_ <= kInlineCapacity ? inline_ : heap_; }
  const ClockValue* data() const { return size_ <= kInlineCapacity ? inline_ : heap_; }

  void allocate_zeroed(std::size_t n) {
    size_ = n;
    if (n > kInlineCapacity) {
      heap_ = new ClockValue[n]();
    } else {
      for (std::size_t i = 0; i < kInlineCapacity; ++i) inline_[i] = 0;
    }
  }

  void copy_from(const VectorClock& other) {
    size_ = other.size_;
    if (size_ > kInlineCapacity) {
      heap_ = new ClockValue[size_];
      for (std::size_t i = 0; i < size_; ++i) heap_[i] = other.heap_[i];
    } else {
      for (std::size_t i = 0; i < kInlineCapacity; ++i) inline_[i] = other.inline_[i];
    }
  }

  void steal_from(VectorClock& other) noexcept {
    size_ = other.size_;
    if (size_ > kInlineCapacity) {
      heap_ = other.heap_;
    } else {
      for (std::size_t i = 0; i < kInlineCapacity; ++i) inline_[i] = other.inline_[i];
    }
    // Leave the source as a valid empty clock (inline storage active).
    other.size_ = 0;
    for (std::size_t i = 0; i < kInlineCapacity; ++i) other.inline_[i] = 0;
  }

  void release() noexcept {
    if (size_ > kInlineCapacity) delete[] heap_;
  }

  std::size_t size_ = 0;
  union {
    ClockValue inline_[kInlineCapacity];
    ClockValue* heap_;
  };
};

/// Free-function form of Algorithm 4 returning a fresh clock.
VectorClock max_clock(const VectorClock& a, const VectorClock& b);

}  // namespace dsmr::clocks
