#include "clocks/vector_clock.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "util/assert.hpp"

namespace dsmr::clocks {

ClockValue VectorClock::operator[](std::size_t i) const {
  DSMR_CHECK_MSG(i < components_.size(), "clock component " << i << " out of range");
  return components_[i];
}

ClockValue& VectorClock::operator[](std::size_t i) {
  DSMR_CHECK_MSG(i < components_.size(), "clock component " << i << " out of range");
  return components_[i];
}

void VectorClock::tick(Rank rank) {
  DSMR_CHECK_MSG(rank >= 0 && static_cast<std::size_t>(rank) < components_.size(),
                 "tick by rank " << rank << " on clock of size " << components_.size());
  components_[static_cast<std::size_t>(rank)] += 1;
}

void VectorClock::merge_from(const VectorClock& other) {
  DSMR_CHECK_MSG(other.size() == size(),
                 "merging clocks of different sizes: " << size() << " vs " << other.size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    components_[i] = std::max(components_[i], other.components_[i]);
  }
}

bool VectorClock::dominated_by(const VectorClock& other) const {
  DSMR_CHECK_MSG(other.size() == size(),
                 "comparing clocks of different sizes: " << size() << " vs " << other.size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] > other.components_[i]) return false;
  }
  return true;
}

Ordering VectorClock::compare(const VectorClock& other) const {
  const bool le = dominated_by(other);
  const bool ge = other.dominated_by(*this);
  if (le && ge) return Ordering::kEqual;
  if (le) return Ordering::kBefore;
  if (ge) return Ordering::kAfter;
  return Ordering::kConcurrent;
}

bool VectorClock::is_zero() const {
  return std::all_of(components_.begin(), components_.end(),
                     [](ClockValue v) { return v == 0; });
}

bool VectorClock::lexicographic_less(const VectorClock& other) const {
  return components_ < other.components_;
}

void VectorClock::encode(std::vector<std::byte>& out) const {
  const std::size_t start = out.size();
  out.resize(start + wire_size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    ClockValue v = components_[i];
    for (std::size_t b = 0; b < sizeof(ClockValue); ++b) {
      out[start + i * sizeof(ClockValue) + b] = static_cast<std::byte>(v & 0xff);
      v >>= 8;
    }
  }
}

VectorClock VectorClock::decode(std::span<const std::byte> in, std::size_t n,
                                std::size_t* offset) {
  std::size_t pos = offset ? *offset : 0;
  DSMR_REQUIRE(in.size() >= pos + n * sizeof(ClockValue),
               "decode buffer too small for clock of size " << n);
  VectorClock clock(n);
  for (std::size_t i = 0; i < n; ++i) {
    ClockValue v = 0;
    for (std::size_t b = sizeof(ClockValue); b-- > 0;) {
      v = (v << 8) | static_cast<ClockValue>(in[pos + i * sizeof(ClockValue) + b]);
    }
    clock.components_[i] = v;
  }
  pos += n * sizeof(ClockValue);
  if (offset) *offset = pos;
  return clock;
}

std::string VectorClock::to_string() const {
  const bool compact = std::all_of(components_.begin(), components_.end(),
                                   [](ClockValue v) { return v < 10; });
  std::ostringstream out;
  if (compact) {
    for (const auto v : components_) out << v;
  } else {
    out << "[";
    for (std::size_t i = 0; i < components_.size(); ++i) {
      if (i > 0) out << ",";
      out << components_[i];
    }
    out << "]";
  }
  return out.str();
}

VectorClock VectorClock::truncated(std::size_t k) const {
  VectorClock result(std::min(k, components_.size()));
  for (std::size_t i = 0; i < result.size(); ++i) result.components_[i] = components_[i];
  return result;
}

VectorClock max_clock(const VectorClock& a, const VectorClock& b) {
  VectorClock result = a;
  result.merge_from(b);
  return result;
}

}  // namespace dsmr::clocks
