#include "clocks/vector_clock.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "util/assert.hpp"

namespace dsmr::clocks {

void VectorClock::merge_from(const VectorClock& other) {
  DSMR_CHECK_MSG(other.size() == size(),
                 "merging clocks of different sizes: " << size() << " vs " << other.size());
  ClockValue* mine = data();
  const ClockValue* theirs = other.data();
  for (std::size_t i = 0; i < size_; ++i) {
    mine[i] = std::max(mine[i], theirs[i]);
  }
}

bool VectorClock::dominated_by(const VectorClock& other) const {
  DSMR_CHECK_MSG(other.size() == size(),
                 "comparing clocks of different sizes: " << size() << " vs " << other.size());
  const ClockValue* mine = data();
  const ClockValue* theirs = other.data();
  for (std::size_t i = 0; i < size_; ++i) {
    if (mine[i] > theirs[i]) return false;
  }
  return true;
}

Ordering VectorClock::compare(const VectorClock& other) const {
  const bool le = dominated_by(other);
  const bool ge = other.dominated_by(*this);
  if (le && ge) return Ordering::kEqual;
  if (le) return Ordering::kBefore;
  if (ge) return Ordering::kAfter;
  return Ordering::kConcurrent;
}

Ordering VectorClock::compare_vectorized(const VectorClock& other) const {
  DSMR_CHECK_MSG(other.size() == size(),
                 "comparing clocks of different sizes: " << size() << " vs " << other.size());
  const ClockValue* mine = data();
  const ClockValue* theirs = other.data();
  ClockValue above = 0;
  ClockValue below = 0;
#pragma omp simd reduction(| : above, below)
  for (std::size_t i = 0; i < size_; ++i) {
    above |= static_cast<ClockValue>(mine[i] > theirs[i]);
    below |= static_cast<ClockValue>(theirs[i] > mine[i]);
  }
  Ordering result;
  if (above == 0 && below == 0) {
    result = Ordering::kEqual;
  } else if (above == 0) {
    result = Ordering::kBefore;
  } else if (below == 0) {
    result = Ordering::kAfter;
  } else {
    result = Ordering::kConcurrent;
  }
  DSMR_ASSERT(result == compare(other));
  return result;
}

bool VectorClock::is_zero() const {
  const ClockValue* values = data();
  for (std::size_t i = 0; i < size_; ++i) {
    if (values[i] != 0) return false;
  }
  return true;
}

bool VectorClock::lexicographic_less(const VectorClock& other) const {
  return std::lexicographical_compare(data(), data() + size_, other.data(),
                                      other.data() + other.size_);
}

void VectorClock::encode_compact(std::vector<std::byte>& out) const {
  const ClockValue* values = data();
  for (std::size_t i = 0; i < size_; ++i) util::put_varint(out, values[i]);
}

VectorClock VectorClock::decode_compact(std::span<const std::byte> in, std::size_t n,
                                        std::size_t* offset) {
  std::size_t pos = offset ? *offset : 0;
  VectorClock clock(n);
  ClockValue* values = clock.data();
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = util::try_get_varint(in, &pos);
    DSMR_REQUIRE(v.has_value(), "compact clock decode ran past the buffer "
                                "or a component overflows 64 bits");
    values[i] = *v;
  }
  if (offset) *offset = pos;
  return clock;
}

namespace {

// Delta-encoding format tags: the first byte says how the rest is laid out.
constexpr std::byte kDeltaPlain{0};   // plain compact encoding follows.
constexpr std::byte kDeltaSparse{1};  // varint count + (index, value) pairs.

// Byte cost of the sparse body (count + pairs), without the tag.
std::size_t sparse_body_size(const VectorClock& clock, const VectorClock& base) {
  std::size_t diffs = 0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < clock.size(); ++i) {
    if (clock[i] != base[i]) {
      ++diffs;
      pairs += util::varint_size(i) + util::varint_size(clock[i]);
    }
  }
  return util::varint_size(diffs) + pairs;
}

}  // namespace

std::size_t VectorClock::delta_wire_size(const VectorClock& base) const {
  DSMR_CHECK_MSG(base.size() == size(),
                 "delta between clocks of different sizes: " << size() << " vs "
                                                             << base.size());
  return 1 + std::min(sparse_body_size(*this, base), wire_size());
}

void VectorClock::encode_delta(const VectorClock& base,
                               std::vector<std::byte>& out) const {
  DSMR_CHECK_MSG(base.size() == size(),
                 "delta between clocks of different sizes: " << size() << " vs "
                                                             << base.size());
  if (sparse_body_size(*this, base) >= wire_size()) {
    out.push_back(kDeltaPlain);
    encode_compact(out);
    return;
  }
  out.push_back(kDeltaSparse);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < size_; ++i) diffs += (*this)[i] != base[i];
  util::put_varint(out, diffs);
  for (std::size_t i = 0; i < size_; ++i) {
    if ((*this)[i] != base[i]) {
      util::put_varint(out, i);
      util::put_varint(out, (*this)[i]);
    }
  }
}

VectorClock VectorClock::decode_delta(const VectorClock& base,
                                      std::span<const std::byte> in,
                                      std::size_t* offset) {
  std::size_t pos = offset ? *offset : 0;
  DSMR_REQUIRE(pos < in.size(), "delta clock decode ran past the buffer");
  const std::byte tag = in[pos++];
  if (tag == kDeltaPlain) {
    VectorClock clock = decode_compact(in, base.size(), &pos);
    if (offset) *offset = pos;
    return clock;
  }
  DSMR_REQUIRE(tag == kDeltaSparse, "unknown delta clock format tag");
  VectorClock clock = base;
  const auto diffs = util::try_get_varint(in, &pos);
  DSMR_REQUIRE(diffs.has_value(), "delta clock decode ran past the buffer");
  for (std::uint64_t d = 0; d < *diffs; ++d) {
    const auto index = util::try_get_varint(in, &pos);
    const auto value = util::try_get_varint(in, &pos);
    DSMR_REQUIRE(index.has_value() && value.has_value() && *index < clock.size(),
                 "malformed sparse clock delta");
    clock[static_cast<std::size_t>(*index)] = *value;
  }
  if (offset) *offset = pos;
  return clock;
}

void VectorClock::encode(std::vector<std::byte>& out) const {
  const std::size_t start = out.size();
  out.resize(start + fixed_wire_size());
  const ClockValue* values = data();
  for (std::size_t i = 0; i < size_; ++i) {
    ClockValue v = values[i];
    for (std::size_t b = 0; b < sizeof(ClockValue); ++b) {
      out[start + i * sizeof(ClockValue) + b] = static_cast<std::byte>(v & 0xff);
      v >>= 8;
    }
  }
}

VectorClock VectorClock::decode(std::span<const std::byte> in, std::size_t n,
                                std::size_t* offset) {
  std::size_t pos = offset ? *offset : 0;
  DSMR_REQUIRE(in.size() >= pos + n * sizeof(ClockValue),
               "decode buffer too small for clock of size " << n);
  VectorClock clock(n);
  ClockValue* values = clock.data();
  for (std::size_t i = 0; i < n; ++i) {
    ClockValue v = 0;
    for (std::size_t b = sizeof(ClockValue); b-- > 0;) {
      v = (v << 8) | static_cast<ClockValue>(in[pos + i * sizeof(ClockValue) + b]);
    }
    values[i] = v;
  }
  pos += n * sizeof(ClockValue);
  if (offset) *offset = pos;
  return clock;
}

std::string VectorClock::to_string() const {
  const ClockValue* values = data();
  const bool compact =
      std::all_of(values, values + size_, [](ClockValue v) { return v < 10; });
  std::ostringstream out;
  if (compact) {
    for (std::size_t i = 0; i < size_; ++i) out << values[i];
  } else {
    out << "[";
    for (std::size_t i = 0; i < size_; ++i) {
      if (i > 0) out << ",";
      out << values[i];
    }
    out << "]";
  }
  return out.str();
}

VectorClock VectorClock::truncated(std::size_t k) const {
  VectorClock result(std::min(k, size_));
  const ClockValue* values = data();
  ClockValue* out = result.data();
  for (std::size_t i = 0; i < result.size(); ++i) out[i] = values[i];
  return result;
}

VectorClock max_clock(const VectorClock& a, const VectorClock& b) {
  VectorClock result = a;
  result.merge_from(b);
  return result;
}

}  // namespace dsmr::clocks
