#include "clocks/epoch.hpp"

#include <sstream>

namespace dsmr::clocks {

std::string Epoch::to_string() const {
  if (!valid()) return "-";
  std::ostringstream out;
  out << "P" << rank << "@" << value;
  return out.str();
}

}  // namespace dsmr::clocks
