// Epochs and adaptive detection state — the FastTrack idea (Flanagan &
// Freund; cf. Ronsse & De Bosschere's on-the-fly detectors in PAPERS.md)
// transplanted onto the paper's per-area clocks.
//
// An *epoch* (rank, value) names one event: the `value`-th event of process
// `rank`. For the clock C(e) of an event e at process p, Fidge/Mattern give
// the O(1) ordering witness this whole optimization rests on:
//
//     for any event f:   e → f  or  e = f   iff   C(f)[p] >= C(e)[p].
//
// Every clock the detector stores per area is such an event clock — it is
// the home NIC's post-event clock, an event at the home rank — and every
// accessor clock is the initiator's post-tick clock, an event at the
// initiator. So the full four-way comparison of Algorithm 3 collapses to
// two integer compares (core::check_access's fast path), and the stored
// state can be *summarized* by its epoch.
//
// The adaptive rule: state produced by a single known event stays
// epoch-summarized; merging in knowledge that is not totally ordered with
// the current state (a concurrent read set union) *inflates* the state to a
// plain vector clock, after which comparisons fall back to O(n).
#pragma once

#include <string>

#include "clocks/vector_clock.hpp"
#include "util/types.hpp"

namespace dsmr::clocks {

/// One event's identity in clock coordinates: the `value`-th event of
/// process `rank`. `value == 0` with a valid rank names "no event yet" (the
/// zero clock), which is dominated by every real event clock.
struct Epoch {
  Rank rank = kInvalidRank;
  ClockValue value = 0;

  bool valid() const { return rank != kInvalidRank; }

  /// The epoch of the event whose (post-tick) clock is `clk`, known to have
  /// occurred at `owner`. Invalid when `owner` is out of the clock's range
  /// (callers then fall back to full-clock comparison).
  static Epoch of_event(Rank owner, const VectorClock& clk) {
    if (owner < 0 || static_cast<std::size_t>(owner) >= clk.size()) return {};
    return {owner, clk[static_cast<std::size_t>(owner)]};
  }

  /// Compact wire/storage footprint: two varints.
  std::size_t wire_size() const {
    return VectorClock::varint_size(static_cast<ClockValue>(rank < 0 ? 0 : rank)) +
           VectorClock::varint_size(value);
  }

  bool operator==(const Epoch&) const = default;

  std::string to_string() const;  ///< "P<rank>@<value>", or "-" when invalid.
};

/// Adaptive per-area detection state: a full vector clock plus, while the
/// state is known to be the clock of one event (`store_event`), the epoch
/// witnessing that event. While summarized, orderings against this state
/// are decidable in O(1) and the modeled storage footprint is the compact
/// clock + epoch; `merge_concurrent` inflates to a plain clock.
class AdaptiveClock {
 public:
  AdaptiveClock() = default;

  /// Zero state for a system of `n` processes, owned by `owner` (the home
  /// rank of the area this state guards). The zero clock *is* an event
  /// clock — of the fictitious 0th event of the owner — so a fresh area
  /// starts summarized.
  AdaptiveClock(std::size_t n, Rank owner)
      : full_(n), epoch_{owner, 0}, summarized_(true) {}

  bool summarized() const { return summarized_; }

  /// The epoch witness; invalid when the state has been inflated.
  Epoch epoch() const { return summarized_ ? epoch_ : Epoch{}; }

  const VectorClock& full() const { return full_; }

  /// Overwrite with the clock of one known event at `owner` (the home NIC's
  /// post-event clock). Keeps / restores the epoch summary.
  void store_event(Rank owner, const VectorClock& clk) {
    full_ = clk;
    epoch_ = Epoch::of_event(owner, clk);
    summarized_ = epoch_.valid();
  }

  /// The inflate rule: absorb knowledge not produced by a single event
  /// totally ordered with the current state (concurrent readers). The state
  /// becomes a componentwise max of multiple events' clocks, which is no
  /// event's clock — the epoch summary is dropped.
  ///
  /// Not exercised by the paper's protocols (every live update is one home
  /// event, so areas stay summarized); kept so the type stays sound for
  /// representations that merge, e.g. an aggregated read set.
  void merge_concurrent(const VectorClock& clk) {
    if (full_.empty()) {
      full_ = clk;
    } else {
      full_.merge_from(clk);
    }
    summarized_ = false;
  }

  /// Modeled storage footprint (what the §V.A storage-overhead accounting
  /// charges): the compact-encoded clock, plus the epoch witness while
  /// summarized.
  std::size_t storage_bytes() const {
    return full_.wire_size() + (summarized_ ? epoch_.wire_size() : 0);
  }

 private:
  VectorClock full_;
  Epoch epoch_{};
  bool summarized_ = false;
};

}  // namespace dsmr::clocks
