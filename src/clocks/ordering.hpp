// The four possible outcomes of comparing two logical clocks.
#pragma once

namespace dsmr::clocks {

/// Result of comparing clocks `a` against `b` under Mattern's partial order.
/// `kConcurrent` is the paper's `a × b`: no causal order exists, which —
/// combined with a write — is exactly a race condition (Corollary 1).
enum class Ordering {
  kBefore,      ///< a < b: a happens-before b.
  kEqual,       ///< identical clocks.
  kAfter,       ///< a > b: b happens-before a.
  kConcurrent,  ///< a ∥ b: causally unordered.
};

/// True when the comparison proves a causal order (or identity) in either
/// direction; a race is the negation of this for conflicting accesses.
constexpr bool causally_ordered(Ordering o) { return o != Ordering::kConcurrent; }

constexpr const char* to_string(Ordering o) {
  switch (o) {
    case Ordering::kBefore: return "before";
    case Ordering::kEqual: return "equal";
    case Ordering::kAfter: return "after";
    case Ordering::kConcurrent: return "concurrent";
  }
  return "?";
}

}  // namespace dsmr::clocks
