#include "clocks/matrix_clock.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/assert.hpp"

namespace dsmr::clocks {

MatrixClock::MatrixClock(std::size_t n, Rank self)
    : rows_(n, VectorClock(n)), self_(self) {
  DSMR_REQUIRE(self >= 0 && static_cast<std::size_t>(self) < n,
               "matrix clock owner rank " << self << " out of range for n=" << n);
}

const VectorClock& MatrixClock::own_row() const { return row(self_); }

const VectorClock& MatrixClock::row(Rank r) const {
  DSMR_CHECK_MSG(r >= 0 && static_cast<std::size_t>(r) < rows_.size(),
                 "matrix clock row " << r << " out of range");
  return rows_[static_cast<std::size_t>(r)];
}

void MatrixClock::tick() {
  auto& own = rows_[static_cast<std::size_t>(self_)];
  own.tick(self_);
}

void MatrixClock::merge_matrix(const MatrixClock& sender_matrix) {
  DSMR_CHECK_MSG(sender_matrix.size() == size(), "matrix clock size mismatch");
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    rows_[r].merge_from(sender_matrix.rows_[r]);
  }
  rows_[static_cast<std::size_t>(self_)].merge_from(sender_matrix.own_row());
  rows_[static_cast<std::size_t>(sender_matrix.self_)].merge_from(sender_matrix.own_row());
}

void MatrixClock::merge_row(Rank sender, const VectorClock& sender_row) {
  DSMR_CHECK_MSG(sender >= 0 && static_cast<std::size_t>(sender) < rows_.size(),
                 "merge_row sender rank out of range");
  rows_[static_cast<std::size_t>(self_)].merge_from(sender_row);
  rows_[static_cast<std::size_t>(sender)].merge_from(sender_row);
}

VectorClock MatrixClock::gc_frontier() const {
  VectorClock frontier(size());
  for (std::size_t k = 0; k < size(); ++k) {
    ClockValue lo = std::numeric_limits<ClockValue>::max();
    for (const auto& row : rows_) lo = std::min(lo, row[k]);
    frontier[k] = lo;
  }
  return frontier;
}

std::string MatrixClock::to_string() const {
  std::ostringstream out;
  out << "{";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) out << "; ";
    out << rows_[r].to_string();
  }
  out << "}";
  return out.str();
}

}  // namespace dsmr::clocks
