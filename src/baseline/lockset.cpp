#include "baseline/lockset.hpp"

#include <algorithm>

namespace dsmr::baseline {

LocksetResult LocksetDetector::analyze(const core::EventLog& log) {
  std::map<analysis::AreaKey, AreaState> states;
  LocksetResult result;

  for (const auto& event : log.events()) {
    AreaState& st = states[{event.home, event.area}];
    const std::set<std::uint64_t> held(event.held_locks.begin(), event.held_locks.end());

    switch (st.state) {
      case State::kVirgin:
        st.state = State::kExclusive;
        st.first_rank = event.rank;
        break;
      case State::kExclusive:
        if (event.rank == st.first_rank) break;  // still thread-local.
        st.state = event.kind == core::AccessKind::kWrite ? State::kSharedModified
                                                          : State::kShared;
        break;
      case State::kShared:
        if (event.kind == core::AccessKind::kWrite) st.state = State::kSharedModified;
        break;
      case State::kSharedModified:
        break;
    }

    // Lockset refinement runs from the very first access (original Eraser):
    // the Exclusive state only defers *reporting*, not learning — otherwise
    // the first thread's locks would never constrain the candidate set.
    if (!st.candidates.has_value()) {
      st.candidates = held;
    } else {
      std::set<std::uint64_t> intersection;
      std::set_intersection(st.candidates->begin(), st.candidates->end(), held.begin(),
                            held.end(),
                            std::inserter(intersection, intersection.begin()));
      *st.candidates = std::move(intersection);
    }

    if (st.state == State::kSharedModified && st.candidates.has_value() &&
        st.candidates->empty() && !st.reported) {
      st.reported = true;
      result.warnings.push_back({{event.home, event.area}, event.id, event.rank});
      result.flagged_areas.insert({event.home, event.area});
    }
  }
  return result;
}

}  // namespace dsmr::baseline
