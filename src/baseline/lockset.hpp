// Eraser-style lockset detection, adapted to the DSM model.
//
// The paper's related work (§II) situates its clock-based scheme among
// existing race detectors; the classic alternative family is lockset
// analysis (Savage et al., "Eraser"). This baseline runs the Eraser state
// machine over the recorded access events, using the NIC area locks each
// initiator held at issue time.
//
// The comparison the benches draw out (bench_precision):
//  * lockset flags *locking-discipline* violations: it reports races that a
//    happens-before detector misses when a lucky schedule ordered them, but
//    it also flags correctly synchronized programs that order accesses with
//    messages/barriers instead of locks (false positives by HB standards);
//  * the paper's vector-clock scheme reports only genuine concurrency, but
//    only against the latest access (bounded recall over pairs).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "analysis/ground_truth.hpp"
#include "core/event_log.hpp"
#include "util/types.hpp"

namespace dsmr::baseline {

struct LocksetWarning {
  analysis::AreaKey area;
  std::uint64_t event_id = 0;  ///< the access on which the lockset emptied.
  Rank rank = kInvalidRank;
};

struct LocksetResult {
  std::vector<LocksetWarning> warnings;
  std::set<analysis::AreaKey> flagged_areas;
};

class LocksetDetector {
 public:
  /// Runs the state machine over the log in recorded order.
  static LocksetResult analyze(const core::EventLog& log);

 private:
  enum class State { kVirgin, kExclusive, kShared, kSharedModified };

  struct AreaState {
    State state = State::kVirgin;
    Rank first_rank = kInvalidRank;
    /// Candidate lockset C(x); nullopt = "all locks" (not yet constrained).
    std::optional<std::set<std::uint64_t>> candidates;
    bool reported = false;
  };
};

}  // namespace dsmr::baseline
