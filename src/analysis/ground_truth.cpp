#include "analysis/ground_truth.hpp"

#include <algorithm>
#include <map>

#include "util/assert.hpp"

namespace dsmr::analysis {

namespace {

/// Events of one area in application order (unapplied events excluded).
using AreaEvents = std::vector<const core::AccessEvent*>;

std::map<AreaKey, AreaEvents> by_area_in_apply_order(const core::EventLog& log,
                                                     std::uint64_t* unapplied) {
  std::map<AreaKey, AreaEvents> groups;
  for (const auto& event : log.events()) {
    if (event.apply_seq == 0) {
      if (unapplied) ++*unapplied;
      continue;
    }
    groups[{event.home, event.area}].push_back(&event);
  }
  for (auto& [key, events] : groups) {
    (void)key;
    std::sort(events.begin(), events.end(),
              [](const core::AccessEvent* a, const core::AccessEvent* b) {
                return a->apply_seq < b->apply_seq;
              });
  }
  return groups;
}

bool conflicting(const core::AccessEvent& a, const core::AccessEvent& b) {
  return a.kind == core::AccessKind::kWrite || b.kind == core::AccessKind::kWrite;
}

/// race(a, b) for a applied before b — see the header.
bool races(const core::AccessEvent& a, const core::AccessEvent& b) {
  return a.rank != b.rank && !a.apply_clock.dominated_by(b.issue_clock);
}

}  // namespace

GroundTruth compute_ground_truth(const core::EventLog& log) {
  GroundTruth truth;
  const auto groups = by_area_in_apply_order(log, &truth.unapplied_events);
  for (const auto& [key, events] : groups) {
    for (std::size_t i = 0; i < events.size(); ++i) {
      for (std::size_t j = i + 1; j < events.size(); ++j) {
        const auto& a = *events[i];
        const auto& b = *events[j];
        if (!conflicting(a, b) || a.rank == b.rank) continue;
        ++truth.conflicting_pairs;
        if (races(a, b)) {
          truth.pairs.insert({std::min(a.id, b.id), std::max(a.id, b.id)});
          truth.racy_areas.insert(key);
        } else {
          ++truth.ordered_pairs;
        }
      }
    }
  }
  return truth;
}

std::vector<TruncationPoint> truncation_sweep(const core::EventLog& log,
                                              std::size_t nprocs) {
  const auto groups = by_area_in_apply_order(log, nullptr);
  std::vector<TruncationPoint> sweep;
  for (std::size_t k = 1; k <= nprocs; ++k) {
    TruncationPoint point;
    point.k = k;
    for (const auto& [key, events] : groups) {
      (void)key;
      for (std::size_t i = 0; i < events.size(); ++i) {
        for (std::size_t j = i + 1; j < events.size(); ++j) {
          const auto& a = *events[i];
          const auto& b = *events[j];
          if (!conflicting(a, b) || a.rank == b.rank) continue;
          if (!races(a, b)) continue;
          // A genuine race: still visible with width-k clocks?
          if (!a.apply_clock.truncated(k).dominated_by(b.issue_clock.truncated(k))) {
            ++point.detected;
          } else {
            ++point.missed;
          }
        }
      }
    }
    sweep.push_back(point);
  }
  return sweep;
}

ReplayResult replay_online(const core::EventLog& log, core::DetectorMode mode,
                           bool with_oracle) {
  ReplayResult result;
  const auto groups = by_area_in_apply_order(log, nullptr);
  for (const auto& [key, events] : groups) {
    clocks::VectorClock v, w;
    if (!events.empty()) {
      v = clocks::VectorClock(events.front()->issue_clock.size());
      w = v;
    }
    std::uint64_t last_access = 0, last_write = 0;
    Rank last_access_rank = kInvalidRank, last_write_rank = kInvalidRank;
    for (const auto* event : events) {
      // The stored clocks are home-NIC apply clocks — event clocks of the
      // area's home rank — so the replay rides the same epoch fast path as
      // the live detector (unless the caller asked for the oracle).
      const core::StoredClocks stored{v, w, last_access_rank, last_write_rank,
                                      clocks::Epoch::of_event(key.first, v),
                                      clocks::Epoch::of_event(key.first, w)};
      const auto verdict =
          with_oracle
              ? core::check_access_oracle(mode, event->kind, event->rank,
                                          event->issue_clock, stored)
              : core::check_access(mode, event->kind, event->rank,
                                   event->issue_clock, stored);
      if (verdict.race) {
        result.flagged_events.insert(event->id);
        const std::uint64_t prior = verdict.against == core::ComparedAgainst::kW
                                        ? last_write
                                        : last_access;
        if (prior != 0) {
          result.pairs.insert({std::min(prior, event->id), std::max(prior, event->id)});
        }
      }
      // Mirror the home NIC's apply: store the post-event clock.
      v = event->apply_clock;
      last_access = event->id;
      last_access_rank = event->rank;
      if (event->kind == core::AccessKind::kWrite) {
        w = event->apply_clock;
        last_write = event->id;
        last_write_rank = event->rank;
      }
    }
  }
  return result;
}

std::set<RacePair> reported_pairs(const core::RaceLog& races) {
  std::set<RacePair> pairs;
  for (const auto& report : races.reports()) {
    if (report.prior_event_id == 0 || report.event_id == 0) continue;
    pairs.insert({std::min(report.prior_event_id, report.event_id),
                  std::max(report.prior_event_id, report.event_id)});
  }
  return pairs;
}

Accuracy evaluate(const core::EventLog& log, const core::RaceLog& races_log) {
  DSMR_REQUIRE(log.enabled(), "accuracy evaluation requires the event log enabled");
  return evaluate(compute_ground_truth(log), races_log);
}

Accuracy evaluate(const GroundTruth& truth, const core::RaceLog& races_log) {
  Accuracy acc;
  acc.truth_pairs = truth.pairs.size();
  acc.truth_areas = truth.racy_areas.size();

  const std::set<RacePair> reported = reported_pairs(races_log);
  std::set<AreaKey> reported_areas;
  for (const auto& report : races_log.reports()) {
    reported_areas.insert({report.home, report.area});
  }
  acc.reported_pairs = reported.size();
  acc.reported_areas = reported_areas.size();
  for (const auto& pair : reported) {
    if (truth.pairs.count(pair) > 0) ++acc.true_reports;
  }
  std::uint64_t covered = 0;
  for (const auto& area : truth.racy_areas) {
    if (reported_areas.count(area) > 0) ++covered;
  }
  acc.true_report_areas = covered;
  return acc;
}

}  // namespace dsmr::analysis
