#include "analysis/conformance.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <system_error>
#include <set>
#include <sstream>
#include <utility>

#include "baseline/lockset.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"
#include "workload/workloads.hpp"

namespace dsmr::analysis {

const char* to_string(RaceExpectation e) {
  switch (e) {
    case RaceExpectation::kNever: return "never";
    case RaceExpectation::kSometimes: return "sometimes";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Scenario registry
// ---------------------------------------------------------------------------

namespace {

using runtime::World;

std::vector<Scenario> make_builtin_scenarios() {
  std::vector<Scenario> s;
  // Sizes are deliberately small: a conformance grid multiplies every
  // scenario by (seeds × perturbations), so each run must stay ~milliseconds.
  s.push_back({"master_worker",
               "workers put results into one master slot — the paper's §IV.D "
               "benign intentional race",
               RaceExpectation::kSometimes, 2, false, [](World& w) {
                 workload::MasterWorkerConfig c;
                 c.tasks_per_worker = 2;
                 workload::spawn_master_worker(w, c);
               }});
  s.push_back({"stencil", "barrier-synchronized 1-D Jacobi halo exchange",
               RaceExpectation::kNever, 2, false, [](World& w) {
                 workload::StencilConfig c;
                 c.cells_per_rank = 6;
                 c.iters = 3;
                 workload::spawn_stencil(w, c);
               }});
  s.push_back({"stencil_buggy", "stencil with every barrier dropped",
               RaceExpectation::kSometimes, 2, false, [](World& w) {
                 workload::StencilConfig c;
                 c.cells_per_rank = 6;
                 c.iters = 3;
                 c.buggy = true;
                 workload::spawn_stencil(w, c);
               }});
  s.push_back({"stencil_sparse",
               "stencil barrier-synchronized only every 2nd iteration — the "
               "race is schedule-dependent",
               RaceExpectation::kSometimes, 2, false, [](World& w) {
                 workload::StencilConfig c;
                 c.cells_per_rank = 6;
                 c.iters = 4;
                 c.barrier_period = 2;
                 workload::spawn_stencil(w, c);
               }});
  s.push_back({"histogram_locked",
               "remote read-modify-write on shared bins under NIC area locks",
               RaceExpectation::kNever, 1, false, [](World& w) {
                 workload::HistogramConfig c;
                 c.bins = 8;
                 c.increments_per_rank = 6;
                 c.locked = true;
                 workload::spawn_histogram(w, c);
               }});
  s.push_back({"histogram",
               "unlocked remote read-modify-write — lost updates under "
               "contention, manifestation is schedule luck",
               RaceExpectation::kSometimes, 1, false, [](World& w) {
                 workload::HistogramConfig c;
                 c.bins = 8;
                 c.increments_per_rank = 6;
                 workload::spawn_histogram(w, c);
               }});
  s.push_back({"pipeline",
               "token ring ordered purely by signals and backpressure — "
               "race-free without barriers or locks",
               RaceExpectation::kNever, 2, false, [](World& w) {
                 workload::PipelineConfig c;
                 c.tokens = 6;
                 workload::spawn_pipeline(w, c);
               }});
  s.push_back({"pipeline_nobackpressure", "token ring with the credits removed",
               RaceExpectation::kSometimes, 2, false, [](World& w) {
                 workload::PipelineConfig c;
                 c.tokens = 6;
                 c.backpressure = false;
                 workload::spawn_pipeline(w, c);
               }});
  s.push_back({"pipeline_window2",
               "token ring whose producers run 2 tokens ahead of the acks — "
               "races only when the producer outpaces the consumer",
               RaceExpectation::kSometimes, 2, false, [](World& w) {
                 workload::PipelineConfig c;
                 c.tokens = 6;
                 c.ack_window = 2;
                 workload::spawn_pipeline(w, c);
               }});
  s.push_back({"random", "mixed puts/gets over shared areas, no synchronization",
               RaceExpectation::kSometimes, 1, false, [](World& w) {
                 workload::RandomConfig c;
                 c.areas = 4;
                 c.ops_per_proc = 12;
                 c.write_fraction = 0.5;
                 workload::spawn_random(w, c);
               }});
  s.push_back({"random_locked",
               "the same mixed ops with every access wrapped in its area lock",
               RaceExpectation::kNever, 1, false, [](World& w) {
                 workload::RandomConfig c;
                 c.areas = 4;
                 c.ops_per_proc = 12;
                 c.write_fraction = 0.5;
                 c.lock_fraction = 1.0;
                 workload::spawn_random(w, c);
               }});
  return s;
}

}  // namespace

const std::vector<Scenario>& builtin_scenarios() {
  static const std::vector<Scenario> scenarios = make_builtin_scenarios();
  return scenarios;
}

const Scenario* find_scenario(const std::string& name) {
  for (const auto& scenario : builtin_scenarios()) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Per-run differential checks
// ---------------------------------------------------------------------------

namespace {

std::set<std::uint64_t> live_flagged(const core::RaceLog& races) {
  std::set<std::uint64_t> ids;
  for (const auto& r : races.reports()) {
    if (r.event_id != 0) ids.insert(r.event_id);
  }
  return ids;
}

std::set<std::uint64_t> writes_only(const core::EventLog& log,
                                    const std::set<std::uint64_t>& flagged) {
  std::set<std::uint64_t> writes;
  for (const auto id : flagged) {
    if (log.event(id).kind == core::AccessKind::kWrite) writes.insert(id);
  }
  return writes;
}

}  // namespace

RunVerdicts check_run(runtime::World& world, const runtime::RunReport& report) {
  RunVerdicts v;
  v.seed = world.config().seed;
  v.perturb = world.config().perturb;
  v.completed = report.completed;
  v.live_reports = report.race_count;
  // A deadlocked or log-disabled run has no applied clocks to replay; the
  // grid layer decides whether the deadlock itself is a failure.
  if (!report.completed || !world.events().enabled()) return v;

  const auto& log = world.events();
  const auto mode = world.config().mode;
  auto fail = [&v](const std::string& check, const std::string& detail) {
    v.failed_checks.push_back(check + ": " + detail);
  };

  const auto truth = compute_ground_truth(log);
  v.truth_pairs = truth.pairs.size();
  v.truth_areas = truth.racy_areas.size();

  // Invariant 1 — the epoch fast path is bit-identical to the full-vector-
  // clock oracle, in both detector modes, on this schedule's log.
  ReplayResult dual_fast, single_fast;
  for (const auto replay_mode :
       {core::DetectorMode::kDualClock, core::DetectorMode::kSingleClock}) {
    const auto fast = replay_online(log, replay_mode);
    const auto oracle = replay_online(log, replay_mode, /*with_oracle=*/true);
    if (fast.pairs != oracle.pairs || fast.flagged_events != oracle.flagged_events) {
      std::ostringstream detail;
      detail << "mode=" << core::to_string(replay_mode) << " fast flagged "
             << fast.flagged_events.size() << " vs oracle " << oracle.flagged_events.size();
      fail("fast-path-vs-oracle", detail.str());
    }
    if (replay_mode == mode) {
      v.fast_flagged = fast.flagged_events.size();
      v.oracle_flagged = oracle.flagged_events.size();
    }
    (replay_mode == core::DetectorMode::kDualClock ? dual_fast : single_fast) = fast;
  }
  v.dual_flagged = dual_fast.flagged_events.size();
  v.single_flagged = single_fast.flagged_events.size();

  if (mode != core::DetectorMode::kOff) {
    // Invariant 2 — the offline replay of the run's own mode reproduces the
    // live reports exactly (pairs and flagged accesses). The run's mode is
    // one of the two replays above; reuse it rather than replaying again.
    const auto& replay =
        mode == core::DetectorMode::kDualClock ? dual_fast : single_fast;
    if (replay.pairs != reported_pairs(world.races()) ||
        replay.flagged_events != live_flagged(world.races())) {
      std::ostringstream detail;
      detail << "live " << world.races().count() << " reports, replay flagged "
             << replay.flagged_events.size();
      fail("live-vs-replay", detail.str());
    }
  }

  if (mode == core::DetectorMode::kDualClock) {
    // Invariant 3 — the paper's structural accuracy guarantee: every
    // dual-clock report is a true race. (Area recall is tracked, not
    // checked: the online scheme compares only against the latest access,
    // so an unlucky apply order can hide a racy area entirely.)
    const auto accuracy = evaluate(truth, world.races());
    if (accuracy.precision() < 1.0) {
      std::ostringstream detail;
      detail << accuracy.true_reports << "/" << accuracy.reported_pairs << " reports true";
      fail("precision", detail.str());
    }
    v.area_recall = accuracy.area_recall();
  }

  // Invariant 5 — cross-mode agreement on writes: both modes compare writes
  // against V(x), so their write verdicts must be identical (reads genuinely
  // differ in both directions, §IV.D — not checked).
  if (writes_only(log, dual_fast.flagged_events) !=
      writes_only(log, single_fast.flagged_events)) {
    fail("cross-mode-writes", "dual and single clock disagree on a write verdict");
  }

  // Measured comparison (not an invariant): the Eraser-style lockset
  // baseline vs ground truth. Divergence is expected on message-ordered
  // programs; the grid layer tallies it.
  const auto lockset = baseline::LocksetDetector::analyze(log);
  v.lockset_warnings = lockset.warnings.size();
  for (const auto& area : truth.racy_areas) {
    if (lockset.flagged_areas.count(area) == 0) {
      v.lockset_covers_truth = false;
      break;
    }
  }
  return v;
}

// ---------------------------------------------------------------------------
// The grid
// ---------------------------------------------------------------------------

namespace {

/// Deterministic, filesystem-safe name for one schedule's trace files.
std::string schedule_stem(const std::string& scenario, std::uint64_t seed,
                          const sim::PerturbConfig& perturb) {
  std::ostringstream out;
  out << scenario << "-seed" << seed;
  if (perturb.enabled()) {
    out << "-skew" << perturb.min_skew_ns << "-" << perturb.max_skew_ns << "-salt"
        << perturb.salt;
  }
  return out.str();
}

}  // namespace

std::string Divergence::describe() const {
  std::ostringstream out;
  out << scenario << " seed=" << seed << " perturb=" << perturb.to_string() << " — "
      << check;
  if (!detail.empty()) out << " (" << detail << ")";
  if (!trace_jsonl.empty()) out << " [trace: " << trace_jsonl << "]";
  return out.str();
}

ConformanceReport run_conformance(const Scenario& scenario,
                                  const ConformanceOptions& options) {
  DSMR_REQUIRE(options.seeds > 0, "conformance grid needs at least one seed");
  DSMR_REQUIRE(!options.perturbations.empty(),
               "conformance grid needs at least one perturbation variant");
  DSMR_REQUIRE(options.base.nprocs >= scenario.min_ranks,
               "scenario '" << scenario.name << "' needs ≥ " << scenario.min_ranks
                            << " ranks, got " << options.base.nprocs);

  const std::uint64_t variants = options.perturbations.size();
  const std::uint64_t total = options.seeds * variants;
  DSMR_REQUIRE(total / variants == options.seeds,
               "conformance grid size overflows: " << options.seeds << " seeds × "
                                                   << variants << " variants");

  // Fan out: one World per (seed, perturbation), each job writing its
  // pre-assigned slot so aggregation order never depends on thread timing.
  std::vector<RunVerdicts> runs(total);
  util::parallel_for(total, options.threads, [&](std::uint64_t index) {
    runtime::WorldConfig config = options.base;
    config.seed = options.first_seed + index / variants;
    config.perturb = options.perturbations[index % variants];
    runtime::World world(config);
    scenario.spawn(world);
    const auto report = world.run();
    runs[index] = check_run(world, report);
  });

  ConformanceReport summary;
  summary.scenario = scenario.name;
  summary.expect = scenario.expect;
  summary.runs = std::move(runs);

  auto diverge = [&summary, &scenario](const RunVerdicts& run, std::string check,
                                       std::string detail) {
    summary.disagreements.push_back(Divergence{scenario.name, run.seed, run.perturb,
                                               std::move(check), std::move(detail), "", ""});
  };

  for (const auto& run : summary.runs) {
    if (run.live_reports > 0) ++summary.runs_with_reports;
    if (run.truth_pairs > 0) ++summary.runs_with_truth;
    if (!run.completed) {
      ++summary.incomplete_runs;
      if (!scenario.may_deadlock) diverge(run, "unexpected-deadlock", "");
      continue;
    }
    for (const auto& check : run.failed_checks) {
      // failed_checks entries are "name: detail"; split them so the JSON
      // artifact's check field is a stable name like the grid-level checks.
      const auto colon = check.find(": ");
      if (colon == std::string::npos) {
        diverge(run, check, "");
      } else {
        diverge(run, check.substr(0, colon), check.substr(colon + 2));
      }
    }
    if (scenario.expect == RaceExpectation::kNever &&
        (run.live_reports > 0 || run.truth_pairs > 0)) {
      std::ostringstream detail;
      detail << run.live_reports << " reports, " << run.truth_pairs
             << " truth pairs in a race-free scenario";
      diverge(run, "race-in-clean-scenario", detail.str());
    }
    if (!run.lockset_covers_truth) ++summary.lockset_divergences;
    summary.min_area_recall = std::min(summary.min_area_recall, run.area_recall);
  }

  // Every disagreement gets a deterministic repro trace: re-run the exact
  // (seed, perturbation) serially with a message recorder attached and
  // export JSONL + Chrome trace.
  if (!options.trace_dir.empty() && !summary.disagreements.empty()) {
    // The repro artifact must exist exactly when a disagreement does:
    // create the directory and fail loudly on any write error.
    std::error_code ec;
    std::filesystem::create_directories(options.trace_dir, ec);
    DSMR_REQUIRE(!ec, "cannot create trace dir " << options.trace_dir << ": "
                                                 << ec.message());
    std::map<std::pair<std::uint64_t, std::string>, std::pair<std::string, std::string>>
        exported;
    for (auto& divergence : summary.disagreements) {
      const auto key = std::make_pair(divergence.seed, divergence.perturb.to_string());
      auto it = exported.find(key);
      if (it == exported.end()) {
        runtime::WorldConfig config = options.base;
        config.seed = divergence.seed;
        config.perturb = divergence.perturb;
        runtime::World world(config);
        trace::MessageRecorder recorder(world.fabric());
        scenario.spawn(world);
        world.run();

        const std::string stem = options.trace_dir + "/" +
                                 schedule_stem(scenario.name, divergence.seed,
                                               divergence.perturb);
        const std::string jsonl_path = stem + ".jsonl";
        const std::string chrome_path = stem + ".trace.json";
        std::ofstream jsonl(jsonl_path);
        trace::write_jsonl(jsonl, world.events(), world.races());
        std::ofstream chrome(chrome_path);
        chrome << trace::to_chrome_trace(world.events(), world.races(),
                                         recorder.records());
        DSMR_REQUIRE(jsonl.good() && chrome.good(),
                     "failed writing disagreement trace " << stem << ".*");
        it = exported.emplace(key, std::make_pair(jsonl_path, chrome_path)).first;
      }
      divergence.trace_jsonl = it->second.first;
      divergence.trace_chrome = it->second.second;
    }
  }
  return summary;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

std::string ConformanceReport::render() const {
  std::ostringstream out;
  out << scenario << " (expect " << to_string(expect) << "): " << runs.size()
      << " schedules, " << runs_with_reports << " with reports ("
      << static_cast<int>(manifestation_rate() * 100.0) << "%), " << runs_with_truth
      << " with true races, " << incomplete_runs << " deadlocked, "
      << lockset_divergences << " lockset divergences, min area recall "
      << min_area_recall << ", " << disagreements.size() << " disagreements";
  for (const auto& divergence : disagreements) {
    out << "\n  DISAGREEMENT " << divergence.describe();
  }
  return out.str();
}

void ConformanceReport::write_json(std::ostream& out) const {
  out << "{\"scenario\":\"" << trace::json_escape(scenario) << "\",\"expect\":\""
      << to_string(expect) << "\",\"schedules\":" << runs.size()
      << ",\"with_reports\":" << runs_with_reports << ",\"with_truth\":" << runs_with_truth
      << ",\"incomplete\":" << incomplete_runs
      << ",\"manifestation_rate\":" << manifestation_rate()
      << ",\"lockset_divergences\":" << lockset_divergences
      << ",\"min_area_recall\":" << min_area_recall << ",\"passed\":"
      << (passed() ? "true" : "false") << ",\"disagreements\":[";
  for (std::size_t i = 0; i < disagreements.size(); ++i) {
    const auto& d = disagreements[i];
    if (i > 0) out << ",";
    out << "{\"seed\":" << d.seed << ",\"perturb\":\"" << trace::json_escape(d.perturb.to_string())
        << "\",\"check\":\"" << trace::json_escape(d.check) << "\",\"detail\":\""
        << trace::json_escape(d.detail) << "\",\"trace_jsonl\":\""
        << trace::json_escape(d.trace_jsonl) << "\",\"trace_chrome\":\""
        << trace::json_escape(d.trace_chrome) << "\"}";
  }
  out << "],\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    if (i > 0) out << ",";
    out << "{\"seed\":" << r.seed << ",\"perturb\":\""
        << trace::json_escape(r.perturb.to_string()) << "\",\"completed\":"
        << (r.completed ? "true" : "false") << ",\"reports\":" << r.live_reports
        << ",\"truth_pairs\":" << r.truth_pairs << ",\"truth_areas\":" << r.truth_areas
        << ",\"fast_flagged\":" << r.fast_flagged
        << ",\"oracle_flagged\":" << r.oracle_flagged
        << ",\"dual_flagged\":" << r.dual_flagged
        << ",\"single_flagged\":" << r.single_flagged
        << ",\"lockset_warnings\":" << r.lockset_warnings << ",\"conformant\":"
        << (r.failed_checks.empty() ? "true" : "false") << "}";
  }
  out << "]}";
}

}  // namespace dsmr::analysis
