#include "analysis/conformance.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <system_error>
#include <set>
#include <sstream>
#include <utility>

#include "baseline/lockset.hpp"
#include "record/recorder.hpp"
#include "record/replay.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"
#include "workload/workloads.hpp"

namespace dsmr::analysis {

const char* to_string(RaceExpectation e) {
  switch (e) {
    case RaceExpectation::kNever: return "never";
    case RaceExpectation::kSometimes: return "sometimes";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Scenario registry
// ---------------------------------------------------------------------------

namespace {

using runtime::World;

std::vector<Scenario> make_builtin_scenarios() {
  std::vector<Scenario> s;
  // Sizes are deliberately small: a conformance grid multiplies every
  // scenario by (seeds × perturbations), so each run must stay ~milliseconds.
  s.push_back({"master_worker",
               "workers put results into one master slot — the paper's §IV.D "
               "benign intentional race",
               RaceExpectation::kSometimes, 2, false, [](World& w) {
                 workload::MasterWorkerConfig c;
                 c.tasks_per_worker = 2;
                 workload::spawn_master_worker(w, c);
               }});
  s.push_back({"stencil", "barrier-synchronized 1-D Jacobi halo exchange",
               RaceExpectation::kNever, 2, false, [](World& w) {
                 workload::StencilConfig c;
                 c.cells_per_rank = 6;
                 c.iters = 3;
                 workload::spawn_stencil(w, c);
               }});
  s.push_back({"stencil_buggy", "stencil with every barrier dropped",
               RaceExpectation::kSometimes, 2, false, [](World& w) {
                 workload::StencilConfig c;
                 c.cells_per_rank = 6;
                 c.iters = 3;
                 c.buggy = true;
                 workload::spawn_stencil(w, c);
               }});
  s.push_back({"stencil_sparse",
               "stencil barrier-synchronized only every 2nd iteration — the "
               "race is schedule-dependent",
               RaceExpectation::kSometimes, 2, false, [](World& w) {
                 workload::StencilConfig c;
                 c.cells_per_rank = 6;
                 c.iters = 4;
                 c.barrier_period = 2;
                 workload::spawn_stencil(w, c);
               }});
  s.push_back({"histogram_locked",
               "remote read-modify-write on shared bins under NIC area locks",
               RaceExpectation::kNever, 1, false, [](World& w) {
                 workload::HistogramConfig c;
                 c.bins = 8;
                 c.increments_per_rank = 6;
                 c.locked = true;
                 workload::spawn_histogram(w, c);
               }});
  s.push_back({"histogram",
               "unlocked remote read-modify-write — lost updates under "
               "contention, manifestation is schedule luck",
               RaceExpectation::kSometimes, 1, false, [](World& w) {
                 workload::HistogramConfig c;
                 c.bins = 8;
                 c.increments_per_rank = 6;
                 workload::spawn_histogram(w, c);
               }});
  s.push_back({"pipeline",
               "token ring ordered purely by signals and backpressure — "
               "race-free without barriers or locks",
               RaceExpectation::kNever, 2, false, [](World& w) {
                 workload::PipelineConfig c;
                 c.tokens = 6;
                 workload::spawn_pipeline(w, c);
               }});
  s.push_back({"pipeline_nobackpressure", "token ring with the credits removed",
               RaceExpectation::kSometimes, 2, false, [](World& w) {
                 workload::PipelineConfig c;
                 c.tokens = 6;
                 c.backpressure = false;
                 workload::spawn_pipeline(w, c);
               }});
  s.push_back({"pipeline_window2",
               "token ring whose producers run 2 tokens ahead of the acks — "
               "races only when the producer outpaces the consumer",
               RaceExpectation::kSometimes, 2, false, [](World& w) {
                 workload::PipelineConfig c;
                 c.tokens = 6;
                 c.ack_window = 2;
                 workload::spawn_pipeline(w, c);
               }});
  s.push_back({"random", "mixed puts/gets over shared areas, no synchronization",
               RaceExpectation::kSometimes, 1, false, [](World& w) {
                 workload::RandomConfig c;
                 c.areas = 4;
                 c.ops_per_proc = 12;
                 c.write_fraction = 0.5;
                 workload::spawn_random(w, c);
               }});
  s.push_back({"random_locked",
               "the same mixed ops with every access wrapped in its area lock",
               RaceExpectation::kNever, 1, false, [](World& w) {
                 workload::RandomConfig c;
                 c.areas = 4;
                 c.ops_per_proc = 12;
                 c.write_fraction = 0.5;
                 c.lock_fraction = 1.0;
                 workload::spawn_random(w, c);
               }});
  return s;
}

}  // namespace

const std::vector<Scenario>& builtin_scenarios() {
  static const std::vector<Scenario> scenarios = make_builtin_scenarios();
  return scenarios;
}

const Scenario* find_scenario(const std::string& name) {
  for (const auto& scenario : builtin_scenarios()) {
    if (scenario.name == name) return &scenario;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Per-run differential checks
// ---------------------------------------------------------------------------

namespace {

std::set<std::uint64_t> live_flagged(const core::RaceLog& races) {
  std::set<std::uint64_t> ids;
  for (const auto& r : races.reports()) {
    if (r.event_id != 0) ids.insert(r.event_id);
  }
  return ids;
}

std::set<std::uint64_t> writes_only(const core::EventLog& log,
                                    const std::set<std::uint64_t>& flagged) {
  std::set<std::uint64_t> writes;
  for (const auto id : flagged) {
    if (log.event(id).kind == core::AccessKind::kWrite) writes.insert(id);
  }
  return writes;
}

/// Logical event names ("r<rank>.<idx>") indexed by event id. Per-rank issue
/// order is program order, so these identities — unlike the raw ids, which
/// follow global allocation order — line up across fault variants of the
/// same (program, seed, perturbation).
std::vector<std::string> logical_names(const core::EventLog& log) {
  std::vector<std::string> names(log.size() + 1);
  std::map<Rank, std::uint64_t> per_rank;
  for (const auto& e : log.events()) {
    std::ostringstream name;
    name << "r" << e.rank << "." << per_rank[e.rank]++;
    names[e.id] = name.str();
  }
  return names;
}

/// Canonical text of a pair set under logical names. Canonicalized twice:
/// within each pair (a RacePair's (first, second) follows raw-id apply
/// order, so the same logical pair can arrive flipped between fault
/// variants) and across the set (the input is ordered by raw ids, whose
/// order over the same logical pairs likewise differs between variants).
std::string logical_pairs(const std::set<RacePair>& pairs,
                          const std::vector<std::string>& names) {
  std::vector<std::string> named;
  named.reserve(pairs.size());
  for (const auto& pair : pairs) {
    std::string a = names[pair.first];
    std::string b = names[pair.second];
    if (b < a) std::swap(a, b);
    named.push_back(a + "x" + b);
  }
  std::sort(named.begin(), named.end());
  std::ostringstream out;
  for (const auto& name : named) out << name << " ";
  return out.str();
}

/// The single-clock replay's pair set is deliberately NOT part of the
/// signature: §IV.D's merged clock makes its read verdicts approximate in
/// both directions, and which read pairs it flags depends on the *apply
/// order* at the home — which retransmission delay legitimately reshuffles.
/// (Empirically: a clean program's single-clock read–read false positive
/// appears or vanishes with a single retried message.) Its write verdicts
/// need no separate leg — the cross-mode-writes invariant pins them to the
/// dual set, which is signed.
std::string verdict_signature(const core::EventLog& log, const GroundTruth& truth,
                              const core::RaceLog& races, const ReplayResult& dual) {
  const auto names = logical_names(log);
  std::ostringstream out;
  out << "truth{" << logical_pairs(truth.pairs, names) << "} reported{"
      << logical_pairs(reported_pairs(races), names) << "} dual{"
      << logical_pairs(dual.pairs, names) << "} areas{";
  for (const auto& [home, area] : truth.racy_areas) out << home << ":" << area << " ";
  out << "}";
  return out.str();
}

}  // namespace

RunVerdicts check_run(runtime::World& world, const runtime::RunReport& report) {
  RunVerdicts v;
  v.seed = world.config().seed;
  v.perturb = world.config().perturb;
  v.fault = world.config().fault;
  v.completed = report.completed;
  v.hit_event_cap = report.hit_event_cap;
  v.diagnostic = report.diagnostic;
  v.live_reports = report.race_count;
  // A deadlocked or log-disabled run has no applied clocks to replay; the
  // grid layer decides whether the deadlock itself is a failure.
  if (!report.completed || !world.events().enabled()) return v;

  const auto& log = world.events();
  const auto mode = world.config().mode;
  auto fail = [&v](const std::string& check, const std::string& detail) {
    v.failed_checks.push_back(check + ": " + detail);
  };

  const auto truth = compute_ground_truth(log);
  v.truth_pairs = truth.pairs.size();
  v.truth_areas = truth.racy_areas.size();

  // Invariant 1 — the epoch fast path is bit-identical to the full-vector-
  // clock oracle, in both detector modes, on this schedule's log.
  ReplayResult dual_fast, single_fast;
  for (const auto replay_mode :
       {core::DetectorMode::kDualClock, core::DetectorMode::kSingleClock}) {
    const auto fast = replay_online(log, replay_mode);
    const auto oracle = replay_online(log, replay_mode, /*with_oracle=*/true);
    if (fast.pairs != oracle.pairs || fast.flagged_events != oracle.flagged_events) {
      std::ostringstream detail;
      detail << "mode=" << core::to_string(replay_mode) << " fast flagged "
             << fast.flagged_events.size() << " vs oracle " << oracle.flagged_events.size();
      fail("fast-path-vs-oracle", detail.str());
    }
    if (replay_mode == mode) {
      v.fast_flagged = fast.flagged_events.size();
      v.oracle_flagged = oracle.flagged_events.size();
    }
    (replay_mode == core::DetectorMode::kDualClock ? dual_fast : single_fast) = fast;
  }
  v.dual_flagged = dual_fast.flagged_events.size();
  v.single_flagged = single_fast.flagged_events.size();

  if (mode != core::DetectorMode::kOff) {
    // Invariant 2 — the offline replay of the run's own mode reproduces the
    // live reports exactly (pairs and flagged accesses). The run's mode is
    // one of the two replays above; reuse it rather than replaying again.
    const auto& replay =
        mode == core::DetectorMode::kDualClock ? dual_fast : single_fast;
    if (replay.pairs != reported_pairs(world.races()) ||
        replay.flagged_events != live_flagged(world.races())) {
      std::ostringstream detail;
      detail << "live " << world.races().count() << " reports, replay flagged "
             << replay.flagged_events.size();
      fail("live-vs-replay", detail.str());
    }
  }

  if (mode == core::DetectorMode::kDualClock) {
    // Invariant 3 — the paper's structural accuracy guarantee: every
    // dual-clock report is a true race. (Area recall is tracked, not
    // checked: the online scheme compares only against the latest access,
    // so an unlucky apply order can hide a racy area entirely.)
    const auto accuracy = evaluate(truth, world.races());
    if (accuracy.precision() < 1.0) {
      std::ostringstream detail;
      detail << accuracy.true_reports << "/" << accuracy.reported_pairs << " reports true";
      fail("precision", detail.str());
    }
    v.area_recall = accuracy.area_recall();
  }

  // Invariant 5 — cross-mode agreement on writes: both modes compare writes
  // against V(x), so their write verdicts must be identical (reads genuinely
  // differ in both directions, §IV.D — not checked).
  if (writes_only(log, dual_fast.flagged_events) !=
      writes_only(log, single_fast.flagged_events)) {
    fail("cross-mode-writes", "dual and single clock disagree on a write verdict");
  }

  // Measured comparison (not an invariant): the Eraser-style lockset
  // baseline vs ground truth. Divergence is expected on message-ordered
  // programs; the grid layer tallies it.
  const auto lockset = baseline::LocksetDetector::analyze(log);
  v.lockset_warnings = lockset.warnings.size();
  for (const auto& area : truth.racy_areas) {
    if (lockset.flagged_areas.count(area) == 0) {
      v.lockset_covers_truth = false;
      break;
    }
  }

  v.signature = verdict_signature(log, truth, world.races(), dual_fast);
  return v;
}

// ---------------------------------------------------------------------------
// The grid
// ---------------------------------------------------------------------------

namespace {

/// Deterministic, filesystem-safe name for one schedule's trace files.
std::string schedule_stem(const std::string& scenario, std::uint64_t seed,
                          const sim::PerturbConfig& perturb,
                          const net::FaultPlan& fault) {
  std::ostringstream out;
  out << scenario << "-seed" << seed;
  if (perturb.enabled()) {
    out << "-skew" << perturb.min_skew_ns << "-" << perturb.max_skew_ns << "-salt"
        << perturb.salt;
  }
  if (!(fault == net::FaultPlan{})) {
    out << "-fault";
    for (const char c : fault.to_string()) {
      out << (std::isalnum(static_cast<unsigned char>(c)) ? c : '-');
    }
  }
  return out.str();
}

}  // namespace

std::string Divergence::describe() const {
  std::ostringstream out;
  out << scenario << " seed=" << seed << " perturb=" << perturb.to_string();
  if (!(fault == net::FaultPlan{})) out << " fault=\"" << fault.to_string() << "\"";
  out << " — " << check;
  if (!detail.empty()) out << " (" << detail << ")";
  if (!trace_jsonl.empty()) out << " [trace: " << trace_jsonl << "]";
  if (!witness.empty()) out << " [witness: " << witness << "]";
  return out.str();
}

ConformanceReport run_conformance(const Scenario& scenario,
                                  const ConformanceOptions& options) {
  DSMR_REQUIRE(options.seeds > 0, "conformance grid needs at least one seed");
  DSMR_REQUIRE(!options.perturbations.empty(),
               "conformance grid needs at least one perturbation variant");
  DSMR_REQUIRE(options.base.nprocs >= scenario.min_ranks,
               "scenario '" << scenario.name << "' needs ≥ " << scenario.min_ranks
                            << " ranks, got " << options.base.nprocs);

  // Plan index 0 is always the fault-free base; fault variants follow
  // plan-minor so every base run directly precedes the runs compared to it.
  std::vector<net::FaultPlan> plans(1);
  for (const auto& plan : options.fault_plans) {
    DSMR_REQUIRE(plan.wire_enabled(), "conformance fault plan '" << plan.to_string()
                                                                 << "' injects nothing");
    plans.push_back(plan);
  }
  const std::uint64_t nplans = plans.size();
  const std::uint64_t variants = options.perturbations.size();
  const std::uint64_t total = options.seeds * variants * nplans;
  DSMR_REQUIRE(total / (variants * nplans) == options.seeds,
               "conformance grid size overflows: " << options.seeds << " seeds × "
                                                   << variants << " variants × "
                                                   << nplans << " plans");

  // Fan out: one World per (seed, perturbation, plan), each job writing its
  // pre-assigned slot so aggregation order never depends on thread timing.
  std::vector<RunVerdicts> runs(total);
  std::atomic<std::uint64_t> record_replay_checked{0};
  util::parallel_for(total, options.threads, [&](std::uint64_t index) {
    runtime::WorldConfig config = options.base;
    const std::uint64_t point = index / nplans;
    config.seed = options.first_seed + point / variants;
    config.perturb = options.perturbations[point % variants];
    config.fault = plans[index % nplans];
    runtime::World world(config);
    // Invariant 6 — record→replay: the ordering log this run emits, taken
    // through the full serialize→parse→fold pipeline, must reproduce the
    // live verdict signature on this exact coordinate.
    const bool record =
        options.record_replay_check &&
        (config.mode == core::DetectorMode::kOff ||
         config.transport == core::Transport::kHomeSide);
    std::optional<record::Recorder> recorder;
    if (record) {
      recorder.emplace(static_cast<std::uint32_t>(config.nprocs),
                       record::Backend::kSim, config.mode,
                       config.lock_clock_handoff, config.acked_puts);
      world.set_recorder(&*recorder);
    }
    scenario.spawn(world);
    const auto report = world.run();
    runs[index] = check_run(world, report);
    if (record) {
      recorder->finish(world.races().reports(), report.completed,
                       report.stuck_ranks);
      const std::string mismatch =
          record::check_record_replay_bytes(recorder->log().serialize());
      if (!mismatch.empty()) {
        runs[index].failed_checks.push_back("record-replay: " + mismatch);
      }
      record_replay_checked.fetch_add(1, std::memory_order_relaxed);
    }
  });

  ConformanceReport summary;
  summary.scenario = scenario.name;
  summary.expect = scenario.expect;
  summary.runs = std::move(runs);
  summary.base_schedules = options.seeds * variants;
  summary.record_replay_checked = record_replay_checked.load();

  auto diverge = [&summary, &scenario](const RunVerdicts& run, std::string check,
                                       std::string detail) {
    summary.disagreements.push_back(Divergence{scenario.name, run.seed, run.perturb,
                                               run.fault, std::move(check),
                                               std::move(detail), "", ""});
  };
  auto split_failed_checks = [&diverge](const RunVerdicts& run) {
    for (const auto& check : run.failed_checks) {
      // failed_checks entries are "name: detail"; split them so the JSON
      // artifact's check field is a stable name like the grid-level checks.
      const auto colon = check.find(": ");
      if (colon == std::string::npos) {
        diverge(run, check, "");
      } else {
        diverge(run, check.substr(0, colon), check.substr(colon + 2));
      }
    }
  };

  for (std::uint64_t index = 0; index < summary.runs.size(); ++index) {
    const auto& run = summary.runs[index];
    if (index % nplans != 0) continue;  // fault runs handled below.
    if (run.live_reports > 0) ++summary.runs_with_reports;
    if (run.truth_pairs > 0) ++summary.runs_with_truth;
    if (!run.completed) {
      ++summary.incomplete_runs;
      if (!run.diagnostic.empty()) ++summary.watchdog_runs;
      if (!scenario.may_deadlock) diverge(run, "unexpected-deadlock", run.diagnostic);
      // check_run bails early on incomplete runs, but the record→replay
      // invariant still applies (the footer carries the stuck verdict).
      split_failed_checks(run);
      continue;
    }
    split_failed_checks(run);
    if (scenario.expect == RaceExpectation::kNever &&
        (run.live_reports > 0 || run.truth_pairs > 0)) {
      std::ostringstream detail;
      detail << run.live_reports << " reports, " << run.truth_pairs
             << " truth pairs in a race-free scenario";
      diverge(run, "race-in-clean-scenario", detail.str());
    }
    if (!run.lockset_covers_truth) ++summary.lockset_divergences;
    summary.min_area_recall = std::min(summary.min_area_recall, run.area_recall);
  }

  // The fault invariants: each fault run against its own base.
  for (std::uint64_t index = 0; index < summary.runs.size(); ++index) {
    if (index % nplans == 0) continue;
    const auto& run = summary.runs[index];
    const auto& base = summary.runs[index - index % nplans];
    ++summary.fault_runs;
    if (!run.diagnostic.empty()) ++summary.watchdog_runs;

    if (run.hit_event_cap) {
      // Neither plan class may spin forever: recoverable plans must deliver,
      // unrecoverable plans must give up (retry cap) and drain.
      diverge(run, "fault-hang", "event cap hit under fault plan");
      continue;
    }
    if (run.fault.recoverable()) {
      if (!run.completed) {
        if (base.completed) diverge(run, "fault-not-recovered", run.diagnostic);
        // Base deadlocked too (may_deadlock scenario): nothing to hold the
        // fault run to — but the record→replay invariant still applies.
        split_failed_checks(run);
        continue;
      }
      split_failed_checks(run);
      const bool transparent = base.completed && run.signature == base.signature;
      if (transparent) ++summary.fault_transparent_runs;
      if (options.expect_fault_transparency &&
          scenario.expect == RaceExpectation::kNever && base.completed &&
          !transparent) {
        std::ostringstream detail;
        detail << "verdicts differ from fault-free run: base " << base.live_reports
               << " reports/" << base.truth_pairs << " truth pairs, faulted "
               << run.live_reports << " reports/" << run.truth_pairs
               << " truth pairs";
        diverge(run, "fault-transparency", detail.str());
      }
    } else {
      if (run.completed) {
        // The fault never bit (e.g. crash scheduled past quiescence) — fine,
        // but the verdicts must then be the fault-free ones.
        split_failed_checks(run);
        if (base.completed && run.signature != base.signature) {
          diverge(run, "unclean-failure",
                  "unrecoverable plan completed with different verdicts");
        }
      } else {
        if (run.diagnostic.empty()) {
          diverge(run, "silent-non-quiescence",
                  "unrecoverable plan stopped without a watchdog diagnostic");
        }
        split_failed_checks(run);
      }
    }
  }

  // Every disagreement gets a deterministic repro trace: re-run the exact
  // (seed, perturbation) serially with a message recorder attached and
  // export JSONL + Chrome trace.
  if (!options.trace_dir.empty() && !summary.disagreements.empty()) {
    // The repro artifact must exist exactly when a disagreement does:
    // create the directory and fail loudly on any write error.
    std::error_code ec;
    std::filesystem::create_directories(options.trace_dir, ec);
    DSMR_REQUIRE(!ec, "cannot create trace dir " << options.trace_dir << ": "
                                                 << ec.message());
    std::map<std::pair<std::uint64_t, std::string>, std::pair<std::string, std::string>>
        exported;
    for (auto& divergence : summary.disagreements) {
      const auto key = std::make_pair(
          divergence.seed,
          divergence.perturb.to_string() + "|" + divergence.fault.to_string());
      auto it = exported.find(key);
      if (it == exported.end()) {
        runtime::WorldConfig config = options.base;
        config.seed = divergence.seed;
        config.perturb = divergence.perturb;
        config.fault = divergence.fault;
        runtime::World world(config);
        trace::MessageRecorder recorder(world.fabric());
        scenario.spawn(world);
        world.run();

        const std::string stem = options.trace_dir + "/" +
                                 schedule_stem(scenario.name, divergence.seed,
                                               divergence.perturb, divergence.fault);
        const std::string jsonl_path = stem + ".jsonl";
        const std::string chrome_path = stem + ".trace.json";
        std::ofstream jsonl(jsonl_path);
        trace::write_jsonl(jsonl, world.events(), world.races());
        std::ofstream chrome(chrome_path);
        chrome << trace::to_chrome_trace(world.events(), world.races(),
                                         recorder.records());
        DSMR_REQUIRE(jsonl.good() && chrome.good(),
                     "failed writing disagreement trace " << stem << ".*");
        it = exported.emplace(key, std::make_pair(jsonl_path, chrome_path)).first;
      }
      divergence.trace_jsonl = it->second.first;
      divergence.trace_chrome = it->second.second;
    }
  }
  return summary;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

std::string ConformanceReport::render() const {
  std::ostringstream out;
  out << scenario << " (expect " << to_string(expect) << "): " << runs.size()
      << " schedules, " << runs_with_reports << " with reports ("
      << static_cast<int>(manifestation_rate() * 100.0) << "%), " << runs_with_truth
      << " with true races, " << incomplete_runs << " deadlocked, "
      << lockset_divergences << " lockset divergences, min area recall "
      << min_area_recall;
  if (fault_runs > 0) {
    out << ", " << fault_runs << " fault runs (" << fault_transparent_runs
        << " transparent, " << watchdog_runs << " watchdog)";
  }
  if (record_replay_checked > 0) {
    out << ", " << record_replay_checked << " record-replay checked";
  }
  out << ", " << disagreements.size() << " disagreements";
  for (const auto& divergence : disagreements) {
    out << "\n  DISAGREEMENT " << divergence.describe();
  }
  return out.str();
}

void ConformanceReport::write_json(std::ostream& out) const {
  out << "{\"scenario\":\"" << trace::json_escape(scenario) << "\",\"expect\":\""
      << to_string(expect) << "\",\"schedules\":" << runs.size()
      << ",\"with_reports\":" << runs_with_reports << ",\"with_truth\":" << runs_with_truth
      << ",\"incomplete\":" << incomplete_runs
      << ",\"manifestation_rate\":" << manifestation_rate()
      << ",\"lockset_divergences\":" << lockset_divergences
      << ",\"base_schedules\":" << base_schedules << ",\"fault_runs\":" << fault_runs
      << ",\"fault_transparent_runs\":" << fault_transparent_runs
      << ",\"watchdog_runs\":" << watchdog_runs
      << ",\"record_replay_checked\":" << record_replay_checked
      << ",\"min_area_recall\":" << min_area_recall << ",\"passed\":"
      << (passed() ? "true" : "false") << ",\"disagreements\":[";
  for (std::size_t i = 0; i < disagreements.size(); ++i) {
    const auto& d = disagreements[i];
    if (i > 0) out << ",";
    out << "{\"seed\":" << d.seed << ",\"perturb\":\"" << trace::json_escape(d.perturb.to_string())
        << "\",\"fault\":\"" << trace::json_escape(d.fault.to_string())
        << "\",\"check\":\"" << trace::json_escape(d.check) << "\",\"detail\":\""
        << trace::json_escape(d.detail) << "\",\"trace_jsonl\":\""
        << trace::json_escape(d.trace_jsonl) << "\",\"trace_chrome\":\""
        << trace::json_escape(d.trace_chrome) << "\"}";
  }
  out << "],\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    if (i > 0) out << ",";
    out << "{\"seed\":" << r.seed << ",\"perturb\":\""
        << trace::json_escape(r.perturb.to_string()) << "\",\"fault\":\""
        << trace::json_escape(r.fault.to_string()) << "\",\"completed\":"
        << (r.completed ? "true" : "false") << ",\"watchdog\":"
        << (r.diagnostic.empty() ? "false" : "true") << ",\"reports\":" << r.live_reports
        << ",\"truth_pairs\":" << r.truth_pairs << ",\"truth_areas\":" << r.truth_areas
        << ",\"fast_flagged\":" << r.fast_flagged
        << ",\"oracle_flagged\":" << r.oracle_flagged
        << ",\"dual_flagged\":" << r.dual_flagged
        << ",\"single_flagged\":" << r.single_flagged
        << ",\"lockset_warnings\":" << r.lockset_warnings << ",\"conformant\":"
        << (r.failed_checks.empty() ? "true" : "false") << "}";
  }
  out << "]}";
}

}  // namespace dsmr::analysis
