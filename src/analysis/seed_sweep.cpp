#include "analysis/seed_sweep.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace dsmr::analysis {

std::string SweepSummary::render() const {
  std::ostringstream out;
  out << outcomes.size() << " schedules: " << seeds_with_reports << " with reports ("
      << static_cast<int>(manifestation_rate() * 100.0) << "%), " << seeds_with_truth
      << " with true races, " << incomplete_runs << " deadlocked, min precision "
      << min_precision;
  if (first_racy_seed.has_value()) {
    out << "; replay with seed " << *first_racy_seed;
  }
  return out.str();
}

SweepSummary seed_sweep(const runtime::WorldConfig& base_config,
                        std::uint64_t first_seed, std::uint64_t count,
                        const WorkloadFn& workload) {
  DSMR_REQUIRE(count > 0, "seed sweep needs at least one seed");
  SweepSummary summary;
  for (std::uint64_t seed = first_seed; seed < first_seed + count; ++seed) {
    runtime::WorldConfig config = base_config;
    config.seed = seed;
    runtime::World world(config);
    workload(world);
    const auto report = world.run();

    SeedOutcome outcome;
    outcome.seed = seed;
    outcome.completed = report.completed;
    outcome.races_reported = report.race_count;
    if (!report.completed) ++summary.incomplete_runs;
    if (report.completed && world.events().enabled()) {
      const auto truth = compute_ground_truth(world.events());
      outcome.truth_pairs = truth.pairs.size();
      const auto accuracy = evaluate(world.events(), world.races());
      outcome.precision = accuracy.precision();
      outcome.area_recall = accuracy.area_recall();
      if (outcome.truth_pairs > 0) ++summary.seeds_with_truth;
    }
    if (outcome.races_reported > 0) {
      ++summary.seeds_with_reports;
      if (!summary.first_racy_seed.has_value()) summary.first_racy_seed = seed;
    }
    summary.min_precision = std::min(summary.min_precision, outcome.precision);
    summary.outcomes.push_back(outcome);
  }
  return summary;
}

}  // namespace dsmr::analysis
