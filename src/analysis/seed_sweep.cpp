#include "analysis/seed_sweep.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace dsmr::analysis {

std::string SweepSummary::render() const {
  std::ostringstream out;
  out << outcomes.size() << " schedules: " << seeds_with_reports << " with reports ("
      << static_cast<int>(manifestation_rate() * 100.0) << "%), " << seeds_with_truth
      << " with true races, " << incomplete_runs << " deadlocked, min precision "
      << min_precision;
  if (races_per_schedule.count() > 0 && races_per_schedule.max() > 0) {
    out << ", reports/schedule mean " << races_per_schedule.mean() << " max "
        << static_cast<std::uint64_t>(races_per_schedule.max());
  }
  if (first_racy_seed.has_value()) {
    out << "; replay with seed " << *first_racy_seed << " perturb "
        << first_racy_perturb.to_string();
  }
  return out.str();
}

SeedOutcome run_schedule(const runtime::WorldConfig& base_config, std::uint64_t seed,
                         const sim::PerturbConfig& perturb, const WorkloadFn& workload) {
  runtime::WorldConfig config = base_config;
  config.seed = seed;
  config.perturb = perturb;
  runtime::World world(config);
  workload(world);
  const auto report = world.run();

  SeedOutcome outcome;
  outcome.seed = seed;
  outcome.perturb = perturb;
  outcome.completed = report.completed;
  outcome.races_reported = report.race_count;
  outcome.end_time = report.end_time;
  outcome.engine_events = report.engine_events;
  if (report.completed && world.events().enabled()) {
    const auto truth = compute_ground_truth(world.events());
    outcome.truth_pairs = truth.pairs.size();
    const auto accuracy = evaluate(truth, world.races());
    outcome.precision = accuracy.precision();
    outcome.area_recall = accuracy.area_recall();
  }
  return outcome;
}

SweepSummary seed_sweep(const runtime::WorldConfig& base_config,
                        std::uint64_t first_seed, std::uint64_t count,
                        const WorkloadFn& workload, const SweepOptions& options) {
  DSMR_REQUIRE(count > 0, "seed sweep needs at least one seed");
  DSMR_REQUIRE(!options.perturbations.empty(),
               "seed sweep needs at least one perturbation variant");
  DSMR_REQUIRE(options.threads >= 1, "seed sweep needs at least one thread");

  const std::uint64_t variants = options.perturbations.size();
  const std::uint64_t total = count * variants;
  DSMR_REQUIRE(total / variants == count, "sweep size overflows: " << count << " seeds × "
                                                                   << variants
                                                                   << " variants");

  // Fan out: every (seed, perturbation) is one independent pure run writing
  // its pre-assigned slot; with threads == 1 this degenerates to the exact
  // serial loop (parallel_for runs inline).
  std::vector<SeedOutcome> outcomes(total);
  util::parallel_for(total, options.threads, [&](std::uint64_t index) {
    const std::uint64_t seed = first_seed + index / variants;
    const auto& perturb = options.perturbations[index % variants];
    outcomes[index] = run_schedule(base_config, seed, perturb, workload);
  });

  // Deterministic fold in schedule order, independent of completion order.
  SweepSummary summary;
  summary.outcomes = std::move(outcomes);
  for (const auto& outcome : summary.outcomes) {
    if (!outcome.completed) ++summary.incomplete_runs;
    if (outcome.truth_pairs > 0) ++summary.seeds_with_truth;
    if (outcome.races_reported > 0) {
      ++summary.seeds_with_reports;
      if (!summary.first_racy_seed.has_value()) {
        summary.first_racy_seed = outcome.seed;
        summary.first_racy_perturb = outcome.perturb;
      }
    }
    summary.min_precision = std::min(summary.min_precision, outcome.precision);
    summary.races_per_schedule.add(static_cast<double>(outcome.races_reported));
  }
  return summary;
}

SweepSummary seed_sweep(const runtime::WorldConfig& base_config,
                        std::uint64_t first_seed, std::uint64_t count,
                        const WorkloadFn& workload) {
  return seed_sweep(base_config, first_seed, count, workload, SweepOptions{});
}

}  // namespace dsmr::analysis
