// Differential conformance: every detector the repo ships, cross-checked on
// every explored schedule.
//
// The paper's claim is only as strong as the detector's agreement with its
// oracles, so this harness runs a workload across a (seed × perturbation)
// grid — in parallel, one World per schedule — and for each completed run
// cross-checks four independent verdict sources:
//
//  * the live detector (epoch fast path, as production runs it),
//  * the offline replay of the same mode (must reproduce the live reports),
//  * the full-vector-clock oracle replay (must agree with the fast path
//    bit-for-bit, in both detector modes),
//  * offline ground truth (every dual-clock report is a true race —
//    precision 1.0, the paper's structural guarantee), plus the cross-mode
//    write-verdict identity (dual and single clocks agree on every write,
//    §IV.D). Area recall is *tracked* but deliberately not an invariant:
//    the online scheme compares each access only against the area's latest
//    access, so a race hidden behind a later ordered access is missed — on
//    unlucky schedules an entire racy area can go unflagged (the
//    pipeline_window2 and sparse-barrier stencil scenarios exhibit this).
//
// Any violated invariant is a *disagreement*: a test failure carrying its
// reproducing (seed, perturbation) pair, and — when a trace directory is
// configured — an auto-exported JSONL + Chrome trace of the schedule.
//
// The Eraser-style lockset baseline is also run, but as a *measured
// comparison*, not an invariant: lockset flags locking-discipline
// violations, which by design disagrees with happens-before verdicts on
// message-ordered programs (false positives) and write-read races that
// never reach shared-modified state (false negatives). Divergences are
// counted and reported, never failures.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/seed_sweep.hpp"
#include "runtime/world.hpp"
#include "sim/perturb.hpp"

namespace dsmr::analysis {

/// What a scenario promises about races across *all* legal schedules.
enum class RaceExpectation {
  kNever,      ///< correctly synchronized: any report or truth pair is a failure.
  kSometimes,  ///< known-buggy or intentionally racy: manifestation is tracked.
};
const char* to_string(RaceExpectation e);

/// A named workload variant with its race expectation — the unit the
/// conformance grid iterates over.
struct Scenario {
  std::string name;
  std::string description;
  RaceExpectation expect = RaceExpectation::kNever;
  int min_ranks = 2;           ///< spawn precondition (e.g. master + worker).
  bool may_deadlock = false;   ///< none of the builtins; hook for user scenarios.
  WorkloadFn spawn;
};

/// All shipped workload variants: clean and buggy stencil/histogram/
/// pipeline/random/master_worker configurations.
const std::vector<Scenario>& builtin_scenarios();

/// Lookup by name; nullptr when unknown.
const Scenario* find_scenario(const std::string& name);

/// One schedule's verdicts from every source, plus any failed invariants.
struct RunVerdicts {
  std::uint64_t seed = 0;
  sim::PerturbConfig perturb{};
  bool completed = false;
  std::uint64_t live_reports = 0;      ///< production detector, during the run.
  std::uint64_t truth_pairs = 0;       ///< offline ground truth.
  std::uint64_t truth_areas = 0;
  std::uint64_t fast_flagged = 0;      ///< epoch fast-path replay, run's mode.
  std::uint64_t oracle_flagged = 0;    ///< full-VC oracle replay, run's mode.
  std::uint64_t dual_flagged = 0;      ///< fast-path replay, dual-clock mode.
  std::uint64_t single_flagged = 0;    ///< fast-path replay, single-clock mode.
  std::uint64_t lockset_warnings = 0;  ///< Eraser baseline (informational).
  bool lockset_covers_truth = true;    ///< truth racy areas ⊆ lockset flags.
  double area_recall = 1.0;            ///< tracked quality metric, not an invariant.
  /// Violated invariants ("check: detail"); empty = conformant.
  std::vector<std::string> failed_checks;
};

/// A conformance failure with its deterministic repro coordinate.
struct Divergence {
  std::string scenario;
  std::uint64_t seed = 0;
  sim::PerturbConfig perturb{};
  std::string check;        ///< which invariant broke.
  std::string detail;
  std::string trace_jsonl;  ///< exported trace paths ("" when export off).
  std::string trace_chrome;

  std::string describe() const;
};

struct ConformanceOptions {
  runtime::WorldConfig base;  ///< seed/perturb overridden per schedule.
  std::uint64_t first_seed = 1;
  std::uint64_t seeds = 16;
  int threads = 1;
  /// Perturbation variants per seed; keep the identity first so every seed
  /// also runs its base schedule.
  std::vector<sim::PerturbConfig> perturbations{sim::PerturbConfig{}};
  /// When non-empty, disagreement schedules are re-run serially and their
  /// JSONL + Chrome traces written here.
  std::string trace_dir;
};

struct ConformanceReport {
  std::string scenario;
  RaceExpectation expect = RaceExpectation::kNever;
  std::vector<RunVerdicts> runs;  ///< (seed-major, perturbation-minor) order.
  std::uint64_t runs_with_reports = 0;
  std::uint64_t runs_with_truth = 0;
  std::uint64_t incomplete_runs = 0;
  std::uint64_t lockset_divergences = 0;  ///< informational, never failures.
  double min_area_recall = 1.0;           ///< worst "was the datum flagged" score.
  std::vector<Divergence> disagreements;  ///< hard failures.

  bool passed() const { return disagreements.empty(); }
  double manifestation_rate() const {
    return runs.empty() ? 0.0
                        : static_cast<double>(runs_with_reports) /
                              static_cast<double>(runs.size());
  }

  std::string render() const;
  /// One JSON object (machine-readable CI artifact): totals, per-run
  /// outcomes, and disagreements with repro coordinates.
  void write_json(std::ostream& out) const;
};

/// Cross-checks one finished run (building block; exposed for tests).
/// `world` must have been run to completion of World::run already.
RunVerdicts check_run(runtime::World& world, const runtime::RunReport& report);

/// Runs the full (seed × perturbation) grid for one scenario on
/// `options.threads` workers and folds the report deterministically.
ConformanceReport run_conformance(const Scenario& scenario,
                                  const ConformanceOptions& options);

}  // namespace dsmr::analysis
