// Differential conformance: every detector the repo ships, cross-checked on
// every explored schedule.
//
// The paper's claim is only as strong as the detector's agreement with its
// oracles, so this harness runs a workload across a (seed × perturbation)
// grid — in parallel, one World per schedule — and for each completed run
// cross-checks four independent verdict sources:
//
//  * the live detector (epoch fast path, as production runs it),
//  * the offline replay of the same mode (must reproduce the live reports),
//  * the full-vector-clock oracle replay (must agree with the fast path
//    bit-for-bit, in both detector modes),
//  * offline ground truth (every dual-clock report is a true race —
//    precision 1.0, the paper's structural guarantee), plus the cross-mode
//    write-verdict identity (dual and single clocks agree on every write,
//    §IV.D). Area recall is *tracked* but deliberately not an invariant:
//    the online scheme compares each access only against the area's latest
//    access, so a race hidden behind a later ordered access is missed — on
//    unlucky schedules an entire racy area can go unflagged (the
//    pipeline_window2 and sparse-barrier stencil scenarios exhibit this).
//
// Any violated invariant is a *disagreement*: a test failure carrying its
// reproducing (seed, perturbation) pair, and — when a trace directory is
// configured — an auto-exported JSONL + Chrome trace of the schedule.
//
// The Eraser-style lockset baseline is also run, but as a *measured
// comparison*, not an invariant: lockset flags locking-discipline
// violations, which by design disagrees with happens-before verdicts on
// message-ordered programs (false positives) and write-read races that
// never reach shared-modified state (false negatives). Divergences are
// counted and reported, never failures.
//
// Fault axis (net/fault.hpp): when `ConformanceOptions::fault_plans` is
// non-empty the grid becomes (seed × perturbation × (base + plans)) and two
// robustness invariants join the differential checks:
//  * fault-transparency — a *recoverable* plan (bounded loss/dup/delay,
//    healing partitions, crash–restart) must leave the verdicts of a kNever
//    scenario bit-identical to the fault-free run of the same (seed,
//    perturbation): the reliable transport hides the fault. Verdicts are
//    compared by a logical signature keyed on (rank, per-rank event index),
//    since raw event-log ids shift when retries reshuffle global scheduling.
//    kSometimes scenarios are exempt: their manifestation is schedule luck,
//    which faults legitimately re-roll.
//  * clean-failure — an *unrecoverable* plan (permanent crash or partition)
//    must end in the quiescence watchdog's structured diagnostic: never a
//    hang (event-cap hit), never a silent stop, and if the run does manage
//    to complete, never verdicts that differ from the fault-free schedule.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/seed_sweep.hpp"
#include "net/fault.hpp"
#include "runtime/world.hpp"
#include "sim/perturb.hpp"

namespace dsmr::analysis {

/// What a scenario promises about races across *all* legal schedules.
enum class RaceExpectation {
  kNever,      ///< correctly synchronized: any report or truth pair is a failure.
  kSometimes,  ///< known-buggy or intentionally racy: manifestation is tracked.
};
const char* to_string(RaceExpectation e);

/// A named workload variant with its race expectation — the unit the
/// conformance grid iterates over.
struct Scenario {
  std::string name;
  std::string description;
  RaceExpectation expect = RaceExpectation::kNever;
  int min_ranks = 2;           ///< spawn precondition (e.g. master + worker).
  bool may_deadlock = false;   ///< none of the builtins; hook for user scenarios.
  WorkloadFn spawn;
};

/// All shipped workload variants: clean and buggy stencil/histogram/
/// pipeline/random/master_worker configurations.
const std::vector<Scenario>& builtin_scenarios();

/// Lookup by name; nullptr when unknown.
const Scenario* find_scenario(const std::string& name);

/// One schedule's verdicts from every source, plus any failed invariants.
struct RunVerdicts {
  std::uint64_t seed = 0;
  sim::PerturbConfig perturb{};
  net::FaultPlan fault{};  ///< this run's wire-fault plan ("off" on base runs).
  bool completed = false;
  bool hit_event_cap = false;  ///< stopped by max_events — a hang, not a deadlock.
  /// The quiescence watchdog's dump; non-empty exactly when non-quiescent.
  std::string diagnostic;
  /// Schedule-comparable verdict fingerprint: ground-truth pairs, live
  /// reported pairs, and the dual-clock replay pair set, all keyed by
  /// logical (rank, per-rank issue index) event identities plus the truth
  /// areas. Raw event-log ids depend on global allocation order, which
  /// faults and retries reshuffle; per-rank issue order is program order,
  /// so logical ids line up across fault variants of one (program, seed,
  /// perturbation). The single-clock replay's pair set is deliberately
  /// excluded: its read verdicts are approximate in both directions
  /// (§IV.D) and genuinely timing-dependent, so they are not schedule-
  /// invariant even on clean programs; its write verdicts are already
  /// pinned to the dual set by the cross-mode-writes invariant. Empty for
  /// incomplete runs. Fault-transparency compares these.
  std::string signature;
  std::uint64_t live_reports = 0;      ///< production detector, during the run.
  std::uint64_t truth_pairs = 0;       ///< offline ground truth.
  std::uint64_t truth_areas = 0;
  std::uint64_t fast_flagged = 0;      ///< epoch fast-path replay, run's mode.
  std::uint64_t oracle_flagged = 0;    ///< full-VC oracle replay, run's mode.
  std::uint64_t dual_flagged = 0;      ///< fast-path replay, dual-clock mode.
  std::uint64_t single_flagged = 0;    ///< fast-path replay, single-clock mode.
  std::uint64_t lockset_warnings = 0;  ///< Eraser baseline (informational).
  bool lockset_covers_truth = true;    ///< truth racy areas ⊆ lockset flags.
  double area_recall = 1.0;            ///< tracked quality metric, not an invariant.
  /// Violated invariants ("check: detail"); empty = conformant.
  std::vector<std::string> failed_checks;
};

/// A conformance failure with its deterministic repro coordinate.
struct Divergence {
  std::string scenario;
  std::uint64_t seed = 0;
  sim::PerturbConfig perturb{};
  net::FaultPlan fault{};   ///< the run's fault plan ("off" on base runs).
  std::string check;        ///< which invariant broke.
  std::string detail;
  std::string trace_jsonl;  ///< exported trace paths ("" when export off).
  std::string trace_chrome;
  /// Replayable witness log path, for exhaustive-exploration failures whose
  /// racy interleaving was exported ("" otherwise).
  std::string witness;

  std::string describe() const;
};

struct ConformanceOptions {
  runtime::WorldConfig base;  ///< seed/perturb overridden per schedule.
  std::uint64_t first_seed = 1;
  std::uint64_t seeds = 16;
  int threads = 1;
  /// Perturbation variants per seed; keep the identity first so every seed
  /// also runs its base schedule.
  std::vector<sim::PerturbConfig> perturbations{sim::PerturbConfig{}};
  /// When non-empty, disagreement schedules are re-run serially and their
  /// JSONL + Chrome traces written here.
  std::string trace_dir;
  /// Fault plans to run *in addition to* the fault-free base of every
  /// (seed, perturbation) point; the grid is plan-minor, so each base run
  /// directly precedes its fault variants in `runs`. Plans must be
  /// wire-enabled (net::FaultPlan::wire_enabled).
  std::vector<net::FaultPlan> fault_plans;
  /// Enforce the fault-transparency invariant on recoverable plans (kNever
  /// scenarios only — kSometimes manifestation is schedule luck that faults
  /// legitimately re-roll). The clean-failure invariant on unrecoverable
  /// plans is always enforced.
  bool expect_fault_transparency = true;
  /// Attach an ordering recorder (record/recorder.hpp) to every grid run and
  /// require that the serialized log, parsed back and folded offline through
  /// core::check_access, reproduces the live verdict signature exactly — on
  /// every (seed, perturbation, fault plan) coordinate. Skipped silently on
  /// wire layouts recording does not support (non-home-side transports with
  /// the detector on).
  bool record_replay_check = true;
};

struct ConformanceReport {
  std::string scenario;
  RaceExpectation expect = RaceExpectation::kNever;
  /// (seed-major, perturbation-mid, fault-plan-minor) order; plan index 0 of
  /// every (seed, perturbation) point is the fault-free base run.
  std::vector<RunVerdicts> runs;
  std::uint64_t base_schedules = 0;       ///< fault-free grid points.
  std::uint64_t runs_with_reports = 0;    ///< base runs only.
  std::uint64_t runs_with_truth = 0;      ///< base runs only.
  std::uint64_t incomplete_runs = 0;      ///< base runs only.
  std::uint64_t lockset_divergences = 0;  ///< informational, never failures.
  std::uint64_t fault_runs = 0;              ///< runs under a fault plan.
  std::uint64_t fault_transparent_runs = 0;  ///< fault runs verdict-identical to base.
  std::uint64_t record_replay_checked = 0;   ///< runs with the record→fold invariant on.
  std::uint64_t watchdog_runs = 0;  ///< non-quiescent runs that produced a diagnostic.
  double min_area_recall = 1.0;           ///< worst "was the datum flagged" score.
  std::vector<Divergence> disagreements;  ///< hard failures.

  bool passed() const { return disagreements.empty(); }
  double manifestation_rate() const {
    const double denom = static_cast<double>(
        base_schedules != 0 ? base_schedules : runs.size());
    return runs.empty() ? 0.0 : static_cast<double>(runs_with_reports) / denom;
  }

  std::string render() const;
  /// One JSON object (machine-readable CI artifact): totals, per-run
  /// outcomes, and disagreements with repro coordinates.
  void write_json(std::ostream& out) const;
};

/// Cross-checks one finished run (building block; exposed for tests).
/// `world` must have been run to completion of World::run already.
RunVerdicts check_run(runtime::World& world, const runtime::RunReport& report);

/// Runs the full (seed × perturbation) grid for one scenario on
/// `options.threads` workers and folds the report deterministically.
ConformanceReport run_conformance(const Scenario& scenario,
                                  const ConformanceOptions& options);

}  // namespace dsmr::analysis
