// Offline ground truth: the full happens-before analysis over the event log.
//
// The paper's online algorithm compares each access only against the area's
// *latest* access/write clocks. This module recomputes races over *all*
// conflicting pairs, giving:
//  * a soundness oracle — every online report must correspond to a truly
//    racing conflicting pair (precision 1.0, asserted by property tests);
//  * a completeness measure — the online scheme's pairwise recall (< 1 in
//    general: a race hidden behind a later ordered access is missed);
//  * the §IV.C clock-truncation ablation: clocks projected onto k < n
//    components can only lose concurrency, so truncation produces false
//    negatives (never false positives) — measured per k.
//
// Race definition (matching the model's semantics): for two conflicting
// accesses applied at the home as a then b,
//
//    race(a, b)  ⇔  rank(a) ≠ rank(b)  ∧  ¬(apply_clock(a) ≤ issue_clock(b))
//
// i.e. b's initiator could not have known a's application, so a legal
// execution exists in which the applications land in the other order.
// Same-rank pairs are ordered by program order and the FIFO channel. This is
// exactly the predicate the online detector evaluates against the latest
// access — hence the structural precision guarantee.
#pragma once

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "core/event_log.hpp"
#include "core/race_report.hpp"
#include "util/types.hpp"

namespace dsmr::analysis {

/// An unordered conflicting pair of access events (ids, first < second).
struct RacePair {
  std::uint64_t first = 0;
  std::uint64_t second = 0;

  bool operator<(const RacePair& other) const {
    return std::pair{first, second} < std::pair{other.first, other.second};
  }
  bool operator==(const RacePair& other) const = default;
};

/// A shared datum's identity: (home rank, area id).
using AreaKey = std::pair<Rank, std::uint32_t>;

struct GroundTruth {
  std::set<RacePair> pairs;             ///< all truly racing conflicting pairs.
  std::set<AreaKey> racy_areas;         ///< areas with at least one racing pair.
  std::uint64_t conflicting_pairs = 0;  ///< pairs examined (≥1 write, same area,
                                        ///< different ranks).
  std::uint64_t ordered_pairs = 0;      ///< conflicting but causally ordered.
  std::uint64_t unapplied_events = 0;   ///< events never applied (crashed run).
};

/// Enumerates all ground-truth races. O(m²) per area — intended for
/// test/bench scale, as is the paper's debugging scenario ("typically,
/// about 10 processes").
GroundTruth compute_ground_truth(const core::EventLog& log);

/// §IV.C ablation: the same analysis with every clock truncated to its
/// first `k` components. Projection preserves domination, so truncation can
/// only *miss* races — `missed` counts the false negatives at width k.
struct TruncationPoint {
  std::size_t k = 0;
  std::uint64_t detected = 0;  ///< racing pairs still seen at width k.
  std::uint64_t missed = 0;    ///< full races invisible at width k.
};
std::vector<TruncationPoint> truncation_sweep(const core::EventLog& log,
                                              std::size_t nprocs);

/// Online-vs-truth accuracy.
struct Accuracy {
  std::uint64_t truth_pairs = 0;
  std::uint64_t reported_pairs = 0;   ///< unique (prior, current) pairs reported.
  std::uint64_t true_reports = 0;     ///< reported pairs present in ground truth.
  std::uint64_t truth_areas = 0;
  std::uint64_t reported_areas = 0;   ///< areas flagged online.
  std::uint64_t true_report_areas = 0;  ///< truth areas that were flagged.

  double precision() const {
    return reported_pairs == 0 ? 1.0
                               : static_cast<double>(true_reports) /
                                     static_cast<double>(reported_pairs);
  }
  double pair_recall() const {
    return truth_pairs == 0 ? 1.0
                            : static_cast<double>(true_reports) /
                                  static_cast<double>(truth_pairs);
  }
  /// "Did the detector flag the datum at all" — the metric that matters for
  /// debugging, and the one where the paper's scheme shines.
  double area_recall() const {
    return truth_areas == 0 ? 1.0
                            : static_cast<double>(true_report_areas) /
                                  static_cast<double>(truth_areas);
  }
};
Accuracy evaluate(const core::EventLog& log, const core::RaceLog& races);

/// As above with a precomputed ground truth — compute_ground_truth is the
/// O(m²)-per-area pass, so callers that already hold a GroundTruth (the
/// sweep and conformance layers) must not pay it twice per run.
Accuracy evaluate(const GroundTruth& truth, const core::RaceLog& races);

/// The live reports normalized to unique unordered (prior, current) pairs,
/// dropping reports whose prior is unknown (id 0). Single definition shared
/// by the accuracy metrics and the conformance live-vs-replay invariant so
/// the two can never drift apart.
std::set<RacePair> reported_pairs(const core::RaceLog& races);

/// Offline replay of the *online* algorithm over a recorded log: walks each
/// area in application order, maintains V/W/last-ranks exactly as the home
/// NICs do, and applies core::check_access under `mode`.
///
/// Uses: (a) compare detector modes on the *same* execution (run once,
/// replay under DualClock and SingleClock — message timings stay identical,
/// which a re-run with a different mode would not guarantee); (b) validate
/// that the replay of the run's own mode reproduces the live reports.
///
/// Note the comparison granularity: the two modes name different *priors*
/// (dual compares a read against the last write, single against the last
/// access), so their pair sets are incomparable — but the *flagged events*
/// of the dual mode are provably a subset of the single mode's (W ≤ V).
struct ReplayResult {
  std::set<RacePair> pairs;
  std::set<std::uint64_t> flagged_events;
};
/// `with_oracle` selects core::check_access_oracle (always-O(n) full clock
/// comparison) instead of the production epoch-fast-path predicate; the two
/// replays must be identical on every log — the property tests assert it.
ReplayResult replay_online(const core::EventLog& log, core::DetectorMode mode,
                           bool with_oracle = false);

}  // namespace dsmr::analysis
