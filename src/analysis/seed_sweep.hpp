// Schedule exploration by seed sweeping.
//
// The simulator is a pure function of its seed, so sweeping seeds explores
// distinct legal interleavings of the same program — the closest a dynamic
// race detector gets to schedule coverage. The sweep aggregates, per seed:
// whether the run completed, how many races were reported, and the online
// detector's accuracy against ground truth; plus the overall hit rate
// ("in how many schedules did the bug manifest?") and the first seed that
// exposed it, which can then be replayed deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/ground_truth.hpp"
#include "runtime/world.hpp"

namespace dsmr::analysis {

struct SeedOutcome {
  std::uint64_t seed = 0;
  bool completed = false;
  std::uint64_t races_reported = 0;
  std::uint64_t truth_pairs = 0;
  double precision = 1.0;
  double area_recall = 1.0;
};

struct SweepSummary {
  std::vector<SeedOutcome> outcomes;
  std::uint64_t seeds_with_reports = 0;  ///< schedules where a race manifested.
  std::uint64_t seeds_with_truth = 0;    ///< schedules with a true race.
  std::uint64_t incomplete_runs = 0;     ///< deadlocked schedules.
  std::optional<std::uint64_t> first_racy_seed;  ///< replay this to debug.
  double min_precision = 1.0;

  double manifestation_rate() const {
    return outcomes.empty() ? 0.0
                            : static_cast<double>(seeds_with_reports) /
                                  static_cast<double>(outcomes.size());
  }

  std::string render() const;
};

/// The workload under test: given a configured World (seed already set),
/// allocate data and spawn the programs.
using WorkloadFn = std::function<void(runtime::World&)>;

/// Runs `workload` once per seed in [first_seed, first_seed + count) on top
/// of `base_config` (its seed field is overwritten per run).
SweepSummary seed_sweep(const runtime::WorldConfig& base_config, std::uint64_t first_seed,
                        std::uint64_t count, const WorkloadFn& workload);

}  // namespace dsmr::analysis
