// Schedule exploration by seed sweeping.
//
// The simulator is a pure function of (seed, perturbation), so sweeping
// seeds — and, per seed, delay-bound perturbations (sim/perturb.hpp) —
// explores distinct legal interleavings of the same program: the closest a
// dynamic race detector gets to schedule coverage. The sweep aggregates,
// per schedule: whether the run completed, how many races were reported,
// and the online detector's accuracy against ground truth; plus the overall
// hit rate ("in how many schedules did the bug manifest?") and the first
// (seed, perturbation) that exposed it, which replays deterministically.
//
// Runs share no state, so the sweep fans out over a util::ThreadPool.
// Parallel outcomes are bit-identical to the serial sweep: each job writes
// its pre-assigned slot and the summary is folded in schedule order after
// the pool drains, never in completion order.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/ground_truth.hpp"
#include "runtime/world.hpp"
#include "sim/perturb.hpp"
#include "util/stats.hpp"

namespace dsmr::analysis {

struct SeedOutcome {
  std::uint64_t seed = 0;
  sim::PerturbConfig perturb{};  ///< with seed, the schedule's replay key.
  bool completed = false;
  std::uint64_t races_reported = 0;
  std::uint64_t truth_pairs = 0;
  double precision = 1.0;
  double area_recall = 1.0;
  sim::Time end_time = 0;            ///< schedule fingerprint (virtual ns).
  std::uint64_t engine_events = 0;   ///< schedule fingerprint (event count).
};

struct SweepSummary {
  std::vector<SeedOutcome> outcomes;
  std::uint64_t seeds_with_reports = 0;  ///< schedules where a race manifested.
  std::uint64_t seeds_with_truth = 0;    ///< schedules with a true race.
  std::uint64_t incomplete_runs = 0;     ///< deadlocked schedules.
  std::optional<std::uint64_t> first_racy_seed;  ///< replay this to debug.
  sim::PerturbConfig first_racy_perturb{};       ///< ... under this perturbation.
  double min_precision = 1.0;
  util::OnlineStats races_per_schedule;  ///< reports per schedule, across the sweep.

  double manifestation_rate() const {
    return outcomes.empty() ? 0.0
                            : static_cast<double>(seeds_with_reports) /
                                  static_cast<double>(outcomes.size());
  }

  std::string render() const;
};

/// The workload under test: given a configured World (seed already set),
/// allocate data and spawn the programs. Must be reentrant — a parallel
/// sweep invokes it concurrently from pool workers, one World per call.
using WorkloadFn = std::function<void(runtime::World&)>;

struct SweepOptions {
  /// Pool width; 1 = serial on the calling thread. Outcomes are identical
  /// either way.
  int threads = 1;
  /// Perturbation variants applied to *every* seed. Always includes the
  /// base (unperturbed) schedule first; each extra entry multiplies the
  /// explored schedules per seed.
  std::vector<sim::PerturbConfig> perturbations{sim::PerturbConfig{}};
};

/// One schedule: runs `workload` under `base_config` with the seed and
/// perturbation overridden. The building block of every sweep — exposed so
/// tests and the conformance harness can replay a single (seed, perturb).
SeedOutcome run_schedule(const runtime::WorldConfig& base_config, std::uint64_t seed,
                         const sim::PerturbConfig& perturb, const WorkloadFn& workload);

/// Runs `workload` once per (seed, perturbation) for seeds in
/// [first_seed, first_seed + count), fanning out over `options.threads`.
/// Outcome order is (seed-major, perturbation-minor), deterministic.
SweepSummary seed_sweep(const runtime::WorldConfig& base_config, std::uint64_t first_seed,
                        std::uint64_t count, const WorkloadFn& workload,
                        const SweepOptions& options);

/// Serial, unperturbed sweep (the original entry point).
SweepSummary seed_sweep(const runtime::WorldConfig& base_config, std::uint64_t first_seed,
                        std::uint64_t count, const WorkloadFn& workload);

}  // namespace dsmr::analysis
