#include "nic/nic.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace dsmr::nic {

using core::AccessKind;
using core::DetectorMode;
using core::Transport;
using net::Message;
using net::MsgType;

namespace {
/// Detection state from clocks fetched off a home NIC: the carried V/W are
/// the home's stored post-event clocks — event clocks of `home` — so their
/// epoch witnesses derive from the home rank for free (no extra wire data).
core::StoredClocks stored_from(const Message& m, Rank home) {
  return core::StoredClocks{m.clock,
                            m.clock2,
                            m.prior_access_rank,
                            m.prior_write_rank,
                            clocks::Epoch::of_event(home, m.clock),
                            clocks::Epoch::of_event(home, m.clock2)};
}
}  // namespace

Nic::Nic(Rank rank, sim::Engine& engine, net::Fabric& fabric, mem::PublicSegment& segment,
         detect::ShardedDetector& detector, NodeClock& clock, NicConfig config,
         core::RaceLog& races, core::EventLog& events)
    : rank_(rank),
      engine_(engine),
      fabric_(fabric),
      segment_(segment),
      detector_(detector),
      clock_(clock),
      config_(config),
      races_(races),
      events_(events) {}

const mem::Area* Nic::resolve(Rank rank, std::uint32_t offset, std::uint32_t len) const {
  DSMR_CHECK_MSG(resolver_, "NIC has no area resolver installed");
  return resolver_(rank, offset, len);
}

Message Nic::make(MsgType type, Rank dst, std::uint64_t op_id, std::uint32_t area) const {
  Message m;
  m.type = type;
  m.src = rank_;
  m.dst = dst;
  m.op_id = op_id;
  m.area = area;
  m.clocks_on_wire = config_.mode != DetectorMode::kOff;
  return m;
}

sim::Future<Message> Nic::request(Message m) {
  sim::Promise<Message> promise;
  const auto [it, inserted] = pending_.emplace(m.op_id, promise);
  DSMR_CHECK_MSG(inserted, "duplicate in-flight op id " << m.op_id << " on rank " << rank_);
  (void)it;
  pending_info_[m.op_id] = PendingInfo{m.type, m.dst, m.area};
  fabric_.send(std::move(m));
  return promise.future();
}

void Nic::resolve_pending(const Message& m) {
  const auto it = pending_.find(m.op_id);
  DSMR_CHECK_MSG(it != pending_.end(),
                 "response " << m.describe() << " with no pending op on rank " << rank_);
  sim::Promise<Message> promise = it->second;
  pending_.erase(it);
  pending_info_.erase(m.op_id);
  promise.set_value(m);
}

std::vector<std::string> Nic::pending_ops() const {
  // Deterministic order (op id, then tag) — the watchdog diagnostic must be
  // stable across runs for repro diffing.
  std::vector<std::pair<std::uint64_t, std::string>> lines;
  for (const auto& [op_id, info] : pending_info_) {
    std::ostringstream out;
    out << "op " << op_id << " " << net::to_string(info.type) << " -> P" << info.dst
        << " area " << info.area << " (awaiting response)";
    lines.emplace_back(op_id, out.str());
  }
  for (const auto& [tag, waiters] : signal_waiters_) {
    if (waiters.empty()) continue;
    std::ostringstream out;
    out << "waiting for signal tag " << tag << " (" << waiters.size() << " waiter"
        << (waiters.size() == 1 ? "" : "s") << ")";
    lines.emplace_back(std::uint64_t{1} << 63 | tag, out.str());
  }
  std::sort(lines.begin(), lines.end());
  std::vector<std::string> out;
  out.reserve(lines.size());
  for (auto& [key, text] : lines) out.push_back(std::move(text));
  return out;
}

void Nic::reply(const Message& request, Message response) {
  response.src = rank_;
  response.dst = request.src;
  response.op_id = request.op_id;
  response.area = request.area;
  response.clocks_on_wire = config_.mode != DetectorMode::kOff;
  fabric_.send(std::move(response));
}

bool Nic::rank_holds(mem::AreaId area, Rank rank) const {
  const LockToken holder = locks_.holder(area);
  if (holder == 0) return false;
  // Any token of this rank counts: an op token or the rank's user lock
  // (the high 32 bits of a token are the owning rank).
  return static_cast<Rank>(holder >> 32) == rank;
}

// ---------------------------------------------------------------------------
// Instrumented put (Algorithm 1).
// ---------------------------------------------------------------------------

sim::Future<PutResult> Nic::put(mem::GlobalAddress dst, std::vector<std::byte> data,
                                OpContext ctx) {
  const mem::Area* area = resolve(dst.rank, dst.offset, static_cast<std::uint32_t>(data.size()));
  DSMR_REQUIRE(area != nullptr, "put to unregistered public memory at " << dst.to_string());
  const std::uint32_t offset = dst.offset - area->offset;
  const std::uint64_t op = next_op_++;
  const Transport transport =
      config_.mode == DetectorMode::kOff ? Transport::kHomeSide : config_.transport;

  PutResult result;

  if (transport == Transport::kSeparate) {
    // lock(P1, dst)
    const Message grant = co_await request(make(MsgType::kLockRequest, dst.rank, op, area->id));
    const bool delegated = grant.tag == 1;
    // W' = get_clock_W(P1, dst); V' = get_clock(P1, dst)
    const Message clocks = co_await request(make(MsgType::kClockFetch, dst.rank, op, area->id));
    // if ¬compare(V, V') ∧ ¬compare(V', V): signal_race_condition()
    const auto verdict = core::check_access(config_.mode, AccessKind::kWrite, rank_,
                                            ctx.issue_clock, stored_from(clocks, dst.rank));
    if (verdict.race) {
      record_initiator_report(AccessKind::kWrite, dst.rank, *area, ctx, clocks, verdict);
      result.raced = true;
    }
    // put(P0, src, P1, dst)
    Message put_msg = make(MsgType::kPutData, dst.rank, op, area->id);
    put_msg.offset = offset;
    put_msg.data = std::move(data);
    co_await request(put_msg);
    // update_clock_W(P1, dst); update_clock(P1, dst)
    Message clock_event = make(MsgType::kClockEvent, dst.rank, op, area->id);
    clock_event.flag = true;  // is-write
    clock_event.clock = ctx.issue_clock;
    clock_event.event_id = ctx.event_id;
    const Message ack = co_await request(clock_event);
    result.home_clock = ack.clock;
    // unlock(P1, dst)
    Message unlock = make(MsgType::kUnlock, dst.rank, op, area->id);
    unlock.tag = delegated ? 1 : 0;
    fabric_.send(std::move(unlock));
    co_return result;
  }

  if (transport == Transport::kPiggyback) {
    const Message grant =
        co_await request(make(MsgType::kLockFetchRequest, dst.rank, op, area->id));
    const auto verdict = core::check_access(config_.mode, AccessKind::kWrite, rank_,
                                            ctx.issue_clock, stored_from(grant, dst.rank));
    if (verdict.race) {
      record_initiator_report(AccessKind::kWrite, dst.rank, *area, ctx, grant, verdict);
      result.raced = true;
    }
    Message commit = make(MsgType::kPutCommit, dst.rank, op, area->id);
    commit.offset = offset;
    commit.data = std::move(data);
    commit.clock = ctx.issue_clock;
    commit.event_id = ctx.event_id;
    commit.flag = false;  // verdict already decided initiator-side
    const Message ack = co_await request(commit);
    result.home_clock = ack.clock;
    co_return result;
  }

  // kHomeSide (also the DetectorMode::kOff baseline layout).
  Message commit = make(MsgType::kPutCommit, dst.rank, op, area->id);
  commit.offset = offset;
  commit.data = std::move(data);
  commit.clock = ctx.issue_clock;
  commit.event_id = ctx.event_id;
  commit.flag = config_.mode != DetectorMode::kOff;  // home decides the verdict
  const Message ack = co_await request(commit);
  result.home_clock = ack.clock;
  result.raced = ack.flag;
  co_return result;
}

// ---------------------------------------------------------------------------
// Instrumented get (Algorithm 2).
// ---------------------------------------------------------------------------

sim::Future<GetResult> Nic::get(mem::GlobalAddress src, std::uint32_t len, OpContext ctx) {
  const mem::Area* area = resolve(src.rank, src.offset, len);
  DSMR_REQUIRE(area != nullptr, "get from unregistered public memory at " << src.to_string());
  const std::uint32_t offset = src.offset - area->offset;
  const std::uint64_t op = next_op_++;
  const Transport transport =
      config_.mode == DetectorMode::kOff ? Transport::kHomeSide : config_.transport;

  GetResult result;

  if (transport == Transport::kSeparate) {
    const Message grant = co_await request(make(MsgType::kLockRequest, src.rank, op, area->id));
    const bool delegated = grant.tag == 1;
    const Message clocks = co_await request(make(MsgType::kClockFetch, src.rank, op, area->id));
    // Algorithm 2 compares the reader clock with the *write* clock W:
    // concurrent reads are not conflicts (Fig. 4).
    const auto verdict = core::check_access(config_.mode, AccessKind::kRead, rank_,
                                            ctx.issue_clock, stored_from(clocks, src.rank));
    if (verdict.race) {
      record_initiator_report(AccessKind::kRead, src.rank, *area, ctx, clocks, verdict);
      result.raced = true;
    }
    Message get_msg = make(MsgType::kGetRequest, src.rank, op, area->id);
    get_msg.offset = offset;
    get_msg.length = len;
    const Message data_resp = co_await request(get_msg);
    result.data = data_resp.data;
    Message clock_event = make(MsgType::kClockEvent, src.rank, op, area->id);
    clock_event.flag = false;  // read
    clock_event.clock = ctx.issue_clock;
    clock_event.event_id = ctx.event_id;
    const Message ack = co_await request(clock_event);
    result.home_clock = ack.clock;
    Message unlock = make(MsgType::kUnlock, src.rank, op, area->id);
    unlock.tag = delegated ? 1 : 0;
    fabric_.send(std::move(unlock));
    co_return result;
  }

  // kPiggyback and kHomeSide share the fused two-message get; the verdict is
  // decided at the home NIC inside the serve event in both cases.
  Message get_msg = make(MsgType::kGetLockedRequest, src.rank, op, area->id);
  get_msg.offset = offset;
  get_msg.length = len;
  get_msg.clock = ctx.issue_clock;
  get_msg.event_id = ctx.event_id;
  get_msg.flag = config_.mode != DetectorMode::kOff;
  const Message resp = co_await request(get_msg);
  result.data = resp.data;
  result.home_clock = resp.clock;
  result.raced = resp.flag;
  co_return result;
}

// ---------------------------------------------------------------------------
// User-visible locks.
// ---------------------------------------------------------------------------

sim::Future<UserLockResult> Nic::user_lock(mem::GlobalAddress addr) {
  const mem::Area* area = resolve(addr.rank, addr.offset, 1);
  DSMR_REQUIRE(area != nullptr, "lock on unregistered public memory at " << addr.to_string());
  Message m = make(MsgType::kLockRequest, addr.rank, kUserLockOp, area->id);
  m.flag = true;  // user lock: grant carries the handoff clock.
  const Message grant = co_await request(m);
  co_return UserLockResult{grant.clock};
}

void Nic::user_unlock(mem::GlobalAddress addr, const clocks::VectorClock& release_clock) {
  const mem::Area* area = resolve(addr.rank, addr.offset, 1);
  DSMR_REQUIRE(area != nullptr, "unlock on unregistered public memory at " << addr.to_string());
  Message m = make(MsgType::kUnlock, addr.rank, kUserLockOp, area->id);
  m.flag = true;
  if (config_.lock_clock_handoff) m.clock = release_clock;
  fabric_.send(std::move(m));
}

// ---------------------------------------------------------------------------
// Signals.
// ---------------------------------------------------------------------------

void Nic::send_signal(Rank to, std::uint64_t tag, clocks::VectorClock clock,
                      std::vector<std::byte> payload) {
  Message m = make(MsgType::kSignal, to, 0, 0);
  m.tag = tag;
  m.clock = std::move(clock);
  m.data = std::move(payload);
  // Signals always carry their clock on the wire: they are part of the
  // application's own synchronization, not of the detection machinery.
  m.clocks_on_wire = true;
  fabric_.send(std::move(m));
}

sim::Future<Message> Nic::wait_signal(std::uint64_t tag) {
  auto& queue = queued_signals_[tag];
  if (!queue.empty()) {
    Message m = std::move(queue.front());
    queue.pop_front();
    sim::Promise<Message> immediate;
    immediate.set_value(std::move(m));
    return immediate.future();
  }
  signal_waiters_[tag].emplace_back();
  return signal_waiters_[tag].back().future();
}

void Nic::handle_signal(const Message& m) {
  auto& waiters = signal_waiters_[m.tag];
  if (!waiters.empty()) {
    sim::Promise<Message> promise = std::move(waiters.front());
    waiters.pop_front();
    promise.set_value(m);
    return;
  }
  queued_signals_[m.tag].push_back(m);
}

// ---------------------------------------------------------------------------
// Home-side handlers.
// ---------------------------------------------------------------------------

void Nic::on_message(const Message& m) {
  switch (m.type) {
    // Responses routed back to the awaiting initiator coroutine.
    case MsgType::kLockGrant:
    case MsgType::kClockResponse:
    case MsgType::kPutAck:
    case MsgType::kGetResponse:
    case MsgType::kClockEventAck:
    case MsgType::kLockFetchGrant:
    case MsgType::kPutCommitAck:
    case MsgType::kGetLockedResponse:
      resolve_pending(m);
      return;

    case MsgType::kLockRequest:
      handle_lock_request(m, /*with_clocks=*/false);
      return;
    case MsgType::kLockFetchRequest:
      handle_lock_request(m, /*with_clocks=*/true);
      return;
    case MsgType::kUnlock:
      handle_unlock(m);
      return;
    case MsgType::kClockFetch:
      handle_clock_fetch(m);
      return;
    case MsgType::kClockEvent:
      handle_clock_event(m);
      return;
    case MsgType::kPutData:
      handle_put_data(m);
      return;
    case MsgType::kGetRequest:
      handle_get_request(m);
      return;
    case MsgType::kPutCommit:
      handle_put_commit(m);
      return;
    case MsgType::kGetLockedRequest:
      handle_get_locked(m);
      return;
    case MsgType::kSignal:
      handle_signal(m);
      return;
  }
  DSMR_UNREACHABLE("unhandled message type");
}

void Nic::handle_lock_request(const Message& m, bool with_clocks) {
  const auto grant_type = with_clocks ? MsgType::kLockFetchGrant : MsgType::kLockGrant;
  auto send_grant = [this, m, grant_type](bool delegated) {
    Message grant;
    grant.type = grant_type;
    grant.tag = delegated ? 1 : 0;
    if (grant_type == MsgType::kLockFetchGrant) {
      grant.clock = detector_.v_clock(m.area);
      grant.clock2 = detector_.w_clock(m.area);
      grant.event_id = detector_.last_access_event(m.area);
      grant.event_id2 = detector_.last_write_event(m.area);
      grant.prior_access_rank = detector_.last_access_rank(m.area);
      grant.prior_write_rank = detector_.last_write_rank(m.area);
    } else if (m.flag && config_.lock_clock_handoff) {
      // User lock: hand over the previous releaser's clock (HB edge).
      if (const clocks::VectorClock* handoff = locks_.handoff(m.area)) {
        grant.clock = *handoff;
      }
    }
    reply(m, std::move(grant));
  };

  if (rank_holds(m.area, m.src)) {
    // The requesting rank already holds this area (user lock or outer op):
    // grant re-entrantly; the matching unlock will be a no-op.
    send_grant(/*delegated=*/true);
    return;
  }
  const LockToken token = make_lock_token(m.src, m.op_id);
  locks_.acquire(m.area, token).on_ready([send_grant] { send_grant(/*delegated=*/false); });
}

void Nic::handle_unlock(const Message& m) {
  if (m.tag == 1) return;  // delegated grant: the outer holder keeps the lock.
  if (m.flag && config_.lock_clock_handoff && !m.clock.empty()) {
    if (recorder_ != nullptr) {
      recorder_->record(record::EventKind::kUnlockApply, m.src,
                        recorder_->area_index(rank_, m.area));
    }
    locks_.set_handoff(m.area, m.clock);
  }
  locks_.release(m.area, make_lock_token(m.src, m.op_id));
}

void Nic::handle_clock_fetch(const Message& m) {
  Message resp;
  resp.type = MsgType::kClockResponse;
  resp.clock = detector_.v_clock(m.area);
  resp.clock2 = detector_.w_clock(m.area);
  resp.event_id = detector_.last_access_event(m.area);
  resp.event_id2 = detector_.last_write_event(m.area);
  resp.prior_access_rank = detector_.last_access_rank(m.area);
  resp.prior_write_rank = detector_.last_write_rank(m.area);
  reply(m, std::move(resp));
}

void Nic::handle_clock_event(const Message& m) {
  // The home-side clock event: receiving the access is an event at the home
  // NIC (tick + merge, the values the paper's Fig. 5 annotates), and the
  // resulting clock is stored as the area's V (and W for writes).
  clock_.receive_event(m.src, m.clock);
  detector_.store_access(m.area, rank_, clock_.vector(), /*is_write=*/m.flag,
                         m.src, m.event_id);
  events_.annotate_apply(m.event_id, clock_.vector());
  Message ack;
  ack.type = MsgType::kClockEventAck;
  ack.clock = clock_.vector();
  reply(m, std::move(ack));
}

void Nic::handle_put_data(const Message& m) {
  // Separate transport: raw data write under the initiator-held lock; the
  // clock event arrives separately (kClockEvent).
  DSMR_CHECK_MSG(rank_holds(m.area, m.src),
                 "PUT_DATA without the area lock (separate transport bug)");
  const mem::Area& area = segment_.area(m.area);
  segment_.write_bytes(area.offset + m.offset, m.data);
  Message ack;
  ack.type = MsgType::kPutAck;
  reply(m, std::move(ack));
}

void Nic::handle_get_request(const Message& m) {
  DSMR_CHECK_MSG(rank_holds(m.area, m.src),
                 "GET_REQ without the area lock (separate transport bug)");
  const mem::Area& area = segment_.area(m.area);
  Message resp;
  resp.type = MsgType::kGetResponse;
  resp.data = segment_.read_bytes(area.offset + m.offset, m.length);
  reply(m, std::move(resp));
}

void Nic::handle_put_commit(const Message& m) {
  const LockToken token = make_lock_token(m.src, m.op_id);
  auto proceed = [this, m, token] {
    apply_put(m);
    if (locks_.held_by(m.area, token)) locks_.release(m.area, token);
  };
  if (rank_holds(m.area, m.src)) {
    proceed();
    return;
  }
  locks_.acquire(m.area, token).on_ready(proceed);
}

void Nic::handle_get_locked(const Message& m) {
  const LockToken token = make_lock_token(m.src, m.op_id);
  if (rank_holds(m.area, m.src)) {
    serve_get(m);
    return;
  }
  locks_.acquire(m.area, token).on_ready([this, m, token] {
    const sim::Time delivered_at = serve_get(m);
    // Fig. 3: the area stays locked until the data has fully arrived at the
    // requester; a put landing meanwhile queues behind this release.
    engine_.schedule_at(delivered_at, [this, m, token] { locks_.release(m.area, token); });
  });
}

void Nic::apply_put(const Message& m) {
  mem::Area& area = segment_.area(m.area);
  // The whole apply is one atomic home-side event — check, receive_event,
  // store, ack — so one recorded event covers it.
  if (recorder_ != nullptr) {
    recorder_->record(record::EventKind::kPutApply, m.src,
                      recorder_->area_index(rank_, m.area), m.data.size());
  }
  bool raced = false;
  if (m.flag && config_.mode != DetectorMode::kOff) {
    const auto verdict =
        detector_.check_one(config_.mode, AccessKind::kWrite, m.src, m.clock, m.area);
    if (verdict.race) {
      record_home_report(AccessKind::kWrite, m, area, verdict);
      raced = true;
    }
  }
  clock_.receive_event(m.src, m.clock);
  segment_.write_bytes(area.offset + m.offset, m.data);
  detector_.store_access(m.area, rank_, clock_.vector(), /*is_write=*/true, m.src,
                         m.event_id);
  events_.annotate_apply(m.event_id, clock_.vector());

  Message ack;
  ack.type = MsgType::kPutCommitAck;
  ack.clock = clock_.vector();
  ack.flag = raced;
  reply(m, std::move(ack));
}

sim::Time Nic::serve_get(const Message& m) {
  mem::Area& area = segment_.area(m.area);
  if (recorder_ != nullptr) {
    recorder_->record(record::EventKind::kGetApply, m.src,
                      recorder_->area_index(rank_, m.area), m.length);
  }
  bool raced = false;
  if (m.flag && config_.mode != DetectorMode::kOff) {
    const auto verdict =
        detector_.check_one(config_.mode, AccessKind::kRead, m.src, m.clock, m.area);
    if (verdict.race) {
      record_home_report(AccessKind::kRead, m, area, verdict);
      raced = true;
    }
  }
  clock_.receive_event(m.src, m.clock);
  detector_.store_access(m.area, rank_, clock_.vector(), /*is_write=*/false, m.src,
                         m.event_id);
  events_.annotate_apply(m.event_id, clock_.vector());

  Message resp;
  resp.type = MsgType::kGetLockedResponse;
  resp.src = rank_;
  resp.dst = m.src;
  resp.op_id = m.op_id;
  resp.area = m.area;
  resp.data = segment_.read_bytes(area.offset + m.offset, m.length);
  resp.clock = clock_.vector();
  resp.flag = raced;
  resp.clocks_on_wire = config_.mode != DetectorMode::kOff;
  return fabric_.send(std::move(resp));
}

// ---------------------------------------------------------------------------
// Race reporting.
// ---------------------------------------------------------------------------

void Nic::record_home_report(AccessKind kind, const Message& m, const mem::Area& area,
                             const core::Verdict& verdict) {
  core::RaceReport report;
  report.time = engine_.now();
  report.home = rank_;
  report.area = area.id;
  report.area_name = area.name;
  report.accessor = m.src;
  report.kind = kind;
  report.event_id = m.event_id;
  report.accessor_clock = m.clock;
  report.against = verdict.against;
  report.stored_clock = detector_.prior_clock(area.id, verdict.against);
  report.prior_event_id = detector_.prior_event(area.id, verdict.against);
  races_.record(std::move(report));
}

void Nic::record_initiator_report(AccessKind kind, Rank home, const mem::Area& area,
                                  const OpContext& ctx, const Message& clock_resp,
                                  const core::Verdict& verdict) {
  core::RaceReport report;
  report.time = engine_.now();
  report.home = home;
  report.area = area.id;
  report.area_name = area.name;
  report.accessor = rank_;
  report.kind = kind;
  report.event_id = ctx.event_id;
  report.accessor_clock = ctx.issue_clock;
  report.against = verdict.against;
  report.stored_clock = verdict.against == core::ComparedAgainst::kW ? clock_resp.clock2
                                                                     : clock_resp.clock;
  report.prior_event_id = verdict.against == core::ComparedAgainst::kW
                              ? clock_resp.event_id2
                              : clock_resp.event_id;
  races_.record(std::move(report));
}

}  // namespace dsmr::nic
