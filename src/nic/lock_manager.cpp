#include "nic/lock_manager.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dsmr::nic {

sim::Future<void> LockManager::acquire(mem::AreaId area, LockToken token) {
  AreaLock& lock = locks_[area];
  ++stats_.acquisitions;
  if (!lock.held) {
    lock.held = true;
    lock.holder = token;
    sim::Promise<void> immediate;
    immediate.set_value();
    return immediate.future();
  }
  DSMR_CHECK_MSG(lock.holder != token, "re-entrant lock acquisition on area " << area);
  ++stats_.contended;
  lock.waiters.emplace_back(token, sim::Promise<void>{});
  stats_.max_queue = std::max(stats_.max_queue, static_cast<std::uint64_t>(lock.waiters.size()));
  return lock.waiters.back().second.future();
}

void LockManager::release(mem::AreaId area, LockToken token) {
  const auto it = locks_.find(area);
  DSMR_CHECK_MSG(it != locks_.end() && it->second.held,
                 "release of unheld lock on area " << area);
  AreaLock& lock = it->second;
  DSMR_CHECK_MSG(lock.holder == token,
                 "release of area " << area << " by non-holder token " << token);
  if (lock.waiters.empty()) {
    lock.held = false;
    lock.holder = 0;
    return;
  }
  auto [next_token, promise] = std::move(lock.waiters.front());
  lock.waiters.pop_front();
  lock.holder = next_token;
  promise.set_value();  // resumption bounces through the engine queue.
}

bool LockManager::is_locked(mem::AreaId area) const {
  const auto it = locks_.find(area);
  return it != locks_.end() && it->second.held;
}

LockToken LockManager::holder(mem::AreaId area) const {
  const auto it = locks_.find(area);
  return it != locks_.end() && it->second.held ? it->second.holder : 0;
}

bool LockManager::held_by(mem::AreaId area, LockToken token) const {
  const auto it = locks_.find(area);
  return it != locks_.end() && it->second.held && it->second.holder == token;
}

void LockManager::set_handoff(mem::AreaId area, const clocks::VectorClock& clock) {
  AreaLock& lock = locks_[area];
  if (lock.handoff.has_value()) {
    lock.handoff->merge_from(clock);
  } else {
    lock.handoff = clock;
  }
}

const clocks::VectorClock* LockManager::handoff(mem::AreaId area) const {
  const auto it = locks_.find(area);
  if (it == locks_.end() || !it->second.handoff.has_value()) return nullptr;
  return &*it->second.handoff;
}

}  // namespace dsmr::nic
