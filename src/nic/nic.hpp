// The RDMA-capable NIC model (paper §III).
//
// The NIC executes one-sided put/get protocols with OS bypass: the *process*
// on the home rank never participates — its NIC serves accesses, maintains
// the per-area clocks, provides area locks, and answers on behalf of the
// process. This is exactly the paper's deployment model for the detection
// algorithm ("implemented in the communication library", §V.B option 1).
//
// Three wire layouts (core::Transport) realize Algorithms 1-2:
//
//   kSeparate  (the algorithms spelled out literally)
//     put: LOCK_REQ/GRANT, CLK_FETCH/RESP, [compare], PUT_DATA/ACK,
//          CLK_EVENT/ACK, UNLOCK                               — 9 messages
//     get: LOCK_REQ/GRANT, CLK_FETCH/RESP, [compare], GET_REQ/RESP,
//          CLK_EVENT/ACK, UNLOCK                               — 9 messages
//
//   kPiggyback (clocks ride on lock/data messages)
//     put: LOCKFETCH_REQ/GRANT, [compare], PUT_COMMIT/ACK      — 4 messages
//     get: GETLOCKED_REQ/RESP                                  — 2 messages
//
//   kHomeSide  (the compare runs inside the home NIC's atomic apply event)
//     put: PUT_COMMIT/ACK                                      — 2 messages
//     get: GETLOCKED_REQ/RESP                                  — 2 messages
//
// With DetectorMode::kOff, ops always take the minimal kHomeSide layout with
// no verdicts and clocks excluded from wire accounting — the fig-2 baseline
// (put: 1 data message + completion ack; get: 2 messages).
//
// Fig. 3 semantics (a put delayed until an in-flight get completes) fall out
// of the FIFO area locks: serving a get holds the area until the response
// has fully arrived at the requester; puts arriving meanwhile queue.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/event_log.hpp"
#include "core/race_report.hpp"
#include "core/rules.hpp"
#include "core/types.hpp"
#include "detect/sharded_detector.hpp"
#include "mem/global_address.hpp"
#include "mem/public_segment.hpp"
#include "net/fabric.hpp"
#include "nic/lock_manager.hpp"
#include "nic/node_clock.hpp"
#include "record/recorder.hpp"
#include "sim/engine.hpp"
#include "sim/future.hpp"

namespace dsmr::nic {

struct NicConfig {
  core::DetectorMode mode = core::DetectorMode::kDualClock;
  core::Transport transport = core::Transport::kHomeSide;
  /// User-level lock release→acquire carries the releaser's clock,
  /// establishing happens-before (protocol-internal locks never do: that
  /// would order *every* pair of accesses and hide all races).
  bool lock_clock_handoff = true;
};

/// Per-op context handed down by the runtime layer (dsmr::runtime::Process):
/// the access's EventLog id and the initiator clock at issue (post-tick).
struct OpContext {
  std::uint64_t event_id = 0;
  clocks::VectorClock issue_clock;
};

struct PutResult {
  clocks::VectorClock home_clock;  ///< home's post-event clock (ack payload).
  bool raced = false;
};

struct GetResult {
  std::vector<std::byte> data;
  clocks::VectorClock home_clock;
  bool raced = false;
};

struct UserLockResult {
  clocks::VectorClock handoff;  ///< empty when no previous releaser.
};

class Nic {
 public:
  Nic(Rank rank, sim::Engine& engine, net::Fabric& fabric, mem::PublicSegment& segment,
      detect::ShardedDetector& detector, NodeClock& clock, NicConfig config,
      core::RaceLog& races, core::EventLog& events);

  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  Rank rank() const { return rank_; }
  NodeClock& node_clock() { return clock_; }
  mem::PublicSegment& segment() { return segment_; }
  detect::ShardedDetector& detector() { return detector_; }
  LockManager& locks() { return locks_; }
  const NicConfig& config() const { return config_; }

  /// Address resolution (the PGAS compiler's role, §III.A): maps a global
  /// address range to the registered area containing it. Installed by the
  /// World with whole-system layout knowledge.
  using AreaResolver =
      std::function<const mem::Area*(Rank, std::uint32_t, std::uint32_t)>;
  void set_resolver(AreaResolver resolver) { resolver_ = std::move(resolver); }

  /// Attaches the run's ordering recorder (record/recorder.hpp). The NIC
  /// emits the home-side events — put apply, get serve, unlock handoff —
  /// at their atomic commit points. Installed by World::set_recorder.
  void set_recorder(record::Recorder* recorder) { recorder_ = recorder; }

  // ---- instrumented one-sided operations (Algorithms 1 and 2) ----

  sim::Future<PutResult> put(mem::GlobalAddress dst, std::vector<std::byte> data,
                             OpContext ctx);
  sim::Future<GetResult> get(mem::GlobalAddress src, std::uint32_t len, OpContext ctx);

  // ---- user-visible area locks (paper §III.A) ----

  /// Acquires the NIC lock on the area at `addr` for this rank. Resolves
  /// with the handoff clock of the previous releaser (empty if none or if
  /// handoff is disabled).
  sim::Future<UserLockResult> user_lock(mem::GlobalAddress addr);

  /// Releases; `release_clock` is stored as the handoff for the next owner
  /// (ignored when handoff is disabled).
  void user_unlock(mem::GlobalAddress addr, const clocks::VectorClock& release_clock);

  // ---- control-plane signals (barriers, broadcast, user sync) ----

  void send_signal(Rank to, std::uint64_t tag, clocks::VectorClock clock,
                   std::vector<std::byte> payload = {});
  sim::Future<net::Message> wait_signal(std::uint64_t tag);

  /// Fabric receive entry point (installed via Fabric::attach by the World).
  void on_message(const net::Message& m);

  /// Human-readable lines for every in-flight request and signal wait on
  /// this rank — the quiescence watchdog's "pending op" evidence. Empty on
  /// a quiescent NIC.
  std::vector<std::string> pending_ops() const;

  /// The area resolver (exposed for the runtime layer's event logging).
  /// A direct delegation to the installed resolver — PublicSegment's
  /// amortized sorted index made the old thread-local one-entry cache (and
  /// its process-unique key machinery) dead weight, so lookups now go
  /// straight to the shared index. Read-only over immutable, stably
  /// addressed areas: thread-safe once registrations have quiesced.
  const mem::Area* resolve(Rank rank, std::uint32_t offset, std::uint32_t len) const;

 private:
  net::Message make(net::MsgType type, Rank dst, std::uint64_t op_id,
                    std::uint32_t area) const;
  sim::Future<net::Message> request(net::Message m);
  void resolve_pending(const net::Message& m);
  void reply(const net::Message& request, net::Message response);

  /// True when the area's lock is held by any operation of `rank` (an op
  /// token or the rank's user lock) — such ops proceed without queuing.
  bool rank_holds(mem::AreaId area, Rank rank) const;

  // Home-side handlers.
  void handle_lock_request(const net::Message& m, bool with_clocks);
  void handle_unlock(const net::Message& m);
  void handle_clock_fetch(const net::Message& m);
  void handle_clock_event(const net::Message& m);
  void handle_put_data(const net::Message& m);
  void handle_get_request(const net::Message& m);
  void handle_put_commit(const net::Message& m);
  void handle_get_locked(const net::Message& m);
  void handle_signal(const net::Message& m);

  /// Applies a put at home: optional verdict, clock event, data write,
  /// area clock update, ack.
  void apply_put(const net::Message& m);
  /// Serves a get at home: verdict, clock event, area V update, response;
  /// returns the response's delivery time (lock held until then — Fig. 3).
  sim::Time serve_get(const net::Message& m);

  void record_home_report(core::AccessKind kind, const net::Message& m,
                          const mem::Area& area, const core::Verdict& verdict);
  void record_initiator_report(core::AccessKind kind, Rank home, const mem::Area& area,
                               const OpContext& ctx, const net::Message& clock_resp,
                               const core::Verdict& verdict);

  Rank rank_;
  sim::Engine& engine_;
  net::Fabric& fabric_;
  mem::PublicSegment& segment_;
  detect::ShardedDetector& detector_;
  NodeClock& clock_;
  NicConfig config_;
  core::RaceLog& races_;
  core::EventLog& events_;
  AreaResolver resolver_;
  record::Recorder* recorder_ = nullptr;
  LockManager locks_;

  std::uint64_t next_op_ = 1;
  std::unordered_map<std::uint64_t, sim::Promise<net::Message>> pending_;
  /// What each pending op asked for (type/home/area) — watchdog evidence.
  struct PendingInfo {
    net::MsgType type = net::MsgType::kSignal;
    Rank dst = kInvalidRank;
    std::uint32_t area = 0;
  };
  std::unordered_map<std::uint64_t, PendingInfo> pending_info_;
  std::unordered_map<std::uint64_t, std::deque<net::Message>> queued_signals_;
  std::unordered_map<std::uint64_t, std::deque<sim::Promise<net::Message>>> signal_waiters_;

  /// op_id used by this rank's user-lock protocol (outside the data-op
  /// counter range; the lock token must be stable across lock and unlock).
  static constexpr std::uint64_t kUserLockOp = 0xffffffffULL;
};

}  // namespace dsmr::nic
