// Per-area locks provided by the NIC (paper §III.A: "since NICs are in
// charge with memory management in the public memory space, they can provide
// locks on memory areas").
//
// Grant order is FIFO, which yields the paper's Fig. 3 semantics: an
// operation arriving while an area is held (e.g. a put during an in-flight
// get) is delayed until the holder finishes. Locks also optionally carry a
// release→acquire clock handoff so that user-level locking establishes
// happens-before and properly locked programs are reported race-free.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "clocks/vector_clock.hpp"
#include "mem/public_segment.hpp"
#include "sim/future.hpp"
#include "util/types.hpp"

namespace dsmr::nic {

/// Identifies a lock-holding operation globally: (initiator rank, op id).
using LockToken = std::uint64_t;

constexpr LockToken make_lock_token(Rank rank, std::uint64_t op_id) {
  return (static_cast<LockToken>(static_cast<std::uint32_t>(rank)) << 32) |
         (op_id & 0xffffffffULL);
}

class LockManager {
 public:
  struct Stats {
    std::uint64_t acquisitions = 0;
    std::uint64_t contended = 0;   ///< acquisitions that had to queue.
    std::uint64_t max_queue = 0;   ///< deepest wait queue observed.
  };

  /// Acquires the lock on `area` for `token`. The future resolves when the
  /// lock is granted (immediately when uncontended).
  sim::Future<void> acquire(mem::AreaId area, LockToken token);

  /// Releases the lock; `token` must be the current holder. The next queued
  /// waiter (FIFO) is granted via the engine queue.
  void release(mem::AreaId area, LockToken token);

  bool is_locked(mem::AreaId area) const;
  bool held_by(mem::AreaId area, LockToken token) const;

  /// Current holder token (0 when unlocked). The high 32 bits are the
  /// holder's rank — used for re-entrant grants to the holding rank.
  LockToken holder(mem::AreaId area) const;

  /// Clock handoff (release→acquire happens-before edge): the releaser's
  /// clock is remembered and handed to subsequent acquirers.
  void set_handoff(mem::AreaId area, const clocks::VectorClock& clock);
  const clocks::VectorClock* handoff(mem::AreaId area) const;

  const Stats& stats() const { return stats_; }

 private:
  struct AreaLock {
    bool held = false;
    LockToken holder = 0;
    std::deque<std::pair<LockToken, sim::Promise<void>>> waiters;
    std::optional<clocks::VectorClock> handoff;
  };

  std::unordered_map<mem::AreaId, AreaLock> locks_;
  Stats stats_;
};

}  // namespace dsmr::nic
