// The per-process logical clock state.
//
// Paper §IV.B: "The clock matrix V_{Pi} is maintained by each process Pi ...
// Before Pi performs an event, it increments its local logical clock
// V_{Pi}[i,i]." The comparisons of Algorithms 1-3 only consume the matrix's
// own row — the process's vector clock — so the vector is the hot-path
// representation here; full matrix tracking (for the knowledge/GC frontier
// extension) is optional and kept consistent with the vector.
#pragma once

#include "clocks/matrix_clock.hpp"
#include "clocks/vector_clock.hpp"
#include "util/types.hpp"

namespace dsmr::nic {

class NodeClock {
 public:
  NodeClock(std::size_t nprocs, Rank self, bool track_matrix)
      : vector_(nprocs), self_(self), track_matrix_(track_matrix) {
    if (track_matrix_) matrix_ = clocks::MatrixClock(nprocs, self);
  }

  Rank self() const { return self_; }
  const clocks::VectorClock& vector() const { return vector_; }

  /// update_local_clock: V[i,i] += 1 before the process performs an event.
  void tick() {
    vector_.tick(self_);
    if (track_matrix_) matrix_.tick();
  }

  /// Absorbs knowledge carried by a message from `from` (componentwise max).
  void merge(Rank from, const clocks::VectorClock& remote) {
    vector_.merge_from(remote);
    if (track_matrix_) matrix_.merge_row(from, remote);
  }

  /// Receive event: tick then merge — the standard vector-clock receive
  /// rule, matching the per-process clock values in the paper's Fig. 5.
  void receive_event(Rank from, const clocks::VectorClock& remote) {
    tick();
    merge(from, remote);
  }

  bool tracks_matrix() const { return track_matrix_; }
  const clocks::MatrixClock& matrix() const { return matrix_; }

 private:
  clocks::VectorClock vector_;
  clocks::MatrixClock matrix_;
  Rank self_;
  bool track_matrix_;
};

}  // namespace dsmr::nic
