// Top-level process coroutine.
//
// A `Task` is the body of one simulated process (the paper's P0..Pn-1).
// Unlike Future<T> coroutines, Tasks start *lazily*: the World schedules
// their first resumption as a time-0 event so that all process bodies begin
// inside Engine::run and interleave deterministically.
#pragma once

#include <coroutine>
#include <functional>
#include <utility>

#include "util/assert.hpp"

namespace dsmr::sim {

class Task {
 public:
  struct promise_type {
    bool finished = false;
    std::function<void()> on_done;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    /// Suspend at the end so the handle stays valid for done() queries and
    /// for ownership-based destruction by ~Task.
    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        h.promise().finished = true;
        if (h.promise().on_done) h.promise().on_done();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    [[noreturn]] void unhandled_exception() {
      util::panic(__FILE__, __LINE__, "unhandled exception in process task");
    }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> handle) : handle_(handle) {}

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// Resumes from the initial suspension point. Called exactly once.
  void start() {
    DSMR_CHECK_MSG(handle_ && !handle_.done(), "starting an invalid task");
    handle_.resume();
  }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.promise().finished; }

  /// Registers a completion callback (used by the World to count finished
  /// processes and detect deadlock).
  void set_on_done(std::function<void()> cb) {
    DSMR_CHECK(handle_);
    handle_.promise().on_done = std::move(cb);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

}  // namespace dsmr::sim
