// Delay-bound schedule perturbation.
//
// The discrete-event simulation is a pure function of its seed, so a seed
// sweep explores interleavings — but only the ones the base latency model's
// jitter can reach. A Perturbation widens that space: it adds a seeded,
// bounded extra skew to the two places where physical timing (not program
// logic) decides ordering — message delivery through the SimFabric and task
// wakeups (Process::sleep / Process::compute).
//
// Two properties make this a *schedule explorer* rather than a fuzzer:
//  * legality — skew only delays deliveries and wakeups; the fabric's
//    per-channel FIFO clamp runs after the skew, so every perturbed run is a
//    legal execution of the unperturbed model (same happens-before rules,
//    different interleaving). Delay-bounding is the classic systematic-
//    search trick (cf. CHESS-style preemption bounds in PAPERS.md).
//  * determinism — skews come from a dedicated RNG stream derived from
//    (world seed, salt), never from the simulation's own streams, so
//    (seed, perturbation) is a complete, replayable schedule coordinate
//    and a disabled perturbation leaves the base run bit-identical.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dsmr::sim {

/// One point in perturbation space: skew bounds plus a salt naming the
/// stream. (seed, PerturbConfig) identifies a schedule for deterministic
/// replay; the default config is the identity (no skew, no RNG draws).
struct PerturbConfig {
  Time min_skew_ns = 0;    ///< inclusive lower bound of each added skew.
  Time max_skew_ns = 0;    ///< inclusive upper bound; 0 = disabled.
  std::uint64_t salt = 0;  ///< selects the perturbation stream for one seed.

  bool enabled() const { return max_skew_ns > 0; }

  bool operator==(const PerturbConfig&) const = default;

  /// "off" or "skew[min,max]ns#salt" — used in reports and repro lines.
  std::string to_string() const {
    if (!enabled()) return "off";
    std::ostringstream out;
    out << "skew[" << min_skew_ns << "," << max_skew_ns << "]ns#" << salt;
    return out.str();
  }
};

/// The exploration grid convention shared by every front-end (dsmr_explore,
/// dsmr_fuzz, examples): variant 0 is always the base (unperturbed)
/// schedule, followed by `salts` independently-salted delay-bound variants.
inline std::vector<PerturbConfig> perturb_variants(Time min_skew_ns, Time max_skew_ns,
                                                   std::uint64_t salts) {
  DSMR_REQUIRE(min_skew_ns <= max_skew_ns,
               "perturbation skew bounds inverted: min=" << min_skew_ns
                                                         << " max=" << max_skew_ns);
  std::vector<PerturbConfig> variants{PerturbConfig{}};
  variants.reserve(salts + 1);
  for (std::uint64_t salt = 1; salt <= salts; ++salt) {
    variants.push_back(PerturbConfig{min_skew_ns, max_skew_ns, salt});
  }
  return variants;
}

/// Draws the per-injection-point skews for one run. Each consumer (the
/// fabric, the wakeup path) holds its own Perturbator forked by stream id,
/// so adding an injection point never shifts another point's draws.
class Perturbator {
 public:
  Perturbator() = default;

  /// `stream` decorrelates the injection points of one (seed, config) pair.
  Perturbator(const PerturbConfig& config, std::uint64_t world_seed, std::uint64_t stream)
      : config_(config),
        rng_(util::SplitMix64(world_seed ^ (0x9e3779b97f4a7c15ULL * (config.salt + 1)) ^
                              (0xd1342543de82ef95ULL * (stream + 1)))
                 .next()) {
    DSMR_REQUIRE(config.min_skew_ns <= config.max_skew_ns,
                 "perturbation skew bounds inverted: min=" << config.min_skew_ns
                                                           << " max=" << config.max_skew_ns);
  }

  const PerturbConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }

  /// The next skew: uniform in [min, max] when enabled, else 0 without
  /// touching the RNG (keeps disabled runs bit-identical to the baseline).
  Time skew() {
    if (!config_.enabled()) return 0;
    const auto span = static_cast<std::uint64_t>(config_.max_skew_ns - config_.min_skew_ns) + 1;
    return config_.min_skew_ns + static_cast<Time>(rng_.below(span));
  }

 private:
  PerturbConfig config_{};
  util::Rng rng_{0};
};

}  // namespace dsmr::sim
