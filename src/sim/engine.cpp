#include "sim/engine.hpp"

#include <utility>

#include "util/assert.hpp"

namespace dsmr::sim {

namespace {
thread_local Engine* g_current_engine = nullptr;

/// RAII guard so nested Engine::run calls (used by some unit tests) restore
/// the previous current engine.
struct CurrentEngineScope {
  explicit CurrentEngineScope(Engine* engine) : previous(g_current_engine) {
    g_current_engine = engine;
  }
  ~CurrentEngineScope() { g_current_engine = previous; }
  Engine* previous;
};
}  // namespace

Engine::~Engine() {
  // Destroy frames of operations that never completed (deadlocks, drained
  // simulations). Each destruction untracks itself via ~promise_type;
  // clearing the registry first turns those into no-ops so the iteration
  // stays valid.
  const auto orphans = std::move(live_frames_);
  live_frames_.clear();
  for (void* address : orphans) {
    std::coroutine_handle<>::from_address(address).destroy();
  }
}

void Engine::schedule_at(Time t, std::function<void()> fn) {
  DSMR_CHECK_MSG(t >= now_, "scheduling into the past: t=" << t << " now=" << now_);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  CurrentEngineScope scope(this);
  std::uint64_t fired = 0;
  while (!queue_.empty() && fired < max_events) {
    // priority_queue::top returns const&; the event must be moved out before
    // pop so the callback survives, hence the const_cast idiom.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.t;
    ++fired;
    ++events_processed_;
    event.fn();
  }
  return fired;
}

Engine* Engine::current() { return g_current_engine; }

}  // namespace dsmr::sim
