// Future/Promise for the discrete-event simulator, usable both as awaitables
// inside C++20 coroutines and as callback registration points for
// callback-style code (the NIC message handlers).
//
// Design rules:
//  * Single-threaded: no atomics, no locks.
//  * Completion resumes waiters through Engine::schedule_now, never inline,
//    so completion chains cannot recurse unboundedly.
//  * `Future<T>` is itself a legal coroutine return type: protocol steps in
//    dsmr::nic / dsmr::core are written as eager coroutines returning
//    Future<T>.
#pragma once

#include <coroutine>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace dsmr::sim {

namespace detail {

/// Resumes `h` through the current engine when available; inline otherwise
/// (e.g. when a Promise is resolved after the simulation drained). Waiter
/// frames live until they complete or their engine is torn down (the Engine
/// destroys still-suspended frames); resolving a Promise after the owning
/// Engine/World has been destroyed is not supported — the waiter handles
/// would dangle.
inline void bounce_resume(std::coroutine_handle<> h) {
  if (Engine* engine = Engine::current()) {
    engine->schedule_now([h] { h.resume(); });
  } else {
    h.resume();
  }
}

template <typename T>
struct SharedState {
  std::optional<T> value;
  std::vector<std::coroutine_handle<>> waiters;
  std::vector<std::function<void(const T&)>> callbacks;

  bool ready() const { return value.has_value(); }

  void set(T v) {
    DSMR_CHECK_MSG(!value.has_value(), "future resolved twice");
    value.emplace(std::move(v));
    auto waiting = std::exchange(waiters, {});
    for (auto h : waiting) bounce_resume(h);
    auto cbs = std::exchange(callbacks, {});
    for (auto& cb : cbs) cb(*value);
  }
};

/// Shared frame-tracking for eager Future coroutine promises: register with
/// the current engine at creation (`track`), deregister on destruction —
/// which is either self-destruction at co_return or the engine's teardown
/// sweep of deadlocked frames.
template <typename Promise>
struct TrackedPromise {
  Engine* tracked_engine = nullptr;

  ~TrackedPromise() {
    if (tracked_engine) {
      tracked_engine->untrack_frame(
          std::coroutine_handle<Promise>::from_promise(static_cast<Promise&>(*this)));
    }
  }

  void track() {
    if ((tracked_engine = Engine::current()) != nullptr) {
      tracked_engine->track_frame(
          std::coroutine_handle<Promise>::from_promise(static_cast<Promise&>(*this)));
    }
  }
};

template <>
struct SharedState<void> {
  bool done = false;
  std::vector<std::coroutine_handle<>> waiters;
  std::vector<std::function<void()>> callbacks;

  bool ready() const { return done; }

  void set() {
    DSMR_CHECK_MSG(!done, "future resolved twice");
    done = true;
    auto waiting = std::exchange(waiters, {});
    for (auto h : waiting) bounce_resume(h);
    auto cbs = std::exchange(callbacks, {});
    for (auto& cb : cbs) cb();
  }
};

}  // namespace detail

template <typename T>
class Future;

/// Manual completion source (for callback-style producers).
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<detail::SharedState<T>>()) {}

  Future<T> future() const;

  void set_value(T v) { state_->set(std::move(v)); }
  bool resolved() const { return state_->ready(); }

 private:
  template <typename U>
  friend class Future;
  std::shared_ptr<detail::SharedState<T>> state_;
};

template <>
class Promise<void> {
 public:
  Promise() : state_(std::make_shared<detail::SharedState<void>>()) {}

  Future<void> future() const;

  void set_value() { state_->set(); }
  bool resolved() const { return state_->ready(); }

 private:
  template <typename U>
  friend class Future;
  std::shared_ptr<detail::SharedState<void>> state_;
};

template <typename T>
class Future {
 public:
  /// Coroutine machinery: `Future<T> f() { co_return x; }` starts eagerly
  /// and resolves when the coroutine returns. Frames register with the
  /// current engine (detail::TrackedPromise) so deadlocked (never-
  /// completing) operations are destroyed at engine teardown instead of
  /// leaking.
  struct promise_type : detail::TrackedPromise<promise_type> {
    std::shared_ptr<detail::SharedState<T>> state =
        std::make_shared<detail::SharedState<T>>();

    Future get_return_object() {
      this->track();
      return Future(state);
    }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_value(T v) { state->set(std::move(v)); }
    [[noreturn]] void unhandled_exception() {
      util::panic(__FILE__, __LINE__, "unhandled exception in simulation coroutine");
    }
  };

  explicit Future(std::shared_ptr<detail::SharedState<T>> state)
      : state_(std::move(state)) {}

  bool ready() const { return state_->ready(); }

  /// Registers a callback to run on completion (immediately if ready).
  void on_ready(std::function<void(const T&)> cb) {
    if (state_->ready()) {
      cb(*state_->value);
    } else {
      state_->callbacks.push_back(std::move(cb));
    }
  }

  /// Value access once ready (also available via co_await).
  const T& value() const {
    DSMR_CHECK_MSG(state_->ready(), "Future::value before completion");
    return *state_->value;
  }

  // Awaitable interface.
  bool await_ready() const { return state_->ready(); }
  void await_suspend(std::coroutine_handle<> h) { state_->waiters.push_back(h); }
  T await_resume() { return *state_->value; }

 private:
  std::shared_ptr<detail::SharedState<T>> state_;
};

template <>
class Future<void> {
 public:
  struct promise_type : detail::TrackedPromise<promise_type> {
    std::shared_ptr<detail::SharedState<void>> state =
        std::make_shared<detail::SharedState<void>>();

    Future get_return_object() {
      this->track();
      return Future(state);
    }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() { state->set(); }
    [[noreturn]] void unhandled_exception() {
      util::panic(__FILE__, __LINE__, "unhandled exception in simulation coroutine");
    }
  };

  explicit Future(std::shared_ptr<detail::SharedState<void>> state)
      : state_(std::move(state)) {}

  bool ready() const { return state_->ready(); }

  void on_ready(std::function<void()> cb) {
    if (state_->ready()) {
      cb();
    } else {
      state_->callbacks.push_back(std::move(cb));
    }
  }

  bool await_ready() const { return state_->ready(); }
  void await_suspend(std::coroutine_handle<> h) { state_->waiters.push_back(h); }
  void await_resume() {}

 private:
  std::shared_ptr<detail::SharedState<void>> state_;
};

template <typename T>
Future<T> Promise<T>::future() const {
  return Future<T>(state_);
}

inline Future<void> Promise<void>::future() const { return Future<void>(state_); }

/// Awaitable virtual-time delay: `co_await Delay{engine, 100}`.
struct Delay {
  Engine& engine;
  Time duration;

  bool await_ready() const { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    engine.schedule_after(duration, [h] { h.resume(); });
  }
  void await_resume() {}
};

}  // namespace dsmr::sim
