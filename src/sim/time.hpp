// Virtual time for the discrete-event simulator.
#pragma once

#include <cstdint>

namespace dsmr::sim {

/// Virtual nanoseconds since simulation start. 64 bits ≈ 584 years of
/// simulated time — overflow is not a practical concern.
using Time = std::uint64_t;

constexpr Time kMicrosecond = 1'000;
constexpr Time kMillisecond = 1'000'000;
constexpr Time kSecond = 1'000'000'000;

}  // namespace dsmr::sim
