// Deterministic discrete-event engine.
//
// Events are (time, sequence) ordered: two events at the same virtual time
// fire in scheduling order, which — together with the seeded RNG — makes a
// whole simulation a pure function of its inputs. Determinism is what lets
// the test suite assert exact race reports and lets users replay a failing
// interleaving from its seed.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace dsmr::sim {

class Engine {
 public:
  Engine() = default;
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (>= now).
  void schedule_at(Time t, std::function<void()> fn);

  /// Schedules `fn` `delay` ns after the current virtual time.
  void schedule_after(Time delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at the current virtual time, after already-queued
  /// same-time events. Used to bounce coroutine resumptions through the
  /// queue so completion callbacks never nest unboundedly.
  void schedule_now(std::function<void()> fn) { schedule_at(now_, std::move(fn)); }

  /// Runs until the queue drains or `max_events` fire.
  /// Returns the number of events processed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  bool idle() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return events_processed_; }

  /// The engine currently inside run() on this thread (nullptr outside).
  /// The simulator is single-threaded; this powers coroutine resumption
  /// without threading an engine pointer through every awaitable.
  static Engine* current();

  /// Live-frame registry for eager Future<T> coroutines: frames register at
  /// creation and deregister on (self-)destruction, so frames still
  /// suspended when the engine is torn down — protocol steps of deadlocked
  /// operations — are destroyed instead of leaked.
  void track_frame(std::coroutine_handle<> h) { live_frames_.insert(h.address()); }
  void untrack_frame(std::coroutine_handle<> h) { live_frames_.erase(h.address()); }

  /// Coroutine frames still registered (suspended protocol steps). After a
  /// drained run, a non-zero count means blocked operations — the quiescence
  /// watchdog (runtime::World::run) reports it instead of letting the
  /// destructor sweep the frames silently.
  std::size_t live_frames() const { return live_frames_.size(); }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<void*> live_frames_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
};

}  // namespace dsmr::sim
