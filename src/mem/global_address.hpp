// Global address space addressing: (processor_name, local_address).
//
// Paper §III.A: "This couple (processor_name, local_address) is the
// addressing system used in the global address space."
#pragma once

#include <cstdint>
#include <string>

#include "util/types.hpp"

namespace dsmr::mem {

struct GlobalAddress {
  Rank rank = kInvalidRank;    ///< the processor whose public memory holds the data.
  std::uint32_t offset = 0;    ///< byte offset inside that processor's public segment.

  bool operator==(const GlobalAddress&) const = default;

  GlobalAddress plus(std::uint32_t bytes) const { return {rank, offset + bytes}; }

  std::string to_string() const {
    return "P" + std::to_string(rank) + "+" + std::to_string(offset);
  }
};

}  // namespace dsmr::mem
