// One processor's public memory: the remotely accessible part of the global
// address space (paper §III.A, Fig. 1).
//
// Shared data must be *registered* as an area before remote access — the
// analogue of RDMA memory registration. Each registered area carries the
// detection state the paper attaches to "each shared piece of data"
// (§IV.B, §V.A): a general-purpose state V (last access) and a write state
// W (last write). Both are adaptive (clocks/epoch.hpp): while the stored
// clock is the clock of one known home-NIC event — always, under the
// paper's protocols — it stays epoch-summarized and race checks against it
// are O(1).
//
// Area lookup is the single hottest metadata operation (every one-sided
// access resolves its target area), so the offset index is a sorted vector
// probed by binary search, and areas live in a deque so `Area*` stays
// stable across registrations (which lets NICs keep resolver caches).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "clocks/epoch.hpp"
#include "clocks/vector_clock.hpp"
#include "mem/global_address.hpp"
#include "util/types.hpp"

namespace dsmr::mem {

using AreaId = std::uint32_t;

/// A registered shared area and its detection metadata.
struct Area {
  AreaId id = 0;
  std::uint32_t offset = 0;  ///< start within the public segment.
  std::uint32_t size = 0;
  std::string name;          ///< diagnostic label used in race reports.

  // Detection state (paper §IV.B), adaptive representation. Sized n (number
  // of processes); epoch-summarized while each stored clock is the clock of
  // one known home event.
  clocks::AdaptiveClock v_state;  ///< last access to the area.
  clocks::AdaptiveClock w_state;  ///< last write to the area.

  /// Full stored clocks (the values Algorithms 1-3 name V(x) and W(x)).
  const clocks::VectorClock& v_clock() const { return v_state.full(); }
  const clocks::VectorClock& w_clock() const { return w_state.full(); }

  // Identities of the events whose clocks are stored above; lets race
  // reports name *both* sides of a race and lets the offline analysis match
  // online reports against ground-truth pairs.
  std::uint64_t last_access_event = 0;  ///< 0 = none yet.
  std::uint64_t last_write_event = 0;
  // Initiator ranks of those events. Shipped alongside the clocks: accesses
  // by the *same* initiator are ordered by program order + FIFO channels
  // even when the clocks cannot prove it (async puts), so the detector
  // exempts same-rank pairs.
  Rank last_access_rank = kInvalidRank;
  Rank last_write_rank = kInvalidRank;

  std::uint32_t end() const { return offset + size; }

  /// Clock metadata footprint in bytes — the storage-overhead experiment
  /// (CLAIM-V.A1) sums this across areas. Charges the compact (varint)
  /// encoding plus the epoch witnesses while summarized, matching what a
  /// production NIC would persist.
  std::size_t clock_bytes() const {
    return v_state.storage_bytes() + w_state.storage_bytes();
  }
};

class PublicSegment {
 public:
  /// A segment of `size` bytes on `home`, in a system of `nprocs` processes
  /// (clock width).
  PublicSegment(Rank home, std::uint32_t size, std::size_t nprocs);

  Rank home() const { return home_; }
  std::uint32_t size() const { return static_cast<std::uint32_t>(bytes_.size()); }
  std::size_t nprocs() const { return nprocs_; }

  /// Registers [offset, offset+size) as a shared area. Areas must not
  /// overlap: an area is the unit of locking and of race detection.
  AreaId register_area(std::uint32_t offset, std::uint32_t size, std::string name);

  /// Registers the next free region (bump allocation); the common path used
  /// by World::alloc_public.
  AreaId allocate_area(std::uint32_t size, std::string name);

  Area& area(AreaId id);
  const Area& area(AreaId id) const;
  std::size_t area_count() const { return areas_.size(); }

  /// The area containing [offset, offset+len), or nullptr if the range is
  /// unregistered or straddles an area boundary. Pointers stay valid for
  /// the segment's lifetime (areas are never deregistered), so callers may
  /// cache the result for ranges inside the same area.
  Area* find_area(std::uint32_t offset, std::uint32_t len);

  /// Raw byte access (bounds-checked).
  std::span<std::byte> bytes(std::uint32_t offset, std::uint32_t len);
  std::span<const std::byte> bytes(std::uint32_t offset, std::uint32_t len) const;

  void write_bytes(std::uint32_t offset, std::span<const std::byte> data);
  std::vector<std::byte> read_bytes(std::uint32_t offset, std::uint32_t len) const;

  /// Total detection-metadata footprint (CLAIM-V.A1).
  std::size_t total_clock_bytes() const;

 private:
  struct IndexEntry {
    std::uint32_t offset;
    AreaId id;
  };

  Rank home_;
  std::size_t nprocs_;
  std::vector<std::byte> bytes_;
  std::deque<Area> areas_;              ///< deque: stable Area* across growth.
  std::vector<IndexEntry> by_offset_;   ///< sorted by offset; binary-searched.
  std::uint32_t bump_ = 0;
};

}  // namespace dsmr::mem
