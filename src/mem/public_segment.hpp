// One processor's public memory: the remotely accessible part of the global
// address space (paper §III.A, Fig. 1).
//
// Shared data must be *registered* as an area before remote access — the
// analogue of RDMA memory registration. The segment owns the *addressing*
// facts only: offsets, sizes, names, and the offset→area index. The
// detection state the paper attaches to "each shared piece of data" (§IV.B,
// §V.A — the V/W clocks, epoch witnesses, prior event identities) lives in
// detect::ShardedDetector, keyed by the same dense AreaId this segment
// assigns; the two registries grow in lockstep through the runtime's alloc
// paths.
//
// Area lookup is the single hottest metadata operation (every one-sided
// access resolves its target area), so the index is a sorted vector probed
// by binary search — with *amortized* insertion: bump-allocated areas (the
// production path — monotonically increasing offsets) append straight to
// the sorted prefix in O(1), and arbitrary-offset registrations go to a
// bounded unsorted tail that is merged (sort + inplace_merge) only when it
// fills. Lookups binary-search the prefix and linearly scan the ≤64-entry
// tail. Areas live in a deque so `Area*` stays stable across registrations.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace dsmr::mem {

using AreaId = std::uint32_t;

/// A registered shared area: addressing and identity only. Detection
/// metadata for the area lives in detect::ShardedDetector under this id.
struct Area {
  AreaId id = 0;
  std::uint32_t offset = 0;  ///< start within the public segment.
  std::uint32_t size = 0;
  std::string name;          ///< diagnostic label used in race reports.

  std::uint32_t end() const { return offset + size; }
};

class PublicSegment {
 public:
  /// A segment of `size` bytes on `home`, in a system of `nprocs` processes
  /// (clock width).
  PublicSegment(Rank home, std::uint32_t size, std::size_t nprocs);

  Rank home() const { return home_; }
  std::uint32_t size() const { return static_cast<std::uint32_t>(bytes_.size()); }
  std::size_t nprocs() const { return nprocs_; }

  /// Registers [offset, offset+size) as a shared area. Areas must not
  /// overlap: an area is the unit of locking and of race detection.
  AreaId register_area(std::uint32_t offset, std::uint32_t size, std::string name);

  /// Registers the next free region (bump allocation); the common path used
  /// by World::alloc_public. O(1) amortized — appends to the sorted prefix.
  AreaId allocate_area(std::uint32_t size, std::string name);

  Area& area(AreaId id);
  const Area& area(AreaId id) const;
  std::size_t area_count() const { return areas_.size(); }

  /// The area containing [offset, offset+len), or nullptr if the range is
  /// unregistered or straddles an area boundary. Pointers stay valid for
  /// the segment's lifetime (areas are never deregistered), so callers may
  /// cache the result for ranges inside the same area. Read-only and safe
  /// to call concurrently once registrations have quiesced.
  Area* find_area(std::uint32_t offset, std::uint32_t len);

  /// Raw byte access (bounds-checked).
  std::span<std::byte> bytes(std::uint32_t offset, std::uint32_t len);
  std::span<const std::byte> bytes(std::uint32_t offset, std::uint32_t len) const;

  void write_bytes(std::uint32_t offset, std::span<const std::byte> data);
  std::vector<std::byte> read_bytes(std::uint32_t offset, std::uint32_t len) const;

 private:
  struct IndexEntry {
    std::uint32_t offset;
    AreaId id;
  };

  /// Arbitrary-offset registrations buffer here until the tail fills, then
  /// merge into the sorted prefix — O(kMaxTail) worst-case lookup overhead,
  /// amortized O(log n) insertion instead of the old O(n) vector::insert.
  static constexpr std::size_t kMaxTail = 64;

  void flush_tail();

  Rank home_;
  std::size_t nprocs_;
  std::vector<std::byte> bytes_;
  std::deque<Area> areas_;              ///< deque: stable Area* across growth.
  std::vector<IndexEntry> by_offset_;   ///< sorted prefix; binary-searched.
  std::vector<IndexEntry> tail_;        ///< unsorted tail; linearly scanned.
  std::uint32_t bump_ = 0;
};

}  // namespace dsmr::mem
