#include "mem/public_segment.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dsmr::mem {

PublicSegment::PublicSegment(Rank home, std::uint32_t size, std::size_t nprocs)
    : home_(home), nprocs_(nprocs), bytes_(size) {
  DSMR_REQUIRE(nprocs > 0, "segment needs a positive process count");
}

AreaId PublicSegment::register_area(std::uint32_t offset, std::uint32_t size,
                                    std::string name) {
  DSMR_REQUIRE(size > 0, "area '" << name << "' must have positive size");
  DSMR_REQUIRE(offset + size <= bytes_.size(),
               "area '" << name << "' [" << offset << "," << offset + size
                        << ") exceeds segment of " << bytes_.size() << " bytes");
  // Overlap check against neighbours in the sorted prefix, then against
  // every entry of the (bounded) unsorted tail. Rejection stays immediate —
  // an overlapping registration must die here, not at some later flush.
  const auto next = std::lower_bound(
      by_offset_.begin(), by_offset_.end(), offset,
      [](const IndexEntry& e, std::uint32_t o) { return e.offset < o; });
  if (next != by_offset_.end()) {
    DSMR_REQUIRE(offset + size <= areas_[next->id].offset,
                 "area '" << name << "' overlaps area '" << areas_[next->id].name << "'");
  }
  if (next != by_offset_.begin()) {
    const auto prev = std::prev(next);
    DSMR_REQUIRE(areas_[prev->id].end() <= offset,
                 "area '" << name << "' overlaps area '" << areas_[prev->id].name << "'");
  }
  for (const IndexEntry& entry : tail_) {
    const Area& other = areas_[entry.id];
    DSMR_REQUIRE(offset + size <= other.offset || other.end() <= offset,
                 "area '" << name << "' overlaps area '" << other.name << "'");
  }

  const auto id = static_cast<AreaId>(areas_.size());
  Area area;
  area.id = id;
  area.offset = offset;
  area.size = size;
  area.name = std::move(name);
  areas_.push_back(std::move(area));
  if (tail_.empty() && (by_offset_.empty() || by_offset_.back().offset < offset)) {
    // The bump-allocation path: offsets arrive in increasing order, so the
    // sorted prefix grows by plain O(1) append.
    by_offset_.push_back(IndexEntry{offset, id});
  } else {
    tail_.push_back(IndexEntry{offset, id});
    if (tail_.size() >= kMaxTail) flush_tail();
  }
  bump_ = std::max(bump_, offset + size);
  return id;
}

void PublicSegment::flush_tail() {
  std::sort(tail_.begin(), tail_.end(),
            [](const IndexEntry& a, const IndexEntry& b) { return a.offset < b.offset; });
  const std::size_t middle = by_offset_.size();
  by_offset_.insert(by_offset_.end(), tail_.begin(), tail_.end());
  std::inplace_merge(
      by_offset_.begin(), by_offset_.begin() + static_cast<std::ptrdiff_t>(middle),
      by_offset_.end(),
      [](const IndexEntry& a, const IndexEntry& b) { return a.offset < b.offset; });
  tail_.clear();
}

AreaId PublicSegment::allocate_area(std::uint32_t size, std::string name) {
  return register_area(bump_, size, std::move(name));
}

Area& PublicSegment::area(AreaId id) {
  DSMR_CHECK_MSG(id < areas_.size(), "area id " << id << " out of range");
  return areas_[id];
}

const Area& PublicSegment::area(AreaId id) const {
  DSMR_CHECK_MSG(id < areas_.size(), "area id " << id << " out of range");
  return areas_[id];
}

Area* PublicSegment::find_area(std::uint32_t offset, std::uint32_t len) {
  const auto it = std::upper_bound(
      by_offset_.begin(), by_offset_.end(), offset,
      [](std::uint32_t o, const IndexEntry& e) { return o < e.offset; });
  if (it != by_offset_.begin()) {
    Area& candidate = areas_[std::prev(it)->id];
    if (offset >= candidate.offset && offset + len <= candidate.end()) return &candidate;
  }
  for (const IndexEntry& entry : tail_) {
    Area& candidate = areas_[entry.id];
    if (offset >= candidate.offset && offset + len <= candidate.end()) return &candidate;
  }
  return nullptr;
}

std::span<std::byte> PublicSegment::bytes(std::uint32_t offset, std::uint32_t len) {
  DSMR_REQUIRE(offset + len <= bytes_.size(), "byte range out of segment bounds");
  return {bytes_.data() + offset, len};
}

std::span<const std::byte> PublicSegment::bytes(std::uint32_t offset,
                                                std::uint32_t len) const {
  DSMR_REQUIRE(offset + len <= bytes_.size(), "byte range out of segment bounds");
  return {bytes_.data() + offset, len};
}

void PublicSegment::write_bytes(std::uint32_t offset, std::span<const std::byte> data) {
  auto dst = bytes(offset, static_cast<std::uint32_t>(data.size()));
  std::copy(data.begin(), data.end(), dst.begin());
}

std::vector<std::byte> PublicSegment::read_bytes(std::uint32_t offset,
                                                 std::uint32_t len) const {
  auto src = bytes(offset, len);
  return {src.begin(), src.end()};
}

}  // namespace dsmr::mem
