#include "trace/trace.hpp"

#include <iomanip>
#include <set>
#include <sstream>

namespace dsmr::trace {

MessageRecorder::MessageRecorder(net::SimFabric& fabric) {
  fabric.set_tap([this](sim::Time send_time, sim::Time deliver_time,
                        const net::Message& message) {
    records_.push_back(MessageRecord{send_time, deliver_time, message.type,
                                     message.src, message.dst, message.op_id,
                                     message.wire_size()});
  });
}

std::string json_escape(const std::string& text) {
  std::ostringstream out;
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c) << std::dec;
        } else {
          out << c;
        }
    }
  }
  return out.str();
}

namespace {

std::string clock_json(const clocks::VectorClock& clock) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < clock.size(); ++i) {
    if (i > 0) out << ",";
    out << clock[i];
  }
  out << "]";
  return out.str();
}

/// Virtual ns → trace µs with fractional precision.
double to_us(sim::Time t) { return static_cast<double>(t) / 1000.0; }

}  // namespace

std::string to_json(const core::AccessEvent& event) {
  std::ostringstream out;
  out << "{\"kind\":\"access\",\"id\":" << event.id << ",\"t\":" << event.time
      << ",\"rank\":" << event.rank << ",\"op\":\""
      << core::to_string(event.kind) << "\",\"home\":" << event.home
      << ",\"area\":" << event.area << ",\"offset\":" << event.offset
      << ",\"len\":" << event.length << ",\"issue_clock\":"
      << clock_json(event.issue_clock) << ",\"apply_seq\":" << event.apply_seq
      << ",\"apply_clock\":" << clock_json(event.apply_clock) << "}";
  return out.str();
}

std::string to_json(const core::RaceReport& report) {
  std::ostringstream out;
  out << "{\"kind\":\"race\",\"id\":" << report.id << ",\"t\":" << report.time
      << ",\"accessor\":" << report.accessor << ",\"op\":\""
      << core::to_string(report.kind) << "\",\"home\":" << report.home
      << ",\"area\":" << report.area << ",\"area_name\":\""
      << json_escape(report.area_name) << "\",\"event\":" << report.event_id
      << ",\"prior_event\":" << report.prior_event_id << ",\"accessor_clock\":"
      << clock_json(report.accessor_clock) << ",\"stored_clock\":"
      << clock_json(report.stored_clock) << ",\"against\":\""
      << (report.against == core::ComparedAgainst::kW ? "W" : "V") << "\"}";
  return out.str();
}

std::string to_json(const MessageRecord& record) {
  std::ostringstream out;
  out << "{\"kind\":\"message\",\"type\":\"" << net::to_string(record.type)
      << "\",\"src\":" << record.src << ",\"dst\":" << record.dst
      << ",\"send\":" << record.send_time << ",\"deliver\":" << record.deliver_time
      << ",\"op\":" << record.op_id << ",\"bytes\":" << record.wire_bytes << "}";
  return out.str();
}

void write_jsonl(std::ostream& out, const core::EventLog& events,
                 const core::RaceLog& races) {
  for (const auto& event : events.events()) out << to_json(event) << "\n";
  for (const auto& report : races.reports()) out << to_json(report) << "\n";
}

std::string to_chrome_trace(const core::EventLog& events, const core::RaceLog& races,
                            const std::vector<MessageRecord>& messages) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out << std::setprecision(3);
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& json) {
    if (!first) out << ",";
    first = false;
    out << json;
  };

  for (const auto& event : events.events()) {
    std::ostringstream e;
    e.setf(std::ios::fixed);
    e << std::setprecision(3);
    e << "{\"name\":\"" << core::to_string(event.kind) << " P" << event.home << "/a"
      << event.area << "\",\"ph\":\"i\",\"ts\":" << to_us(event.time)
      << ",\"pid\":0,\"tid\":" << event.rank << ",\"s\":\"t\",\"args\":{\"event\":"
      << event.id << ",\"issue_clock\":\"" << event.issue_clock.to_string()
      << "\"}}";
    emit(e.str());
  }
  for (const auto& report : races.reports()) {
    std::ostringstream e;
    e.setf(std::ios::fixed);
    e << std::setprecision(3);
    e << "{\"name\":\"RACE " << json_escape(report.area_name)
      << "\",\"ph\":\"i\",\"ts\":" << to_us(report.time)
      << ",\"pid\":0,\"tid\":" << report.accessor
      << ",\"s\":\"g\",\"args\":{\"stored\":\"" << report.stored_clock.to_string()
      << "\",\"accessor\":\"" << report.accessor_clock.to_string() << "\"}}";
    emit(e.str());
  }
  // Messages as flow event pairs (s = start at sender, f = finish at
  // receiver), which trace viewers render as arrows between the rank rows.
  std::uint64_t flow_id = 1;
  for (const auto& record : messages) {
    {
      std::ostringstream e;
      e.setf(std::ios::fixed);
      e << std::setprecision(3);
      e << "{\"name\":\"" << net::to_string(record.type)
        << "\",\"ph\":\"s\",\"id\":" << flow_id << ",\"ts\":" << to_us(record.send_time)
        << ",\"pid\":0,\"tid\":" << record.src << ",\"cat\":\"msg\"}";
      emit(e.str());
    }
    {
      std::ostringstream e;
      e.setf(std::ios::fixed);
      e << std::setprecision(3);
      e << "{\"name\":\"" << net::to_string(record.type)
        << "\",\"ph\":\"f\",\"bp\":\"e\",\"id\":" << flow_id
        << ",\"ts\":" << to_us(record.deliver_time) << ",\"pid\":0,\"tid\":"
        << record.dst << ",\"cat\":\"msg\"}";
      emit(e.str());
    }
    ++flow_id;
  }
  // Rank-naming metadata.
  std::set<Rank> ranks;
  for (const auto& event : events.events()) ranks.insert(event.rank);
  for (const auto& record : messages) {
    ranks.insert(record.src);
    ranks.insert(record.dst);
  }
  for (const Rank rank : ranks) {
    std::ostringstream e;
    e << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << rank
      << ",\"args\":{\"name\":\"P" << rank << "\"}}";
    emit(e.str());
  }
  out << "]}";
  return out.str();
}

}  // namespace dsmr::trace
