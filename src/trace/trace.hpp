// Trace export for external tooling.
//
// Two formats:
//  * JSONL — one JSON object per line for access events and race reports;
//    trivially consumable by jq / pandas for offline analysis.
//  * Chrome Trace Event Format (chrome://tracing, Perfetto) — one track per
//    rank; accesses and race reports as instant events, wire messages as
//    flow arrows between ranks. Open the file in a trace viewer to *see*
//    the interleaving that produced a race.
//
// Message recording hooks the SimFabric tap; attach a MessageRecorder
// before World::run.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/event_log.hpp"
#include "core/race_report.hpp"
#include "net/message.hpp"
#include "net/sim_fabric.hpp"
#include "sim/time.hpp"
#include "util/types.hpp"

namespace dsmr::trace {

/// One observed wire message (recorded via the fabric tap).
struct MessageRecord {
  sim::Time send_time = 0;
  sim::Time deliver_time = 0;
  net::MsgType type = net::MsgType::kSignal;
  Rank src = kInvalidRank;
  Rank dst = kInvalidRank;
  std::uint64_t op_id = 0;
  std::size_t wire_bytes = 0;
};

/// Captures every message sent through a SimFabric. Attach before the run;
/// detach (or destroy the fabric first) when done.
class MessageRecorder {
 public:
  explicit MessageRecorder(net::SimFabric& fabric);

  const std::vector<MessageRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

 private:
  std::vector<MessageRecord> records_;
};

/// Minimal JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& text);

/// One-line JSON renderings.
std::string to_json(const core::AccessEvent& event);
std::string to_json(const core::RaceReport& report);
std::string to_json(const MessageRecord& record);

/// Writes events then races as JSONL ({"kind":"access"|"race",...}).
void write_jsonl(std::ostream& out, const core::EventLog& events,
                 const core::RaceLog& races);

/// Renders a complete Chrome Trace Event Format document. Times are mapped
/// virtual-ns → trace-µs (the format's unit) with ns precision retained via
/// fractional microseconds.
std::string to_chrome_trace(const core::EventLog& events, const core::RaceLog& races,
                            const std::vector<MessageRecord>& messages);

}  // namespace dsmr::trace
