// Running fuzz::Programs on the real-threads backend, and the differential
// harness that compares backends by verdict signature.
//
// The same Program IR drives both backends: spawn_program (fuzz/program.hpp)
// installs coroutines on the sim World, spawn_program_threaded installs the
// blocking twin of the same interpreter on a ThreadWorld — op for op, with
// every phase boundary executed as a dissemination barrier over tagged
// signals (every BoundaryKind is a full happens-before frontier and the
// collective *values* never affect detection, so the barrier is
// verdict-equivalent; Phase::skip_rank maps to the arrive-only half, as in
// pgas::Team::barrier_arrive).
//
// The comparison contract is deliberately weaker than the sim-vs-sim grid:
// real schedules are not seeded-replayable, so runs are compared by final
// *verdict signature* — did the run complete, and which areas raced — never
// by schedule or by per-event clock values. Per expectation:
//
//  * kClean     — zero races on every run of BOTH backends. Sound on the
//    threaded backend because the generator's cleanliness discipline
//    (fuzz/generate.hpp) only needs program order + boundary frontiers +
//    lock handoff + completion edges, all of which the ThreadWorld detector
//    honors; any flag on either backend is a divergence.
//  * kRacy      — the planted area must be flagged on EVERY run of BOTH
//    backends: the construction isolates the contested area from all
//    clock-merge paths, so whichever side the stripe mutex serializes
//    second observes a concurrent stored clock.
//  * kSometimes — manifestation is schedule luck; real and simulated
//    schedule spaces differ (the threaded backend has no home node clock
//    for probe gets to merge), so rates are compared *informationally*
//    only — counted, reported, never failed on.
//
// A threaded run that fails to complete (stuck ranks at the deadline) is
// always a divergence: generated programs are deadlock-free by construction.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fuzz/generate.hpp"
#include "fuzz/program.hpp"
#include "record/recorder.hpp"
#include "runtime/thread_world.hpp"
#include "util/cli.hpp"

namespace dsmr::fuzz {

/// Tag of the dissemination-barrier signal for (phase, round) on the
/// threaded backend. Exported so explore/model.hpp flattens phase
/// boundaries into exactly the signal/wait micro-ops run_boundary executes
/// (one source of truth: a synthesized log replays through ReplayGate only
/// if every tag matches).
std::uint64_t boundary_signal_tag(std::size_t phase, std::uint32_t round);

/// Knobs for one threaded execution of a program.
struct ThreadRunOptions {
  int stripes = 8;
  std::chrono::milliseconds timeout{10'000};
  core::DetectorMode mode = core::DetectorMode::kDualClock;
  bool lock_clock_handoff = true;
  bool acked_puts = true;
  /// Record this run's ordering (record/recorder.hpp); finish() is called
  /// with the run's verdicts before run_program_threaded returns.
  record::Recorder* recorder = nullptr;
  /// Replay a recorded log instead of free-running (gated, deterministic).
  const record::Log* replay = nullptr;
};

/// Allocates the program's areas (same homes and "fz<i>" names as the sim
/// spawn path) and installs the blocking interpreter on every rank of a
/// not-yet-run ThreadWorld.
ProgramHandles spawn_program_threaded(runtime::ThreadWorld& world,
                                      std::shared_ptr<const Program> program);

/// One threaded run's verdict signature.
struct ThreadProgramOutcome {
  runtime::ThreadRunReport report;
  std::set<std::string> racy_areas;          ///< area names with >= 1 report.
  std::vector<core::RaceReport> reports;     ///< full reports, for signatures.
};

ThreadProgramOutcome run_program_threaded(const Program& program,
                                          const ThreadRunOptions& options);

/// One program, both backends (or threaded-only), signatures compared per
/// the expectation contract above.
struct BackendDiffOptions {
  ThreadRunOptions thread;
  int thread_reps = 3;                  ///< real-schedule samples.
  std::uint64_t sim_schedule_seeds = 2; ///< sim oracle runs (seeds 1..K).
  bool compare_sim = true;              ///< false: threaded self-check only.
  /// Record one extra threaded run, fold its log offline, and gate-replay it
  /// twice: fold and both replays must reproduce the recorded run's verdict
  /// signature exactly. This turns kSometimes manifestations — informational
  /// in the free-running reps — into replayable coordinates: whatever the
  /// recorded schedule decided IS pinned and must re-derive identically.
  bool record_replay = true;
};

struct BackendDiffResult {
  std::vector<std::string> failures;  ///< human-readable divergences.
  std::uint64_t thread_runs = 0;
  std::uint64_t thread_manifested = 0;  ///< threaded runs with >= 1 race.
  std::uint64_t sim_runs = 0;
  std::uint64_t sim_manifested = 0;
  std::uint64_t record_replay_checks = 0;  ///< recorded runs verified.
  std::uint64_t checks = 0;    ///< inline checks across threaded runs.
  std::uint64_t wall_ns = 0;   ///< summed threaded run() wall time.

  bool passed() const { return failures.empty(); }
};

BackendDiffResult check_program_backends(const Program& program,
                                         const BackendDiffOptions& options);

/// The `dsmr_fuzz --backend threaded|both` sweep: generates programs with
/// the same seed→(clean | planted kind) mapping as the uniform sim sweep
/// (plant_for_seed / kind_for_seed), runs each through
/// check_program_backends, and aggregates.
struct ThreadSweepConfig {
  GenConfig base;
  util::SeedRange seeds{1, 64};
  double planted_fraction = 0.5;
  std::vector<BugKind> bug_kinds;
  BackendDiffOptions diff;
  bool verbose = false;
};

struct ThreadSweepDivergence {
  std::uint64_t program_seed = 0;
  std::string arm;      ///< "clean" or the planted kind name.
  std::string failure;
};

struct ThreadSweepResult {
  std::uint64_t programs = 0;
  std::uint64_t clean_programs = 0;
  std::uint64_t racy_programs = 0;
  std::uint64_t sometimes_programs = 0;
  std::uint64_t thread_runs = 0;
  std::uint64_t thread_manifested = 0;
  std::uint64_t sim_runs = 0;
  std::uint64_t sim_manifested = 0;
  std::uint64_t record_replay_checks = 0;
  std::uint64_t checks = 0;
  std::uint64_t wall_ns = 0;
  std::vector<ThreadSweepDivergence> divergences;

  /// Inline detector throughput over the threaded runs (the docs/perf.md
  /// real-cores number).
  double checks_per_sec() const {
    return wall_ns == 0 ? 0.0
                        : static_cast<double>(checks) * 1e9 /
                              static_cast<double>(wall_ns);
  }
};

ThreadSweepResult run_thread_sweep(const ThreadSweepConfig& config);

}  // namespace dsmr::fuzz
