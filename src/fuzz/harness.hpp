// Fuzz harness: one generated program through the full differential
// conformance grid, plus the fuzz-only invariants its construction allows —
// and the sweep layer that schedules which programs to try next.
//
// A generated program is registered as a first-class analysis::Scenario and
// run through analysis::run_conformance, so every (schedule seed ×
// perturbation) gets the complete cross-check stack (epoch fast path vs
// full-VC oracle, live vs replay, precision, cross-mode writes). On top,
// the generator's construction guarantees are checked per expectation:
//
//  * kClean     — zero reports and zero truth pairs on every schedule
//    (conformance's race-in-clean-scenario invariant covers this);
//  * kRacy      — the planted pair must manifest on EVERY schedule, in
//    ground truth and in BOTH detector modes (check
//    `planted-bug-not-detected`; a raceless schedule indicts the generator
//    itself: `planted-race-vanished`);
//  * kSometimes — the planted bug is schedule-dependent: it must manifest
//    on at least one explored schedule (`sometimes-bug-never-manifested`
//    otherwise — the generator guarantees the base variant manifests by
//    construction), every manifesting schedule must be flagged by both
//    detector modes and live (`sometimes-bug-not-detected`), silent
//    schedules must produce zero reports (`sometimes-noise`), and the
//    manifestation *rate* over the grid is measured and carried through
//    repro files and JSON summaries.
//
// Fault plans (net/fault.hpp) plug straight in: each wire-enabled plan in
// `FuzzCheckOptions::fault_plans` rides the conformance grid's fault axis
// next to every (schedule seed × perturbation) base point. On top of the
// conformance layer's clean-failure machinery, the fuzz layer enforces its
// own *fault-transparency*: kClean and kRacy programs have schedule-
// invariant verdicts by construction, so every completed recoverable fault
// run must match its fault-free base's verdict signature bit-for-bit
// (kSometimes manifestation is schedule luck, which faults legitimately
// re-roll — exempt). A plan carrying `drop_live_reports` re-arms the
// test-only harness hook (pretend the live detector stayed silent, so every
// planted-bug schedule violates planted-bug-not-detected) so CI can
// exercise the failure → shrink → repro → replay loop end-to-end without a
// real detector bug.
//
// Failing coordinates serialize into a self-contained repro file (program
// text + schedule coordinate + fault plan + fired check + measured
// manifestation) that `dsmr_fuzz --replay` re-runs bit-identically — the
// full (seed, perturbation, fault-plan) replay coordinate round-trips.
//
// The sweep layer (`run_fuzz_sweep`) turns program seeds into verdicts at
// scale, under one of two seed schedules:
//
//  * uniform  — the classic sweep: sequential seeds, one op-mix profile,
//    planted kinds hash-assigned; bit-identical across thread counts.
//  * coverage — a novelty bandit (UCB over profile × {clean, bug kind}
//    arms): each finished program folds into a compact *coverage
//    signature* (sync/op/transport mix + verdict path), and arms that
//    keep producing unseen signatures get pulled more. With `corpus_dir`
//    set, signatures persist across runs (nightly CI keeps a corpus), so
//    novelty is judged against everything ever seen.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "analysis/conformance.hpp"
#include "fuzz/generate.hpp"
#include "fuzz/program.hpp"
#include "net/fault.hpp"
#include "sim/perturb.hpp"
#include "util/cli.hpp"

namespace dsmr::fuzz {

struct FuzzCheckOptions {
  std::uint64_t first_schedule_seed = 1;
  std::uint64_t schedule_seeds = 3;
  int threads = 1;
  /// Keep the identity perturbation first (as the conformance grid does):
  /// the kSometimes construction guarantees manifestation on the base
  /// variant, so dropping it voids that part of the contract.
  std::vector<sim::PerturbConfig> perturbations{sim::PerturbConfig{}};
  /// Fault plans for the grid's fault axis. Wire-enabled plans run next to
  /// every (seed, perturbation) base point and feed the fault-transparency
  /// and clean-failure invariants; any plan with `drop_live_reports` set
  /// arms the test-only detector-silence hook for the whole grid.
  std::vector<net::FaultPlan> fault_plans;
  std::string scenario_name = "fuzz";
  /// Arm the exhaustive-exploration invariant (explore/dpor.hpp): programs
  /// within explore::exhaustive_eligible size limits are run through
  /// DPOR+sleep-set exploration of the threaded op model — every
  /// kSometimes planted bug must be FOUND, kRacy must flag on every
  /// interleaving, and clean programs must CERTIFY clean over the reduced
  /// space. Off by default: exploration cost is exponential in program
  /// size, and the sampled grid stays the default contract.
  bool exhaustive = false;
  /// Budget for the exhaustive invariant; tripping it is a failure
  /// ("explore-limit" — an incomplete exploration certifies nothing).
  std::uint64_t exhaustive_max_interleavings = 1 << 20;
};

struct ProgramVerdict {
  analysis::ConformanceReport report;
  /// Conformance disagreements plus fuzz-invariant violations, each with
  /// its reproducing (schedule seed, perturbation).
  std::vector<analysis::Divergence> failures;
  /// Manifestation over the *fault-free* grid: completed base schedules
  /// with >= 1 ground-truth racing pair. (kClean programs: always 0; kRacy:
  /// must equal completed_runs; kSometimes: must be >= 1, the rate is the
  /// metric.) Fault runs are excluded — a fault variant is a different
  /// schedule, and the construction guarantees quantify over the fault-free
  /// grid; fault runs are instead held to transparency/clean-failure.
  std::uint64_t manifested_runs = 0;
  std::uint64_t completed_runs = 0;

  /// Exhaustive-exploration summary (FuzzCheckOptions::exhaustive). When
  /// the program is too large for the size gate, `explored` stays false
  /// and `explore_skipped` names the reason; otherwise the counters mirror
  /// explore::ExploreReport.
  bool explored = false;
  std::string explore_skipped;
  std::uint64_t explored_interleavings = 0;
  std::uint64_t explored_pruned = 0;
  std::uint64_t explored_racy = 0;
  std::uint64_t explored_planted_flagged = 0;
  std::uint64_t explore_signatures = 0;

  bool passed() const { return failures.empty(); }
  double manifestation_rate() const {
    return completed_runs == 0 ? 0.0
                               : static_cast<double>(manifested_runs) /
                                     static_cast<double>(completed_runs);
  }
};

/// Runs the program across the grid and evaluates every invariant. The
/// World uses default detection settings (dual-clock, acked puts, lock
/// handoff) — the regime the generator's cleanliness proof assumes.
ProgramVerdict check_program(const Program& program, const FuzzCheckOptions& options);

/// The stable leading name of a divergence check ("precision: 3/4 ..." →
/// "precision"); repro files record names, not details.
std::string check_name(const std::string& check);

// ---------------------------------------------------------------------------
// Repro files
// ---------------------------------------------------------------------------

/// A self-contained failing coordinate: program + schedule + fired check,
/// plus the grid-level manifestation measurement at find time.
struct Repro {
  std::string check;               ///< normalized check name.
  /// The failing run's fault plan — the third leg of the replay coordinate,
  /// serialized as its canonical plan text ("off" when fault-free).
  net::FaultPlan fault{};
  std::uint64_t program_seed = 0;  ///< generator provenance (0 = handwritten).
  std::uint64_t schedule_seed = 1;
  sim::PerturbConfig perturb{};
  bool shrunk = false;
  /// The measured manifestation over the full grid the failure was found
  /// on (manifested / completed schedules) — the kSometimes rate metadata;
  /// 0/0 when the grid never completed a run.
  std::uint64_t manifested = 0;
  std::uint64_t schedules = 0;
  /// v4: basename of the companion ordering log recorded at this coordinate
  /// ("" = none). The .repro + log pair replays byte-identically: re-running
  /// the coordinate in any process re-records the exact same bytes
  /// (check_repro_log).
  std::string record_log;
  Program program;
};

std::string serialize_repro(const Repro& repro);
std::optional<Repro> parse_repro(const std::string& text, std::string* error = nullptr);

/// Re-runs one exact (schedule seed, perturbation, fault plan) coordinate of
/// `program` with an ordering recorder attached and returns the sealed log's
/// serialized bytes. Deterministic: the same coordinate yields the same
/// bytes in any process, so recorded logs byte-compare across machines. The
/// log carries the program text and coordinate as metadata, making it
/// self-describing for dsmr_replay.
std::vector<std::byte> record_coordinate(const Program& program,
                                         std::uint64_t program_seed,
                                         std::uint64_t schedule_seed,
                                         const sim::PerturbConfig& perturb,
                                         const net::FaultPlan& fault);

/// Validates a repro's companion log: parses `log_bytes` (structured error on
/// corruption), checks its embedded verdicts fold back identically, then
/// re-records the repro's coordinate and byte-compares. "" = identical.
std::string check_repro_log(const Repro& repro,
                            std::span<const std::byte> log_bytes);

/// Re-runs the repro's single schedule under its recorded fault hook.
/// Returns the normalized names of every check that fired (empty = clean).
std::vector<std::string> replay_repro(const Repro& repro, int threads = 1);

/// True when replaying reproduces the recorded check.
bool reproduces(const Repro& repro, int threads = 1);

// ---------------------------------------------------------------------------
// Coverage signatures and seed scheduling
// ---------------------------------------------------------------------------

/// How the sweep picks the next program to generate.
enum class ScheduleMode : std::uint8_t { kUniform, kCoverage };
const char* to_string(ScheduleMode mode);
std::optional<ScheduleMode> parse_schedule_mode(const std::string& text);
/// Strict variant for library callers: panics on unknown names (the CLI
/// pre-validates with parse_schedule_mode and exits 2 instead).
ScheduleMode schedule_mode_from_name(const std::string& text);

/// The compact behavior fingerprint of one (program, verdict): expectation
/// and bug kind, log2-bucketed op-kind histogram (the wire-transport mix:
/// puts/gets/signals/waits and locked accesses each drive a different
/// message pattern), boundary-kind set, and the verdict path (manifestation
/// band, deadlocks, lockset divergence, area-recall band, failures).
/// Novelty of this string is the coverage signal.
std::string coverage_signature(const Program& program, const ProgramVerdict& verdict);

/// Signature persistence for cross-run coverage (`--corpus-dir`). The
/// directory is created on open; a corpus that cannot be created or read
/// is a hard error (DSMR_REQUIRE) — a silently-empty corpus would reset
/// novelty and look like a coverage win.
class Corpus {
 public:
  /// In-memory corpus (no persistence).
  Corpus() = default;
  /// Opens `dir`, loading `dir`/signatures.tsv when present.
  explicit Corpus(const std::string& dir);

  bool known(const std::string& signature) const {
    return signatures_.count(signature) != 0;
  }
  std::size_t size() const { return signatures_.size(); }

  /// Records a signature; returns true when it was new. New entries are
  /// appended to the backing file (when persistent) by flush().
  bool add(const std::string& signature, const std::string& arm, std::uint64_t seed);

  /// Appends this run's new entries to `dir`/signatures.tsv. No-op for
  /// in-memory corpora.
  void flush();

 private:
  std::string dir_;
  std::set<std::string> signatures_;
  std::vector<std::string> fresh_lines_;
};

// ---------------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------------

/// One program's sweep outcome (deterministic order within the result).
struct SweepOutcome {
  bool ran = false;               ///< false past the budget cut.
  std::uint64_t program_seed = 0;
  std::string arm;                ///< "<profile>/<clean|bug-kind>".
  Expectation expect = Expectation::kClean;
  std::optional<BugKind> bug;
  std::uint64_t schedules = 0;
  std::uint64_t manifested = 0;
  std::uint64_t completed = 0;
  std::uint64_t fault_runs = 0;     ///< runs under a wire-fault plan.
  std::uint64_t watchdog_runs = 0;  ///< non-quiescent runs with a diagnostic.
  std::size_t ops = 0;
  std::string signature;
  bool novel = false;             ///< first sighting (run + corpus).
  bool recorded = false;          ///< a log was written under record_dir.
  std::vector<analysis::Divergence> failures;
  /// Exhaustive-exploration mirror (FuzzCheckOptions::exhaustive): whether
  /// this program was explored, why it was skipped when not, and the
  /// explored/racy interleaving counts (ProgramVerdict's counters).
  bool explored = false;
  std::string explore_skipped;
  std::uint64_t explored_interleavings = 0;
  std::uint64_t explored_racy = 0;
  /// Canonical text of the failing program (empty when it passed): repro
  /// writing must not depend on regenerating — under coverage scheduling
  /// the arm, not just the seed, determines the program.
  std::string program_text;
  std::string rendered;           ///< report text (verbose only).
};

/// Aggregates per expectation/bug-kind arm ("clean", "dropped-edge", ...).
struct KindStats {
  std::uint64_t programs = 0;
  std::uint64_t manifested_programs = 0;  ///< >= 1 manifesting schedule.
  std::uint64_t manifested_runs = 0;
  std::uint64_t completed_runs = 0;
  std::uint64_t failures = 0;

  double mean_manifestation() const {
    return completed_runs == 0 ? 0.0
                               : static_cast<double>(manifested_runs) /
                                     static_cast<double>(completed_runs);
  }
};

struct FuzzSweepConfig {
  /// Program-shape knobs. Under kUniform the caller applies its profile
  /// first; under kCoverage each arm re-applies its own profile on top.
  GenConfig base;
  std::string profile = "mixed";  ///< uniform-mode profile (also the label).
  ScheduleMode mode = ScheduleMode::kUniform;
  /// Uniform: the program seeds themselves. Coverage: seeds.count is the
  /// program budget and seeds.first offsets the per-draw seeds.
  util::SeedRange seeds{1, 64};
  /// Share of programs that carry a planted bug (uniform mode; coverage
  /// mode lets the bandit choose arms instead).
  double planted_fraction = 0.5;
  /// Planted kinds to draw from; infeasible kinds for the shape must
  /// already be filtered out (eligible_bug_kinds).
  std::vector<BugKind> bug_kinds;
  FuzzCheckOptions check;
  int threads = 1;
  bool verbose = false;
  std::string corpus_dir;  ///< "" = in-memory signatures only.
  /// When non-empty, every executed program's base coordinate (first
  /// schedule seed, identity perturbation, fault-free) is re-run with an
  /// ordering recorder and its log written as
  /// `<record_dir>/fuzz-s<seed>.dsmrlog` (record_coordinate) — the always-on
  /// recording story at fuzz scale.
  std::string record_dir;
  /// Polled between batches; return true to stop early (wall-clock budget).
  std::function<bool()> out_of_budget;
};

struct FuzzSweepResult {
  std::vector<SweepOutcome> outcomes;  ///< draw order; slots stay stable.
  std::uint64_t programs = 0;
  std::uint64_t planted = 0;
  std::uint64_t clean = 0;
  std::uint64_t schedules = 0;
  std::uint64_t fault_runs = 0;           ///< runs under a wire-fault plan.
  std::uint64_t watchdog_runs = 0;        ///< non-quiescent runs with a diagnostic.
  std::uint64_t distinct_signatures = 0;  ///< distinct within this run.
  std::uint64_t corpus_new = 0;           ///< new vs the loaded corpus.
  std::uint64_t recorded_logs = 0;        ///< logs written under record_dir.
  std::uint64_t explored_programs = 0;    ///< exhaustive invariant ran (opt-in).
  std::uint64_t explore_skipped_programs = 0;  ///< over the exhaustive size gate.
  std::uint64_t explored_interleavings = 0;    ///< total across explored programs.
  bool budget_hit = false;
  /// Keyed by "clean" / bug-kind name.
  std::map<std::string, KindStats> kinds;
};

/// Deterministic planted/clean decision per program seed (uniform mode): a
/// seed hash compared against the planted fraction, independent of
/// generation order.
bool plant_for_seed(std::uint64_t program_seed, double planted_fraction);
/// Deterministic kind pick among `kinds` for a planted seed.
BugKind kind_for_seed(std::uint64_t program_seed, const std::vector<BugKind>& kinds);

/// Runs the sweep: generates programs per the schedule mode, checks each
/// across the grid on `threads` pool workers, folds outcomes and coverage
/// deterministically (uniform: bit-identical across thread counts;
/// coverage: deterministic for a fixed config — the bandit folds batches
/// of a fixed size in draw order). Flushes the corpus before returning.
FuzzSweepResult run_fuzz_sweep(const FuzzSweepConfig& config);

}  // namespace dsmr::fuzz
