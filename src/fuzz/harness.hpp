// Fuzz harness: one generated program through the full differential
// conformance grid, plus the fuzz-only invariants its construction allows.
//
// A generated program is registered as a first-class analysis::Scenario and
// run through analysis::run_conformance, so every (schedule seed ×
// perturbation) gets the complete cross-check stack (epoch fast path vs
// full-VC oracle, live vs replay, precision, cross-mode writes). On top,
// the generator's construction guarantees are checked per schedule:
//
//  * clean programs must produce zero reports and zero truth pairs
//    (conformance's race-in-clean-scenario invariant covers this);
//  * planted-bug programs must manifest on EVERY schedule, in ground truth
//    and in BOTH detector modes — the planted pair is concurrent by
//    construction (fuzz/generate.hpp), so a silent schedule is a detector
//    bug, reported as the `planted-bug-not-detected` check.
//
// A test-only fault hook (`Fault`) deliberately breaks the harness's view
// of the detector so CI can exercise the failure → shrink → repro → replay
// loop end-to-end without a real detector bug.
//
// Failing coordinates serialize into a self-contained repro file (program
// text + schedule coordinate + fired check) that `dsmr_fuzz --replay`
// re-runs bit-identically.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/conformance.hpp"
#include "fuzz/program.hpp"
#include "sim/perturb.hpp"

namespace dsmr::fuzz {

/// Test-only fault injection into the harness's detector view.
enum class Fault : std::uint8_t {
  kNone,
  /// Pretend the live detector stayed silent: every planted-bug schedule
  /// then violates planted-bug-not-detected. Forces the repro loop.
  kDropLiveReports,
};
const char* to_string(Fault fault);
std::optional<Fault> parse_fault(const std::string& text);

struct FuzzCheckOptions {
  std::uint64_t first_schedule_seed = 1;
  std::uint64_t schedule_seeds = 3;
  int threads = 1;
  /// Keep the identity perturbation first (as the conformance grid does).
  std::vector<sim::PerturbConfig> perturbations{sim::PerturbConfig{}};
  Fault fault = Fault::kNone;
  std::string scenario_name = "fuzz";
};

struct ProgramVerdict {
  analysis::ConformanceReport report;
  /// Conformance disagreements plus fuzz-invariant violations, each with
  /// its reproducing (schedule seed, perturbation).
  std::vector<analysis::Divergence> failures;

  bool passed() const { return failures.empty(); }
};

/// Runs the program across the grid and evaluates every invariant. The
/// World uses default detection settings (dual-clock, acked puts, lock
/// handoff) — the regime the generator's cleanliness proof assumes.
ProgramVerdict check_program(const Program& program, const FuzzCheckOptions& options);

/// The stable leading name of a divergence check ("precision: 3/4 ..." →
/// "precision"); repro files record names, not details.
std::string check_name(const std::string& check);

// ---------------------------------------------------------------------------
// Repro files
// ---------------------------------------------------------------------------

/// A self-contained failing coordinate: program + schedule + fired check.
struct Repro {
  std::string check;               ///< normalized check name.
  Fault fault = Fault::kNone;      ///< fault hook active when found.
  std::uint64_t program_seed = 0;  ///< generator provenance (0 = handwritten).
  std::uint64_t schedule_seed = 1;
  sim::PerturbConfig perturb{};
  bool shrunk = false;
  Program program;
};

std::string serialize_repro(const Repro& repro);
std::optional<Repro> parse_repro(const std::string& text, std::string* error = nullptr);

/// Re-runs the repro's single schedule under its recorded fault hook.
/// Returns the normalized names of every check that fired (empty = clean).
std::vector<std::string> replay_repro(const Repro& repro, int threads = 1);

/// True when replaying reproduces the recorded check.
bool reproduces(const Repro& repro, int threads = 1);

}  // namespace dsmr::fuzz
