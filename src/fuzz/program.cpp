#include "fuzz/program.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <sstream>

#include "pgas/collectives.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"

namespace dsmr::fuzz {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kPut: return "put";
    case OpKind::kGet: return "get";
    case OpKind::kSleep: return "sleep";
    case OpKind::kCompute: return "compute";
  }
  return "?";
}

const char* to_string(Expectation e) {
  switch (e) {
    case Expectation::kClean: return "clean";
    case Expectation::kRacy: return "racy";
  }
  return "?";
}

std::size_t Program::op_count() const {
  std::size_t count = 0;
  for (const auto& phase : phases) {
    for (const auto& ops : phase.ops) count += ops.size();
  }
  return count;
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

bool validate(const Program& program, std::string* error) {
  auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (program.nprocs < 1 || program.nprocs > kMaxProcs) {
    return fail("nprocs out of range [1, " + std::to_string(kMaxProcs) + "]");
  }
  if (program.areas < 1 || program.areas > kMaxAreas) {
    return fail("areas out of range [1, " + std::to_string(kMaxAreas) + "]");
  }
  if (program.area_bytes == 0 || program.area_bytes > kMaxAreaBytes) {
    return fail("area_bytes out of range [1, " + std::to_string(kMaxAreaBytes) + "]");
  }
  if (program.phases.size() > kMaxPhases) return fail("too many phases");
  for (std::size_t p = 0; p < program.phases.size(); ++p) {
    const auto& phase = program.phases[p];
    if (phase.ops.size() != static_cast<std::size_t>(program.nprocs)) {
      return fail("phase " + std::to_string(p) + " has " +
                  std::to_string(phase.ops.size()) + " op rows for " +
                  std::to_string(program.nprocs) + " ranks");
    }
    for (const auto& ops : phase.ops) {
      if (ops.size() > kMaxOpsPerRank) return fail("too many ops in one rank row");
      for (const auto& op : ops) {
        const bool data = op.kind == OpKind::kPut || op.kind == OpKind::kGet;
        if (data && (op.area < 0 || op.area >= program.areas)) {
          return fail("op targets area " + std::to_string(op.area) + " of " +
                      std::to_string(program.areas));
        }
        if (!data && op.locked) return fail("sleep/compute ops cannot be locked");
        if (!data && op.duration > kMaxDuration) return fail("duration out of range");
      }
    }
  }
  if (program.planted.has_value()) {
    const auto& bug = *program.planted;
    if (bug.phase < 0 || static_cast<std::size_t>(bug.phase) >= program.phases.size() ||
        bug.area < 0 || bug.area >= program.areas || bug.owner < 0 ||
        bug.owner >= program.nprocs || bug.victim < 0 || bug.victim >= program.nprocs ||
        bug.owner == bug.victim) {
      return fail("planted-bug coordinates out of range");
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Canonical serialization
// ---------------------------------------------------------------------------

std::string serialize(const Program& program) {
  std::string error;
  DSMR_REQUIRE(validate(program, &error), "serialize of invalid program: " << error);
  std::ostringstream out;
  out << "dsmr-program v1\n";
  out << "nprocs " << program.nprocs << "\n";
  out << "areas " << program.areas << "\n";
  out << "area_bytes " << program.area_bytes << "\n";
  out << "expect " << to_string(program.expect) << "\n";
  if (program.planted.has_value()) {
    const auto& bug = *program.planted;
    out << "planted " << bug.phase << " " << bug.area << " " << bug.owner << " "
        << bug.victim << " " << (bug.victim_kind == core::AccessKind::kWrite ? "W" : "R")
        << "\n";
  }
  out << "phases " << program.phases.size() << "\n";
  for (std::size_t p = 0; p < program.phases.size(); ++p) {
    out << "phase " << p << "\n";
    const auto& phase = program.phases[p];
    for (std::size_t r = 0; r < phase.ops.size(); ++r) {
      out << "rank " << r << " " << phase.ops[r].size() << "\n";
      for (const auto& op : phase.ops[r]) {
        switch (op.kind) {
          case OpKind::kPut:
          case OpKind::kGet:
            out << to_string(op.kind) << " " << op.area << " " << (op.locked ? "l" : "u")
                << "\n";
            break;
          case OpKind::kSleep:
          case OpKind::kCompute:
            out << to_string(op.kind) << " " << op.duration << "\n";
            break;
        }
      }
    }
  }
  out << "end\n";
  return out.str();
}

namespace {

/// Splits one line into whitespace-delimited tokens.
std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

}  // namespace

std::optional<Program> parse_program(const std::string& text, std::string* error) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto fail = [error, &line_no](const std::string& what) -> std::optional<Program> {
    if (error != nullptr) {
      *error = "program line " + std::to_string(line_no) + ": " + what;
    }
    return std::nullopt;
  };
  auto next_tokens = [&in, &line, &line_no]() {
    while (std::getline(in, line)) {
      ++line_no;
      const auto toks = tokens_of(line);
      if (!toks.empty()) return toks;  // skip blank lines.
    }
    // EOF: keep line_no at the last line read so truncation errors point
    // at where the text actually stopped.
    return std::vector<std::string>{};
  };
  auto want_u64 = [](const std::string& tok) { return util::parse_u64(tok); };

  auto toks = next_tokens();
  if (toks.size() != 2 || toks[0] != "dsmr-program" || toks[1] != "v1") {
    return fail("expected header 'dsmr-program v1'");
  }

  Program program;
  program.phases.clear();
  std::uint64_t declared_phases = 0;
  // Fixed-order scalar fields.
  struct Field {
    const char* name;
    std::uint64_t min;
    std::uint64_t max;
    std::uint64_t* out;
  };
  std::uint64_t nprocs = 0, areas = 0, area_bytes = 0;
  for (const Field field :
       {Field{"nprocs", 1, static_cast<std::uint64_t>(kMaxProcs), &nprocs},
        Field{"areas", 1, static_cast<std::uint64_t>(kMaxAreas), &areas},
        Field{"area_bytes", 1, kMaxAreaBytes, &area_bytes}}) {
    toks = next_tokens();
    if (toks.size() != 2 || toks[0] != field.name) {
      return fail(std::string("expected '") + field.name + " N'");
    }
    const auto value = want_u64(toks[1]);
    if (!value || *value < field.min || *value > field.max) {
      return fail(std::string(field.name) + " out of range: " + toks[1]);
    }
    *field.out = *value;
  }
  program.nprocs = static_cast<int>(nprocs);
  program.areas = static_cast<int>(areas);
  program.area_bytes = static_cast<std::uint32_t>(area_bytes);

  toks = next_tokens();
  if (toks.size() != 2 || toks[0] != "expect") return fail("expected 'expect clean|racy'");
  if (toks[1] == "clean") {
    program.expect = Expectation::kClean;
  } else if (toks[1] == "racy") {
    program.expect = Expectation::kRacy;
  } else {
    return fail("unknown expectation '" + toks[1] + "'");
  }

  toks = next_tokens();
  if (!toks.empty() && toks[0] == "planted") {
    if (toks.size() != 6) return fail("planted needs: phase area owner victim W|R");
    PlantedBug bug;
    std::array<int*, 4> fields = {&bug.phase, &bug.area, &bug.owner, &bug.victim};
    for (std::size_t i = 0; i < fields.size(); ++i) {
      const auto value = want_u64(toks[i + 1]);
      if (!value || *value > static_cast<std::uint64_t>(kMaxAreas)) {
        return fail("bad planted field '" + toks[i + 1] + "'");
      }
      *fields[i] = static_cast<int>(*value);
    }
    if (toks[5] == "W") {
      bug.victim_kind = core::AccessKind::kWrite;
    } else if (toks[5] == "R") {
      bug.victim_kind = core::AccessKind::kRead;
    } else {
      return fail("planted kind must be W or R");
    }
    program.planted = bug;
    toks = next_tokens();
  }

  if (toks.size() != 2 || toks[0] != "phases") return fail("expected 'phases N'");
  {
    const auto value = want_u64(toks[1]);
    if (!value || *value > kMaxPhases) return fail("phase count out of range: " + toks[1]);
    declared_phases = *value;
  }

  for (std::uint64_t p = 0; p < declared_phases; ++p) {
    toks = next_tokens();
    if (toks.size() != 2 || toks[0] != "phase" || want_u64(toks[1]) != p) {
      return fail("expected 'phase " + std::to_string(p) + "'");
    }
    Phase phase;
    for (int r = 0; r < program.nprocs; ++r) {
      toks = next_tokens();
      if (toks.size() != 3 || toks[0] != "rank" ||
          want_u64(toks[1]) != static_cast<std::uint64_t>(r)) {
        return fail("expected 'rank " + std::to_string(r) + " <op-count>'");
      }
      const auto count = want_u64(toks[2]);
      if (!count || *count > kMaxOpsPerRank) return fail("op count out of range: " + toks[2]);
      std::vector<Op> ops;
      ops.reserve(*count);
      for (std::uint64_t i = 0; i < *count; ++i) {
        toks = next_tokens();
        if (toks.empty()) return fail("unexpected end of program");
        Op op;
        if (toks[0] == "put" || toks[0] == "get") {
          if (toks.size() != 3 || (toks[2] != "l" && toks[2] != "u")) {
            return fail("expected '" + toks[0] + " <area> l|u'");
          }
          const auto area = want_u64(toks[1]);
          if (!area || *area >= static_cast<std::uint64_t>(program.areas)) {
            return fail("op area out of range: " + toks[1]);
          }
          op.kind = toks[0] == "put" ? OpKind::kPut : OpKind::kGet;
          op.area = static_cast<int>(*area);
          op.locked = toks[2] == "l";
        } else if (toks[0] == "sleep" || toks[0] == "compute") {
          if (toks.size() != 2) return fail("expected '" + toks[0] + " <ns>'");
          const auto ns = want_u64(toks[1]);
          if (!ns || *ns > static_cast<std::uint64_t>(kMaxDuration)) {
            return fail("duration out of range: " + toks[1]);
          }
          op.kind = toks[0] == "sleep" ? OpKind::kSleep : OpKind::kCompute;
          op.duration = static_cast<sim::Time>(*ns);
        } else {
          return fail("unknown op '" + toks[0] + "'");
        }
        ops.push_back(op);
      }
      phase.ops.push_back(std::move(ops));
    }
    program.phases.push_back(std::move(phase));
  }

  toks = next_tokens();
  if (toks.size() != 1 || toks[0] != "end") return fail("expected trailing 'end'");
  if (!next_tokens().empty()) return fail("trailing content after 'end'");

  std::string structural;
  if (!validate(program, &structural)) return fail(structural);
  return program;
}

// ---------------------------------------------------------------------------
// World spawning
// ---------------------------------------------------------------------------

namespace {

using runtime::Process;
using runtime::World;

sim::Task program_task(Process& p, std::shared_ptr<const Program> program,
                       std::vector<mem::GlobalAddress> areas) {
  pgas::Team team(p);
  const auto rank = static_cast<std::size_t>(p.rank());
  // Deterministic payload stamp; the value itself never affects detection.
  std::uint64_t stamp = (static_cast<std::uint64_t>(p.rank()) + 1) << 32;
  for (std::size_t ph = 0; ph < program->phases.size(); ++ph) {
    if (ph > 0) co_await team.barrier();
    for (const Op& op : program->phases[ph].ops[rank]) {
      switch (op.kind) {
        case OpKind::kPut: {
          if (op.locked) co_await p.lock(areas[static_cast<std::size_t>(op.area)]);
          std::vector<std::byte> bytes(program->area_bytes, std::byte{0});
          ++stamp;
          std::memcpy(bytes.data(), &stamp, std::min(sizeof(stamp), bytes.size()));
          co_await p.put(areas[static_cast<std::size_t>(op.area)], bytes);
          if (op.locked) co_await p.unlock(areas[static_cast<std::size_t>(op.area)]);
          break;
        }
        case OpKind::kGet:
          if (op.locked) co_await p.lock(areas[static_cast<std::size_t>(op.area)]);
          co_await p.get(areas[static_cast<std::size_t>(op.area)], program->area_bytes);
          if (op.locked) co_await p.unlock(areas[static_cast<std::size_t>(op.area)]);
          break;
        case OpKind::kSleep:
          co_await p.sleep(op.duration);
          break;
        case OpKind::kCompute:
          co_await p.compute(op.duration);
          break;
      }
    }
  }
}

}  // namespace

ProgramHandles spawn_program(World& world, std::shared_ptr<const Program> program) {
  DSMR_REQUIRE(program != nullptr, "spawn_program needs a program");
  std::string error;
  DSMR_REQUIRE(validate(*program, &error), "spawn of invalid program: " << error);
  DSMR_REQUIRE(world.nprocs() == program->nprocs,
               "program generated for " << program->nprocs << " ranks, world has "
                                        << world.nprocs());
  ProgramHandles handles;
  for (int a = 0; a < program->areas; ++a) {
    const Rank home = static_cast<Rank>(a % program->nprocs);
    handles.areas.push_back(
        world.alloc(home, program->area_bytes, "fz" + std::to_string(a)));
  }
  for (Rank r = 0; r < world.nprocs(); ++r) {
    world.spawn(r, [program, areas = handles.areas](Process& p) {
      return program_task(p, program, areas);
    });
  }
  return handles;
}

analysis::Scenario to_scenario(std::shared_ptr<const Program> program,
                               std::string name) {
  DSMR_REQUIRE(program != nullptr, "to_scenario needs a program");
  analysis::Scenario scenario;
  scenario.name = std::move(name);
  scenario.description = "generated fuzz program (" + std::to_string(program->nprocs) +
                         " ranks, " + std::to_string(program->areas) + " areas, " +
                         std::to_string(program->op_count()) + " ops, expect " +
                         to_string(program->expect) + ")";
  // A planted racy pair is concurrent on every schedule (see generate.hpp),
  // but conformance's own grid-level expectation only distinguishes
  // never/sometimes; the stronger "manifests everywhere" invariant lives in
  // fuzz::check_program.
  scenario.expect = program->expect == Expectation::kClean
                        ? analysis::RaceExpectation::kNever
                        : analysis::RaceExpectation::kSometimes;
  scenario.min_ranks = program->nprocs;
  scenario.spawn = [program](runtime::World& world) { spawn_program(world, program); };
  return scenario;
}

}  // namespace dsmr::fuzz
