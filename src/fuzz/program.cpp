#include "fuzz/program.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <sstream>

#include "pgas/collectives.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"

namespace dsmr::fuzz {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kPut: return "put";
    case OpKind::kGet: return "get";
    case OpKind::kSignal: return "signal";
    case OpKind::kWait: return "wait";
    case OpKind::kSleep: return "sleep";
    case OpKind::kCompute: return "compute";
  }
  return "?";
}

const char* to_string(BoundaryKind kind) {
  switch (kind) {
    case BoundaryKind::kBarrier: return "barrier";
    case BoundaryKind::kAllreduce: return "allreduce";
    case BoundaryKind::kGatherBcast: return "gatherbcast";
    case BoundaryKind::kGatherScatter: return "gatherscatter";
  }
  return "?";
}

const char* to_string(Expectation e) {
  switch (e) {
    case Expectation::kClean: return "clean";
    case Expectation::kRacy: return "racy";
    case Expectation::kSometimes: return "sometimes";
  }
  return "?";
}

const char* to_string(BugKind kind) {
  switch (kind) {
    case BugKind::kDroppedEdge: return "dropped-edge";
    case BugKind::kWrongLock: return "wrong-lock";
    case BugKind::kPartialBarrier: return "partial-barrier";
    case BugKind::kAckWindow: return "ack-window";
  }
  return "?";
}

std::optional<BugKind> parse_bug_kind(const std::string& text) {
  for (const BugKind kind : all_bug_kinds()) {
    if (text == to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::vector<BugKind> all_bug_kinds() {
  return {BugKind::kDroppedEdge, BugKind::kWrongLock, BugKind::kPartialBarrier,
          BugKind::kAckWindow};
}

std::size_t Program::op_count() const {
  std::size_t count = 0;
  for (const auto& phase : phases) {
    for (const auto& ops : phase.ops) count += ops.size();
  }
  return count;
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

namespace {

bool is_data(OpKind kind) { return kind == OpKind::kPut || kind == OpKind::kGet; }
bool is_sync(OpKind kind) { return kind == OpKind::kSignal || kind == OpKind::kWait; }

}  // namespace

bool validate(const Program& program, std::string* error) {
  auto fail = [error](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (program.nprocs < 1 || program.nprocs > kMaxProcs) {
    return fail("nprocs out of range [1, " + std::to_string(kMaxProcs) + "]");
  }
  if (program.areas < 1 || program.areas > kMaxAreas) {
    return fail("areas out of range [1, " + std::to_string(kMaxAreas) + "]");
  }
  if (program.area_bytes == 0 || program.area_bytes > kMaxAreaBytes) {
    return fail("area_bytes out of range [1, " + std::to_string(kMaxAreaBytes) + "]");
  }
  if (program.phases.size() > kMaxPhases) return fail("too many phases");
  for (std::size_t p = 0; p < program.phases.size(); ++p) {
    const auto& phase = program.phases[p];
    const bool needs_root = phase.entry.kind == BoundaryKind::kGatherBcast ||
                            phase.entry.kind == BoundaryKind::kGatherScatter;
    if (p == 0 && phase.entry != Boundary{}) {
      return fail("phase 0 has no entry boundary (must stay the default)");
    }
    if (phase.entry.root < 0 || phase.entry.root >= program.nprocs ||
        (!needs_root && phase.entry.root != 0)) {
      return fail("phase " + std::to_string(p) + " boundary root out of range");
    }
    if (phase.skip_rank != -1 &&
        (p == 0 || phase.entry.kind != BoundaryKind::kBarrier ||
         phase.skip_rank < 0 || phase.skip_rank >= program.nprocs)) {
      return fail("phase " + std::to_string(p) +
                  " skip rank needs a barrier entry and a rank in range");
    }
    if (phase.ops.size() != static_cast<std::size_t>(program.nprocs)) {
      return fail("phase " + std::to_string(p) + " has " +
                  std::to_string(phase.ops.size()) + " op rows for " +
                  std::to_string(program.nprocs) + " ranks");
    }
    for (const auto& ops : phase.ops) {
      if (ops.size() > kMaxOpsPerRank) return fail("too many ops in one rank row");
      for (const auto& op : ops) {
        if (is_data(op.kind)) {
          if (op.area < 0 || op.area >= program.areas) {
            return fail("op targets area " + std::to_string(op.area) + " of " +
                        std::to_string(program.areas));
          }
          if (!op.locked && op.lock != -1) return fail("unlocked op names a lock area");
          if (op.locked && (op.lock < -1 || op.lock >= program.areas || op.lock == op.area)) {
            return fail("lock area out of range (use -1 for the accessed area)");
          }
          if (op.peer != 0 || op.tag != 0 || op.duration != 0) {
            return fail("data ops carry no peer/tag/duration");
          }
        } else if (is_sync(op.kind)) {
          if (op.kind == OpKind::kSignal &&
              (op.peer < 0 || op.peer >= program.nprocs)) {
            return fail("signal peer out of range: " + std::to_string(op.peer));
          }
          if (op.kind == OpKind::kWait && op.peer != 0) {
            return fail("wait ops carry no peer");
          }
          if (op.tag > kMaxSignalTag) return fail("signal tag out of range");
          if (op.area != 0 || op.locked || op.lock != -1 || op.duration != 0) {
            return fail("sync ops carry no area/lock/duration");
          }
        } else {
          if (op.locked || op.lock != -1 || op.area != 0 || op.peer != 0 || op.tag != 0) {
            return fail("sleep/compute ops carry no area/lock/peer/tag");
          }
          if (op.duration > kMaxDuration) return fail("duration out of range");
        }
      }
    }
  }
  if (program.planted.has_value()) {
    const auto& bug = *program.planted;
    if (bug.phase < 0 || static_cast<std::size_t>(bug.phase) >= program.phases.size() ||
        bug.area < 0 || bug.area >= program.areas || bug.owner < 0 ||
        bug.owner >= program.nprocs || bug.victim < 0 || bug.victim >= program.nprocs ||
        bug.owner == bug.victim) {
      return fail("planted-bug coordinates out of range");
    }
    const bool wants_aux = bug.kind != BugKind::kDroppedEdge;
    if (wants_aux ? (bug.aux_area < 0 || bug.aux_area >= program.areas ||
                     bug.aux_area == bug.area)
                  : bug.aux_area != -1) {
      return fail("planted-bug aux area out of range for its kind");
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Canonical serialization
// ---------------------------------------------------------------------------

std::string serialize(const Program& program) {
  std::string error;
  DSMR_REQUIRE(validate(program, &error), "serialize of invalid program: " << error);
  std::ostringstream out;
  out << "dsmr-program v2\n";
  out << "nprocs " << program.nprocs << "\n";
  out << "areas " << program.areas << "\n";
  out << "area_bytes " << program.area_bytes << "\n";
  out << "expect " << to_string(program.expect) << "\n";
  if (program.planted.has_value()) {
    const auto& bug = *program.planted;
    out << "planted " << to_string(bug.kind) << " " << bug.phase << " " << bug.area << " "
        << bug.aux_area << " " << bug.owner << " " << bug.victim << " "
        << (bug.victim_kind == core::AccessKind::kWrite ? "W" : "R") << "\n";
  }
  out << "phases " << program.phases.size() << "\n";
  for (std::size_t p = 0; p < program.phases.size(); ++p) {
    const auto& phase = program.phases[p];
    out << "phase " << p;
    switch (phase.entry.kind) {
      case BoundaryKind::kBarrier:
        if (phase.skip_rank != -1) out << " skip " << phase.skip_rank;
        break;
      case BoundaryKind::kAllreduce:
        out << " allreduce";
        break;
      case BoundaryKind::kGatherBcast:
        out << " gatherbcast " << phase.entry.root;
        break;
      case BoundaryKind::kGatherScatter:
        out << " gatherscatter " << phase.entry.root;
        break;
    }
    out << "\n";
    for (std::size_t r = 0; r < phase.ops.size(); ++r) {
      out << "rank " << r << " " << phase.ops[r].size() << "\n";
      for (const auto& op : phase.ops[r]) {
        switch (op.kind) {
          case OpKind::kPut:
          case OpKind::kGet:
            out << to_string(op.kind) << " " << op.area << " " << (op.locked ? "l" : "u");
            if (op.locked && op.lock != -1) out << " " << op.lock;
            out << "\n";
            break;
          case OpKind::kSignal:
            out << "signal " << op.peer << " " << op.tag << "\n";
            break;
          case OpKind::kWait:
            out << "wait " << op.tag << "\n";
            break;
          case OpKind::kSleep:
          case OpKind::kCompute:
            out << to_string(op.kind) << " " << op.duration << "\n";
            break;
        }
      }
    }
  }
  out << "end\n";
  return out.str();
}

namespace {

/// Splits one line into whitespace-delimited tokens.
std::vector<std::string> tokens_of(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

}  // namespace

std::optional<Program> parse_program(const std::string& text, std::string* error) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto fail = [error, &line_no](const std::string& what) -> std::optional<Program> {
    if (error != nullptr) {
      *error = "program line " + std::to_string(line_no) + ": " + what;
    }
    return std::nullopt;
  };
  auto next_tokens = [&in, &line, &line_no]() {
    while (std::getline(in, line)) {
      ++line_no;
      const auto toks = tokens_of(line);
      if (!toks.empty()) return toks;  // skip blank lines.
    }
    // EOF: keep line_no at the last line read so truncation errors point
    // at where the text actually stopped.
    return std::vector<std::string>{};
  };
  auto want_u64 = [](const std::string& tok) { return util::parse_u64(tok); };

  auto toks = next_tokens();
  if (toks.size() != 2 || toks[0] != "dsmr-program" || toks[1] != "v2") {
    return fail("expected header 'dsmr-program v2'");
  }

  Program program;
  program.phases.clear();
  std::uint64_t declared_phases = 0;
  // Fixed-order scalar fields.
  struct Field {
    const char* name;
    std::uint64_t min;
    std::uint64_t max;
    std::uint64_t* out;
  };
  std::uint64_t nprocs = 0, areas = 0, area_bytes = 0;
  for (const Field field :
       {Field{"nprocs", 1, static_cast<std::uint64_t>(kMaxProcs), &nprocs},
        Field{"areas", 1, static_cast<std::uint64_t>(kMaxAreas), &areas},
        Field{"area_bytes", 1, kMaxAreaBytes, &area_bytes}}) {
    toks = next_tokens();
    if (toks.size() != 2 || toks[0] != field.name) {
      return fail(std::string("expected '") + field.name + " N'");
    }
    const auto value = want_u64(toks[1]);
    if (!value || *value < field.min || *value > field.max) {
      return fail(std::string(field.name) + " out of range: " + toks[1]);
    }
    *field.out = *value;
  }
  program.nprocs = static_cast<int>(nprocs);
  program.areas = static_cast<int>(areas);
  program.area_bytes = static_cast<std::uint32_t>(area_bytes);

  toks = next_tokens();
  if (toks.size() != 2 || toks[0] != "expect") {
    return fail("expected 'expect clean|racy|sometimes'");
  }
  if (toks[1] == "clean") {
    program.expect = Expectation::kClean;
  } else if (toks[1] == "racy") {
    program.expect = Expectation::kRacy;
  } else if (toks[1] == "sometimes") {
    program.expect = Expectation::kSometimes;
  } else {
    return fail("unknown expectation '" + toks[1] + "'");
  }

  toks = next_tokens();
  if (!toks.empty() && toks[0] == "planted") {
    if (toks.size() != 8) {
      return fail("planted needs: kind phase area aux owner victim W|R");
    }
    PlantedBug bug;
    const auto kind = parse_bug_kind(toks[1]);
    if (!kind) return fail("unknown planted kind '" + toks[1] + "'");
    bug.kind = *kind;
    std::array<std::pair<int*, bool>, 5> fields = {{{&bug.phase, false},
                                                    {&bug.area, false},
                                                    {&bug.aux_area, true},
                                                    {&bug.owner, false},
                                                    {&bug.victim, false}}};
    for (std::size_t i = 0; i < fields.size(); ++i) {
      const auto value = util::parse_i64(toks[i + 2]);
      const std::int64_t min = fields[i].second ? -1 : 0;
      if (!value || *value < min || *value > kMaxAreas) {
        return fail("bad planted field '" + toks[i + 2] + "'");
      }
      *fields[i].first = static_cast<int>(*value);
    }
    if (toks[7] == "W") {
      bug.victim_kind = core::AccessKind::kWrite;
    } else if (toks[7] == "R") {
      bug.victim_kind = core::AccessKind::kRead;
    } else {
      return fail("planted kind must be W or R");
    }
    program.planted = bug;
    toks = next_tokens();
  }

  if (toks.size() != 2 || toks[0] != "phases") return fail("expected 'phases N'");
  {
    const auto value = want_u64(toks[1]);
    if (!value || *value > kMaxPhases) return fail("phase count out of range: " + toks[1]);
    declared_phases = *value;
  }

  for (std::uint64_t p = 0; p < declared_phases; ++p) {
    toks = next_tokens();
    if (toks.size() < 2 || toks[0] != "phase" || want_u64(toks[1]) != p) {
      return fail("expected 'phase " + std::to_string(p) + "'");
    }
    Phase phase;
    if (toks.size() == 2) {
      // Default barrier entry.
    } else if (toks.size() == 3 && toks[2] == "allreduce") {
      phase.entry.kind = BoundaryKind::kAllreduce;
    } else if (toks.size() == 4 &&
               (toks[2] == "gatherbcast" || toks[2] == "gatherscatter" ||
                toks[2] == "skip")) {
      const auto value = want_u64(toks[3]);
      if (!value || *value >= nprocs) {
        return fail("boundary rank out of range: " + toks[3]);
      }
      if (toks[2] == "skip") {
        phase.skip_rank = static_cast<int>(*value);
      } else {
        phase.entry.kind = toks[2] == "gatherbcast" ? BoundaryKind::kGatherBcast
                                                    : BoundaryKind::kGatherScatter;
        phase.entry.root = static_cast<int>(*value);
      }
    } else {
      return fail("expected 'phase N [allreduce|gatherbcast R|gatherscatter R|skip R]'");
    }
    for (int r = 0; r < program.nprocs; ++r) {
      toks = next_tokens();
      if (toks.size() != 3 || toks[0] != "rank" ||
          want_u64(toks[1]) != static_cast<std::uint64_t>(r)) {
        return fail("expected 'rank " + std::to_string(r) + " <op-count>'");
      }
      const auto count = want_u64(toks[2]);
      if (!count || *count > kMaxOpsPerRank) return fail("op count out of range: " + toks[2]);
      std::vector<Op> ops;
      ops.reserve(*count);
      for (std::uint64_t i = 0; i < *count; ++i) {
        toks = next_tokens();
        if (toks.empty()) return fail("unexpected end of program");
        Op op;
        if (toks[0] == "put" || toks[0] == "get") {
          const bool with_lock_area = toks.size() == 4;
          if ((toks.size() != 3 && !with_lock_area) ||
              (toks[2] != "l" && toks[2] != "u") || (with_lock_area && toks[2] != "l")) {
            return fail("expected '" + toks[0] + " <area> l|u [<lock-area>]'");
          }
          const auto area = want_u64(toks[1]);
          if (!area || *area >= static_cast<std::uint64_t>(program.areas)) {
            return fail("op area out of range: " + toks[1]);
          }
          op.kind = toks[0] == "put" ? OpKind::kPut : OpKind::kGet;
          op.area = static_cast<int>(*area);
          op.locked = toks[2] == "l";
          if (with_lock_area) {
            const auto lock = want_u64(toks[3]);
            if (!lock || *lock >= static_cast<std::uint64_t>(program.areas) ||
                *lock == *area) {
              return fail("lock area out of range: " + toks[3]);
            }
            op.lock = static_cast<int>(*lock);
          }
        } else if (toks[0] == "signal" || toks[0] == "wait") {
          const bool is_signal = toks[0] == "signal";
          if (toks.size() != (is_signal ? 3u : 2u)) {
            return fail(is_signal ? "expected 'signal <peer> <tag>'"
                                  : "expected 'wait <tag>'");
          }
          op.kind = is_signal ? OpKind::kSignal : OpKind::kWait;
          if (is_signal) {
            const auto peer = want_u64(toks[1]);
            if (!peer || *peer >= nprocs) return fail("signal peer out of range: " + toks[1]);
            op.peer = static_cast<int>(*peer);
          }
          const auto tag = want_u64(toks.back());
          if (!tag || *tag > kMaxSignalTag) return fail("tag out of range: " + toks.back());
          op.tag = *tag;
        } else if (toks[0] == "sleep" || toks[0] == "compute") {
          if (toks.size() != 2) return fail("expected '" + toks[0] + " <ns>'");
          const auto ns = want_u64(toks[1]);
          if (!ns || *ns > static_cast<std::uint64_t>(kMaxDuration)) {
            return fail("duration out of range: " + toks[1]);
          }
          op.kind = toks[0] == "sleep" ? OpKind::kSleep : OpKind::kCompute;
          op.duration = static_cast<sim::Time>(*ns);
        } else {
          return fail("unknown op '" + toks[0] + "'");
        }
        ops.push_back(op);
      }
      phase.ops.push_back(std::move(ops));
    }
    program.phases.push_back(std::move(phase));
  }

  toks = next_tokens();
  if (toks.size() != 1 || toks[0] != "end") return fail("expected trailing 'end'");
  if (!next_tokens().empty()) return fail("trailing content after 'end'");

  std::string structural;
  if (!validate(program, &structural)) return fail(structural);
  return program;
}

// ---------------------------------------------------------------------------
// World spawning
// ---------------------------------------------------------------------------

namespace {

using runtime::Process;
using runtime::World;

/// Executes one phase-entry boundary for this rank. Every kind is a full
/// happens-before frontier (see BoundaryKind); the payloads are this rank's
/// stamp — the values never affect detection, only the signal edges do.
sim::Future<void> run_boundary(pgas::Team& team, const Phase& phase, Rank rank) {
  const Rank root = static_cast<Rank>(phase.entry.root);
  std::vector<std::byte> stamp(sizeof(std::uint64_t));
  const auto value = static_cast<std::uint64_t>(rank) + 1;
  std::memcpy(stamp.data(), &value, sizeof(value));
  switch (phase.entry.kind) {
    case BoundaryKind::kBarrier:
      if (phase.skip_rank == rank) {
        team.barrier_arrive();
      } else {
        co_await team.barrier();
      }
      break;
    case BoundaryKind::kAllreduce:
      co_await team.allreduce<std::uint64_t>(value, [](std::uint64_t a, std::uint64_t b) {
        return a + b;
      });
      break;
    case BoundaryKind::kGatherBcast: {
      auto gathered = co_await team.gather(root, std::move(stamp));
      std::vector<std::byte> sum(sizeof(std::uint64_t));
      if (rank == root) {
        std::uint64_t total = 0;
        for (const auto& slice : gathered) {
          std::uint64_t v = 0;
          std::memcpy(&v, slice.data(), std::min(slice.size(), sizeof(v)));
          total += v;
        }
        std::memcpy(sum.data(), &total, sizeof(total));
      }
      co_await team.broadcast(root, std::move(sum));
      break;
    }
    case BoundaryKind::kGatherScatter: {
      auto gathered = co_await team.gather(root, std::move(stamp));
      if (rank != root) gathered.resize(0);
      co_await team.scatter(root, std::move(gathered));
      break;
    }
  }
}

sim::Task program_task(Process& p, std::shared_ptr<const Program> program,
                       std::vector<mem::GlobalAddress> areas) {
  pgas::Team team(p);
  const auto rank = static_cast<std::size_t>(p.rank());
  // Deterministic payload stamp; the value itself never affects detection.
  std::uint64_t stamp = (static_cast<std::uint64_t>(p.rank()) + 1) << 32;
  for (std::size_t ph = 0; ph < program->phases.size(); ++ph) {
    if (ph > 0) co_await run_boundary(team, program->phases[ph], p.rank());
    for (const Op& op : program->phases[ph].ops[rank]) {
      const auto lock_area = [&op]() {
        return static_cast<std::size_t>(op.lock == -1 ? op.area : op.lock);
      };
      switch (op.kind) {
        case OpKind::kPut: {
          if (op.locked) co_await p.lock(areas[lock_area()]);
          std::vector<std::byte> bytes(program->area_bytes, std::byte{0});
          ++stamp;
          std::memcpy(bytes.data(), &stamp, std::min(sizeof(stamp), bytes.size()));
          co_await p.put(areas[static_cast<std::size_t>(op.area)], bytes);
          if (op.locked) co_await p.unlock(areas[lock_area()]);
          break;
        }
        case OpKind::kGet:
          if (op.locked) co_await p.lock(areas[lock_area()]);
          co_await p.get(areas[static_cast<std::size_t>(op.area)], program->area_bytes);
          if (op.locked) co_await p.unlock(areas[lock_area()]);
          break;
        case OpKind::kSignal:
          p.signal(static_cast<Rank>(op.peer), op.tag);
          break;
        case OpKind::kWait:
          co_await p.wait_signal(op.tag);
          break;
        case OpKind::kSleep:
          co_await p.sleep(op.duration);
          break;
        case OpKind::kCompute:
          co_await p.compute(op.duration);
          break;
      }
    }
  }
}

}  // namespace

ProgramHandles spawn_program(World& world, std::shared_ptr<const Program> program) {
  DSMR_REQUIRE(program != nullptr, "spawn_program needs a program");
  std::string error;
  DSMR_REQUIRE(validate(*program, &error), "spawn of invalid program: " << error);
  DSMR_REQUIRE(world.nprocs() == program->nprocs,
               "program generated for " << program->nprocs << " ranks, world has "
                                        << world.nprocs());
  ProgramHandles handles;
  for (int a = 0; a < program->areas; ++a) {
    const Rank home = static_cast<Rank>(a % program->nprocs);
    handles.areas.push_back(
        world.alloc(home, program->area_bytes, "fz" + std::to_string(a)));
  }
  for (Rank r = 0; r < world.nprocs(); ++r) {
    world.spawn(r, [program, areas = handles.areas](Process& p) {
      return program_task(p, program, areas);
    });
  }
  return handles;
}

analysis::Scenario to_scenario(std::shared_ptr<const Program> program,
                               std::string name) {
  DSMR_REQUIRE(program != nullptr, "to_scenario needs a program");
  analysis::Scenario scenario;
  scenario.name = std::move(name);
  scenario.description = "generated fuzz program (" + std::to_string(program->nprocs) +
                         " ranks, " + std::to_string(program->areas) + " areas, " +
                         std::to_string(program->op_count()) + " ops, expect " +
                         to_string(program->expect) + ")";
  // An always-racy planted pair is concurrent on every schedule (see
  // fuzz/generate.hpp), but conformance's own grid-level expectation only
  // distinguishes never/sometimes; the stronger "manifests everywhere" and
  // "manifests at least once" invariants live in fuzz::check_program.
  scenario.expect = program->expect == Expectation::kClean
                        ? analysis::RaceExpectation::kNever
                        : analysis::RaceExpectation::kSometimes;
  scenario.min_ranks = program->nprocs;
  scenario.spawn = [program](runtime::World& world) { spawn_program(world, program); };
  return scenario;
}

}  // namespace dsmr::fuzz
