#include "fuzz/shrink.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/assert.hpp"

namespace dsmr::fuzz {

namespace {

Program without_phase(const Program& program, std::size_t phase) {
  Program candidate = program;
  candidate.phases.erase(candidate.phases.begin() + static_cast<std::ptrdiff_t>(phase));
  // The boundary belongs to the phase it enters: if the new first phase
  // carried one, it disappears with its entry position.
  if (phase == 0 && !candidate.phases.empty()) {
    candidate.phases.front().entry = Boundary{};
    candidate.phases.front().skip_rank = -1;
  }
  return candidate;
}

/// Removes signal ops whose tag has no remaining wait and wait ops whose
/// tag has no remaining signal — the structural cleanup that keeps rank
/// removal from leaving trivially-deadlocked orphan waits behind. (A tag
/// with both sides present is left alone even if the counts differ: an
/// extra signal just queues.)
void drop_unmatched_sync(Program& program) {
  std::map<std::uint64_t, std::pair<int, int>> tags;  // tag -> (signals, waits)
  for (const auto& phase : program.phases) {
    for (const auto& ops : phase.ops) {
      for (const auto& op : ops) {
        if (op.kind == OpKind::kSignal) ++tags[op.tag].first;
        if (op.kind == OpKind::kWait) ++tags[op.tag].second;
      }
    }
  }
  for (auto& phase : program.phases) {
    for (auto& ops : phase.ops) {
      std::erase_if(ops, [&tags](const Op& op) {
        if (op.kind == OpKind::kSignal) return tags[op.tag].second == 0;
        if (op.kind == OpKind::kWait) return tags[op.tag].first == 0;
        return false;
      });
    }
  }
}

Program without_rank(const Program& program, std::size_t rank) {
  Program candidate = program;
  candidate.nprocs -= 1;
  const int removed = static_cast<int>(rank);
  for (auto& phase : candidate.phases) {
    phase.ops.erase(phase.ops.begin() + static_cast<std::ptrdiff_t>(rank));
    // Rank-indexed structure renumbers; references to the removed rank
    // degrade to the simplest valid form (the predicate is the arbiter).
    if (phase.skip_rank == removed) phase.skip_rank = -1;
    if (phase.skip_rank > removed) --phase.skip_rank;
    if (phase.entry.root == removed) phase.entry = Boundary{};
    if (phase.entry.root > removed) --phase.entry.root;
    for (auto& ops : phase.ops) {
      std::erase_if(ops, [removed](const Op& op) {
        return op.kind == OpKind::kSignal && op.peer == removed;
      });
      for (auto& op : ops) {
        if (op.kind == OpKind::kSignal && op.peer > removed) --op.peer;
      }
    }
  }
  drop_unmatched_sync(candidate);
  return candidate;
}

/// Flat coordinates of every op, in (phase, rank, index) order.
struct OpRef {
  std::size_t phase, rank, index;
};

std::vector<OpRef> flatten(const Program& program) {
  std::vector<OpRef> refs;
  for (std::size_t p = 0; p < program.phases.size(); ++p) {
    const auto& phase = program.phases[p];
    for (std::size_t r = 0; r < phase.ops.size(); ++r) {
      for (std::size_t i = 0; i < phase.ops[r].size(); ++i) refs.push_back({p, r, i});
    }
  }
  return refs;
}

/// Removes the ops at refs[first, first+count); refs must be flatten()'s
/// order so per-rank indices can be erased back-to-front safely.
Program without_ops(const Program& program, const std::vector<OpRef>& refs,
                    std::size_t first, std::size_t count) {
  Program candidate = program;
  for (std::size_t i = first + count; i-- > first;) {
    const auto& ref = refs[i];
    auto& ops = candidate.phases[ref.phase].ops[ref.rank];
    ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(ref.index));
  }
  return candidate;
}

/// Removes every op carrying `tag` — both ends of a signal/wait edge at
/// once, which drops sync edges without the intermediate orphan-wait
/// (deadlocking, hence rejected) candidates the ddmin chunk walk produces.
Program without_sync_tag(const Program& program, std::uint64_t tag) {
  Program candidate = program;
  for (auto& phase : candidate.phases) {
    for (auto& ops : phase.ops) {
      std::erase_if(ops, [tag](const Op& op) {
        return (op.kind == OpKind::kSignal || op.kind == OpKind::kWait) && op.tag == tag;
      });
    }
  }
  return candidate;
}

std::set<std::uint64_t> sync_tags(const Program& program) {
  std::set<std::uint64_t> tags;
  for (const auto& phase : program.phases) {
    for (const auto& ops : phase.ops) {
      for (const auto& op : ops) {
        if (op.kind == OpKind::kSignal || op.kind == OpKind::kWait) tags.insert(op.tag);
      }
    }
  }
  return tags;
}

/// Drops areas no op references and renumbers the survivors.
Program compact_areas(const Program& program) {
  std::set<int> used;
  for (const auto& phase : program.phases) {
    for (const auto& ops : phase.ops) {
      for (const auto& op : ops) {
        if (op.kind == OpKind::kPut || op.kind == OpKind::kGet) {
          used.insert(op.area);
          if (op.lock != -1) used.insert(op.lock);
        }
      }
    }
  }
  if (used.empty() || static_cast<int>(used.size()) == program.areas) return program;
  std::vector<int> remap(static_cast<std::size_t>(program.areas), -1);
  int next = 0;
  for (const int area : used) remap[static_cast<std::size_t>(area)] = next++;
  Program candidate = program;
  candidate.areas = next;
  for (auto& phase : candidate.phases) {
    for (auto& ops : phase.ops) {
      for (auto& op : ops) {
        if (op.kind == OpKind::kPut || op.kind == OpKind::kGet) {
          op.area = remap[static_cast<std::size_t>(op.area)];
          if (op.lock != -1) op.lock = remap[static_cast<std::size_t>(op.lock)];
        }
      }
    }
  }
  return candidate;
}

}  // namespace

ShrinkResult shrink_program(const Program& initial, const StillFails& still_fails,
                            const ShrinkOptions& options) {
  std::string error;
  DSMR_REQUIRE(validate(initial, &error), "shrink of invalid program: " << error);

  ShrinkResult result;
  result.program = initial;
  result.initial_ops = initial.op_count();
  result.final_ops = result.initial_ops;

  auto budget_left = [&result, &options]() { return result.attempts < options.max_attempts; };
  auto try_candidate = [&result, &still_fails, &budget_left](Program candidate) {
    if (!budget_left()) return false;
    // A structural edit invalidates the planted-bug provenance coordinates
    // (and may leave them out of range); the behavioral predicate is the
    // only source of truth for a shrink candidate. (The partial-barrier
    // *behavior* is Phase::skip_rank — structural, so it survives.)
    candidate.planted.reset();
    ++result.attempts;
    if (!still_fails(candidate)) return false;
    result.program = std::move(candidate);
    result.changed = true;
    return true;
  };

  // A program that does not fail shrinks to itself.
  ++result.attempts;
  if (!still_fails(initial)) return result;

  bool progress = true;
  while (progress && budget_left()) {
    progress = false;

    // 1. Whole phases, last first (later phases are likelier to be noise
    //    after the failure manifested).
    for (std::size_t p = result.program.phases.size(); p-- > 0;) {
      if (result.program.phases.size() <= 1) break;
      if (try_candidate(without_phase(result.program, p))) progress = true;
    }

    // 2. Whole ranks (at least one must stay).
    for (std::size_t r = static_cast<std::size_t>(result.program.nprocs); r-- > 0;) {
      if (result.program.nprocs <= 1) break;
      if (try_candidate(without_rank(result.program, r))) progress = true;
    }

    // 3. Boundary simplification: collective entries collapse to the plain
    //    barrier (same frontier, less machinery), and a skipped barrier is
    //    restored to a full one.
    for (std::size_t p = 1; p < result.program.phases.size(); ++p) {
      const auto& phase = result.program.phases[p];
      if (phase.entry != Boundary{}) {
        Program candidate = result.program;
        candidate.phases[p].entry = Boundary{};
        if (try_candidate(std::move(candidate))) progress = true;
      }
      if (result.program.phases[p].skip_rank != -1) {
        Program candidate = result.program;
        candidate.phases[p].skip_rank = -1;
        if (try_candidate(std::move(candidate))) progress = true;
      }
    }

    // 4. Whole signal/wait edges, both ends at once.
    for (const std::uint64_t tag : sync_tags(result.program)) {
      if (try_candidate(without_sync_tag(result.program, tag))) progress = true;
    }

    // 5. Op chunks: halves, quarters, ..., single ops (classic ddmin
    //    granularity walk over the flattened op list).
    for (std::size_t chunk = std::max<std::size_t>(result.program.op_count() / 2, 1);
         chunk >= 1; chunk /= 2) {
      bool removed_at_this_granularity = true;
      while (removed_at_this_granularity && budget_left()) {
        removed_at_this_granularity = false;
        const auto refs = flatten(result.program);
        for (std::size_t first = 0; first + chunk <= refs.size(); first += chunk) {
          if (try_candidate(without_ops(result.program, refs, first, chunk))) {
            removed_at_this_granularity = true;
            progress = true;
            break;  // coordinates are stale; re-flatten.
          }
        }
      }
      if (chunk == 1) break;
    }
  }

  // 6. Compact unused areas (pure renumbering; verify it preserves failure).
  if (budget_left()) {
    const auto compacted = compact_areas(result.program);
    if (compacted.areas != result.program.areas) try_candidate(compacted);
  }

  result.final_ops = result.program.op_count();
  return result;
}

}  // namespace dsmr::fuzz
