#include "fuzz/harness.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <system_error>
#include <utility>

#include "explore/dpor.hpp"
#include "record/recorder.hpp"
#include "record/replay.hpp"
#include "util/assert.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dsmr::fuzz {

std::string check_name(const std::string& check) {
  return check.substr(0, check.find(':'));
}

ProgramVerdict check_program(const Program& program, const FuzzCheckOptions& options) {
  std::string error;
  DSMR_REQUIRE(validate(program, &error), "check_program: " << error);

  auto shared = std::make_shared<const Program>(program);
  const auto scenario = to_scenario(shared, options.scenario_name);

  analysis::ConformanceOptions grid;
  grid.base.nprocs = program.nprocs;
  // The generator's cleanliness discipline assumes the default detection
  // regime; a different config would need a different construction proof.
  DSMR_REQUIRE(grid.base.acked_puts && grid.base.lock_clock_handoff &&
                   grid.base.mode == core::DetectorMode::kDualClock,
               "fuzz harness requires the default WorldConfig detection settings");
  grid.first_seed = options.first_schedule_seed;
  grid.seeds = options.schedule_seeds;
  grid.threads = options.threads;
  grid.perturbations = options.perturbations;
  // Wire-enabled plans ride the conformance fault axis; the harness runs its
  // own (stricter) transparency check below, so the scenario-expectation-
  // gated one in run_conformance is off. A drop-live-reports flag on any
  // plan arms the detector-silence hook for the whole grid — that hook
  // breaks the harness's *view* of the detector, not the wire.
  bool drop_live = false;
  for (const auto& plan : options.fault_plans) {
    if (plan.drop_live_reports) drop_live = true;
    if (plan.wire_enabled()) grid.fault_plans.push_back(plan);
  }
  grid.expect_fault_transparency = false;
  // Plan-minor run order: index % nplans == 0 is the fault-free base run of
  // its (seed, perturbation) point.
  const std::size_t nplans = 1 + grid.fault_plans.size();

  ProgramVerdict verdict;
  verdict.report = analysis::run_conformance(scenario, grid);
  verdict.failures = verdict.report.disagreements;
  const auto& runs = verdict.report.runs;
  for (std::size_t i = 0; i < runs.size(); i += nplans) {
    if (!runs[i].completed) continue;
    ++verdict.completed_runs;
    if (runs[i].truth_pairs > 0) ++verdict.manifested_runs;
  }

  // Fuzz-only invariants from the construction guarantees. They quantify
  // over the fault-free grid: a fault variant is a different (but still
  // legal) schedule, held to the transparency check below instead.
  if (program.expect == Expectation::kRacy) {
    // An always-racy planted pair is concurrent on every schedule, so every
    // completed run must see it — in ground truth, in both detector modes'
    // replays, and live (modulo the test-only fault hook).
    for (std::size_t i = 0; i < runs.size(); i += nplans) {
      const auto& run = runs[i];
      if (!run.completed) continue;  // already an unexpected-deadlock failure.
      const std::uint64_t live = drop_live ? 0 : run.live_reports;
      std::ostringstream detail;
      detail << "truth=" << run.truth_pairs << " dual=" << run.dual_flagged
             << " single=" << run.single_flagged << " live=" << live;
      if (run.truth_pairs == 0) {
        // The construction guarantee itself broke: the planted pair is not
        // concurrent on this schedule. A distinct check from the detector
        // one — it indicts the generator, and it is deliberately NOT a
        // useful shrink target (every raceless racy-expected candidate
        // fires it, so minimization would degenerate to the empty program).
        verdict.failures.push_back(analysis::Divergence{
            scenario.name, run.seed, run.perturb, run.fault,
            "planted-race-vanished", detail.str(), "", "", ""});
      } else if (run.dual_flagged == 0 || run.single_flagged == 0 || live == 0) {
        // The race exists in ground truth but a detector layer stayed
        // silent. Shrinking preserves "has a race AND a layer misses it".
        verdict.failures.push_back(analysis::Divergence{
            scenario.name, run.seed, run.perturb, run.fault,
            "planted-bug-not-detected", detail.str(), "", "", ""});
      }
    }
  } else if (program.expect == Expectation::kSometimes) {
    // A schedule-dependent planted bug: silent schedules must be *clean*
    // silent (no reports of any kind), and at least one schedule in the
    // grid must manifest — the generator guarantees the base (unperturbed)
    // variant does, by construction.
    for (std::size_t i = 0; i < runs.size(); i += nplans) {
      const auto& run = runs[i];
      if (!run.completed) continue;
      const std::uint64_t live = drop_live ? 0 : run.live_reports;
      if (run.truth_pairs > 0) {
        // Manifesting schedules must be *detected*: the contested area
        // carries only the planted pair (plus accesses ordered before it),
        // so latest-access masking cannot hide it — a silent layer is a
        // detector bug, exactly as for the always-racy kinds.
        if (run.dual_flagged == 0 || run.single_flagged == 0 || live == 0) {
          std::ostringstream detail;
          detail << "truth=" << run.truth_pairs << " dual=" << run.dual_flagged
                 << " single=" << run.single_flagged << " live=" << live;
          verdict.failures.push_back(analysis::Divergence{
              scenario.name, run.seed, run.perturb, run.fault,
              "sometimes-bug-not-detected", detail.str(), "", "", ""});
        }
      } else if (live > 0 || run.dual_flagged > 0) {
        std::ostringstream detail;
        detail << "live=" << live << " dual=" << run.dual_flagged
               << " on a schedule with empty ground truth";
        verdict.failures.push_back(analysis::Divergence{
            scenario.name, run.seed, run.perturb, run.fault, "sometimes-noise",
            detail.str(), "", "", ""});
      }
    }
    if (verdict.completed_runs > 0 && verdict.manifested_runs == 0) {
      std::ostringstream detail;
      detail << "0/" << verdict.completed_runs << " schedules manifested";
      // Like planted-race-vanished, this is a grid-level generator
      // indictment and deliberately not a shrink target; anchor the
      // coordinate at the grid's first run.
      verdict.failures.push_back(analysis::Divergence{
          scenario.name, runs.front().seed, runs.front().perturb,
          runs.front().fault, "sometimes-bug-never-manifested", detail.str(),
          "", "", ""});
    }
  }

  // Fault-transparency, fuzz-strength: kClean and kRacy verdicts are
  // schedule-*invariant* by construction (zero truth pairs everywhere;
  // exactly the planted pair everywhere), so a recoverable fault plan must
  // leave the logical verdict signature — ground truth, live reports, the
  // dual-clock replay, and the racy areas — bit-identical to the fault-free
  // run of the same (seed, perturbation), not merely "still legal". The
  // signature deliberately omits the single-clock replay's pair set: its
  // read verdicts are approximate (§IV.D) and apply-order-dependent, so
  // retransmission delay legitimately flips them even on clean programs.
  // kSometimes is exempt entirely: faults re-roll schedule luck. The
  // unrecoverable-plan clean-failure invariants already fired inside
  // run_conformance.
  if (program.expect != Expectation::kSometimes) {
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (i % nplans == 0) continue;
      const auto& run = runs[i];
      const auto& base = runs[i - i % nplans];
      if (!run.fault.recoverable() || !run.completed || !base.completed) continue;
      if (run.signature != base.signature) {
        std::ostringstream detail;
        detail << "verdicts differ from fault-free run: base " << base.truth_pairs
               << " truth pairs/" << base.live_reports << " reports, faulted "
               << run.truth_pairs << " truth pairs/" << run.live_reports
               << " reports";
        verdict.failures.push_back(analysis::Divergence{
            scenario.name, run.seed, run.perturb, run.fault, "fault-transparency",
            detail.str(), "", "", ""});
      }
    }
  }

  // The exhaustive invariant (ROADMAP item 4): small programs get every
  // reduced interleaving of the threaded op model, turning the sampled
  // grid's rates into proofs — a kSometimes bug must EXIST somewhere in
  // the space, a clean program must have NO racy interleaving anywhere.
  if (options.exhaustive) {
    const explore::Eligibility okay = explore::exhaustive_eligible(program);
    if (!okay.eligible) {
      verdict.explore_skipped = okay.reason;
    } else {
      explore::ExploreOptions explore_options;
      explore_options.max_interleavings = options.exhaustive_max_interleavings;
      explore_options.max_witnesses = 0;  // the CLI exports its own.
      const explore::ExploreReport explored =
          explore::explore_program(program, explore_options);
      verdict.explored = true;
      verdict.explored_interleavings = explored.interleavings;
      verdict.explored_pruned = explored.pruned_branches;
      verdict.explored_racy = explored.racy_interleavings;
      verdict.explored_planted_flagged = explored.planted_flagged;
      verdict.explore_signatures = explored.signatures.size();
      for (const std::string& failure :
           explore::check_exhaustive(program, explored)) {
        const std::size_t colon = failure.find(": ");
        analysis::Divergence divergence;
        divergence.scenario = scenario.name;
        divergence.check =
            colon == std::string::npos ? failure : failure.substr(0, colon);
        divergence.detail =
            colon == std::string::npos ? "" : failure.substr(colon + 2);
        verdict.failures.push_back(std::move(divergence));
      }
    }
  }
  return verdict;
}

// ---------------------------------------------------------------------------
// Repro files
// ---------------------------------------------------------------------------

std::string serialize_repro(const Repro& repro) {
  DSMR_REQUIRE(!repro.check.empty(), "repro needs the fired check's name");
  DSMR_REQUIRE(repro.record_log.find('/') == std::string::npos &&
                   repro.record_log.find(' ') == std::string::npos,
               "record log reference must be a bare basename");
  std::ostringstream out;
  out << "dsmr-fuzz-repro v4\n";
  out << "check " << repro.check << "\n";
  // FaultPlan::to_string is canonical, so serialize → parse → serialize is
  // byte-identical and the repro round-trips the full replay coordinate.
  out << "fault " << repro.fault.to_string() << "\n";
  out << "program_seed " << repro.program_seed << "\n";
  out << "schedule_seed " << repro.schedule_seed << "\n";
  out << "perturb " << repro.perturb.min_skew_ns << " " << repro.perturb.max_skew_ns
      << " " << repro.perturb.salt << "\n";
  out << "shrunk " << (repro.shrunk ? 1 : 0) << "\n";
  out << "manifestation " << repro.manifested << " " << repro.schedules << "\n";
  // v4: optional companion-log reference. The basename is resolved relative
  // to the .repro file's own directory by the tools.
  if (!repro.record_log.empty()) out << "record " << repro.record_log << "\n";
  out << serialize(repro.program);
  return out.str();
}

std::optional<Repro> parse_repro(const std::string& text, std::string* error) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto fail = [error, &line_no](const std::string& what) -> std::optional<Repro> {
    if (error != nullptr) *error = "repro line " + std::to_string(line_no) + ": " + what;
    return std::nullopt;
  };
  auto next_line = [&in, &line, &line_no]() {
    if (!std::getline(in, line)) {
      line.clear();
      return false;
    }
    ++line_no;
    return true;
  };
  auto field = [&line](const std::string& key) -> std::optional<std::string> {
    if (line.rfind(key + " ", 0) != 0) return std::nullopt;
    return line.substr(key.size() + 1);
  };

  // v3 repros (no `record` line) are still produced by old artifacts and
  // parse unchanged; v4 added the optional companion-log reference.
  if (!next_line() ||
      (line != "dsmr-fuzz-repro v3" && line != "dsmr-fuzz-repro v4")) {
    return fail("expected header 'dsmr-fuzz-repro v3' or 'v4'");
  }
  const bool v4 = line == "dsmr-fuzz-repro v4";
  Repro repro;
  if (!next_line()) return fail("truncated");
  const auto check = field("check");
  if (!check || check->empty()) return fail("expected 'check <name>'");
  repro.check = *check;

  if (!next_line()) return fail("truncated");
  const auto fault_text = field("fault");
  if (!fault_text) return fail("expected 'fault <plan>'");
  std::string fault_error;
  const auto fault = net::parse_fault_plan(*fault_text, &fault_error);
  if (!fault) return fail("bad fault plan: " + fault_error);
  repro.fault = *fault;

  using SeedField = std::pair<const char*, std::uint64_t*>;
  for (const auto& [key, out] : {SeedField{"program_seed", &repro.program_seed},
                                 SeedField{"schedule_seed", &repro.schedule_seed}}) {
    if (!next_line()) return fail("truncated");
    const auto value_text = field(key);
    if (!value_text) return fail(std::string("expected '") + key + " N'");
    const auto value = util::parse_u64(*value_text);
    if (!value) return fail(std::string("bad ") + key + " '" + *value_text + "'");
    *out = *value;
  }

  if (!next_line()) return fail("truncated");
  const auto perturb_text = field("perturb");
  if (!perturb_text) return fail("expected 'perturb <min> <max> <salt>'");
  {
    std::istringstream fields(*perturb_text);
    std::string min_text, max_text, salt_text, extra;
    if (!(fields >> min_text >> max_text >> salt_text) || (fields >> extra)) {
      return fail("perturb needs exactly: min max salt");
    }
    const auto min = util::parse_u64(min_text);
    const auto max = util::parse_u64(max_text);
    const auto salt = util::parse_u64(salt_text);
    if (!min || !max || !salt || *min > *max) return fail("bad perturb bounds");
    repro.perturb = sim::PerturbConfig{static_cast<sim::Time>(*min),
                                       static_cast<sim::Time>(*max), *salt};
  }

  if (!next_line()) return fail("truncated");
  const auto shrunk_text = field("shrunk");
  if (!shrunk_text || (*shrunk_text != "0" && *shrunk_text != "1")) {
    return fail("expected 'shrunk 0|1'");
  }
  repro.shrunk = *shrunk_text == "1";

  if (!next_line()) return fail("truncated");
  const auto manifest_text = field("manifestation");
  if (!manifest_text) return fail("expected 'manifestation <manifested> <schedules>'");
  {
    std::istringstream fields(*manifest_text);
    std::string num_text, den_text, extra;
    if (!(fields >> num_text >> den_text) || (fields >> extra)) {
      return fail("manifestation needs exactly: manifested schedules");
    }
    const auto num = util::parse_u64(num_text);
    const auto den = util::parse_u64(den_text);
    if (!num || !den || *num > *den) return fail("bad manifestation counts");
    repro.manifested = *num;
    repro.schedules = *den;
  }

  // The rest of the file is the program's own canonical serialization,
  // preceded (v4 only) by an optional `record <basename>` line.
  std::string program_text;
  if (next_line()) {
    const auto record = v4 ? field("record") : std::nullopt;
    if (record) {
      if (record->empty() || record->find('/') != std::string::npos ||
          record->find(' ') != std::string::npos) {
        return fail("record log reference must be a bare basename");
      }
      repro.record_log = *record;
    } else {
      program_text += line + "\n";
    }
  }
  while (std::getline(in, line)) program_text += line + "\n";
  std::string program_error;
  auto program = parse_program(program_text, &program_error);
  if (!program) return fail(program_error);
  repro.program = std::move(*program);
  return repro;
}

std::vector<std::string> replay_repro(const Repro& repro, int threads) {
  FuzzCheckOptions options;
  options.first_schedule_seed = repro.schedule_seed;
  options.schedule_seeds = 1;
  options.threads = threads;
  options.perturbations = {repro.perturb};
  if (!(repro.fault == net::FaultPlan{})) options.fault_plans = {repro.fault};
  options.scenario_name = "replay";
  const auto verdict = check_program(repro.program, options);
  std::vector<std::string> fired;
  for (const auto& failure : verdict.failures) {
    const auto name = check_name(failure.check);
    if (std::find(fired.begin(), fired.end(), name) == fired.end()) {
      fired.push_back(name);
    }
  }
  return fired;
}

bool reproduces(const Repro& repro, int threads) {
  const auto fired = replay_repro(repro, threads);
  return std::find(fired.begin(), fired.end(), repro.check) != fired.end();
}

std::vector<std::byte> record_coordinate(const Program& program,
                                         std::uint64_t program_seed,
                                         std::uint64_t schedule_seed,
                                         const sim::PerturbConfig& perturb,
                                         const net::FaultPlan& fault) {
  std::string error;
  DSMR_REQUIRE(validate(program, &error), "record_coordinate: " << error);
  auto shared = std::make_shared<const Program>(program);
  const auto scenario = to_scenario(shared, "record");

  runtime::WorldConfig config;
  config.nprocs = program.nprocs;
  config.seed = schedule_seed;
  config.perturb = perturb;
  config.fault = fault;
  DSMR_REQUIRE(config.mode == core::DetectorMode::kOff ||
                   config.transport == core::Transport::kHomeSide,
               "record_coordinate: wire layout does not support recording");

  runtime::World world(config);
  record::Recorder recorder(static_cast<std::uint32_t>(config.nprocs),
                            record::Backend::kSim, config.mode,
                            config.lock_clock_handoff, config.acked_puts);
  // Self-describing provenance: a log found on disk carries everything
  // needed to re-run its coordinate, without the companion .repro.
  recorder.set_metadata("program", serialize(program));
  recorder.set_metadata("program_seed", std::to_string(program_seed));
  recorder.set_metadata("schedule_seed", std::to_string(schedule_seed));
  recorder.set_metadata("perturb", std::to_string(perturb.min_skew_ns) + " " +
                                       std::to_string(perturb.max_skew_ns) +
                                       " " + std::to_string(perturb.salt));
  recorder.set_metadata("fault", fault.to_string());
  world.set_recorder(&recorder);
  scenario.spawn(world);
  const auto report = world.run();
  recorder.finish(world.races().reports(), report.completed, report.stuck_ranks);
  return recorder.log().serialize();
}

std::string check_repro_log(const Repro& repro,
                            std::span<const std::byte> log_bytes) {
  DSMR_REQUIRE(!repro.record_log.empty(), "repro has no companion log");
  // Corruption first: a truncated or bit-flipped log fails with the parser's
  // structured diagnostic, not a raw byte mismatch.
  std::string error;
  const auto stored = record::Log::parse(log_bytes, &error);
  if (!stored) return error;
  // The embedded verdicts must fold back from the stored ordering alone.
  const std::string fold = record::check_record_replay(*stored);
  if (!fold.empty()) return fold;
  // Byte-identical cross-process replay: re-running the repro's coordinate
  // re-records the exact bytes, or the log does not belong to this repro.
  const auto fresh = record_coordinate(repro.program, repro.program_seed,
                                       repro.schedule_seed, repro.perturb,
                                       repro.fault);
  if (fresh.size() != log_bytes.size() ||
      !std::equal(fresh.begin(), fresh.end(), log_bytes.begin())) {
    std::size_t diverge = 0;
    while (diverge < std::min(fresh.size(), log_bytes.size()) &&
           fresh[diverge] == log_bytes[diverge]) {
      ++diverge;
    }
    std::ostringstream out;
    out << "[log-mismatch] re-recorded coordinate diverges from stored log at "
        << "byte " << diverge << " (stored " << log_bytes.size()
        << " bytes, re-recorded " << fresh.size() << ")";
    return out.str();
  }
  return "";
}

// ---------------------------------------------------------------------------
// Coverage signatures
// ---------------------------------------------------------------------------

const char* to_string(ScheduleMode mode) {
  switch (mode) {
    case ScheduleMode::kUniform: return "uniform";
    case ScheduleMode::kCoverage: return "coverage";
  }
  return "?";
}

std::optional<ScheduleMode> parse_schedule_mode(const std::string& text) {
  if (text == "uniform") return ScheduleMode::kUniform;
  if (text == "coverage") return ScheduleMode::kCoverage;
  return std::nullopt;
}

ScheduleMode schedule_mode_from_name(const std::string& text) {
  const auto mode = parse_schedule_mode(text);
  DSMR_REQUIRE(mode.has_value(),
               "unknown schedule mode '" << text << "' (uniform|coverage)");
  return *mode;
}

namespace {

/// Log2 magnitude bucket: 0, 1, 2, 3-4, 5-8, ... collapse to bit_width.
int bucket(std::uint64_t count) {
  return count == 0 ? 0 : std::bit_width(count);
}

}  // namespace

std::string coverage_signature(const Program& program, const ProgramVerdict& verdict) {
  std::uint64_t puts = 0, gets = 0, signals = 0, waits = 0, pauses = 0, locked = 0,
                wrong_lock = 0;
  bool skip = false;
  std::set<BoundaryKind> bounds;
  for (const auto& phase : program.phases) {
    if (phase.entry.kind != BoundaryKind::kBarrier) bounds.insert(phase.entry.kind);
    if (phase.skip_rank != -1) skip = true;
    for (const auto& ops : phase.ops) {
      for (const auto& op : ops) {
        switch (op.kind) {
          case OpKind::kPut: ++puts; break;
          case OpKind::kGet: ++gets; break;
          case OpKind::kSignal: ++signals; break;
          case OpKind::kWait: ++waits; break;
          case OpKind::kSleep:
          case OpKind::kCompute: ++pauses; break;
        }
        if (op.locked) ++locked;
        if (op.locked && op.lock != -1) ++wrong_lock;
      }
    }
  }
  std::ostringstream out;
  out << "expect=" << to_string(program.expect);
  out << ";kind=" << (program.planted ? to_string(program.planted->kind) : "-");
  out << ";ranks=" << bucket(static_cast<std::uint64_t>(program.nprocs));
  out << ";put=" << bucket(puts) << ";get=" << bucket(gets) << ";sig=" << bucket(signals)
      << ";wait=" << bucket(waits) << ";pause=" << bucket(pauses)
      << ";locked=" << bucket(locked) << ";wrong=" << (wrong_lock > 0 ? 1 : 0);
  out << ";bounds=";
  for (const auto kind : bounds) {
    switch (kind) {
      case BoundaryKind::kBarrier: break;  // implicit everywhere.
      case BoundaryKind::kAllreduce: out << "a"; break;
      case BoundaryKind::kGatherBcast: out << "b"; break;
      case BoundaryKind::kGatherScatter: out << "s"; break;
    }
  }
  out << (skip ? "!" : "");
  // Verdict path.
  const auto rate = verdict.manifestation_rate();
  out << ";manifest="
      << (verdict.manifested_runs == 0 ? "none"
          : rate >= 1.0                ? "all"
          : rate >= 0.5                ? "high"
                                       : "low");
  out << ";dead=" << (verdict.report.incomplete_runs > 0 ? 1 : 0);
  out << ";lockset=" << (verdict.report.lockset_divergences > 0 ? 1 : 0);
  out << ";recall=" << (verdict.report.min_area_recall >= 1.0 ? "full" : "partial");
  out << ";fail="
      << (verdict.failures.empty() ? "-" : check_name(verdict.failures.front().check));
  return out.str();
}

// ---------------------------------------------------------------------------
// Corpus persistence
// ---------------------------------------------------------------------------

Corpus::Corpus(const std::string& dir) : dir_(dir) {
  DSMR_REQUIRE(!dir.empty(), "corpus dir must be non-empty");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  DSMR_REQUIRE(!ec && std::filesystem::is_directory(dir_),
               "cannot open corpus dir " << dir_ << ": "
                                         << (ec ? ec.message() : "not a directory"));
  const auto path = std::filesystem::path(dir_) / "signatures.tsv";
  if (std::filesystem::exists(path)) {
    std::ifstream in(path);
    DSMR_REQUIRE(in.good(), "cannot read corpus file " << path.string());
    std::string line;
    while (std::getline(in, line)) {
      const auto tab = line.find('\t');
      const auto signature = tab == std::string::npos ? line : line.substr(0, tab);
      if (!signature.empty()) signatures_.insert(signature);
    }
  }
}

bool Corpus::add(const std::string& signature, const std::string& arm,
                 std::uint64_t seed) {
  if (!signatures_.insert(signature).second) return false;
  if (!dir_.empty()) {
    fresh_lines_.push_back(signature + "\t" + arm + "\t" + std::to_string(seed));
  }
  return true;
}

void Corpus::flush() {
  if (dir_.empty() || fresh_lines_.empty()) return;
  const auto path = std::filesystem::path(dir_) / "signatures.tsv";
  std::ofstream out(path, std::ios::app);
  DSMR_REQUIRE(out.good(), "cannot append to corpus file " << path.string());
  for (const auto& line : fresh_lines_) out << line << "\n";
  DSMR_REQUIRE(out.good(), "short write to corpus file " << path.string());
  fresh_lines_.clear();
}

// ---------------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------------

bool plant_for_seed(std::uint64_t program_seed, double planted_fraction) {
  const auto hash = util::SplitMix64(program_seed ^ 0x5eedf00dULL).next();
  return static_cast<double>(hash >> 11) * 0x1.0p-53 < planted_fraction;
}

BugKind kind_for_seed(std::uint64_t program_seed, const std::vector<BugKind>& kinds) {
  DSMR_REQUIRE(!kinds.empty(), "kind_for_seed needs a non-empty kind set");
  const auto hash = util::SplitMix64(program_seed ^ 0xb06b06ULL).next();
  return kinds[hash % kinds.size()];
}

namespace {

/// One scheduled generation: everything a pool worker needs.
struct Draw {
  std::uint64_t program_seed = 0;
  GenConfig gen;
  std::string arm;
};

SweepOutcome run_draw(const Draw& draw, const FuzzCheckOptions& check,
                      bool verbose, const std::string& record_dir) {
  const auto program = generate_program(draw.gen);
  FuzzCheckOptions options = check;
  options.scenario_name = "fuzz-s" + std::to_string(draw.program_seed);
  const auto verdict = check_program(program, options);
  bool recorded = false;
  if (!record_dir.empty()) {
    // Always-on recording: the base coordinate's ordering log, one file per
    // executed program. Distinct filenames, so pool workers never collide.
    const auto bytes = record_coordinate(
        program, draw.program_seed, check.first_schedule_seed,
        check.perturbations.empty() ? sim::PerturbConfig{}
                                    : check.perturbations.front(),
        net::FaultPlan{});
    const std::string path =
        record_dir + "/fuzz-s" + std::to_string(draw.program_seed) + ".dsmrlog";
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    DSMR_CHECK_MSG(out.good(), "cannot write recorded log " << path);
    recorded = true;
  }

  SweepOutcome out;
  out.ran = true;
  out.program_seed = draw.program_seed;
  out.arm = draw.arm;
  out.expect = program.expect;
  if (program.planted) out.bug = program.planted->kind;
  out.schedules = verdict.report.runs.size();
  out.manifested = verdict.manifested_runs;
  out.completed = verdict.completed_runs;
  out.fault_runs = verdict.report.fault_runs;
  out.watchdog_runs = verdict.report.watchdog_runs;
  out.ops = program.op_count();
  out.signature = coverage_signature(program, verdict);
  out.recorded = recorded;
  out.explored = verdict.explored;
  out.explore_skipped = verdict.explore_skipped;
  out.explored_interleavings = verdict.explored_interleavings;
  out.explored_racy = verdict.explored_racy;
  out.failures = verdict.failures;
  if (!verdict.failures.empty()) out.program_text = serialize(program);
  if (verbose) {
    out.rendered =
        std::string(to_string(program.expect)) + ": " + verdict.report.render();
  }
  return out;
}

/// Coverage-mode bandit arm: a profile × {clean, bug kind} generator slice.
struct Arm {
  std::string profile;
  std::optional<BugKind> bug;
  std::string label;
  GenConfig gen;  ///< seed overwritten per draw.
  std::uint64_t pulls = 0;
  std::uint64_t novel = 0;
};

std::vector<Arm> make_arms(const GenConfig& base) {
  std::vector<Arm> arms;
  for (const auto& profile : profile_names()) {
    GenConfig gen = base;
    const bool known = apply_profile(profile, gen);
    DSMR_CHECK_MSG(known, "profile registry disagrees with apply_profile");
    Arm clean;
    clean.profile = profile;
    clean.label = profile + "/clean";
    clean.gen = gen;
    clean.gen.plant_bug = false;
    arms.push_back(clean);
    for (const BugKind kind : eligible_bug_kinds(gen)) {
      Arm arm;
      arm.profile = profile;
      arm.bug = kind;
      arm.label = profile + "/" + to_string(kind);
      arm.gen = gen;
      arm.gen.plant_bug = true;
      arm.gen.bug_kind = kind;
      arms.push_back(arm);
    }
  }
  return arms;
}

/// UCB1 with a novelty reward: unexplored arms first (in index order), then
/// the best mean-novelty + exploration bonus, ties to the lowest index.
std::size_t pick_arm(const std::vector<Arm>& arms, std::uint64_t total_pulls) {
  for (std::size_t i = 0; i < arms.size(); ++i) {
    if (arms[i].pulls == 0) return i;
  }
  std::size_t best = 0;
  double best_score = -1.0;
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const auto pulls = static_cast<double>(arms[i].pulls);
    const double score =
        static_cast<double>(arms[i].novel) / pulls +
        std::sqrt(2.0 * std::log(static_cast<double>(total_pulls + 1)) / pulls);
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

/// Fixed coverage batch size: the bandit folds rewards between batches, and
/// keeping the batch independent of the worker count keeps coverage runs
/// deterministic for a fixed config on any machine.
constexpr std::uint64_t kCoverageBatch = 8;

}  // namespace

FuzzSweepResult run_fuzz_sweep(const FuzzSweepConfig& config) {
  DSMR_REQUIRE(config.seeds.count > 0, "sweep needs at least one program");
  DSMR_REQUIRE(config.threads >= 1, "sweep needs at least one thread");
  Corpus corpus = config.corpus_dir.empty() ? Corpus{} : Corpus{config.corpus_dir};
  if (!config.record_dir.empty()) {
    std::filesystem::create_directories(config.record_dir);
  }

  FuzzSweepResult result;
  result.outcomes.resize(config.seeds.count);
  std::set<std::string> run_signatures;

  auto out_of_budget = [&config]() {
    return config.out_of_budget && config.out_of_budget();
  };
  auto fold = [&result, &corpus, &run_signatures](SweepOutcome& outcome) {
    ++result.programs;
    (outcome.bug ? result.planted : result.clean) += 1;
    result.schedules += outcome.schedules;
    result.fault_runs += outcome.fault_runs;
    result.watchdog_runs += outcome.watchdog_runs;
    if (outcome.recorded) ++result.recorded_logs;
    if (outcome.explored) ++result.explored_programs;
    if (!outcome.explore_skipped.empty()) ++result.explore_skipped_programs;
    result.explored_interleavings += outcome.explored_interleavings;
    run_signatures.insert(outcome.signature);
    outcome.novel = corpus.add(outcome.signature, outcome.arm, outcome.program_seed);
    if (outcome.novel) ++result.corpus_new;
    auto& stats = result.kinds[outcome.bug ? to_string(*outcome.bug) : "clean"];
    ++stats.programs;
    if (outcome.manifested > 0) ++stats.manifested_programs;
    stats.manifested_runs += outcome.manifested;
    stats.completed_runs += outcome.completed;
    if (!outcome.failures.empty()) ++stats.failures;
  };

  util::ThreadPool pool(config.threads);

  if (config.mode == ScheduleMode::kUniform) {
    // The classic sweep: sequential seeds, hash-planted kinds, chunked so
    // the wall-clock budget stays responsive. Each job writes its
    // pre-assigned slot; the fold below runs in seed order, so output is
    // bit-identical across thread counts.
    const std::uint64_t chunk =
        std::max<std::uint64_t>(static_cast<std::uint64_t>(config.threads) * 4, 1);
    std::uint64_t scheduled = 0;
    for (std::uint64_t next = 0; next < config.seeds.count; next += chunk) {
      if (out_of_budget()) {
        result.budget_hit = true;
        break;
      }
      const std::uint64_t end = std::min(config.seeds.count, next + chunk);
      for (std::uint64_t offset = next; offset < end; ++offset) {
        pool.submit([offset, &config, &result] {
          Draw draw;
          draw.program_seed = config.seeds.first + offset;
          draw.gen = config.base;
          draw.gen.seed = draw.program_seed;
          draw.gen.plant_bug = !config.bug_kinds.empty() &&
                               plant_for_seed(draw.program_seed, config.planted_fraction);
          if (draw.gen.plant_bug) {
            draw.gen.bug_kind = kind_for_seed(draw.program_seed, config.bug_kinds);
          }
          draw.arm = config.profile + "/" +
                     (draw.gen.plant_bug ? to_string(draw.gen.bug_kind) : "clean");
          result.outcomes[offset] =
              run_draw(draw, config.check, config.verbose, config.record_dir);
        });
      }
      pool.wait_idle();
      scheduled = end;
    }
    for (std::uint64_t offset = 0; offset < scheduled; ++offset) {
      if (result.outcomes[offset].ran) fold(result.outcomes[offset]);
    }
  } else {
    // Coverage-guided: the bandit picks (profile, kind) arms, rewards are
    // folded between fixed-size batches, and novelty is judged against the
    // loaded corpus plus everything seen this run.
    auto arms = make_arms(config.base);
    DSMR_CHECK_MSG(!arms.empty(), "coverage sweep found no arms");
    std::uint64_t total_pulls = 0;
    std::uint64_t drawn = 0;
    while (drawn < config.seeds.count) {
      if (out_of_budget()) {
        result.budget_hit = true;
        break;
      }
      const auto batch = std::min(kCoverageBatch, config.seeds.count - drawn);
      std::vector<std::size_t> picked(batch);
      for (std::uint64_t b = 0; b < batch; ++b) {
        const auto index = pick_arm(arms, total_pulls);
        picked[b] = index;
        ++arms[index].pulls;  // provisional, so one batch spreads its picks.
        ++total_pulls;
        Draw draw;
        draw.program_seed = config.seeds.first + drawn + b;
        draw.gen = arms[index].gen;
        draw.gen.seed = draw.program_seed;
        draw.arm = arms[index].label;
        pool.submit([draw, slot = drawn + b, &result, &config] {
          result.outcomes[slot] =
              run_draw(draw, config.check, config.verbose, config.record_dir);
        });
      }
      pool.wait_idle();
      for (std::uint64_t b = 0; b < batch; ++b) {
        auto& outcome = result.outcomes[drawn + b];
        fold(outcome);
        if (outcome.novel) ++arms[picked[b]].novel;
      }
      drawn += batch;
    }
  }

  result.distinct_signatures = run_signatures.size();
  corpus.flush();
  return result;
}

}  // namespace dsmr::fuzz
