#include "fuzz/harness.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "util/assert.hpp"
#include "util/cli.hpp"

namespace dsmr::fuzz {

const char* to_string(Fault fault) {
  switch (fault) {
    case Fault::kNone: return "none";
    case Fault::kDropLiveReports: return "drop-live-reports";
  }
  return "?";
}

std::optional<Fault> parse_fault(const std::string& text) {
  if (text == "none") return Fault::kNone;
  if (text == "drop-live-reports") return Fault::kDropLiveReports;
  return std::nullopt;
}

std::string check_name(const std::string& check) {
  return check.substr(0, check.find(':'));
}

ProgramVerdict check_program(const Program& program, const FuzzCheckOptions& options) {
  std::string error;
  DSMR_REQUIRE(validate(program, &error), "check_program: " << error);

  auto shared = std::make_shared<const Program>(program);
  const auto scenario = to_scenario(shared, options.scenario_name);

  analysis::ConformanceOptions grid;
  grid.base.nprocs = program.nprocs;
  // The generator's cleanliness discipline assumes the default detection
  // regime; a different config would need a different construction proof.
  DSMR_REQUIRE(grid.base.acked_puts && grid.base.lock_clock_handoff &&
                   grid.base.mode == core::DetectorMode::kDualClock,
               "fuzz harness requires the default WorldConfig detection settings");
  grid.first_seed = options.first_schedule_seed;
  grid.seeds = options.schedule_seeds;
  grid.threads = options.threads;
  grid.perturbations = options.perturbations;

  ProgramVerdict verdict;
  verdict.report = analysis::run_conformance(scenario, grid);
  verdict.failures = verdict.report.disagreements;

  // Fuzz-only invariant: a planted pair is concurrent on every schedule,
  // so every completed run must see it — in ground truth, in both detector
  // modes' replays, and live (modulo the test-only fault hook).
  if (program.expect == Expectation::kRacy) {
    for (const auto& run : verdict.report.runs) {
      if (!run.completed) continue;  // already an unexpected-deadlock failure.
      const std::uint64_t live =
          options.fault == Fault::kDropLiveReports ? 0 : run.live_reports;
      std::ostringstream detail;
      detail << "truth=" << run.truth_pairs << " dual=" << run.dual_flagged
             << " single=" << run.single_flagged << " live=" << live;
      if (run.truth_pairs == 0) {
        // The construction guarantee itself broke: the planted pair is not
        // concurrent on this schedule. A distinct check from the detector
        // one — it indicts the generator, and it is deliberately NOT a
        // useful shrink target (every raceless racy-expected candidate
        // fires it, so minimization would degenerate to the empty program).
        verdict.failures.push_back(analysis::Divergence{
            scenario.name, run.seed, run.perturb, "planted-race-vanished",
            detail.str(), "", ""});
      } else if (run.dual_flagged == 0 || run.single_flagged == 0 || live == 0) {
        // The race exists in ground truth but a detector layer stayed
        // silent. Shrinking preserves "has a race AND a layer misses it".
        verdict.failures.push_back(analysis::Divergence{
            scenario.name, run.seed, run.perturb, "planted-bug-not-detected",
            detail.str(), "", ""});
      }
    }
  }
  return verdict;
}

// ---------------------------------------------------------------------------
// Repro files
// ---------------------------------------------------------------------------

std::string serialize_repro(const Repro& repro) {
  DSMR_REQUIRE(!repro.check.empty(), "repro needs the fired check's name");
  std::ostringstream out;
  out << "dsmr-fuzz-repro v1\n";
  out << "check " << repro.check << "\n";
  out << "fault " << to_string(repro.fault) << "\n";
  out << "program_seed " << repro.program_seed << "\n";
  out << "schedule_seed " << repro.schedule_seed << "\n";
  out << "perturb " << repro.perturb.min_skew_ns << " " << repro.perturb.max_skew_ns
      << " " << repro.perturb.salt << "\n";
  out << "shrunk " << (repro.shrunk ? 1 : 0) << "\n";
  out << serialize(repro.program);
  return out.str();
}

std::optional<Repro> parse_repro(const std::string& text, std::string* error) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto fail = [error, &line_no](const std::string& what) -> std::optional<Repro> {
    if (error != nullptr) *error = "repro line " + std::to_string(line_no) + ": " + what;
    return std::nullopt;
  };
  auto next_line = [&in, &line, &line_no]() {
    if (!std::getline(in, line)) {
      line.clear();
      return false;
    }
    ++line_no;
    return true;
  };
  auto field = [&line](const std::string& key) -> std::optional<std::string> {
    if (line.rfind(key + " ", 0) != 0) return std::nullopt;
    return line.substr(key.size() + 1);
  };

  if (!next_line() || line != "dsmr-fuzz-repro v1") {
    return fail("expected header 'dsmr-fuzz-repro v1'");
  }
  Repro repro;
  if (!next_line()) return fail("truncated");
  const auto check = field("check");
  if (!check || check->empty()) return fail("expected 'check <name>'");
  repro.check = *check;

  if (!next_line()) return fail("truncated");
  const auto fault_text = field("fault");
  if (!fault_text) return fail("expected 'fault <mode>'");
  const auto fault = parse_fault(*fault_text);
  if (!fault) return fail("unknown fault '" + *fault_text + "'");
  repro.fault = *fault;

  using SeedField = std::pair<const char*, std::uint64_t*>;
  for (const auto& [key, out] : {SeedField{"program_seed", &repro.program_seed},
                                 SeedField{"schedule_seed", &repro.schedule_seed}}) {
    if (!next_line()) return fail("truncated");
    const auto value_text = field(key);
    if (!value_text) return fail(std::string("expected '") + key + " N'");
    const auto value = util::parse_u64(*value_text);
    if (!value) return fail(std::string("bad ") + key + " '" + *value_text + "'");
    *out = *value;
  }

  if (!next_line()) return fail("truncated");
  const auto perturb_text = field("perturb");
  if (!perturb_text) return fail("expected 'perturb <min> <max> <salt>'");
  {
    std::istringstream fields(*perturb_text);
    std::string min_text, max_text, salt_text, extra;
    if (!(fields >> min_text >> max_text >> salt_text) || (fields >> extra)) {
      return fail("perturb needs exactly: min max salt");
    }
    const auto min = util::parse_u64(min_text);
    const auto max = util::parse_u64(max_text);
    const auto salt = util::parse_u64(salt_text);
    if (!min || !max || !salt || *min > *max) return fail("bad perturb bounds");
    repro.perturb = sim::PerturbConfig{static_cast<sim::Time>(*min),
                                       static_cast<sim::Time>(*max), *salt};
  }

  if (!next_line()) return fail("truncated");
  const auto shrunk_text = field("shrunk");
  if (!shrunk_text || (*shrunk_text != "0" && *shrunk_text != "1")) {
    return fail("expected 'shrunk 0|1'");
  }
  repro.shrunk = *shrunk_text == "1";

  // The rest of the file is the program's own canonical serialization.
  std::string program_text;
  while (std::getline(in, line)) program_text += line + "\n";
  std::string program_error;
  auto program = parse_program(program_text, &program_error);
  if (!program) return fail(program_error);
  repro.program = std::move(*program);
  return repro;
}

std::vector<std::string> replay_repro(const Repro& repro, int threads) {
  FuzzCheckOptions options;
  options.first_schedule_seed = repro.schedule_seed;
  options.schedule_seeds = 1;
  options.threads = threads;
  options.perturbations = {repro.perturb};
  options.fault = repro.fault;
  options.scenario_name = "replay";
  const auto verdict = check_program(repro.program, options);
  std::vector<std::string> fired;
  for (const auto& failure : verdict.failures) {
    const auto name = check_name(failure.check);
    if (std::find(fired.begin(), fired.end(), name) == fired.end()) {
      fired.push_back(name);
    }
  }
  return fired;
}

bool reproduces(const Repro& repro, int threads) {
  const auto fired = replay_repro(repro, threads);
  return std::find(fired.begin(), fired.end(), repro.check) != fired.end();
}

}  // namespace dsmr::fuzz
