#include "fuzz/thread_harness.hpp"

#include <cstring>

#include "fuzz/harness.hpp"
#include "record/replay.hpp"
#include "runtime/world.hpp"
#include "util/assert.hpp"

namespace dsmr::fuzz {

namespace {

using runtime::ThreadProcess;
using runtime::ThreadWorld;

/// Boundary-barrier tags: top byte distinct from user tags (< 2^56, see
/// kMaxSignalTag) and from pgas::Team's collective range (kinds 1..5 in the
/// top byte). Phase index and round share the low bits without collision:
/// phases < 4096 (12 bits, shifted past the round) and rounds < 10 for
/// kMaxProcs = 1024.
constexpr std::uint64_t kBoundaryTagBase = 0xB5ULL << 56;

std::uint64_t boundary_tag(std::size_t phase, std::uint32_t round) {
  return boundary_signal_tag(phase, round);
}

/// Every BoundaryKind as a full frontier: the dissemination barrier, with
/// the same sequential send-round-k / wait-round-k structure as
/// pgas::Team::barrier. The collective kinds' data movement is omitted —
/// their values never affect detection, only their edges do, and the
/// barrier produces a superset-equivalent frontier.
void run_boundary(ThreadProcess& p, const Phase& phase, std::size_t phase_index) {
  const int n = p.nprocs();
  const Rank r = p.rank();
  const bool arrive_only =
      phase.entry.kind == BoundaryKind::kBarrier && phase.skip_rank == r;
  for (std::uint32_t round = 0; (1 << round) < n; ++round) {
    const int dist = 1 << round;
    const Rank to = static_cast<Rank>((r + dist) % n);
    p.signal(to, boundary_tag(phase_index, round));
    if (!arrive_only) p.wait_signal(boundary_tag(phase_index, round));
  }
}

/// The blocking twin of program.cpp's program_task: same ops, same order,
/// same payload stamps.
void run_rank(ThreadProcess& p, const Program& program,
              const std::vector<mem::GlobalAddress>& areas) {
  const auto rank = static_cast<std::size_t>(p.rank());
  std::uint64_t stamp = (static_cast<std::uint64_t>(p.rank()) + 1) << 32;
  for (std::size_t ph = 0; ph < program.phases.size(); ++ph) {
    if (ph > 0) run_boundary(p, program.phases[ph], ph);
    for (const Op& op : program.phases[ph].ops[rank]) {
      const auto lock_area = [&op]() {
        return static_cast<std::size_t>(op.lock == -1 ? op.area : op.lock);
      };
      switch (op.kind) {
        case OpKind::kPut: {
          if (op.locked) p.lock(areas[lock_area()]);
          std::vector<std::byte> bytes(program.area_bytes, std::byte{0});
          ++stamp;
          std::memcpy(bytes.data(), &stamp, std::min(sizeof(stamp), bytes.size()));
          p.put(areas[static_cast<std::size_t>(op.area)], bytes);
          if (op.locked) p.unlock(areas[lock_area()]);
          break;
        }
        case OpKind::kGet:
          if (op.locked) p.lock(areas[lock_area()]);
          p.get(areas[static_cast<std::size_t>(op.area)], program.area_bytes);
          if (op.locked) p.unlock(areas[lock_area()]);
          break;
        case OpKind::kSignal:
          p.signal(static_cast<Rank>(op.peer), op.tag);
          break;
        case OpKind::kWait:
          p.wait_signal(op.tag);
          break;
        case OpKind::kSleep:
          p.sleep(static_cast<std::uint64_t>(op.duration));
          break;
        case OpKind::kCompute:
          p.compute(static_cast<std::uint64_t>(op.duration));
          break;
      }
    }
  }
}

std::string ranks_to_string(const std::vector<Rank>& ranks) {
  std::string out;
  for (const Rank r : ranks) {
    if (!out.empty()) out += ",";
    out += std::to_string(r);
  }
  return out;
}

}  // namespace

std::uint64_t boundary_signal_tag(std::size_t phase, std::uint32_t round) {
  return kBoundaryTagBase | (static_cast<std::uint64_t>(phase) << 8) | round;
}

ProgramHandles spawn_program_threaded(ThreadWorld& world,
                                      std::shared_ptr<const Program> program) {
  DSMR_REQUIRE(program != nullptr, "spawn_program_threaded needs a program");
  std::string error;
  DSMR_REQUIRE(validate(*program, &error), "spawn of invalid program: " << error);
  DSMR_REQUIRE(world.nprocs() == program->nprocs,
               "program generated for " << program->nprocs << " ranks, world has "
                                        << world.nprocs());
  ProgramHandles handles;
  for (int a = 0; a < program->areas; ++a) {
    const Rank home = static_cast<Rank>(a % program->nprocs);
    handles.areas.push_back(
        world.alloc(home, program->area_bytes, "fz" + std::to_string(a)));
  }
  for (Rank r = 0; r < world.nprocs(); ++r) {
    world.spawn(r, [program, areas = handles.areas](ThreadProcess& p) {
      run_rank(p, *program, areas);
    });
  }
  return handles;
}

ThreadProgramOutcome run_program_threaded(const Program& program,
                                          const ThreadRunOptions& options) {
  runtime::ThreadWorldConfig config;
  config.nprocs = program.nprocs;
  config.mode = options.mode;
  config.lock_clock_handoff = options.lock_clock_handoff;
  config.acked_puts = options.acked_puts;
  config.stripes = options.stripes;
  config.run_timeout = options.timeout;
  // Areas are small and bump-allocated; size the segment to fit them.
  config.segment_bytes =
      std::max<std::uint32_t>(1 << 16, program.area_bytes *
                                           (static_cast<std::uint32_t>(program.areas) + 1));
  config.recorder = options.recorder;
  config.replay = options.replay;
  ThreadWorld world(config);
  spawn_program_threaded(world, std::make_shared<Program>(program));
  ThreadProgramOutcome outcome;
  outcome.report = world.run();
  for (const auto& report : world.races().unique_by_area()) {
    outcome.racy_areas.insert(report.area_name);
  }
  outcome.reports = world.races().reports();
  if (options.recorder != nullptr) {
    options.recorder->finish(outcome.reports, outcome.report.completed,
                             outcome.report.stuck_ranks);
  }
  return outcome;
}

BackendDiffResult check_program_backends(const Program& program,
                                         const BackendDiffOptions& options) {
  BackendDiffResult result;
  const std::string planted_area =
      program.planted ? "fz" + std::to_string(program.planted->area) : "";
  auto fail = [&result](std::string what) { result.failures.push_back(std::move(what)); };

  // --- sim oracle runs ---
  if (options.compare_sim) {
    for (std::uint64_t seed = 1; seed <= options.sim_schedule_seeds; ++seed) {
      runtime::WorldConfig config;
      config.nprocs = program.nprocs;
      config.seed = seed;
      runtime::World world(config);
      spawn_program(world, std::make_shared<Program>(program));
      const auto report = world.run();
      ++result.sim_runs;
      if (!report.completed) {
        fail("sim run (seed " + std::to_string(seed) + ") did not complete");
        continue;
      }
      std::set<std::string> racy;
      for (const auto& r : world.races().unique_by_area()) racy.insert(r.area_name);
      if (!racy.empty()) ++result.sim_manifested;
      switch (program.expect) {
        case Expectation::kClean:
          if (!racy.empty()) {
            fail("clean program raced on sim (seed " + std::to_string(seed) +
                 "): area " + *racy.begin());
          }
          break;
        case Expectation::kRacy:
          if (racy.count(planted_area) == 0) {
            fail("planted race missed on sim (seed " + std::to_string(seed) +
                 "): area " + planted_area);
          }
          break;
        case Expectation::kSometimes:
          break;  // informational.
      }
    }
  }

  // --- threaded runs ---
  for (int rep = 0; rep < options.thread_reps; ++rep) {
    const auto outcome = run_program_threaded(program, options.thread);
    ++result.thread_runs;
    result.checks += outcome.report.checks;
    result.wall_ns += outcome.report.wall_ns;
    if (!outcome.report.completed) {
      fail("threaded run " + std::to_string(rep) + " stuck (ranks " +
           ranks_to_string(outcome.report.stuck_ranks) +
           ") — generated programs are deadlock-free");
      continue;
    }
    if (!outcome.racy_areas.empty()) ++result.thread_manifested;
    switch (program.expect) {
      case Expectation::kClean:
        if (!outcome.racy_areas.empty()) {
          fail("clean program raced on threaded run " + std::to_string(rep) +
               ": area " + *outcome.racy_areas.begin());
        }
        break;
      case Expectation::kRacy:
        if (outcome.racy_areas.count(planted_area) == 0) {
          fail("planted race missed on threaded run " + std::to_string(rep) +
               ": area " + planted_area);
        }
        break;
      case Expectation::kSometimes:
        break;  // manifestation is schedule luck — counted, never failed on.
    }
  }

  // --- record → replay determinism ---
  // One extra recorded run; its log must fold offline AND gate-replay (twice)
  // to the recorded verdicts. kSometimes included: whatever this schedule
  // manifested is now a pinned, replayable coordinate.
  if (options.record_replay) {
    ThreadRunOptions recording = options.thread;
    record::Recorder recorder(static_cast<std::uint32_t>(program.nprocs),
                              record::Backend::kThread, recording.mode,
                              recording.lock_clock_handoff, recording.acked_puts);
    recording.recorder = &recorder;
    const auto live = run_program_threaded(program, recording);
    result.checks += live.report.checks;
    result.wall_ns += live.report.wall_ns;
    const record::Log& log = recorder.log();
    const std::string fold = record::check_record_replay(log);
    if (!fold.empty()) fail("record fold: " + fold);
    ThreadRunOptions replaying = options.thread;
    replaying.replay = &log;
    const record::AreaIndex areas = record::make_area_index(log.areas);
    for (int rep = 0; rep < 2; ++rep) {
      const auto outcome = run_program_threaded(program, replaying);
      const record::VerdictSignature sig = record::make_signature(
          areas, outcome.reports, outcome.report.completed,
          outcome.report.stuck_ranks);
      if (!(sig == log.live)) {
        fail("replay " + std::to_string(rep) +
             " diverged from its recorded run: " + sig.to_string() + " vs " +
             log.live.to_string());
      }
    }
    ++result.record_replay_checks;
  }
  return result;
}

ThreadSweepResult run_thread_sweep(const ThreadSweepConfig& config) {
  ThreadSweepResult result;
  for (std::uint64_t i = 0; i < config.seeds.count; ++i) {
    const std::uint64_t seed = config.seeds.first + i;
    GenConfig gen = config.base;
    gen.seed = seed;
    gen.plant_bug = !config.bug_kinds.empty() &&
                    plant_for_seed(seed, config.planted_fraction);
    if (gen.plant_bug) gen.bug_kind = kind_for_seed(seed, config.bug_kinds);
    const Program program = generate_program(gen);

    ++result.programs;
    std::string arm = "clean";
    switch (program.expect) {
      case Expectation::kClean:
        ++result.clean_programs;
        break;
      case Expectation::kRacy:
        ++result.racy_programs;
        arm = to_string(gen.bug_kind);
        break;
      case Expectation::kSometimes:
        ++result.sometimes_programs;
        arm = to_string(gen.bug_kind);
        break;
    }

    const auto diff = check_program_backends(program, config.diff);
    result.thread_runs += diff.thread_runs;
    result.thread_manifested += diff.thread_manifested;
    result.sim_runs += diff.sim_runs;
    result.sim_manifested += diff.sim_manifested;
    result.record_replay_checks += diff.record_replay_checks;
    result.checks += diff.checks;
    result.wall_ns += diff.wall_ns;
    for (const auto& failure : diff.failures) {
      result.divergences.push_back(ThreadSweepDivergence{seed, arm, failure});
    }
  }
  return result;
}

}  // namespace dsmr::fuzz
