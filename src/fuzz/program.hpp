// The fuzzer's program IR: a phase-structured PGAS workload with computable
// ground truth.
//
// A Program is a list of *phases*; a collective boundary (dissemination
// barrier by default, or a frontier-forming collective built from
// pgas::collectives — allreduce, gather+broadcast, gather+scatter) separates
// consecutive phases, and within a phase each rank runs a straight-line
// sequence of ops (unlocked/locked puts and gets over shared areas,
// point-to-point signal/wait edges, sleeps, local compute). The
// representation is chosen so that structural edits are always valid
// programs:
//
//  * boundaries are phase *entries*, never per-rank ops — a shrinker cannot
//    unbalance them into a deadlock (every boundary kind is executed by all
//    ranks, and every supported kind is a full happens-before frontier);
//  * a locked access is ONE op (acquire → access → release, non-nested) —
//    removing any op never orphans a lock;
//  * signal/wait are separate ops, so an edit CAN orphan a wait — but an
//    orphaned wait deadlocks, the run reports completed == false, and the
//    harness turns that into unexpected-deadlock: the behavioral predicate
//    stays the only arbiter, never a crash;
//  * sleeps/computes carry no ordering semantics beyond the local clock.
//
// Race status is decidable by construction (fuzz/generate.hpp): clean
// programs follow a per-phase ownership/lock discipline that admits no
// concurrent conflicting pair on any schedule, and planted-bug programs
// carry one of four taxonomy bugs (BugKind) whose expected manifestation —
// on every schedule, or on at least one — is part of the program's contract.
//
// The canonical text serialization (`serialize`/`parse`) is the repro-file
// payload: byte-identical for equal programs, diffable, and strict to parse.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/conformance.hpp"
#include "core/types.hpp"
#include "mem/global_address.hpp"
#include "runtime/world.hpp"
#include "sim/time.hpp"

namespace dsmr::fuzz {

enum class OpKind : std::uint8_t { kPut, kGet, kSignal, kWait, kSleep, kCompute };
const char* to_string(OpKind kind);

// Structural caps shared by validate() and parse_program(): everything the
// generator emits and serialize() writes stays parseable, so a repro file
// can never be rejected by its own --replay.
inline constexpr int kMaxProcs = 1024;
inline constexpr int kMaxAreas = 1 << 20;
inline constexpr std::uint32_t kMaxAreaBytes = 1 << 16;
inline constexpr std::size_t kMaxPhases = 4096;
inline constexpr std::size_t kMaxOpsPerRank = 1 << 20;
inline constexpr sim::Time kMaxDuration = 1'000'000'000;  ///< 1 virtual second.
/// User signal tags live below 2^56: pgas::Team packs its collective kind
/// into the top byte, so program tags can never collide with boundary tags.
inline constexpr std::uint64_t kMaxSignalTag = (1ULL << 56) - 1;

struct Op {
  OpKind kind = OpKind::kSleep;
  int area = 0;             ///< put/get target (index into the program's areas).
  bool locked = false;      ///< put/get wrapped in a NIC area lock.
  /// Which area's lock a locked access takes: -1 = the accessed area itself
  /// (the correct discipline); >= 0 names another area's lock (the
  /// wrong-lock bug shape). Only meaningful when `locked`.
  int lock = -1;
  int peer = 0;             ///< signal target rank.
  std::uint64_t tag = 0;    ///< signal/wait tag (see kMaxSignalTag).
  sim::Time duration = 0;   ///< sleep/compute length in virtual ns.

  bool operator==(const Op&) const = default;
};

/// How consecutive phases synchronize. Every kind is a full happens-before
/// frontier (each rank's phase-p+1 start is causally after every rank's
/// phase-p end), so the generator's cross-phase ownership handoffs stay
/// race-free under any boundary mix:
///  * kBarrier       — dissemination barrier (Team::barrier);
///  * kAllreduce     — binomial reduce to rank 0 + broadcast;
///  * kGatherBcast   — gather to `root`, then broadcast from `root`;
///  * kGatherScatter — gather to `root`, then scatter back from `root`.
enum class BoundaryKind : std::uint8_t { kBarrier, kAllreduce, kGatherBcast, kGatherScatter };
const char* to_string(BoundaryKind kind);

struct Boundary {
  BoundaryKind kind = BoundaryKind::kBarrier;
  int root = 0;  ///< kGatherBcast/kGatherScatter only; 0 otherwise.

  bool operator==(const Boundary&) const = default;
};

struct Phase {
  /// The boundary every rank executes before this phase's ops. Ignored (and
  /// required to be the default barrier) for phase 0, which has no entry.
  Boundary entry;
  /// The partial-barrier bug shape: this rank performs only the arrive half
  /// of the entry barrier (Team::barrier_arrive — signals sent, no waits),
  /// so peers complete the barrier but the rank gains no incoming
  /// happens-before edge. -1 = nobody skips. Only valid on kBarrier entries
  /// of phases >= 1.
  int skip_rank = -1;
  /// ops[rank] is that rank's straight-line program for the phase.
  std::vector<std::vector<Op>> ops;

  bool operator==(const Phase&) const = default;
};

/// What the generator promises about the program across all schedules:
///  * kClean     — no schedule has a race; any report or truth pair fails;
///  * kRacy      — the planted pair is concurrent on EVERY schedule; a
///                 silent schedule fails;
///  * kSometimes — the planted bug is schedule-dependent; it must manifest
///                 on at least one explored schedule (rate is measured),
///                 and schedules where ground truth is silent must produce
///                 no reports.
enum class Expectation : std::uint8_t { kClean, kRacy, kSometimes };
const char* to_string(Expectation e);

/// The planted-bug taxonomy. The first two manifest on every schedule
/// (Expectation::kRacy), the latter two are schedule-dependent
/// (Expectation::kSometimes); see fuzz/generate.hpp for each construction.
enum class BugKind : std::uint8_t {
  kDroppedEdge,     ///< one unlocked conflicting pair with no sync path.
  kWrongLock,       ///< both sides locked — but the victim takes another
                    ///< area's lock, so the critical sections don't order.
  kPartialBarrier,  ///< one rank skips (arrive-only) one barrier boundary.
  kAckWindow,       ///< producer runs ahead of the consumer's ack window;
                    ///< the race depends on home-node serve order.
};
const char* to_string(BugKind kind);
std::optional<BugKind> parse_bug_kind(const std::string& text);
std::vector<BugKind> all_bug_kinds();

/// Provenance of a planted bug: the deliberately unsynchronized conflicting
/// pair. Informational — shrinking drops it (the shrunk program's status is
/// re-established behaviorally by the harness, not by this note). The
/// partial-barrier *behavior* is structural (Phase::skip_rank), not here.
struct PlantedBug {
  BugKind kind = BugKind::kDroppedEdge;
  int phase = 0;
  int area = 0;                ///< the contested area.
  /// Second area of the shape: the wrong lock's area (kWrongLock), the
  /// leak/probe area homed with `area` (kPartialBarrier, kAckWindow);
  /// -1 for kDroppedEdge.
  int aux_area = -1;
  int owner = 0;               ///< rank whose write is one side of the pair.
  int victim = 0;              ///< rank whose access is the other side.
  core::AccessKind victim_kind = core::AccessKind::kWrite;

  bool operator==(const PlantedBug&) const = default;
};

struct Program {
  int nprocs = 2;
  int areas = 1;                    ///< area a is homed at rank a % nprocs.
  std::uint32_t area_bytes = 8;
  Expectation expect = Expectation::kClean;
  std::optional<PlantedBug> planted;
  std::vector<Phase> phases;

  bool operator==(const Program&) const = default;

  /// Total ops across all phases and ranks (the shrinker's size metric).
  std::size_t op_count() const;
};

/// Canonical text form; equal programs serialize byte-identically.
std::string serialize(const Program& program);

/// Strict inverse of serialize. On malformed input returns nullopt and
/// stores a line-numbered message in *error.
std::optional<Program> parse_program(const std::string& text, std::string* error = nullptr);

/// Validates structural invariants (rank/area/peer indices in range,
/// positive sizes, one op row per rank per phase, boundary/skip legality).
/// Serialize/spawn require this.
bool validate(const Program& program, std::string* error = nullptr);

struct ProgramHandles {
  std::vector<mem::GlobalAddress> areas;
};

/// Allocates the program's areas and installs one coroutine per rank on a
/// not-yet-run World (world.nprocs() must equal program->nprocs).
ProgramHandles spawn_program(runtime::World& world,
                             std::shared_ptr<const Program> program);

/// Wraps a generated program as a first-class conformance scenario, so the
/// full differential cross-check (analysis::run_conformance) applies to it
/// exactly as to the built-in workloads.
analysis::Scenario to_scenario(std::shared_ptr<const Program> program,
                               std::string name);

}  // namespace dsmr::fuzz
