// The fuzzer's program IR: a barrier-phased PGAS workload with computable
// ground truth.
//
// A Program is a list of *phases*; a global dissemination barrier separates
// consecutive phases, and within a phase each rank runs a straight-line
// sequence of ops (unlocked/locked puts and gets over shared areas, sleeps,
// local compute). The representation is chosen so that structural edits are
// always valid programs:
//
//  * barriers are phase boundaries, never per-rank ops — a shrinker cannot
//    unbalance them into a deadlock;
//  * a locked access is ONE op (acquire → access → release, non-nested) —
//    removing any op never orphans a lock;
//  * sleeps/computes carry no ordering semantics beyond the local clock.
//
// Race status is decidable by construction (fuzz/generate.hpp): clean
// programs follow a per-phase ownership/lock discipline that admits no
// concurrent conflicting pair on any schedule, and planted-bug programs
// contain one conflicting pair whose two sides perform no clock-merging op
// between the preceding barrier and the access — so the pair is concurrent
// on *every* schedule and both detector modes must flag it.
//
// The canonical text serialization (`serialize`/`parse`) is the repro-file
// payload: byte-identical for equal programs, diffable, and strict to parse.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/conformance.hpp"
#include "core/types.hpp"
#include "mem/global_address.hpp"
#include "runtime/world.hpp"
#include "sim/time.hpp"

namespace dsmr::fuzz {

enum class OpKind : std::uint8_t { kPut, kGet, kSleep, kCompute };
const char* to_string(OpKind kind);

// Structural caps shared by validate() and parse_program(): everything the
// generator emits and serialize() writes stays parseable, so a repro file
// can never be rejected by its own --replay.
inline constexpr int kMaxProcs = 1024;
inline constexpr int kMaxAreas = 1 << 20;
inline constexpr std::uint32_t kMaxAreaBytes = 1 << 16;
inline constexpr std::size_t kMaxPhases = 4096;
inline constexpr std::size_t kMaxOpsPerRank = 1 << 20;
inline constexpr sim::Time kMaxDuration = 1'000'000'000;  ///< 1 virtual second.

struct Op {
  OpKind kind = OpKind::kSleep;
  int area = 0;             ///< put/get target (index into the program's areas).
  bool locked = false;      ///< put/get wrapped in the target area's NIC lock.
  sim::Time duration = 0;   ///< sleep/compute length in virtual ns.

  bool operator==(const Op&) const = default;
};

struct Phase {
  /// ops[rank] is that rank's straight-line program for the phase.
  std::vector<std::vector<Op>> ops;

  bool operator==(const Phase&) const = default;
};

/// What the generator promises about the program across all schedules.
enum class Expectation : std::uint8_t { kClean, kRacy };
const char* to_string(Expectation e);

/// Provenance of a planted bug: the deliberately unsynchronized conflicting
/// pair. Informational — shrinking drops it (the shrunk program's status is
/// re-established behaviorally by the harness, not by this note).
struct PlantedBug {
  int phase = 0;
  int area = 0;
  int owner = 0;               ///< rank whose write is one side of the pair.
  int victim = 0;              ///< rank whose access is the other side.
  core::AccessKind victim_kind = core::AccessKind::kWrite;

  bool operator==(const PlantedBug&) const = default;
};

struct Program {
  int nprocs = 2;
  int areas = 1;                    ///< area a is homed at rank a % nprocs.
  std::uint32_t area_bytes = 8;
  Expectation expect = Expectation::kClean;
  std::optional<PlantedBug> planted;
  std::vector<Phase> phases;

  bool operator==(const Program&) const = default;

  /// Total ops across all phases and ranks (the shrinker's size metric).
  std::size_t op_count() const;
};

/// Canonical text form; equal programs serialize byte-identically.
std::string serialize(const Program& program);

/// Strict inverse of serialize. On malformed input returns nullopt and
/// stores a line-numbered message in *error.
std::optional<Program> parse_program(const std::string& text, std::string* error = nullptr);

/// Validates structural invariants (rank/area indices in range, positive
/// sizes, one op row per rank per phase). Serialize/spawn require this.
bool validate(const Program& program, std::string* error = nullptr);

struct ProgramHandles {
  std::vector<mem::GlobalAddress> areas;
};

/// Allocates the program's areas and installs one coroutine per rank on a
/// not-yet-run World (world.nprocs() must equal program->nprocs).
ProgramHandles spawn_program(runtime::World& world,
                             std::shared_ptr<const Program> program);

/// Wraps a generated program as a first-class conformance scenario, so the
/// full differential cross-check (analysis::run_conformance) applies to it
/// exactly as to the built-in workloads.
analysis::Scenario to_scenario(std::shared_ptr<const Program> program,
                               std::string name);

}  // namespace dsmr::fuzz
