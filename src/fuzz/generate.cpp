#include "fuzz/generate.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dsmr::fuzz {

bool apply_profile(const std::string& name, GenConfig& config) {
  if (name == "mixed") {
    // The defaults.
    config.data_fraction = 0.8;
    config.write_fraction = 0.55;
    config.locked_area_fraction = 0.3;
    config.shared_read_fraction = 0.2;
    return true;
  }
  if (name == "write-heavy") {
    config.data_fraction = 0.9;
    config.write_fraction = 0.85;
    config.locked_area_fraction = 0.2;
    config.shared_read_fraction = 0.05;
    return true;
  }
  if (name == "read-heavy") {
    config.data_fraction = 0.9;
    config.write_fraction = 0.2;
    config.locked_area_fraction = 0.15;
    config.shared_read_fraction = 0.5;
    return true;
  }
  if (name == "lock-heavy") {
    config.data_fraction = 0.85;
    config.write_fraction = 0.6;
    config.locked_area_fraction = 0.8;
    config.shared_read_fraction = 0.05;
    return true;
  }
  if (name == "sync-sparse") {
    // Long phases, few barriers: stresses within-phase discipline.
    config.phases = 1;
    config.max_ops_per_rank = 16;
    config.data_fraction = 0.85;
    return true;
  }
  return false;
}

std::vector<std::string> profile_names() {
  return {"mixed", "write-heavy", "read-heavy", "lock-heavy", "sync-sparse"};
}

namespace {

/// Per-phase access policy of one area (see generate.hpp header comment).
struct AreaPolicy {
  enum Kind : std::uint8_t { kExclusive, kReadShared, kLocked, kIdle } kind = kIdle;
  int owner = 0;  ///< kExclusive only.
};

struct Candidate {
  int area = 0;
  bool writable = false;
  bool locked = false;
};

sim::Time random_duration(util::Rng& rng) {
  return 100 + static_cast<sim::Time>(rng.below(4000));
}

Op make_pause(util::Rng& rng) {
  Op op;
  op.kind = rng.chance(0.5) ? OpKind::kSleep : OpKind::kCompute;
  op.duration = random_duration(rng);
  return op;
}

}  // namespace

Program generate_program(const GenConfig& config) {
  // The caps are program.hpp's structural limits: anything generated here
  // must serialize into a file parse_program accepts back.
  DSMR_REQUIRE(config.nprocs >= 1 && config.nprocs <= kMaxProcs,
               "generator ranks out of range [1, " << kMaxProcs << "]");
  DSMR_REQUIRE(config.areas >= 1 && config.areas <= kMaxAreas,
               "generator areas out of range [1, " << kMaxAreas << "]");
  DSMR_REQUIRE(config.area_bytes >= 1 && config.area_bytes <= kMaxAreaBytes,
               "generator area_bytes out of range [1, " << kMaxAreaBytes << "]");
  DSMR_REQUIRE(config.phases >= 1 &&
                   static_cast<std::size_t>(config.phases) <= kMaxPhases,
               "generator phases out of range [1, " << kMaxPhases << "]");
  DSMR_REQUIRE(config.max_ops_per_rank >= 1 &&
                   static_cast<std::size_t>(config.max_ops_per_rank) <= kMaxOpsPerRank,
               "generator ops per rank out of range [1, " << kMaxOpsPerRank << "]");
  // Three ranks, not two: the bug area's home must be a *third* rank. The
  // home node's clock ticks on every application it serves, and the home
  // process shares that clock — so a pair involving the home rank is
  // ordered whenever the remote access happens to apply before the home-
  // side access issues, making the race schedule-dependent. With the home
  // uninvolved, no clock-merge path into either racy access exists and the
  // pair is concurrent on every schedule.
  DSMR_REQUIRE(!config.plant_bug || config.nprocs >= 3,
               "a planted bug needs >= 3 ranks (owner, victim, and an "
               "uninvolved home for the bug area)");

  util::Rng rng(util::SplitMix64(config.seed ^ 0xf0220fu).next());

  Program program;
  program.nprocs = config.nprocs;
  program.areas = config.areas;
  program.area_bytes = config.area_bytes;
  program.expect = config.plant_bug ? Expectation::kRacy : Expectation::kClean;

  // The planted pair (decided up front so the bug area can be kept idle in
  // every other phase).
  PlantedBug bug;
  if (config.plant_bug) {
    const auto n = static_cast<std::uint64_t>(config.nprocs);
    // The bug lives in phase 0, which has NO preceding synchronization: a
    // dissemination barrier is not an instantaneous frontier, so a racy
    // access issued right after an *entry* barrier can leak to the other
    // racy rank through a lagging node's still-pending barrier signals and
    // order the pair on unlucky schedules. Before phase 0 there is nothing
    // to leak: both racy issue clocks are provably free of foreign
    // components on every schedule.
    bug.phase = 0;
    bug.area = static_cast<int>(rng.below(static_cast<std::uint64_t>(config.areas)));
    // Owner and victim are two distinct ranks, neither of which is the bug
    // area's home (see the >= 3 ranks precondition above): two distinct
    // draws from the n-1 non-home ranks.
    const auto home = static_cast<std::uint64_t>(bug.area) % n;
    std::uint64_t k1 = 1 + rng.below(n - 1);
    std::uint64_t k2 = 1 + rng.below(n - 2);
    if (k2 >= k1) ++k2;
    bug.owner = static_cast<int>((home + k1) % n);
    bug.victim = static_cast<int>((home + k2) % n);
    bug.victim_kind = rng.chance(0.5) ? core::AccessKind::kWrite : core::AccessKind::kRead;
    program.planted = bug;
  }

  for (int ph = 0; ph < config.phases; ++ph) {
    const bool bug_phase = config.plant_bug && ph == bug.phase;

    // Phase policies. The bug area is idle everywhere; in the bug phase its
    // accesses are emitted explicitly below, outside every policy. During
    // the bug phase, areas *homed at* the owner or victim are idle too:
    // serving any inbound request merges the requester's clock into the
    // home node's clock (which the home process shares), so traffic into
    // those nodes could carry knowledge of one racy access to the other and
    // order the planted pair on some schedules.
    std::vector<AreaPolicy> policies(static_cast<std::size_t>(config.areas));
    for (int a = 0; a < config.areas; ++a) {
      auto& policy = policies[static_cast<std::size_t>(a)];
      if (config.plant_bug && a == bug.area) {
        policy.kind = AreaPolicy::kIdle;
        continue;
      }
      if (bug_phase) {
        const int home = a % config.nprocs;
        if (home == bug.owner || home == bug.victim) {
          policy.kind = AreaPolicy::kIdle;
          continue;
        }
      }
      if (rng.chance(config.locked_area_fraction)) {
        policy.kind = AreaPolicy::kLocked;
      } else if (rng.chance(config.shared_read_fraction)) {
        policy.kind = AreaPolicy::kReadShared;
      } else {
        policy.kind = AreaPolicy::kExclusive;
        policy.owner = static_cast<int>(rng.below(static_cast<std::uint64_t>(config.nprocs)));
      }
    }

    Phase phase;
    for (int r = 0; r < config.nprocs; ++r) {
      std::vector<Op> ops;
      const bool racy_rank = bug_phase && (r == bug.owner || r == bug.victim);
      if (racy_rank) {
        // The dropped synchronization edge: before its racy access this rank
        // performs nothing that merges another clock (sleeps only), so no
        // happens-before path into the access can exist on any schedule.
        if (r == bug.victim && rng.chance(0.6)) {
          Op pause;
          pause.kind = OpKind::kSleep;
          pause.duration = random_duration(rng);
          ops.push_back(pause);
        }
        Op racy;
        racy.area = bug.area;
        racy.kind = r == bug.owner                                   ? OpKind::kPut
                    : bug.victim_kind == core::AccessKind::kWrite    ? OpKind::kPut
                                                                     : OpKind::kGet;
        ops.push_back(racy);
      }

      // Ordinary discipline-following ops (for racy ranks: after the racy
      // access, where they can no longer affect the planted pair's clocks).
      std::vector<Candidate> candidates;
      for (int a = 0; a < config.areas; ++a) {
        const auto& policy = policies[static_cast<std::size_t>(a)];
        switch (policy.kind) {
          case AreaPolicy::kExclusive:
            if (policy.owner == r) candidates.push_back({a, true, false});
            break;
          case AreaPolicy::kReadShared:
            candidates.push_back({a, false, false});
            break;
          case AreaPolicy::kLocked:
            candidates.push_back({a, true, true});
            break;
          case AreaPolicy::kIdle:
            break;
        }
      }
      const auto count = 1 + rng.below(static_cast<std::uint64_t>(config.max_ops_per_rank));
      for (std::uint64_t i = 0; i < count; ++i) {
        if (candidates.empty() || !rng.chance(config.data_fraction)) {
          ops.push_back(make_pause(rng));
          continue;
        }
        const auto& candidate = candidates[rng.below(candidates.size())];
        Op op;
        op.area = candidate.area;
        op.locked = candidate.locked;
        op.kind = candidate.writable && rng.chance(config.write_fraction) ? OpKind::kPut
                                                                          : OpKind::kGet;
        ops.push_back(op);
      }
      phase.ops.push_back(std::move(ops));
    }
    program.phases.push_back(std::move(phase));
  }

  std::string error;
  DSMR_CHECK_MSG(validate(program, &error), "generator produced invalid program: " << error);
  return program;
}

}  // namespace dsmr::fuzz
