#include "fuzz/generate.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dsmr::fuzz {

bool apply_profile(const std::string& name, GenConfig& config) {
  if (name == "mixed") {
    // The defaults.
    config.data_fraction = 0.8;
    config.write_fraction = 0.55;
    config.locked_area_fraction = 0.3;
    config.shared_read_fraction = 0.2;
    config.collective_fraction = 0.25;
    config.max_sync_edges = 2;
    return true;
  }
  if (name == "write-heavy") {
    config.data_fraction = 0.9;
    config.write_fraction = 0.85;
    config.locked_area_fraction = 0.2;
    config.shared_read_fraction = 0.05;
    config.collective_fraction = 0.2;
    config.max_sync_edges = 1;
    return true;
  }
  if (name == "read-heavy") {
    config.data_fraction = 0.9;
    config.write_fraction = 0.2;
    config.locked_area_fraction = 0.15;
    config.shared_read_fraction = 0.5;
    config.collective_fraction = 0.2;
    config.max_sync_edges = 1;
    return true;
  }
  if (name == "lock-heavy") {
    config.data_fraction = 0.85;
    config.write_fraction = 0.6;
    config.locked_area_fraction = 0.8;
    config.shared_read_fraction = 0.05;
    config.collective_fraction = 0.15;
    config.max_sync_edges = 1;
    return true;
  }
  if (name == "sync-sparse") {
    // Long phases, no boundaries beyond the implicit start, no extra sync:
    // stresses within-phase discipline.
    config.phases = 1;
    config.max_ops_per_rank = 16;
    config.data_fraction = 0.85;
    config.collective_fraction = 0.0;
    config.max_sync_edges = 0;
    return true;
  }
  if (name == "sync-rich") {
    // The signal/wait + collective slice: boundary-dense phases where most
    // synchronization is collectives and point-to-point edges.
    config.phases = 4;
    config.max_ops_per_rank = 5;
    config.data_fraction = 0.7;
    config.write_fraction = 0.5;
    config.locked_area_fraction = 0.2;
    config.shared_read_fraction = 0.2;
    config.collective_fraction = 0.6;
    config.max_sync_edges = 4;
    return true;
  }
  return false;
}

std::vector<std::string> profile_names() {
  return {"mixed", "write-heavy", "read-heavy", "lock-heavy", "sync-sparse", "sync-rich"};
}

bool bug_kind_eligible(const GenConfig& config, BugKind kind) {
  if (config.nprocs < 3) return false;
  switch (kind) {
    case BugKind::kDroppedEdge:
      return true;
    case BugKind::kWrongLock:
    case BugKind::kAckWindow:
      return config.areas >= config.nprocs + 1;
    case BugKind::kPartialBarrier:
      return config.areas >= config.nprocs + 1 && config.phases >= 2;
  }
  return false;
}

std::vector<BugKind> eligible_bug_kinds(const GenConfig& config) {
  std::vector<BugKind> kinds;
  for (const BugKind kind : all_bug_kinds()) {
    if (bug_kind_eligible(config, kind)) kinds.push_back(kind);
  }
  return kinds;
}

namespace {

/// Per-phase access policy of one area (see generate.hpp header comment).
struct AreaPolicy {
  enum Kind : std::uint8_t { kExclusive, kReadShared, kLocked, kIdle } kind = kIdle;
  int owner = 0;  ///< kExclusive only.
};

struct Candidate {
  int area = 0;
  bool writable = false;
  bool locked = false;
};

sim::Time random_duration(util::Rng& rng) {
  return 100 + static_cast<sim::Time>(rng.below(4000));
}

Op make_pause(util::Rng& rng) {
  Op op;
  op.kind = rng.chance(0.5) ? OpKind::kSleep : OpKind::kCompute;
  op.duration = random_duration(rng);
  return op;
}

Op make_timed(OpKind kind, sim::Time duration) {
  Op op;
  op.kind = kind;
  op.duration = duration;
  return op;
}

Op make_sleep(util::Rng& rng) { return make_timed(OpKind::kSleep, random_duration(rng)); }

Op make_access(OpKind kind, int area, bool locked = false, int lock = -1) {
  Op op;
  op.kind = kind;
  op.area = area;
  op.locked = locked;
  op.lock = lock;
  return op;
}

Op make_signal(int peer, std::uint64_t tag) {
  Op op;
  op.kind = OpKind::kSignal;
  op.peer = peer;
  op.tag = tag;
  return op;
}

Op make_wait(std::uint64_t tag) {
  Op op;
  op.kind = OpKind::kWait;
  op.tag = tag;
  return op;
}

OpKind access_kind(core::AccessKind kind) {
  return kind == core::AccessKind::kWrite ? OpKind::kPut : OpKind::kGet;
}

/// Two distinct ranks, neither of which is `home`: the racy pair of every
/// bug shape (the contested area's home must stay a third, uninvolved
/// party — a home-rank participant learns of applications at its own NIC
/// for free, which would order the pair).
std::pair<int, int> pick_racy_pair(util::Rng& rng, int nprocs, int home) {
  const auto n = static_cast<std::uint64_t>(nprocs);
  std::uint64_t k1 = 1 + rng.below(n - 1);
  std::uint64_t k2 = 1 + rng.below(n - 2);
  if (k2 >= k1) ++k2;
  return {static_cast<int>((static_cast<std::uint64_t>(home) + k1) % n),
          static_cast<int>((static_cast<std::uint64_t>(home) + k2) % n)};
}

}  // namespace

Program generate_program(const GenConfig& config) {
  // The caps are program.hpp's structural limits: anything generated here
  // must serialize into a file parse_program accepts back.
  DSMR_REQUIRE(config.nprocs >= 1 && config.nprocs <= kMaxProcs,
               "generator ranks out of range [1, " << kMaxProcs << "]");
  DSMR_REQUIRE(config.areas >= 1 && config.areas <= kMaxAreas,
               "generator areas out of range [1, " << kMaxAreas << "]");
  DSMR_REQUIRE(config.area_bytes >= 1 && config.area_bytes <= kMaxAreaBytes,
               "generator area_bytes out of range [1, " << kMaxAreaBytes << "]");
  DSMR_REQUIRE(config.phases >= 1 &&
                   static_cast<std::size_t>(config.phases) <= kMaxPhases,
               "generator phases out of range [1, " << kMaxPhases << "]");
  DSMR_REQUIRE(config.max_ops_per_rank >= 1 &&
                   static_cast<std::size_t>(config.max_ops_per_rank) <= kMaxOpsPerRank,
               "generator ops per rank out of range [1, " << kMaxOpsPerRank << "]");
  DSMR_REQUIRE(config.max_sync_edges >= 0, "generator sync edges must be >= 0");
  DSMR_REQUIRE(!config.plant_bug || bug_kind_eligible(config, config.bug_kind),
               "bug kind " << to_string(config.bug_kind)
                           << " needs >= 3 ranks, and (beyond dropped-edge) a "
                              "same-home area pair (areas >= nprocs + 1; "
                              "partial-barrier also phases >= 2)");

  util::Rng rng(util::SplitMix64(config.seed ^ 0xf0220fu).next());

  Program program;
  program.nprocs = config.nprocs;
  program.areas = config.areas;
  program.area_bytes = config.area_bytes;

  // The planted pair (decided up front so the involved areas can be kept
  // idle in every other phase). See generate.hpp for each shape's
  // construction argument.
  PlantedBug bug;
  if (config.plant_bug) {
    bug.kind = config.bug_kind;
    switch (config.bug_kind) {
      case BugKind::kDroppedEdge: {
        // Phase 0: before it there is no boundary whose in-flight signals
        // could leak an ordering; both racy issue clocks are provably free
        // of foreign components on every schedule.
        bug.phase = 0;
        bug.area = static_cast<int>(rng.below(static_cast<std::uint64_t>(config.areas)));
        bug.aux_area = -1;
        break;
      }
      case BugKind::kWrongLock:
      case BugKind::kAckWindow:
      case BugKind::kPartialBarrier: {
        // A same-home pair (a, a + nprocs): the contested area and its
        // sibling (the wrong lock's area, or the probe/leak area) share the
        // uninvolved home rank a % nprocs.
        const int a = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(config.areas - config.nprocs)));
        bug.area = a;
        bug.aux_area = a + config.nprocs;
        bug.phase = config.bug_kind == BugKind::kAckWindow
                        ? static_cast<int>(rng.below(static_cast<std::uint64_t>(config.phases)))
                    : config.bug_kind == BugKind::kPartialBarrier
                        ? static_cast<int>(
                              rng.below(static_cast<std::uint64_t>(config.phases - 1)))
                        : 0;
        break;
      }
    }
    const int home = bug.area % config.nprocs;
    std::tie(bug.owner, bug.victim) = pick_racy_pair(rng, config.nprocs, home);
    bug.victim_kind =
        rng.chance(0.5) ? core::AccessKind::kWrite : core::AccessKind::kRead;
    program.planted = bug;
    program.expect = (bug.kind == BugKind::kDroppedEdge || bug.kind == BugKind::kWrongLock)
                         ? Expectation::kRacy
                         : Expectation::kSometimes;
  } else {
    program.expect = Expectation::kClean;
  }

  // Signal tags: one global counter keeps every edge's tag unique (and far
  // below the collective tag range, program.hpp::kMaxSignalTag).
  std::uint64_t next_tag = 0;

  for (int ph = 0; ph < config.phases; ++ph) {
    Phase phase;
    const bool plant = config.plant_bug;
    // Phases that carry one side of the planted pair: the discipline around
    // the racy ranks is restricted there (idle home areas, no sync edges).
    const bool bug_phase = plant && ph == bug.phase;
    const bool skip_phase =
        plant && bug.kind == BugKind::kPartialBarrier && ph == bug.phase + 1;
    const bool sensitive = bug_phase || skip_phase;

    // Entry boundary (phase 0 has none).
    if (ph > 0) {
      if (skip_phase) {
        // The skipped boundary must be a plain barrier: arrive-only has a
        // deadlock-free send half there, which tree collectives lack.
        phase.skip_rank = bug.victim;
      } else if (rng.chance(config.collective_fraction)) {
        const auto pick = rng.below(3);
        if (pick == 0) {
          phase.entry.kind = BoundaryKind::kAllreduce;
        } else {
          phase.entry.kind =
              pick == 1 ? BoundaryKind::kGatherBcast : BoundaryKind::kGatherScatter;
          phase.entry.root =
              static_cast<int>(rng.below(static_cast<std::uint64_t>(config.nprocs)));
        }
      }
    }

    // Phase policies. The planted areas are idle everywhere; their accesses
    // are emitted explicitly below, outside every policy. During sensitive
    // phases, areas *homed at* the owner or victim are idle too: serving
    // any inbound request merges the requester's clock into the home node's
    // clock (which the home process shares), so traffic into those nodes
    // could carry knowledge of one racy access to the other and order the
    // planted pair.
    std::vector<AreaPolicy> policies(static_cast<std::size_t>(config.areas));
    for (int a = 0; a < config.areas; ++a) {
      auto& policy = policies[static_cast<std::size_t>(a)];
      if (plant && (a == bug.area || a == bug.aux_area)) {
        policy.kind = AreaPolicy::kIdle;
        continue;
      }
      if (sensitive) {
        const int home = a % config.nprocs;
        if (home == bug.owner || home == bug.victim) {
          policy.kind = AreaPolicy::kIdle;
          continue;
        }
      }
      if (rng.chance(config.locked_area_fraction)) {
        policy.kind = AreaPolicy::kLocked;
      } else if (rng.chance(config.shared_read_fraction)) {
        policy.kind = AreaPolicy::kReadShared;
      } else {
        policy.kind = AreaPolicy::kExclusive;
        policy.owner = static_cast<int>(rng.below(static_cast<std::uint64_t>(config.nprocs)));
      }
    }

    // Pre-drawn tags for the ack-window handshake (both rows reference them).
    std::uint64_t ack_t1 = 0, ack_t2 = 0;
    if (plant && bug.kind == BugKind::kAckWindow && bug_phase) {
      ack_t1 = next_tag++;
      ack_t2 = next_tag++;
    }

    for (int r = 0; r < config.nprocs; ++r) {
      std::vector<Op> ops;
      bool ordinary = true;  ///< discipline-following filler ops for this row.
      // The planted prologue: the explicitly-emitted bug ops come first
      // (before any clock-merging filler), so the construction arguments
      // about "nothing but sleeps before the racy access" hold.
      if (bug_phase && (r == bug.owner || r == bug.victim)) {
        switch (bug.kind) {
          case BugKind::kDroppedEdge:
            // The dropped synchronization edge: before its racy access this
            // rank performs nothing that merges another clock (sleeps
            // only), so no happens-before path into the access can exist.
            if (r == bug.victim && rng.chance(0.6)) ops.push_back(make_sleep(rng));
            ops.push_back(make_access(
                r == bug.owner ? OpKind::kPut : access_kind(bug.victim_kind), bug.area));
            break;
          case BugKind::kWrongLock:
            // Locked on both sides — but the victim's lock is the sibling
            // area's, so the critical sections never exchange a handoff
            // clock and the pair stays concurrent on every schedule.
            if (rng.chance(0.5)) ops.push_back(make_sleep(rng));
            if (r == bug.owner) {
              ops.push_back(make_access(OpKind::kPut, bug.area, /*locked=*/true));
            } else {
              ops.push_back(make_access(access_kind(bug.victim_kind), bug.area,
                                        /*locked=*/true, bug.aux_area));
            }
            break;
          case BugKind::kAckWindow:
            // Producer: put, notify, then run one put ahead of the ack.
            // Consumer: probe the sibling area (merging the home's clock at
            // serve time), then access the contested area — racy exactly
            // when the second put had not yet applied at the home. The
            // producer's pre-put sleep (>= ~1.6x the one-hop base latency)
            // guarantees the probe wins the serve race on the unperturbed
            // schedule — so every program manifests on at least the base
            // variant — while delay-bound skews (up to a few µs per
            // delivery) flip the order on perturbed schedules: the
            // measured manifestation rate is genuinely schedule-dependent.
            if (r == bug.owner) {
              if (rng.chance(0.5)) ops.push_back(make_sleep(rng));
              ops.push_back(make_access(OpKind::kPut, bug.area));
              ops.push_back(make_signal(bug.victim, ack_t1));
              ops.push_back(make_timed(
                  OpKind::kSleep, 2'400 + static_cast<sim::Time>(rng.below(4'000))));
              ops.push_back(make_access(OpKind::kPut, bug.area));
              ops.push_back(make_wait(ack_t2));
            } else {
              ops.push_back(make_wait(ack_t1));
              ops.push_back(make_access(OpKind::kGet, bug.aux_area));
              ops.push_back(make_access(access_kind(bug.victim_kind), bug.area));
              ops.push_back(make_signal(bug.owner, ack_t2));
            }
            break;
          case BugKind::kPartialBarrier: {
            // The victim idles through the pre-skip phase (so its probe in
            // the next phase starts early); the owner runs nothing but a
            // forced compute before its contested write (no ordinary ops:
            // any clock-merging op could transitively deliver the victim's
            // access back into the owner and order the pair). On the base
            // schedule the victim's probe is therefore served well before
            // the write applies — guaranteed manifestation — while
            // perturbation skews can push the probe past the apply and
            // order the pair on perturbed variants.
            if (r == bug.victim) {
              ops.push_back(make_timed(
                  OpKind::kSleep, 2'000 + static_cast<sim::Time>(rng.below(2'000))));
            } else {
              ops.push_back(make_timed(
                  OpKind::kCompute, 6'000 + static_cast<sim::Time>(rng.below(3'000))));
              ops.push_back(make_access(OpKind::kPut, bug.area));
            }
            ordinary = false;
            break;
          }
        }
      }
      if (skip_phase && r == bug.victim) {
        // The arrive-only rank right after its skipped barrier: maybe one
        // probe get of the sibling area (a chance to merge the home's clock
        // — the timing-dependent leak), then the contested access. Nothing
        // else: the rank is unsynchronized until the next boundary.
        if (rng.chance(0.6)) ops.push_back(make_access(OpKind::kGet, bug.aux_area));
        ops.push_back(make_access(access_kind(bug.victim_kind), bug.area));
        ordinary = false;
      }

      // Ordinary discipline-following ops (for racy ranks: after the racy
      // prologue, where they can no longer affect the planted pair's
      // clocks).
      if (ordinary) {
        std::vector<Candidate> candidates;
        for (int a = 0; a < config.areas; ++a) {
          const auto& policy = policies[static_cast<std::size_t>(a)];
          switch (policy.kind) {
            case AreaPolicy::kExclusive:
              if (policy.owner == r) candidates.push_back({a, true, false});
              break;
            case AreaPolicy::kReadShared:
              candidates.push_back({a, false, false});
              break;
            case AreaPolicy::kLocked:
              candidates.push_back({a, true, true});
              break;
            case AreaPolicy::kIdle:
              break;
          }
        }
        const auto count = 1 + rng.below(static_cast<std::uint64_t>(config.max_ops_per_rank));
        for (std::uint64_t i = 0; i < count; ++i) {
          if (candidates.empty() || !rng.chance(config.data_fraction)) {
            ops.push_back(make_pause(rng));
            continue;
          }
          const auto& candidate = candidates[rng.below(candidates.size())];
          ops.push_back(make_access(
              candidate.writable && rng.chance(config.write_fraction) ? OpKind::kPut
                                                                      : OpKind::kGet,
              candidate.area, candidate.locked));
        }
      }
      phase.ops.push_back(std::move(ops));
    }

    // Point-to-point sync edges, woven between non-racy ranks. Each rank's
    // sync ops appear in the one global edge order (insertion position only
    // ever moves forward), which makes wait cycles impossible — see the
    // header comment.
    std::vector<int> eligible;
    for (int r = 0; r < config.nprocs; ++r) {
      if (sensitive && (r == bug.owner || r == bug.victim)) continue;
      eligible.push_back(r);
    }
    if (eligible.size() >= 2 && config.max_sync_edges > 0) {
      std::vector<std::size_t> frontier(static_cast<std::size_t>(config.nprocs), 0);
      const auto edges = rng.below(static_cast<std::uint64_t>(config.max_sync_edges) + 1);
      for (std::uint64_t e = 0; e < edges; ++e) {
        const auto si = rng.below(eligible.size());
        auto ti = rng.below(eligible.size() - 1);
        if (ti >= si) ++ti;
        const int sender = eligible[si];
        const int receiver = eligible[ti];
        const std::uint64_t tag = next_tag++;
        auto weave = [&phase, &frontier, &rng](int rank, Op op) {
          auto& row = phase.ops[static_cast<std::size_t>(rank)];
          auto& front = frontier[static_cast<std::size_t>(rank)];
          const auto pos = front + rng.below(row.size() - front + 1);
          row.insert(row.begin() + static_cast<std::ptrdiff_t>(pos), op);
          front = pos + 1;
        };
        weave(sender, make_signal(receiver, tag));
        weave(receiver, make_wait(tag));
      }
    }
    program.phases.push_back(std::move(phase));
  }

  std::string error;
  DSMR_CHECK_MSG(validate(program, &error), "generator produced invalid program: " << error);
  return program;
}

}  // namespace dsmr::fuzz
