// Delta-debugging shrinker for failing fuzz programs.
//
// Given a program and a "does it still fail?" predicate (typically: re-run
// the harness on the failing (schedule seed, perturbation) and check that
// the same invariant fires), the shrinker greedily applies structural
// reductions, keeping each one only if the failure survives:
//
//  1. drop whole phases (and their entry boundary),
//  2. drop whole processes (ranks renumber; area homes recompute; signal
//     peers, boundary roots and skip ranks remap; sync ops left without
//     their counterpart are cleaned up),
//  3. simplify boundaries (collective entries collapse to the plain
//     barrier; a skipped barrier is restored to a full one),
//  4. drop whole signal/wait edges (both ends of a tag at once),
//  5. drop op chunks, ddmin-style (halves, quarters, ... single ops),
//  6. drop unused areas (indices compact; wrong-lock areas count as used).
//
// Every reduction produces a valid program by construction (boundaries are
// phase entries, locked accesses are single ops), so the predicate is the
// only arbiter — a candidate that orphans a wait simply deadlocks, fails
// the predicate, and is rejected. The shrink is fully deterministic: fixed
// visit order, no randomness — the same input always shrinks to the same
// output.
//
// Shrinking a program that does not fail at all is a no-op (the input is
// returned unchanged, `changed == false`).
#pragma once

#include <functional>

#include "fuzz/program.hpp"

namespace dsmr::fuzz {

/// Must return true while the candidate still reproduces the failure.
using StillFails = std::function<bool(const Program&)>;

struct ShrinkOptions {
  /// Upper bound on predicate evaluations (each one re-runs the harness).
  int max_attempts = 4000;
};

struct ShrinkResult {
  Program program;
  bool changed = false;  ///< false: input did not fail, or nothing removable.
  int attempts = 0;      ///< predicate evaluations spent.
  std::size_t initial_ops = 0;
  std::size_t final_ops = 0;
};

ShrinkResult shrink_program(const Program& initial, const StillFails& still_fails,
                            const ShrinkOptions& options = {});

}  // namespace dsmr::fuzz
