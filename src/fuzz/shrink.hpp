// Delta-debugging shrinker for failing fuzz programs.
//
// Given a program and a "does it still fail?" predicate (typically: re-run
// the harness on the failing (schedule seed, perturbation) and check that
// the same invariant fires), the shrinker greedily applies structural
// reductions, keeping each one only if the failure survives:
//
//  1. drop whole phases (and their barrier),
//  2. drop whole processes (ranks renumber; area homes recompute),
//  3. drop op chunks, ddmin-style (halves, quarters, ... single ops),
//  4. drop unused areas (indices compact).
//
// Every reduction produces a valid program by construction (barriers are
// phase boundaries, locked accesses are single ops), so the predicate is
// the only arbiter. The shrink is fully deterministic: fixed visit order,
// no randomness — the same input always shrinks to the same output.
//
// Shrinking a program that does not fail at all is a no-op (the input is
// returned unchanged, `changed == false`).
#pragma once

#include <functional>

#include "fuzz/program.hpp"

namespace dsmr::fuzz {

/// Must return true while the candidate still reproduces the failure.
using StillFails = std::function<bool(const Program&)>;

struct ShrinkOptions {
  /// Upper bound on predicate evaluations (each one re-runs the harness).
  int max_attempts = 4000;
};

struct ShrinkResult {
  Program program;
  bool changed = false;  ///< false: input did not fail, or nothing removable.
  int attempts = 0;      ///< predicate evaluations spent.
  std::size_t initial_ops = 0;
  std::size_t final_ops = 0;
};

ShrinkResult shrink_program(const Program& initial, const StillFails& still_fails,
                            const ShrinkOptions& options = {});

}  // namespace dsmr::fuzz
