// Seeded random-program generation with race status decided by construction.
//
// Programs come out of a per-phase *discipline* that makes cleanliness a
// theorem rather than an observation. Each phase assigns every area one
// policy:
//
//  * exclusive(r) — only rank r touches the area this phase (unlocked
//    reads/writes). Same-rank accesses are program-ordered; cross-phase
//    accesses are boundary-ordered (every BoundaryKind is a full frontier,
//    and puts are acked, so the apply clock reaches the frontier).
//  * read-shared  — any rank may read, nobody writes: no conflicting pair.
//  * locked       — any rank may access, but only under the area's NIC
//    lock. Handoff (+ acked puts / clock-merging gets) totally orders the
//    critical sections, so every conflicting pair is ordered.
//
// On top of the data ops, phases carry point-to-point signal/wait edges and
// non-barrier collective boundaries (fuzz::BoundaryKind). Both only ADD
// happens-before edges and touch no shared area, so they never break the
// discipline: under the default WorldConfig (dual-clock, acked puts, lock
// handoff) no schedule of a clean program contains a concurrent conflicting
// pair. Sync edges are woven in one global order per phase (each rank's
// sync ops appear in that order), which rules out wait cycles: a deadlock
// would need every blocked rank's pending signal to come after its blocking
// wait, i.e. a strictly decreasing cycle of edge indices.
//
// "Planted bug" mode breaks the discipline in one of four taxonomy shapes
// (fuzz::BugKind):
//
//  * kDroppedEdge (always manifests, Expectation::kRacy) — one dedicated
//    area receives an unlocked write from `owner` and an unlocked access
//    from `victim`. Three structural rules make the pair concurrent on
//    EVERY schedule: (1) the bug lives in phase 0 (no preceding boundary
//    whose in-flight signals could leak an ordering); (2) each racy rank
//    performs nothing but sleeps before its racy access (no clock-merging
//    op); (3) during the bug phase no rank touches the bug area or any
//    area homed at the owner/victim (serving a request merges the
//    requester's clock into the home node), and the bug area's home is a
//    third rank.
//  * kWrongLock (always manifests, kRacy) — the same three rules, but both
//    sides run under a lock: the owner takes the contested area's own
//    lock, the victim takes a *different* area's lock (homed at the same
//    third rank, idle otherwise). Lock grants merge only the handoff clock
//    of their own lock chain, so the two critical sections never order —
//    the locking is real, and really wrong.
//  * kPartialBarrier (schedule-dependent, Expectation::kSometimes) — the
//    victim executes only the arrive half of one barrier boundary
//    (Phase::skip_rank → Team::barrier_arrive), then probes a leak area
//    homed with the contested area and finally accesses the area the owner
//    wrote just before the barrier. Whether the pair races depends on
//    whether the home served the victim's probes before or after the
//    owner's write applied — a genuine timing race, measured as a
//    manifestation rate.
//  * kAckWindow (schedule-dependent, kSometimes) — a producer/consumer
//    exchange where the producer's second put outruns the ack window: the
//    consumer's probe get (to the sibling area on the same home) merges
//    the home's clock at serve time, so the final access races exactly
//    when the second put had not yet applied — again pure serve-order
//    timing.
//
// The always-kinds oblige the harness to demand manifestation on every
// (seed, perturbation); the sometimes-kinds oblige it to demand at least
// one manifesting schedule and zero clean-schedule noise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/program.hpp"

namespace dsmr::fuzz {

struct GenConfig {
  int nprocs = 4;
  int areas = 6;
  std::uint32_t area_bytes = 8;
  int phases = 3;
  int max_ops_per_rank = 6;           ///< per phase; actual count is 1..max.
  double data_fraction = 0.8;         ///< else sleep/compute.
  double write_fraction = 0.55;       ///< among data ops where a write is legal.
  double locked_area_fraction = 0.3;  ///< areas per phase under the lock policy.
  double shared_read_fraction = 0.2;  ///< areas per phase that are read-shared.
  /// Share of phase entries (phase >= 1) that use a non-barrier collective
  /// boundary (allreduce / gather+bcast / gather+scatter, random root).
  double collective_fraction = 0.25;
  /// Per phase, 0..max point-to-point signal/wait edges are woven between
  /// non-racy ranks at random positions (deadlock-free by construction).
  int max_sync_edges = 2;
  bool plant_bug = false;             ///< plant `bug_kind`; else clean.
  BugKind bug_kind = BugKind::kDroppedEdge;
  std::uint64_t seed = 1;
};

/// Named op-mix profiles for the CLI (`dsmr_fuzz --profile`): tweak the
/// fractions above. Unknown names return false and leave `config` untouched.
bool apply_profile(const std::string& name, GenConfig& config);
std::vector<std::string> profile_names();

/// Whether `kind` can be planted into programs of this shape. All kinds
/// need >= 3 ranks (owner, victim, and an uninvolved home); the non-
/// dropped-edge kinds additionally need a same-home area pair
/// (areas >= nprocs + 1), and kPartialBarrier a boundary to skip
/// (phases >= 2).
bool bug_kind_eligible(const GenConfig& config, BugKind kind);
std::vector<BugKind> eligible_bug_kinds(const GenConfig& config);

/// Deterministically generates one program: equal configs (seed included)
/// produce byte-identical serializations, independent of any global state.
Program generate_program(const GenConfig& config);

}  // namespace dsmr::fuzz
