// Seeded random-program generation with race status decided by construction.
//
// Programs come out of a per-phase *discipline* that makes cleanliness a
// theorem rather than an observation. Each phase assigns every area one
// policy:
//
//  * exclusive(r) — only rank r touches the area this phase (unlocked
//    reads/writes). Same-rank accesses are program-ordered; cross-phase
//    accesses are barrier-ordered (puts are acked, so the apply clock
//    reaches the barrier frontier).
//  * read-shared  — any rank may read, nobody writes: no conflicting pair.
//  * locked       — any rank may access, but only under the area's NIC
//    lock. Handoff (+ acked puts / clock-merging gets) totally orders the
//    critical sections, so every conflicting pair is ordered.
//
// Under the default WorldConfig (dual-clock, acked puts, lock handoff) no
// schedule of such a program contains a concurrent conflicting pair: the
// program is CLEAN on every (seed, perturbation).
//
// "Planted bug" mode deliberately breaks the discipline once: one dedicated
// area receives an unlocked write from an `owner` rank and an unlocked
// access from a `victim` rank. Three structural rules make the pair
// concurrent on EVERY schedule — which is what lets the fuzz harness
// *demand* manifestation rather than merely permit it:
//
//  1. the bug lives in phase 0 (no preceding barrier: a dissemination
//     barrier is not an instantaneous frontier, and its in-flight signals
//     can leak an early finisher's access to the other racy rank through a
//     lagging node);
//  2. each racy rank performs nothing but sleeps before its racy access
//     (no clock-merging operation);
//  3. during the bug phase no rank touches the bug area or ANY area homed
//     at the owner, the victim, — serving an inbound request merges the
//     requester's clock into the home node's clock, so such traffic could
//     carry one racy access's clock into the other rank — and the bug
//     area's home is a third rank (>= 3 ranks), because a home-rank party
//     learns of applications at its own NIC for free.
//
// With no possible happens-before path in either direction, both detector
// modes must flag the pair on every (seed, perturbation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/program.hpp"

namespace dsmr::fuzz {

struct GenConfig {
  int nprocs = 4;
  int areas = 6;
  std::uint32_t area_bytes = 8;
  int phases = 3;
  int max_ops_per_rank = 6;           ///< per phase; actual count is 1..max.
  double data_fraction = 0.8;         ///< else sleep/compute.
  double write_fraction = 0.55;       ///< among data ops where a write is legal.
  double locked_area_fraction = 0.3;  ///< areas per phase under the lock policy.
  double shared_read_fraction = 0.2;  ///< areas per phase that are read-shared.
  bool plant_bug = false;             ///< drop one synchronization edge.
  std::uint64_t seed = 1;
};

/// Named op-mix profiles for the CLI (`dsmr_fuzz --profile`): tweak the
/// fractions above. Unknown names return false and leave `config` untouched.
bool apply_profile(const std::string& name, GenConfig& config);
std::vector<std::string> profile_names();

/// Deterministically generates one program: equal configs (seed included)
/// produce byte-identical serializations, independent of any global state.
Program generate_program(const GenConfig& config);

}  // namespace dsmr::fuzz
