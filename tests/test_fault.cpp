// Tests for the fault-injection plane (net/fault.hpp) and the reliable
// transport that masks it (net/reliable.hpp inside SimFabric): plan grammar
// round-trips and presets, retry backoff, fault-stream separation from the
// latency/perturbation streams, drop/dup/corrupt/partition/crash behavior
// on the wire, retransmission accounting in TrafficCounters, and the
// World-level quiescence watchdog diagnostic.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "net/sim_fabric.hpp"
#include "runtime/process.hpp"
#include "runtime/world.hpp"
#include "sim/engine.hpp"

namespace dsmr::net {
namespace {

Message make_msg(MsgType type, Rank src, Rank dst, std::size_t payload = 0,
                 std::uint64_t op_id = 0) {
  Message m;
  m.type = type;
  m.src = src;
  m.dst = dst;
  m.op_id = op_id;
  m.data.assign(payload, std::byte{0});
  return m;
}

FaultPlan parse_or_die(const std::string& text) {
  std::string error;
  const auto plan = parse_fault_plan(text, &error);
  EXPECT_TRUE(plan.has_value()) << text << ": " << error;
  return plan.value_or(FaultPlan{});
}

// ---------------------------------------------------------------------------
// Plan grammar
// ---------------------------------------------------------------------------

TEST(FaultPlan, DefaultPlanIsOffAndRoundTrips) {
  const FaultPlan off;
  EXPECT_EQ(off.to_string(), "off");
  EXPECT_FALSE(off.wire_enabled());
  EXPECT_TRUE(off.recoverable());
  EXPECT_EQ(parse_or_die("off"), off);
  EXPECT_EQ(parse_or_die("none"), off);
  EXPECT_EQ(parse_or_die(""), off);
}

TEST(FaultPlan, CanonicalTextRoundTripsByteIdentically) {
  // Every preset plus a plan exercising the full grammar: parse(to_string)
  // must reproduce the plan, and re-serializing must be byte-identical —
  // .repro files and CI flags depend on it.
  std::vector<FaultPlan> plans;
  for (const auto& [name, plan] : fault_presets()) plans.push_back(plan);
  FaultPlan full;
  full.drop_ppm = 10'000;
  full.dup_ppm = 5'000;
  full.corrupt_ppm = 1'000;
  full.delay_ppm = 2'000;
  full.delay_min_ns = 100;
  full.delay_max_ns = 9'999;
  full.partitions.push_back(PartitionWindow{0, 3, 1'000, 2'000});
  full.partitions.push_back(PartitionWindow{1, 2, 5'000, 0});  // permanent.
  full.crashes.push_back(CrashWindow{2, 7'000, 8'000});
  full.retry = RetryPolicy{30'000, 500'000, 6};
  full.salt = 17;
  full.reliable = true;
  full.drop_live_reports = true;
  plans.push_back(full);
  for (const auto& plan : plans) {
    const auto text = plan.to_string();
    const auto parsed = parse_or_die(text);
    EXPECT_EQ(parsed, plan) << text;
    EXPECT_EQ(parsed.to_string(), text);
  }
}

TEST(FaultPlan, PresetNamesParse) {
  for (const auto& [name, plan] : fault_presets()) {
    EXPECT_EQ(parse_or_die(name), plan) << name;
    // Every preset except the permanent-crash one is recoverable.
    EXPECT_EQ(plan.recoverable(), name != "blackhole") << name;
  }
}

TEST(FaultPlan, MalformedTextIsRejectedWithAnError) {
  for (const char* bad :
       {"bogus", "drop=", "drop=2000000", "drop=x", "delay=10", "delay=10:5",
        "delay=10:9-3", "part=0-1", "part=0-1@5-5", "crash=1", "crash=1@9-9",
        "rto=0", "attempts=0", "attempts=5000", "drop=1,,dup=1"}) {
    std::string error;
    EXPECT_FALSE(parse_fault_plan(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(FaultPlan, ListParsingSplitsOnSemicolons) {
  std::string error;
  const auto plans = parse_fault_plan_list("loss1;off;[drop=10000,salt=3];dupdelay", &error);
  ASSERT_TRUE(plans.has_value()) << error;
  ASSERT_EQ(plans->size(), 3u);  // "off" elements are dropped.
  EXPECT_EQ((*plans)[0], parse_or_die("loss1"));
  EXPECT_EQ((*plans)[1].drop_ppm, 10'000u);
  EXPECT_EQ((*plans)[1].salt, 3u);
  EXPECT_EQ((*plans)[2], parse_or_die("dupdelay"));
  EXPECT_TRUE(parse_fault_plan_list("", &error)->empty());
  EXPECT_FALSE(parse_fault_plan_list("loss1;what", &error).has_value());
}

TEST(FaultPlan, RecoverabilityBoundaries) {
  FaultPlan certain_loss;
  certain_loss.drop_ppm = 1'000'000;
  EXPECT_FALSE(certain_loss.recoverable());
  FaultPlan heavy_loss;
  heavy_loss.drop_ppm = 999'999;
  EXPECT_TRUE(heavy_loss.recoverable());
  FaultPlan split;
  split.partitions.push_back(PartitionWindow{0, 1, 100, 0});
  EXPECT_FALSE(split.recoverable());
  split.partitions.back().until = 200;
  EXPECT_TRUE(split.recoverable());
}

TEST(RetryPolicy, BackoffDoublesAndCaps) {
  const RetryPolicy policy{60'000, 1'000'000, 12};
  EXPECT_EQ(policy.backoff(1), 60'000u);
  EXPECT_EQ(policy.backoff(2), 120'000u);
  EXPECT_EQ(policy.backoff(3), 240'000u);
  EXPECT_EQ(policy.backoff(5), 960'000u);
  EXPECT_EQ(policy.backoff(6), 1'000'000u);  // capped.
  EXPECT_EQ(policy.backoff(12), 1'000'000u);
}

// ---------------------------------------------------------------------------
// Fabric-level behavior
// ---------------------------------------------------------------------------

/// Runs `count` 32-byte puts 0→1 under `plan`, returning the (time, op_id)
/// delivery trace. The workhorse for bit-identity comparisons.
std::vector<std::pair<sim::Time, std::uint64_t>> delivery_trace(
    const FaultPlan& plan, const sim::PerturbConfig& perturb = {},
    std::uint64_t count = 32) {
  sim::Engine engine;
  SimFabric fabric(engine, 2, LatencyModel{}, 42, perturb, plan);
  std::vector<std::pair<sim::Time, std::uint64_t>> trace;
  fabric.attach(1, [&](const Message& m) { trace.emplace_back(engine.now(), m.op_id); });
  engine.schedule_at(0, [&] {
    for (std::uint64_t i = 0; i < count; ++i) {
      fabric.send(make_msg(MsgType::kPutData, 0, 1, 32, i));
    }
  });
  engine.run();
  return trace;
}

TEST(FaultFabric, ZeroRatePlanIsBitIdenticalToThePerfectWire) {
  // Satellite invariant: forcing the reliable transport with every fault
  // rate at zero reproduces the perfect wire's logical schedule exactly —
  // same delivery times, same order — because the fault stream is separate
  // from the latency jitter stream and the first attempt keeps the
  // FIFO-clamped cost. Checked with and without perturbation.
  const auto baseline = delivery_trace(FaultPlan{});
  EXPECT_EQ(delivery_trace(parse_or_die("reliable")), baseline);

  const sim::PerturbConfig perturb{0, 4'000, 7};
  const auto perturbed = delivery_trace(FaultPlan{}, perturb);
  EXPECT_EQ(delivery_trace(parse_or_die("reliable"), perturb), perturbed);
  EXPECT_NE(perturbed, baseline);  // the perturbation itself is live.
}

TEST(FaultFabric, SaltSelectsTheFaultStreamWithoutMovingTheSchedule) {
  // Different salts re-roll the fault fates, never the logical schedule: a
  // zero-rate plan is schedule-identical under any salt.
  FaultPlan salted = parse_or_die("reliable");
  salted.salt = 99;
  EXPECT_EQ(delivery_trace(salted), delivery_trace(parse_or_die("reliable")));
}

TEST(FaultFabric, LossIsMaskedByRetransmission) {
  FaultPlan plan = parse_or_die("drop=300000");  // 30% loss: retries certain.
  const auto trace = delivery_trace(plan, {}, 64);
  ASSERT_EQ(trace.size(), 64u);
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(trace[i].second, i);  // FIFO held.
}

TEST(FaultFabric, DuplicatesAreSuppressed) {
  sim::Engine engine;
  SimFabric fabric(engine, 2, LatencyModel{}, 5, {}, parse_or_die("dup=1000000"));
  std::vector<std::uint64_t> received;
  fabric.attach(1, [&](const Message& m) { received.push_back(m.op_id); });
  engine.schedule_at(0, [&] {
    for (std::uint64_t i = 0; i < 16; ++i) {
      fabric.send(make_msg(MsgType::kPutData, 0, 1, 8, i));
    }
  });
  engine.run();
  ASSERT_EQ(received.size(), 16u);  // exactly once each, in order...
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_EQ(received[i], i);
  // ...and every wire echo was caught by the receiver window.
  EXPECT_GE(fabric.counters().duplicates_suppressed, 16u);
  EXPECT_EQ(fabric.counters().total_messages, 16u);  // accounting unpolluted.
}

TEST(FaultFabric, PartitionWindowRetriesAreAccountedDeterministically) {
  // Satellite (d) core case: with jitter and rates at zero the whole run is
  // draw-free, so the retry arithmetic is exact. Partition 0-1 over
  // [0, 100µs); messages sent at t=0 arrive ~1.5µs (lost), retry once at
  // 60µs (arrive ~61.5µs, lost), again at 60+120=180µs (arrive ~181.5µs,
  // delivered): exactly 2 retransmissions per message, and none of the
  // protocol-level counters move.
  sim::Engine engine;
  LatencyModel model;
  model.jitter_ns = 0;
  FaultPlan plan = parse_or_die("part=0-1@0-100000");
  SimFabric fabric(engine, 2, model, 9, {}, plan);
  std::vector<sim::Time> delivered;
  fabric.attach(1, [&](const Message&) { delivered.push_back(engine.now()); });
  constexpr std::uint64_t kCount = 4;
  engine.schedule_at(0, [&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      fabric.send(make_msg(MsgType::kPutData, 0, 1, 100, i));
    }
  });
  engine.run();
  ASSERT_EQ(delivered.size(), kCount);
  for (const auto t : delivered) EXPECT_GT(t, 100'000u);  // after the window.

  const auto& counters = fabric.counters();
  // Transport-plane accounting: visible, and separated from the data path.
  EXPECT_EQ(counters.retry_messages, 2 * kCount);
  EXPECT_GT(counters.retry_bytes, 0u);
  EXPECT_EQ(counters.faults_injected, 2 * kCount);  // the swallowed arrivals.
  EXPECT_EQ(counters.acks_sent, kCount);
  EXPECT_EQ(counters.undeliverable_messages, 0u);
  // Protocol-plane accounting: retries must not inflate the paper's
  // Fig. 2 counts or the clock-overhead ledger.
  EXPECT_EQ(counters.total_messages, kCount);
  EXPECT_EQ(counters.data_path_messages, kCount);
  EXPECT_EQ(counters.payload_bytes, kCount * 100u);
  EXPECT_EQ(counters.clock_bytes, 0u);
  EXPECT_TRUE(fabric.unacked().empty());  // fully quiescent.
}

TEST(FaultFabric, CrashRestartOnlyAffectsLinksTouchingTheRank) {
  sim::Engine engine;
  LatencyModel model;
  model.jitter_ns = 0;
  SimFabric fabric(engine, 3, model, 11, {}, parse_or_die("crash=1@0-100000"));
  sim::Time to_crashed = 0;
  sim::Time to_healthy = 0;
  fabric.attach(1, [&](const Message&) { to_crashed = engine.now(); });
  fabric.attach(2, [&](const Message&) { to_healthy = engine.now(); });
  engine.schedule_at(0, [&] {
    fabric.send(make_msg(MsgType::kPutData, 0, 1, 8));
    fabric.send(make_msg(MsgType::kPutData, 0, 2, 8));
  });
  engine.run();
  EXPECT_GT(to_crashed, 100'000u);   // masked after the restart.
  EXPECT_GT(to_healthy, 0u);
  EXPECT_LT(to_healthy, 100'000u);   // the 0→2 link never noticed.
}

TEST(FaultFabric, PermanentCrashExhaustsRetriesIntoDeadLetters) {
  sim::Engine engine;
  LatencyModel model;
  model.jitter_ns = 0;
  FaultPlan plan = parse_or_die("crash=1@0-,attempts=4");
  ASSERT_FALSE(plan.recoverable());
  SimFabric fabric(engine, 2, model, 13, {}, plan);
  bool reached = false;
  fabric.attach(1, [&](const Message&) { reached = true; });
  engine.schedule_at(0, [&] { fabric.send(make_msg(MsgType::kPutData, 0, 1, 8, 77)); });
  engine.run();
  EXPECT_FALSE(reached);
  EXPECT_EQ(fabric.counters().undeliverable_messages, 1u);
  const auto unacked = fabric.unacked();
  ASSERT_EQ(unacked.size(), 1u);  // the watchdog's evidence.
  EXPECT_TRUE(unacked.front().gave_up);
  EXPECT_EQ(unacked.front().op_id, 77u);
  EXPECT_EQ(unacked.front().attempts, 4);
  EXPECT_NE(unacked.front().describe().find("GAVE-UP"), std::string::npos);
}

TEST(FaultFabric, CorruptionIsDiscardedAndRetransmitted) {
  // 100% corruption with capped attempts: the receiver discards every
  // arrival, the sender retries to exhaustion — corruption can never leak a
  // mangled payload into the protocol.
  sim::Engine engine;
  LatencyModel model;
  model.jitter_ns = 0;
  SimFabric fabric(engine, 2, model, 3, {}, parse_or_die("corrupt=1000000,attempts=3"));
  bool reached = false;
  fabric.attach(1, [&](const Message&) { reached = true; });
  engine.schedule_at(0, [&] { fabric.send(make_msg(MsgType::kPutData, 0, 1, 8)); });
  engine.run();
  EXPECT_FALSE(reached);
  EXPECT_EQ(fabric.counters().undeliverable_messages, 1u);
  EXPECT_GE(fabric.counters().faults_injected, 3u);  // every attempt discarded.
}

}  // namespace
}  // namespace dsmr::net

namespace dsmr::runtime {
namespace {

using mem::GlobalAddress;

WorldConfig fault_config(int nprocs, const std::string& plan_text) {
  WorldConfig config;
  config.nprocs = nprocs;
  config.seed = 21;
  config.fault = *net::parse_fault_plan(plan_text);
  return config;
}

/// (races, per-event timeline) — the protocol-visible outcome of a run, for
/// transparency comparisons. Deliberately excludes the engine's final time:
/// the reliable transport's retry timers drain as no-ops after the last
/// delivery, which moves the drain time without moving the schedule.
struct Outcome {
  std::uint64_t races = 0;
  std::vector<std::tuple<std::uint64_t, sim::Time, std::uint64_t>> timeline;
  bool operator==(const Outcome&) const = default;
};

Outcome run_pair_workload(const std::string& plan_text) {
  World world(fault_config(3, plan_text));
  const GlobalAddress x = world.alloc(2, 8, "x");
  world.spawn(0, [x](Process& p) -> sim::Task {
    co_await p.put_value(x, std::uint64_t{1});
    p.signal(1, 7);
  });
  world.spawn(1, [x](Process& p) -> sim::Task {
    co_await p.wait_signal(7);
    co_await p.get(x, 8);
  });
  const auto report = world.run();
  EXPECT_TRUE(report.completed) << plan_text << "\n" << report.diagnostic;
  Outcome out;
  out.races = report.race_count;
  for (const auto& e : world.events().events()) {
    out.timeline.emplace_back(e.id, e.time, e.apply_seq);
  }
  return out;
}

TEST(WorldFault, ZeroRatePlanPreservesTheWholeSchedule) {
  // World-level stream separation (satellite c): the reliable transport
  // with no faults is invisible — same event timeline, same end time.
  EXPECT_EQ(run_pair_workload("reliable"), run_pair_workload("off"));
}

TEST(WorldFault, RecoverableLossIsTransparentToVerdicts) {
  // Under 1% loss the verdict layer must not move: this workload is
  // cleanly synchronized, so no plan may conjure a race, and the run must
  // still quiesce. (Timing may differ — retransmissions take real time.)
  const auto faulted = run_pair_workload("loss1");
  EXPECT_EQ(faulted.races, run_pair_workload("off").races);
}

TEST(WorldFault, WatchdogDescribesAnApplicationDeadlock) {
  World world(fault_config(2, "off"));
  world.spawn(0, [](Process& p) -> sim::Task {
    co_await p.wait_signal(1);  // never sent.
  });
  const auto report = world.run();
  EXPECT_FALSE(report.completed);
  ASSERT_EQ(report.stuck_ranks.size(), 1u);
  EXPECT_NE(report.diagnostic.find("watchdog: non-quiescent termination"),
            std::string::npos);
  EXPECT_NE(report.diagnostic.find("rank 0"), std::string::npos);
  EXPECT_NE(report.diagnostic.find("waiting for signal tag 1"), std::string::npos);
}

TEST(WorldFault, UnrecoverablePlanEndsInTheWatchdogNotAHang) {
  // Clean-failure invariant: a permanent NIC crash strands the workload,
  // and the run terminates (retry cap) with the stuck rank and the oldest
  // unacked message named in the diagnostic.
  WorldConfig config = fault_config(2, "crash=1@0-,attempts=3");
  World world(config);
  const GlobalAddress x = world.alloc(1, 8, "x");
  world.spawn(0, [x](Process& p) -> sim::Task {
    co_await p.put_value(x, std::uint64_t{5});  // home is crashed: never acked.
  });
  const auto report = world.run();
  EXPECT_FALSE(report.completed);
  EXPECT_FALSE(report.hit_event_cap);  // terminated, not runaway.
  EXPECT_NE(report.diagnostic.find("watchdog:"), std::string::npos);
  EXPECT_NE(report.diagnostic.find("rank 0"), std::string::npos);
  EXPECT_NE(report.diagnostic.find("oldest unacked"), std::string::npos);
  EXPECT_NE(report.diagnostic.find("GAVE-UP"), std::string::npos);
}

}  // namespace
}  // namespace dsmr::runtime
