// Unit + property tests for the logical clock library — the mathematical
// heart of the paper's detection scheme (Lemma 1 / Corollary 1).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "clocks/epoch.hpp"
#include "clocks/lamport.hpp"
#include "clocks/matrix_clock.hpp"
#include "clocks/ordering.hpp"
#include "clocks/vector_clock.hpp"
#include "util/rng.hpp"

namespace dsmr::clocks {
namespace {

TEST(Lamport, TickIncreases) {
  LamportClock c;
  EXPECT_EQ(c.time(), 0u);
  EXPECT_EQ(c.tick(), 1u);
  EXPECT_EQ(c.tick(), 2u);
}

TEST(Lamport, MergeTakesMaxPlusOne) {
  LamportClock c;
  c.tick();                      // 1
  EXPECT_EQ(c.merge(10), 11u);   // max(1,10)+1
  EXPECT_EQ(c.merge(3), 12u);    // max(11,3)+1
}

TEST(VectorClock, ZeroClockIsDominatedByEverything) {
  const VectorClock zero(3);
  const VectorClock some{1, 0, 2};
  EXPECT_TRUE(zero.dominated_by(some));
  EXPECT_TRUE(zero.dominated_by(zero));
  EXPECT_EQ(zero.compare(some), Ordering::kBefore);
}

TEST(VectorClock, PaperFigure5aComparison) {
  // Fig. 5a: P1's clock after m1 is 110; m2 arrives carrying 001.
  // 110 × 001: concurrent — the detected race.
  const VectorClock stored{1, 1, 0};
  const VectorClock incoming{0, 0, 1};
  EXPECT_EQ(stored.compare(incoming), Ordering::kConcurrent);
  EXPECT_TRUE(stored.concurrent_with(incoming));
}

TEST(VectorClock, PaperFigure5bComparison) {
  // Fig. 5b: m3 carries 132 and meets state whose clock is 110: ordered.
  const VectorClock stored{1, 1, 0};
  const VectorClock incoming{1, 3, 2};
  EXPECT_EQ(stored.compare(incoming), Ordering::kBefore);
  EXPECT_FALSE(stored.concurrent_with(incoming));
}

TEST(VectorClock, PaperFigure5cComparison) {
  // Fig. 5c: W(x) = 1100 (after m1), m4 carries 2022: concurrent — race.
  const VectorClock stored{1, 1, 0, 0};
  const VectorClock incoming{2, 0, 2, 2};
  EXPECT_EQ(stored.compare(incoming), Ordering::kConcurrent);
}

TEST(VectorClock, EqualClocksAreEqual) {
  const VectorClock a{2, 3};
  const VectorClock b{2, 3};
  EXPECT_EQ(a.compare(b), Ordering::kEqual);
  EXPECT_FALSE(a.concurrent_with(b));
}

TEST(VectorClock, TickAdvancesOwnComponentOnly) {
  VectorClock c(3);
  c.tick(1);
  EXPECT_EQ(c[0], 0u);
  EXPECT_EQ(c[1], 1u);
  EXPECT_EQ(c[2], 0u);
}

TEST(VectorClock, MergeIsComponentwiseMax) {
  VectorClock a{1, 5, 0};
  const VectorClock b{3, 2, 0};
  a.merge_from(b);
  EXPECT_EQ(a, (VectorClock{3, 5, 0}));
}

TEST(VectorClock, MaxClockFreeFunction) {
  const VectorClock a{1, 5, 0};
  const VectorClock b{3, 2, 4};
  EXPECT_EQ(max_clock(a, b), (VectorClock{3, 5, 4}));
  // Algorithm 4 is commutative and idempotent.
  EXPECT_EQ(max_clock(a, b), max_clock(b, a));
  EXPECT_EQ(max_clock(a, a), a);
}

TEST(VectorClock, EncodeDecodeRoundTrip) {
  const VectorClock original{7, 0, 1234567890123ULL, 42};
  std::vector<std::byte> wire;
  original.encode(wire);
  EXPECT_EQ(wire.size(), original.fixed_wire_size());
  std::size_t offset = 0;
  const VectorClock decoded = VectorClock::decode(wire, 4, &offset);
  EXPECT_EQ(decoded, original);
  EXPECT_EQ(offset, wire.size());
}

TEST(VectorClock, EncodeAppendsTwoClocks) {
  const VectorClock a{1, 2};
  const VectorClock b{3, 4};
  std::vector<std::byte> wire;
  a.encode(wire);
  b.encode(wire);
  std::size_t offset = 0;
  EXPECT_EQ(VectorClock::decode(wire, 2, &offset), a);
  EXPECT_EQ(VectorClock::decode(wire, 2, &offset), b);
}

TEST(VectorClock, ToStringCompactLikeThePaper) {
  EXPECT_EQ((VectorClock{1, 1, 0}).to_string(), "110");
  EXPECT_EQ((VectorClock{2, 0, 2, 2}).to_string(), "2022");
  EXPECT_EQ((VectorClock{12, 3}).to_string(), "[12,3]");
}

TEST(VectorClock, TruncationPreservesDomination) {
  // Projection can only *lose* concurrency, never order (§IV.C ablation).
  const VectorClock a{1, 2, 3};
  const VectorClock b{2, 2, 4};
  ASSERT_EQ(a.compare(b), Ordering::kBefore);
  for (std::size_t k = 1; k <= 3; ++k) {
    EXPECT_NE(a.truncated(k).compare(b.truncated(k)), Ordering::kConcurrent);
  }
}

TEST(VectorClock, TruncationCanHideConcurrency) {
  const VectorClock a{1, 0, 1};
  const VectorClock b{1, 1, 0};
  ASSERT_TRUE(a.concurrent_with(b));
  // At width 1 both project to "1": equal, concurrency invisible.
  EXPECT_EQ(a.truncated(1).compare(b.truncated(1)), Ordering::kEqual);
}

TEST(VectorClock, WireSizeIsLinearInProcessCount) {
  // §IV.C / §V.A: the clock must have one entry per process. The compact
  // encoding still pays per entry (one varint each), the fixed layout a
  // full word each.
  for (std::size_t n : {1u, 4u, 10u, 32u}) {
    EXPECT_EQ(VectorClock(n).fixed_wire_size(), n * sizeof(ClockValue));
    EXPECT_EQ(VectorClock(n).wire_size(), n);  // zero components: 1 byte each.
  }
}

TEST(VectorClock, VarintSizeBoundaries) {
  EXPECT_EQ(VectorClock::varint_size(0), 1u);
  EXPECT_EQ(VectorClock::varint_size(127), 1u);
  EXPECT_EQ(VectorClock::varint_size(128), 2u);
  EXPECT_EQ(VectorClock::varint_size(16383), 2u);
  EXPECT_EQ(VectorClock::varint_size(16384), 3u);
  EXPECT_EQ(VectorClock::varint_size(~ClockValue{0}), 10u);
}

TEST(VectorClock, CompactEncodeDecodeRoundTrip) {
  const VectorClock original{7, 0, 1234567890123ULL, 42, 127, 128, ~ClockValue{0}};
  std::vector<std::byte> wire;
  original.encode_compact(wire);
  EXPECT_EQ(wire.size(), original.wire_size());
  std::size_t offset = 0;
  const VectorClock decoded = VectorClock::decode_compact(wire, original.size(), &offset);
  EXPECT_EQ(decoded, original);
  EXPECT_EQ(offset, wire.size());
}

TEST(VectorClock, CompactEncodeAppendsTwoClocks) {
  const VectorClock a{1, 200};
  const VectorClock b{300, 4};
  std::vector<std::byte> wire;
  a.encode_compact(wire);
  b.encode_compact(wire);
  EXPECT_EQ(wire.size(), a.wire_size() + b.wire_size());
  std::size_t offset = 0;
  EXPECT_EQ(VectorClock::decode_compact(wire, 2, &offset), a);
  EXPECT_EQ(VectorClock::decode_compact(wire, 2, &offset), b);
}

TEST(VectorClock, CompactBeatsFixedAtDebuggingScale) {
  // The point of the varint format: clocks at the paper's ~10-process
  // debugging scale carry small counters, so the wire cost collapses.
  VectorClock clock(10);
  for (std::size_t i = 0; i < clock.size(); ++i) clock[i] = i * 7;  // < 128
  EXPECT_EQ(clock.wire_size(), 10u);
  EXPECT_EQ(clock.fixed_wire_size(), 80u);
}

TEST(VectorClock, InlineAndHeapRepresentationsAgree) {
  // n <= kInlineCapacity lives inline; wider clocks spill. Semantics must
  // not depend on the representation.
  const VectorClock small{1, 2, 3, 4};
  const VectorClock big{1, 2, 3, 4, 5, 6};
  ASSERT_LE(small.size(), VectorClock::kInlineCapacity);
  ASSERT_GT(big.size(), VectorClock::kInlineCapacity);

  VectorClock small_copy = small;
  EXPECT_EQ(small_copy, small);
  VectorClock big_copy = big;
  EXPECT_EQ(big_copy, big);

  VectorClock small_moved = std::move(small_copy);
  EXPECT_EQ(small_moved, small);
  VectorClock big_moved = std::move(big_copy);
  EXPECT_EQ(big_moved, big);

  big_moved.tick(5);
  EXPECT_EQ(big_moved[5], 7u);
  small_moved.tick(0);
  EXPECT_EQ(small_moved[0], 2u);

  // Mixed-width equality is simply false, not UB.
  EXPECT_FALSE(small == big);
}

TEST(Epoch, OfEventReadsTheOwnersComponent) {
  const VectorClock clock{3, 7, 2};
  const Epoch e = Epoch::of_event(1, clock);
  EXPECT_TRUE(e.valid());
  EXPECT_EQ(e.rank, 1);
  EXPECT_EQ(e.value, 7u);
  EXPECT_FALSE(Epoch::of_event(5, clock).valid());   // out of range.
  EXPECT_FALSE(Epoch::of_event(-1, clock).valid());
  EXPECT_EQ(e.to_string(), "P1@7");
  EXPECT_EQ(Epoch{}.to_string(), "-");
}

TEST(AdaptiveClock, FreshStateIsSummarizedAtTheZeroEpoch) {
  const AdaptiveClock state(4, 2);
  EXPECT_TRUE(state.summarized());
  EXPECT_EQ(state.epoch(), (Epoch{2, 0}));
  EXPECT_TRUE(state.full().is_zero());
  EXPECT_EQ(state.full().size(), 4u);
}

TEST(AdaptiveClock, StoreEventKeepsTheSummary) {
  AdaptiveClock state(3, 0);
  const VectorClock event{4, 1, 0};
  state.store_event(0, event);
  EXPECT_TRUE(state.summarized());
  EXPECT_EQ(state.epoch(), (Epoch{0, 4}));
  EXPECT_EQ(state.full(), event);
}

TEST(AdaptiveClock, ConcurrentMergeInflatesToAFullClock) {
  // The inflate rule: a componentwise max of two concurrent events' clocks
  // is no event's clock, so the epoch summary must be dropped.
  AdaptiveClock state(3, 0);
  state.store_event(0, VectorClock{4, 1, 0});
  state.merge_concurrent(VectorClock{0, 0, 3});
  EXPECT_FALSE(state.summarized());
  EXPECT_FALSE(state.epoch().valid());
  EXPECT_EQ(state.full(), (VectorClock{4, 1, 3}));
  // A later single-event store re-summarizes.
  state.store_event(1, VectorClock{4, 2, 3});
  EXPECT_TRUE(state.summarized());
  EXPECT_EQ(state.epoch(), (Epoch{1, 2}));
}

TEST(AdaptiveClock, StorageBytesChargeCompactClockPlusEpoch) {
  AdaptiveClock state(4, 1);
  EXPECT_EQ(state.storage_bytes(), 4u + (Epoch{1, 0}).wire_size());
  state.merge_concurrent(VectorClock{1, 0, 0, 0});
  EXPECT_EQ(state.storage_bytes(), state.full().wire_size());  // no epoch.
}

TEST(AdaptiveClock, MergeAtTheEpochBoundaryStillInflates) {
  // Merging the state's *own* clock back in (an epoch-boundary no-op on the
  // values) is still a merge of "knowledge not known to be one event":
  // merge_concurrent must drop the summary even though the clock is
  // unchanged — the conservative direction, never unsound.
  AdaptiveClock state(3, 0);
  const VectorClock event{4, 1, 0};
  state.store_event(0, event);
  state.merge_concurrent(event);  // self-merge: values identical.
  EXPECT_FALSE(state.summarized());
  EXPECT_FALSE(state.epoch().valid());
  EXPECT_EQ(state.full(), event);  // componentwise max with itself.
}

TEST(AdaptiveClock, MergeWithADominatedClockInflatesWithoutChangingValues) {
  AdaptiveClock state(3, 1);
  state.store_event(1, VectorClock{2, 5, 1});
  state.merge_concurrent(VectorClock{1, 3, 0});  // strictly dominated.
  EXPECT_FALSE(state.summarized());
  EXPECT_EQ(state.full(), (VectorClock{2, 5, 1}));
}

TEST(AdaptiveClock, MergeIntoEmptyStateAdoptsTheClock) {
  // A default-constructed (empty) state absorbing its first merge adopts
  // the incoming clock but may not claim an epoch: nothing witnesses that
  // the clock names a single event.
  AdaptiveClock state;
  state.merge_concurrent(VectorClock{0, 2, 1});
  EXPECT_FALSE(state.summarized());
  EXPECT_EQ(state.full(), (VectorClock{0, 2, 1}));
}

TEST(AdaptiveClock, SingleProcessSystemSummarizesAndInflates) {
  // n = 1: every clock is one component, the owner's own. The epoch
  // summary and the inflate rule must behave identically to wider systems.
  AdaptiveClock state(1, 0);
  EXPECT_TRUE(state.summarized());
  EXPECT_EQ(state.epoch(), (Epoch{0, 0}));
  state.store_event(0, VectorClock{3});
  EXPECT_EQ(state.epoch(), (Epoch{0, 3}));
  EXPECT_EQ(state.storage_bytes(), 1u + (Epoch{0, 3}).wire_size());
  state.merge_concurrent(VectorClock{5});
  EXPECT_FALSE(state.summarized());
  EXPECT_EQ(state.full(), (VectorClock{5}));
}

TEST(AdaptiveClock, SmallBufferCrossoverKeepsTheSummaryMachinery) {
  // n > kInlineCapacity spills VectorClock to heap storage; the adaptive
  // state must be oblivious to the representation switch.
  constexpr std::size_t n = VectorClock::kInlineCapacity + 2;
  AdaptiveClock state(n, 3);
  EXPECT_TRUE(state.summarized());
  EXPECT_EQ(state.full().size(), n);

  VectorClock event(n);
  for (std::size_t i = 0; i < n; ++i) event[i] = static_cast<ClockValue>(i);
  event[3] = 9;
  state.store_event(3, event);
  EXPECT_TRUE(state.summarized());
  EXPECT_EQ(state.epoch(), (Epoch{3, 9}));
  EXPECT_EQ(state.full(), event);
  EXPECT_EQ(state.storage_bytes(), event.wire_size() + (Epoch{3, 9}).wire_size());

  VectorClock other(n);
  other[0] = 100;  // concurrent with `event` (ahead on 0, behind on 3).
  state.merge_concurrent(other);
  EXPECT_FALSE(state.summarized());
  EXPECT_EQ(state.full()[0], 100u);
  EXPECT_EQ(state.full()[3], 9u);
}

TEST(AdaptiveClock, StoreEventWithOutOfRangeOwnerDropsTheSummary) {
  // Epoch::of_event is invalid when the owner is outside the clock — the
  // state must then degrade to an unsummarized full clock, not misclaim.
  AdaptiveClock state(3, 0);
  const VectorClock event{1, 2, 3};
  state.store_event(7, event);
  EXPECT_FALSE(state.summarized());
  EXPECT_EQ(state.full(), event);
}

// --- DSMR_ASSERT bounds checks (always-on, PR-1 hardening) ----------------

using VectorClockDeathTest = ::testing::Test;

TEST(VectorClockDeathTest, ConstIndexOutOfBoundsPanics) {
  const VectorClock clock{1, 2, 3};
  EXPECT_DEATH((void)clock[3], "assert failed");
  EXPECT_DEATH((void)clock[1000], "assert failed");
}

TEST(VectorClockDeathTest, MutableIndexOutOfBoundsPanics) {
  VectorClock clock{1, 2, 3};
  EXPECT_DEATH(clock[3] = 5, "assert failed");
}

TEST(VectorClockDeathTest, EmptyClockHasNoComponentZero) {
  const VectorClock empty;
  EXPECT_DEATH((void)empty[0], "assert failed");
}

TEST(VectorClockDeathTest, TickOutOfRangePanics) {
  VectorClock clock{1, 2, 3};
  EXPECT_DEATH(clock.tick(3), "assert failed");
  EXPECT_DEATH(clock.tick(-1), "assert failed");
}

TEST(VectorClockDeathTest, HeapBackedClockChecksBoundsToo) {
  // The bounds check must survive the inline→heap representation switch.
  VectorClock clock(VectorClock::kInlineCapacity + 3);
  EXPECT_DEATH((void)clock[VectorClock::kInlineCapacity + 3], "assert failed");
  EXPECT_DEATH(clock.tick(static_cast<Rank>(VectorClock::kInlineCapacity + 3)),
               "assert failed");
}

// --- property sweep: partial-order laws on random clock populations -------

struct ClockLawsParam {
  std::uint64_t seed;
  std::size_t n;
};

class ClockLaws : public ::testing::TestWithParam<ClockLawsParam> {
 protected:
  std::vector<VectorClock> sample(std::size_t count) {
    util::Rng rng(GetParam().seed);
    std::vector<VectorClock> clocks;
    for (std::size_t i = 0; i < count; ++i) {
      VectorClock c(GetParam().n);
      for (std::size_t j = 0; j < GetParam().n; ++j) {
        c[j] = rng.below(6);
      }
      clocks.push_back(std::move(c));
    }
    return clocks;
  }
};

TEST_P(ClockLaws, CompareIsAntisymmetricAndConsistent) {
  const auto clocks = sample(24);
  for (const auto& a : clocks) {
    for (const auto& b : clocks) {
      const Ordering ab = a.compare(b);
      const Ordering ba = b.compare(a);
      switch (ab) {
        case Ordering::kBefore: EXPECT_EQ(ba, Ordering::kAfter); break;
        case Ordering::kAfter: EXPECT_EQ(ba, Ordering::kBefore); break;
        case Ordering::kEqual: EXPECT_EQ(ba, Ordering::kEqual); break;
        case Ordering::kConcurrent: EXPECT_EQ(ba, Ordering::kConcurrent); break;
      }
    }
  }
}

TEST_P(ClockLaws, DominationIsTransitive) {
  const auto clocks = sample(12);
  for (const auto& a : clocks) {
    for (const auto& b : clocks) {
      for (const auto& c : clocks) {
        if (a.dominated_by(b) && b.dominated_by(c)) {
          EXPECT_TRUE(a.dominated_by(c));
        }
      }
    }
  }
}

TEST_P(ClockLaws, MergeIsLeastUpperBound) {
  const auto clocks = sample(16);
  for (const auto& a : clocks) {
    for (const auto& b : clocks) {
      const VectorClock lub = max_clock(a, b);
      EXPECT_TRUE(a.dominated_by(lub));
      EXPECT_TRUE(b.dominated_by(lub));
      // Minimality: any upper bound dominates the merge.
      for (const auto& u : clocks) {
        if (a.dominated_by(u) && b.dominated_by(u)) {
          EXPECT_TRUE(lub.dominated_by(u));
        }
      }
    }
  }
}

TEST_P(ClockLaws, TruncationNeverCreatesConcurrency) {
  const auto clocks = sample(16);
  for (const auto& a : clocks) {
    for (const auto& b : clocks) {
      if (a.concurrent_with(b)) continue;
      for (std::size_t k = 1; k <= GetParam().n; ++k) {
        EXPECT_FALSE(a.truncated(k).concurrent_with(b.truncated(k)))
            << "ordered clocks became concurrent after truncation to " << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClockLaws,
    ::testing::Values(ClockLawsParam{1, 2}, ClockLawsParam{2, 3}, ClockLawsParam{3, 4},
                      ClockLawsParam{4, 8}, ClockLawsParam{5, 16}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.n);
    });

// --- matrix clocks ---------------------------------------------------------

TEST(MatrixClock, TickUpdatesOwnDiagonal) {
  MatrixClock m(3, 1);
  m.tick();
  m.tick();
  EXPECT_EQ(m.own_row(), (VectorClock{0, 2, 0}));
  EXPECT_EQ(m.row(0), (VectorClock{0, 0, 0}));
}

TEST(MatrixClock, MergeRowAbsorbsSenderKnowledge) {
  MatrixClock m(3, 0);
  m.tick();
  m.merge_row(2, VectorClock{0, 4, 7});
  EXPECT_EQ(m.own_row(), (VectorClock{1, 4, 7}));
  EXPECT_EQ(m.row(2), (VectorClock{0, 4, 7}));
}

TEST(MatrixClock, GcFrontierIsColumnMinimum) {
  MatrixClock m(2, 0);
  m.tick();  // own row {1,0}
  // Rank 1 told us it has seen our first event.
  m.merge_row(1, VectorClock{1, 3});
  // rows: own {1,3}, row1 {1,3} → frontier = {1,3}.
  EXPECT_EQ(m.gc_frontier(), (VectorClock{1, 3}));
}

TEST(MatrixClock, FrontierNeverExceedsOwnRow) {
  util::Rng rng(99);
  MatrixClock m(4, 2);
  for (int step = 0; step < 200; ++step) {
    if (rng.chance(0.5)) {
      m.tick();
    } else {
      VectorClock row(4);
      for (std::size_t j = 0; j < 4; ++j) row[j] = rng.below(20);
      m.merge_row(static_cast<Rank>(rng.below(4)), row);
    }
    EXPECT_TRUE(m.gc_frontier().dominated_by(m.own_row()));
  }
}

TEST(MatrixClock, MergeMatrixDominatesBothInputs) {
  MatrixClock a(3, 0), b(3, 1);
  a.tick();
  b.tick();
  b.tick();
  a.merge_matrix(b);
  EXPECT_TRUE(b.own_row().dominated_by(a.own_row()));
  EXPECT_TRUE(b.row(1).dominated_by(a.row(1)));
}

}  // namespace
}  // namespace dsmr::clocks
