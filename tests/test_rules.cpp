// Unit tests for the race predicate (the kernel of Algorithms 1-2) and the
// report/event logs.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/event_log.hpp"
#include "core/race_report.hpp"
#include "core/rules.hpp"
#include "util/rng.hpp"

namespace dsmr::core {
namespace {

using clocks::VectorClock;

const VectorClock kZero3{0, 0, 0};

/// Helper: run the predicate with distinct accessor/prior ranks so the
/// same-rank FIFO exemption stays out of the way (tested separately).
Verdict check(DetectorMode mode, AccessKind kind, const VectorClock& accessor,
              const VectorClock& v, const VectorClock& w) {
  return check_access(mode, kind, /*accessor=*/2, accessor,
                      StoredClocks{v, w, /*last_access_rank=*/0,
                                   /*last_write_rank=*/1});
}

TEST(Rules, OffModeNeverRaces) {
  const VectorClock a{1, 0, 0};
  const VectorClock b{0, 1, 0};
  const auto verdict = check(DetectorMode::kOff, AccessKind::kWrite, a, b, b);
  EXPECT_FALSE(verdict.race);
  EXPECT_EQ(verdict.against, ComparedAgainst::kNone);
}

TEST(Rules, FirstAccessNeverRaces) {
  // Zero stored clocks are dominated by any issue clock.
  const VectorClock accessor{0, 0, 1};
  for (const auto kind : {AccessKind::kRead, AccessKind::kWrite}) {
    const auto verdict = check(DetectorMode::kDualClock, kind, accessor, kZero3, kZero3);
    EXPECT_FALSE(verdict.race);
  }
}

TEST(Rules, WriteComparesAgainstLastAccessClockV) {
  // A write races with any unordered prior access — read or write.
  const VectorClock writer{0, 0, 1};
  const VectorClock v{1, 1, 0};  // someone read/wrote concurrently.
  const VectorClock w = kZero3;  // never written.
  const auto verdict = check(DetectorMode::kDualClock, AccessKind::kWrite, writer, v, w);
  EXPECT_TRUE(verdict.race);
  EXPECT_EQ(verdict.against, ComparedAgainst::kV);
  EXPECT_EQ(verdict.ordering, clocks::Ordering::kConcurrent);
}

TEST(Rules, ReadComparesAgainstWriteClockW) {
  const VectorClock reader{0, 0, 1};
  const VectorClock v{1, 1, 0};  // a concurrent *read* left its mark in V...
  const VectorClock w = kZero3;  // ...but nothing ever wrote.
  const auto verdict = check(DetectorMode::kDualClock, AccessKind::kRead, reader, v, w);
  // Figure 4: concurrent reads are not a race.
  EXPECT_FALSE(verdict.race);
  EXPECT_EQ(verdict.against, ComparedAgainst::kW);
}

TEST(Rules, ReadRacesWithUnorderedWrite) {
  const VectorClock reader{0, 0, 1};
  const VectorClock w{1, 1, 0};
  const auto verdict = check(DetectorMode::kDualClock, AccessKind::kRead, reader, w, w);
  EXPECT_TRUE(verdict.race);
  EXPECT_EQ(verdict.against, ComparedAgainst::kW);
}

TEST(Rules, OrderedWriteDoesNotRace) {
  const VectorClock writer{2, 1, 1};  // dominates the stored clock.
  const VectorClock stored{1, 1, 0};
  const auto verdict =
      check(DetectorMode::kDualClock, AccessKind::kWrite, writer, stored, stored);
  EXPECT_FALSE(verdict.race);
  EXPECT_EQ(verdict.ordering, clocks::Ordering::kAfter);
}

TEST(Rules, SingleClockFlagsConcurrentReads) {
  // The §IV.D ablation: one clock per area flags read-read concurrency.
  const VectorClock reader{0, 0, 1};
  const VectorClock v{1, 1, 0};
  const auto verdict =
      check(DetectorMode::kSingleClock, AccessKind::kRead, reader, v, kZero3);
  EXPECT_TRUE(verdict.race);
  EXPECT_EQ(verdict.against, ComparedAgainst::kV);
}

TEST(Rules, DualClockSubsumesSingleClockOnWrites) {
  // On writes both modes compare against V: identical verdicts.
  const VectorClock writer{0, 2, 0};
  for (const auto& stored : {VectorClock{1, 0, 0}, VectorClock{0, 1, 0}, kZero3}) {
    const auto dual =
        check(DetectorMode::kDualClock, AccessKind::kWrite, writer, stored, kZero3);
    const auto single =
        check(DetectorMode::kSingleClock, AccessKind::kWrite, writer, stored, kZero3);
    EXPECT_EQ(dual.race, single.race);
  }
}

TEST(Rules, SameRankPriorIsExemptedByFifoOrder) {
  // Two sequential puts by the same process are ordered by program order and
  // the FIFO channel even though the home tick makes their clocks
  // incomparable (unacknowledged puts).
  const VectorClock second_issue{2, 0, 0};        // P0's second put.
  const VectorClock stored{1, 1, 0};              // P0's first put + home tick.
  const auto same = check_access(DetectorMode::kDualClock, AccessKind::kWrite,
                                 /*accessor=*/0, second_issue,
                                 StoredClocks{stored, stored, 0, 0});
  EXPECT_FALSE(same.race);
  // The identical clocks from a *different* rank are a genuine race.
  const auto other = check_access(DetectorMode::kDualClock, AccessKind::kWrite,
                                  /*accessor=*/2, second_issue,
                                  StoredClocks{stored, stored, 0, 0});
  EXPECT_TRUE(other.race);
}

TEST(Rules, PaperFig5aVerdict) {
  // m2's clock 001 against stored 110 (V = W after m1): race.
  const VectorClock stored{1, 1, 0};
  const VectorClock incoming{0, 0, 1};
  EXPECT_TRUE(
      check(DetectorMode::kDualClock, AccessKind::kWrite, incoming, stored, stored).race);
}

TEST(Rules, PaperFig5bVerdict) {
  // m3 (put, clock 132) against V = 110 left by the get chain: ordered.
  const VectorClock v{1, 1, 0};
  const VectorClock incoming{1, 3, 2};
  EXPECT_FALSE(check(DetectorMode::kDualClock, AccessKind::kWrite, incoming, v,
                     VectorClock{0, 0, 0})
                   .race);
}

TEST(RaceLog, RecordsAssignsIdsAndNotifies) {
  RaceLog log;
  int notified = 0;
  log.add_observer([&](const RaceReport& r) {
    ++notified;
    EXPECT_GT(r.id, 0u);
  });
  RaceReport report;
  report.area_name = "x";
  log.record(report);
  log.record(report);
  EXPECT_EQ(log.count(), 2u);
  EXPECT_EQ(notified, 2);
  EXPECT_EQ(log.reports()[0].id, 1u);
  EXPECT_EQ(log.reports()[1].id, 2u);
}

TEST(RaceLog, UniqueByAreaCollapses) {
  RaceLog log;
  RaceReport a;
  a.home = 0;
  a.area = 1;
  RaceReport b = a;
  RaceReport c;
  c.home = 1;
  c.area = 1;
  log.record(a);
  log.record(b);
  log.record(c);
  EXPECT_EQ(log.unique_by_area().size(), 2u);
}

TEST(RaceReport, DescribeMentionsBothClocks) {
  RaceReport report;
  report.kind = AccessKind::kWrite;
  report.accessor = 2;
  report.home = 1;
  report.area_name = "x";
  report.accessor_clock = VectorClock{0, 0, 1};
  report.stored_clock = VectorClock{1, 1, 0};
  report.against = ComparedAgainst::kV;
  const std::string text = report.describe();
  EXPECT_NE(text.find("001"), std::string::npos);
  EXPECT_NE(text.find("110"), std::string::npos);
  EXPECT_NE(text.find("write"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Epoch fast path vs the full-vector-clock oracle.
// ---------------------------------------------------------------------------

TEST(EpochFastPath, DecidesOrderedPairsWithoutFullComparison) {
  // Stored = home's (rank 1) post-event clock; accessor saw it (acked put)
  // and ticked: ordered, no race — decidable from components 1 and 2 alone.
  const VectorClock stored{1, 2, 0};    // event clock of rank 1.
  const VectorClock accessor{1, 2, 1};  // rank 2 post-tick, knows stored.
  const StoredClocks with_epoch{stored, stored, 0, 0, clocks::Epoch::of_event(1, stored),
                                clocks::Epoch::of_event(1, stored)};
  const auto fast = check_access(DetectorMode::kDualClock, AccessKind::kWrite,
                                 /*accessor=*/2, accessor, with_epoch);
  EXPECT_FALSE(fast.race);
  EXPECT_EQ(fast.ordering, clocks::Ordering::kAfter);
  EXPECT_EQ(fast, check_access_oracle(DetectorMode::kDualClock, AccessKind::kWrite, 2,
                                      accessor, with_epoch));
}

TEST(EpochFastPath, ZeroStoredClockIsTheZeroEpoch) {
  const VectorClock zero{0, 0, 0};
  const VectorClock accessor{0, 0, 1};
  const StoredClocks with_epoch{zero, zero, kInvalidRank, kInvalidRank,
                                clocks::Epoch{1, 0}, clocks::Epoch{1, 0}};
  for (const auto kind : {AccessKind::kRead, AccessKind::kWrite}) {
    const auto fast =
        check_access(DetectorMode::kDualClock, kind, 2, accessor, with_epoch);
    EXPECT_FALSE(fast.race);
    EXPECT_EQ(fast.ordering, clocks::Ordering::kAfter);
  }
}

TEST(EpochFastPath, InvalidEpochFallsBackToFullComparison) {
  const VectorClock stored{1, 1, 0};
  const VectorClock accessor{0, 0, 1};
  // No epochs: identical behavior to the oracle on the slow path.
  const StoredClocks no_epoch{stored, stored, 0, 1};
  const auto slow =
      check_access(DetectorMode::kDualClock, AccessKind::kWrite, 2, accessor, no_epoch);
  EXPECT_TRUE(slow.race);
  EXPECT_EQ(slow, check_access_oracle(DetectorMode::kDualClock, AccessKind::kWrite, 2,
                                      accessor, no_epoch));
}

TEST(EpochFastPath, InconsistentEpochWitnessFallsBack) {
  // An epoch whose value disagrees with the stored clock's component must
  // not be trusted: the fast path declines and the full comparison decides.
  const VectorClock stored{1, 1, 0};
  const VectorClock accessor{0, 0, 1};
  const StoredClocks stale{stored, stored, 0, 1, clocks::Epoch{1, 99},
                           clocks::Epoch{1, 99}};
  const auto verdict =
      check_access(DetectorMode::kDualClock, AccessKind::kWrite, 2, accessor, stale);
  EXPECT_EQ(verdict, check_access_oracle(DetectorMode::kDualClock, AccessKind::kWrite, 2,
                                         accessor, stale));
}

/// Random causal histories: `nprocs` processes tick locally and exchange
/// messages (tick + merge on receive), producing genuine event clocks. Every
/// (stored event clock at h, accessor event clock at i) pair — with epochs —
/// must get the bit-identical Verdict from the fast path and the oracle, for
/// every mode and access kind. This is the soundness property the O(1) path
/// rests on (Fidge/Mattern), exercised over thousands of interleavings.
TEST(EpochFastPath, PropertyIdenticalToOracleOnRandomCausalHistories) {
  util::Rng rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    const auto nprocs = static_cast<std::size_t>(rng.range(2, 6));
    std::vector<VectorClock> process_clock(nprocs, VectorClock(nprocs));
    // Event history: (rank, post-tick clock) — the only clocks the
    // protocols ever store or compare.
    std::vector<std::pair<Rank, VectorClock>> events;
    const int steps = static_cast<int>(rng.range(5, 40));
    for (int s = 0; s < steps; ++s) {
      const auto actor = static_cast<std::size_t>(rng.below(nprocs));
      if (rng.chance(0.4) && nprocs > 1) {
        // Message: merge a random earlier event's clock (receive), tick.
        if (!events.empty()) {
          const auto& [from, clk] = events[rng.below(events.size())];
          (void)from;
          process_clock[actor].merge_from(clk);
        }
      }
      process_clock[actor].tick(static_cast<Rank>(actor));
      events.emplace_back(static_cast<Rank>(actor), process_clock[actor]);
    }
    // Compare random event-clock pairs through both implementations.
    for (int probe = 0; probe < 32; ++probe) {
      const auto& [h, stored_v] = events[rng.below(events.size())];
      const auto& [h2, stored_w] = events[rng.below(events.size())];
      const auto& [accessor, issue] = events[rng.below(events.size())];
      const Rank prior_access = static_cast<Rank>(rng.range(-1, static_cast<std::int64_t>(nprocs) - 1));
      const Rank prior_write = static_cast<Rank>(rng.range(-1, static_cast<std::int64_t>(nprocs) - 1));
      const StoredClocks stored{stored_v, stored_w, prior_access, prior_write,
                                clocks::Epoch::of_event(h, stored_v),
                                clocks::Epoch::of_event(h2, stored_w)};
      for (const auto mode : {DetectorMode::kOff, DetectorMode::kSingleClock,
                              DetectorMode::kDualClock}) {
        for (const auto kind : {AccessKind::kRead, AccessKind::kWrite}) {
          const auto fast = check_access(mode, kind, accessor, issue, stored);
          const auto oracle = check_access_oracle(mode, kind, accessor, issue, stored);
          ASSERT_EQ(fast, oracle)
              << "trial " << trial << " probe " << probe << " mode "
              << to_string(mode) << " kind " << to_string(kind) << " accessor P"
              << accessor << " clk " << issue.to_string() << " vs stored "
              << stored_v.to_string() << "/" << stored_w.to_string();
        }
      }
    }
  }
}

TEST(EventLog, RecordsWithSequentialIds) {
  EventLog log;
  AccessEvent e;
  e.rank = 1;
  const auto id1 = log.record(e);
  const auto id2 = log.record(e);
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(id2, 2u);
  EXPECT_EQ(log.event(id1).rank, 1);
}

TEST(EventLog, DisabledStillHandsOutIds) {
  EventLog log;
  log.set_enabled(false);
  EXPECT_EQ(log.record({}), 1u);
  EXPECT_EQ(log.record({}), 2u);
  EXPECT_EQ(log.size(), 0u);
}

}  // namespace
}  // namespace dsmr::core
